"""Legacy setup shim.

The execution environment is offline with setuptools but no ``wheel``
package, so PEP-517 editable installs (which require bdist_wheel) fail.
Keeping this shim lets ``pip install -e . --no-build-isolation`` (and plain
``pip install -e .`` on older pips) fall back to the classic
``setup.py develop`` path.
"""
from setuptools import setup

setup()
