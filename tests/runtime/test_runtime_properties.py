"""Property-based tests of the distributed substrate: for random chains,
partitions and particle walks, the structural invariants must hold."""
import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.api import (OPP_READ, Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set)
from repro.runtime import (SimComm, build_rank_meshes, mpi_particle_move,
                           partition)


def chain_c2c(n_cells: int) -> np.ndarray:
    return np.array([[i - 1, i + 1 if i + 1 < n_cells else -1]
                     for i in range(n_cells)], dtype=np.int64)


@settings(max_examples=25, deadline=None)
@given(n_cells=st.integers(4, 40), nranks=st.integers(1, 5),
       seed=st.integers(0, 2**16))
def test_rank_meshes_partition_invariants(n_cells, nranks, seed):
    """Random contiguous-ish owner maps: owned cells partition the mesh,
    halos are adjacent foreign cells, local numbering is consistent."""
    assume(nranks <= n_cells)
    rng = np.random.default_rng(seed)
    # random but valid owner assignment covering all ranks
    cuts = np.sort(rng.choice(np.arange(1, n_cells), size=nranks - 1,
                              replace=False)) if nranks > 1 else []
    owner = np.zeros(n_cells, dtype=np.int64)
    for r, c in enumerate(cuts):
        owner[c:] = r + 1
    c2c = chain_c2c(n_cells)
    meshes, plan = build_rank_meshes(c2c, owner, nranks)

    owned_all = np.concatenate([m.cells_global[: m.n_owned_cells]
                                for m in meshes])
    assert sorted(owned_all.tolist()) == list(range(n_cells))
    for m in meshes:
        halo = m.cells_global[m.n_owned_cells:]
        for g in halo:
            assert owner[g] != m.rank
            neighbours = set(c2c[g].tolist())
            owned = set(m.cells_global[: m.n_owned_cells].tolist())
            assert neighbours & owned
        # local c2c points back at the right global cells
        for loc in range(m.n_owned_cells):
            g = m.cells_global[loc]
            for a in range(2):
                ln = m.local_c2c[loc, a]
                if ln >= 0:
                    assert m.cells_global[ln] == c2c[g, a]
    # cell_home inverts the local numbering
    for m in meshes:
        for loc in range(m.n_owned_cells):
            g = m.cells_global[loc]
            assert plan.cell_home[g, 0] == m.rank
            assert plan.cell_home[g, 1] == loc


def walk_kernel(move, p, lo):
    """Coordinate-based walk: the cell's low edge comes from a dat (local
    cell ids differ from global ones across ranks)."""
    if p[0] < lo[0]:
        move.move_to(move.c2c[0])
    elif p[0] >= lo[0] + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


@settings(max_examples=15, deadline=None)
@given(n_cells=st.integers(6, 24), nranks=st.integers(2, 4),
       n_parts=st.integers(1, 30), seed=st.integers(0, 2**16))
def test_distributed_walk_matches_oracle(n_cells, nranks, n_parts, seed):
    """Random walks over a random-slab-partitioned chain: the surviving
    (position → cell) assignment must equal the single-rank truth, for
    any rank count and any particle placement."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, n_cells + 1.0, size=n_parts)
    start_cells = rng.integers(0, n_cells, size=n_parts)
    truth_cells = np.floor(positions).astype(np.int64)
    survivors = sorted(
        positions[(truth_cells >= 0) & (truth_cells < n_cells)].tolist())

    c2c = chain_c2c(n_cells)
    centroids = np.stack([np.zeros(n_cells), np.zeros(n_cells),
                          np.arange(n_cells) + 0.5], axis=1)
    owner = partition("principal_direction", nranks, centroids=centroids)
    meshes, plan = build_rank_meshes(c2c, owner, nranks)
    comm = SimComm(nranks)
    ctxs = [Context("vec") for _ in range(nranks)]

    psets, p2cs, poss, los = [], [], [], []
    for r in range(nranks):
        g2l = np.full(n_cells, -1, dtype=np.int64)
        g2l[meshes[r].cells_global] = np.arange(
            meshes[r].cells_global.size)
        mine = np.flatnonzero(owner[start_cells] == r)
        cells = decl_set(meshes[r].n_local_cells)
        cells.owned_size = meshes[r].n_owned_cells
        parts = decl_particle_set(cells, mine.size)
        p2c = decl_map(parts, cells, 1,
                       g2l[start_cells[mine]].reshape(-1, 1)
                       if mine.size else None)
        pos = decl_dat(parts, 1, np.float64, positions[mine])
        # geometry travels as a cell dat: the global low edge of each
        # local cell (local ids are rank-specific)
        lo = decl_dat(cells, 1, np.float64,
                      meshes[r].cells_global.astype(np.float64))
        psets.append(parts)
        p2cs.append(p2c)
        poss.append(pos)
        los.append(lo)

    local_maps = [decl_map(p.cells_set, p.cells_set, 2,
                           meshes[r].local_c2c)
                  for r, p in enumerate(psets)]
    mpi_particle_move(comm, plan, meshes, ctxs, walk_kernel, "walk",
                      psets, local_maps, p2cs,
                      [[arg_dat(poss[r], OPP_READ),
                        arg_dat(los[r], p2cs[r], OPP_READ)]
                       for r in range(nranks)],
                      [[poss[r]] for r in range(nranks)])

    got = []
    for r in range(nranks):
        n = psets[r].size
        local = p2cs[r].p2c[:n]
        assert (local >= 0).all()
        assert (local < meshes[r].n_owned_cells).all()
        glob = meshes[r].cells_global[local]
        assert (owner[glob] == r).all()
        p = poss[r].data[:n, 0]
        np.testing.assert_array_equal(glob, np.floor(p).astype(np.int64))
        got.extend(p.tolist())
    assert sorted(got) == pytest.approx(survivors)
