"""Simulated MPI communicator: messaging, collectives, accounting."""
import numpy as np
import pytest

from repro.runtime import SimComm


def test_send_recv_roundtrip():
    comm = SimComm(3)
    payload = np.arange(10.0)
    comm.send(0, 2, payload, tag=7)
    out = comm.recv(2, 0, tag=7)
    np.testing.assert_array_equal(out, payload)


def test_message_accounting():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(4))        # 32 bytes
    comm.send(1, 0, np.zeros(2))        # 16 bytes
    assert comm.stats.total_messages == 2
    assert comm.stats.msg_bytes[0, 1] == 32
    assert comm.stats.bytes_sent_by(1) == 16
    comm.stats.reset()
    assert comm.stats.total_bytes == 0


def test_missing_message_raises():
    comm = SimComm(2)
    with pytest.raises(RuntimeError):
        comm.recv(1, 0)


def test_duplicate_unreceived_message_raises():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(1), tag=3)
    with pytest.raises(RuntimeError):
        comm.send(0, 1, np.zeros(1), tag=3)


def test_tags_separate_messages():
    comm = SimComm(2)
    comm.send(0, 1, np.array([1.0]), tag=1)
    comm.send(0, 1, np.array([2.0]), tag=2)
    assert comm.recv(1, 0, tag=2)[0] == 2.0
    assert comm.recv(1, 0, tag=1)[0] == 1.0


def test_rank_bounds_checked():
    comm = SimComm(2)
    with pytest.raises(IndexError):
        comm.send(0, 5, np.zeros(1))
    with pytest.raises(ValueError):
        SimComm(0)


def test_allreduce_ops():
    comm = SimComm(3)
    assert comm.allreduce([1.0, 2.0, 3.0], "sum") == 6.0
    assert comm.allreduce([1.0, 5.0, 3.0], "max") == 5.0
    assert comm.allreduce([1.0, 5.0, 3.0], "min") == 1.0
    assert comm.stats.collectives == 3
    with pytest.raises(ValueError):
        comm.allreduce([1.0, 2.0], "sum")
    with pytest.raises(ValueError):
        comm.allreduce([1.0, 2.0, 3.0], "prod")


def test_allreduce_arrays():
    comm = SimComm(2)
    out = comm.allreduce([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
    np.testing.assert_array_equal(out, [4.0, 6.0])


def test_alltoall_counts_transposes():
    comm = SimComm(2)
    counts = np.array([[0, 3], [5, 0]])
    recv = comm.alltoall_counts(counts)
    np.testing.assert_array_equal(recv, [[0, 5], [3, 0]])


def test_pending_listing():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(1), tag=9)
    assert comm.pending(1) == [(0, 9)]
