"""OP2-style redundant computation over MPI halos (paper §3.2.1: "data
races when parallelizing iterations that increment data held on a set,
modified indirectly via a mapping, are handled with redundant
computations over MPI halos").

A mesh loop over owned + exec-halo cells completes every owned node's
contributions *locally* — no ghost reduction needed — provided the halo
is vertex-deep.
"""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ,
                            OPP_WRITE, Context, arg_dat, decl_dat,
                            decl_map, decl_set, push_context)
from repro.core.loops import par_loop
from repro.mesh import duct_mesh
from repro.runtime import build_rank_meshes, partition


def deposit_cell_to_nodes(cv, n0, n1, n2, n3):
    n0[0] += 0.25 * cv[0]
    n1[0] += 0.25 * cv[0]
    n2[0] += 0.25 * cv[0]
    n3[0] += 0.25 * cv[0]


@pytest.fixture(scope="module")
def world():
    mesh = duct_mesh(2, 2, 6, 1.0, 1.0, 2.0)
    owner = partition("principal_direction", 3,
                      centroids=mesh.centroids)
    # global truth
    truth = np.zeros(mesh.n_nodes)
    np.add.at(truth, mesh.cell2node.ravel(),
              np.repeat(0.25 * (np.arange(mesh.n_cells) + 1.0), 4))
    return mesh, owner, truth


def test_vertex_halo_is_superset_of_face_halo(world):
    mesh, owner, _ = world
    face, _ = build_rank_meshes(mesh.c2c, owner, 3, c2n=mesh.cell2node)
    vert, _ = build_rank_meshes(mesh.c2c, owner, 3, c2n=mesh.cell2node,
                                halo_mode="vertex")
    for fm, vm in zip(face, vert):
        assert set(fm.cells_global.tolist()) <= \
            set(vm.cells_global.tolist())
        assert fm.n_owned_cells == vm.n_owned_cells


def test_redundant_execution_completes_owned_nodes(world):
    """Exec-halo mode: per-rank loops over owned + vertex halo yield the
    exact global node sums on every owned node — no reduction step."""
    mesh, owner, truth = world
    meshes, plan = build_rank_meshes(mesh.c2c, owner, 3,
                                     c2n=mesh.cell2node,
                                     halo_mode="vertex")
    for rm in meshes:
        ctx = Context("vec")
        with push_context(ctx):
            cells = decl_set(rm.n_local_cells)
            cells.owned_size = rm.n_owned_cells
            cells.exec_halo_size = rm.n_halo_cells   # redundant window
            nodes = decl_set(rm.n_local_nodes)
            nodes.owned_size = rm.n_owned_nodes
            c2n = decl_map(cells, nodes, 4, rm.local_c2n)
            cv = decl_dat(cells, 1, np.float64,
                          rm.cells_global + 1.0)     # halo data present
            nd = decl_dat(nodes, 1, np.float64)
            par_loop(deposit_cell_to_nodes, "deposit", cells,
                     OPP_ITERATE_ALL,
                     arg_dat(cv, OPP_READ),
                     arg_dat(nd, 0, c2n, OPP_INC),
                     arg_dat(nd, 1, c2n, OPP_INC),
                     arg_dat(nd, 2, c2n, OPP_INC),
                     arg_dat(nd, 3, c2n, OPP_INC))
        owned_nodes = rm.nodes_global[: rm.n_owned_nodes]
        np.testing.assert_allclose(nd.data[: rm.n_owned_nodes, 0],
                                   truth[owned_nodes], rtol=1e-12)


def test_face_halo_alone_is_insufficient(world):
    """With only the face halo, at least one rank misses contributions to
    some owned node — the reason the exec halo must be vertex-deep."""
    mesh, owner, truth = world
    meshes, _ = build_rank_meshes(mesh.c2c, owner, 3,
                                  c2n=mesh.cell2node)
    incomplete = False
    for rm in meshes:
        ctx = Context("vec")
        with push_context(ctx):
            cells = decl_set(rm.n_local_cells)
            cells.owned_size = rm.n_owned_cells
            cells.exec_halo_size = rm.n_halo_cells
            nodes = decl_set(rm.n_local_nodes)
            c2n = decl_map(cells, nodes, 4, rm.local_c2n)
            cv = decl_dat(cells, 1, np.float64, rm.cells_global + 1.0)
            nd = decl_dat(nodes, 1, np.float64)
            par_loop(deposit_cell_to_nodes, "deposit", cells,
                     OPP_ITERATE_ALL,
                     arg_dat(cv, OPP_READ),
                     arg_dat(nd, 0, c2n, OPP_INC),
                     arg_dat(nd, 1, c2n, OPP_INC),
                     arg_dat(nd, 2, c2n, OPP_INC),
                     arg_dat(nd, 3, c2n, OPP_INC))
        owned_nodes = rm.nodes_global[: rm.n_owned_nodes]
        if not np.allclose(nd.data[: rm.n_owned_nodes, 0],
                           truth[owned_nodes]):
            incomplete = True
    assert incomplete


def test_exec_window_only_extends_indirect_inc_loops():
    """Loops without indirect increments must not run over the halo."""
    ctx = Context("vec")
    with push_context(ctx):
        s = decl_set(6)
        s.owned_size = 4
        s.exec_halo_size = 2
        x = decl_dat(s, 1, np.float64)

        def mark(xv):
            xv[0] = 1.0

        par_loop(mark, "mark", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_WRITE))
        assert x.data[:, 0].tolist() == [1, 1, 1, 1, 0, 0]


def test_invalid_halo_mode(world):
    mesh, owner, _ = world
    with pytest.raises(ValueError):
        build_rank_meshes(mesh.c2c, owner, 2, halo_mode="edge")
    with pytest.raises(ValueError):
        build_rank_meshes(mesh.c2c, owner, 2, halo_mode="vertex")
