"""Direct-hop vs multi-hop relocation equivalence.

The paper's DH optimisation only changes *where the walk starts* (the
structured-overlay guess), never where it ends: after an
``opp_particle_move``, both strategies must assign every particle to the
same cell and leave particle data identical.  Checked two ways — on a
randomized periodic hex brick with a hand-rolled walk kernel, and on the
full FemPic app (tet mesh) via its ``move_strategy`` switch.
"""
import numpy as np
import pytest

from repro.core.api import (OPP_READ, OPP_WRITE, Context, arg_dat,
                            decl_dat, decl_map, decl_particle_set,
                            decl_set, particle_move, push_context)
from repro.mesh import HexMesh, StructuredOverlay
from repro.runtime.dh import direct_hop_assign


def hex_walk(move, pos, bounds, res):
    """Face-neighbour walk on a hex brick; ``bounds`` is the current
    cell's [lox, loy, loz, hix, hiy, hiz]."""
    if pos[0] < bounds[0]:
        move.move_to(move.c2c[0])
    elif pos[0] >= bounds[3]:
        move.move_to(move.c2c[1])
    elif pos[1] < bounds[1]:
        move.move_to(move.c2c[2])
    elif pos[1] >= bounds[4]:
        move.move_to(move.c2c[3])
    elif pos[2] < bounds[2]:
        move.move_to(move.c2c[4])
    elif pos[2] >= bounds[5]:
        move.move_to(move.c2c[5])
    else:
        res[0] = move.cell * 1.0
        move.done()


def build_hex_world(mesh: HexMesh, positions, start_cells):
    n = len(positions)
    cells = decl_set(mesh.n_cells, "cells")
    parts = decl_particle_set(cells, n, "parts")
    c2c = decl_map(cells, cells, 6, mesh.face_c2c, "c2c")
    p2c = decl_map(parts, cells, 1, start_cells.reshape(-1, 1), "p2c")
    i, j, k = mesh.cell_ijk(np.arange(mesh.n_cells))
    lo = np.stack([i * mesh.dx, j * mesh.dy, k * mesh.dz], axis=1)
    bounds = decl_dat(cells, 6, np.float64,
                      np.hstack([lo, lo + [mesh.dx, mesh.dy, mesh.dz]]),
                      "bounds")
    pos = decl_dat(parts, 3, np.float64, positions, "pos")
    res = decl_dat(parts, 1, np.float64, np.full(n, -1.0), "res")
    return parts, c2c, p2c, bounds, pos, res


def identity_overlay(mesh: HexMesh) -> StructuredOverlay:
    # one bin per cell: bin_of flattens (k*ny + j)*nx + i, exactly
    # HexMesh.cell_id's x-fastest ordering, so the identity cell map
    # makes the overlay's guess the true containing cell
    return StructuredOverlay([0.0, 0.0, 0.0],
                             [mesh.lx, mesh.ly, mesh.lz],
                             [mesh.nx, mesh.ny, mesh.nz],
                             np.arange(mesh.n_cells))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hex_dh_and_mh_agree(seed):
    rng = np.random.default_rng(100 + seed)
    mesh = HexMesh(nx=int(rng.integers(3, 6)), ny=int(rng.integers(3, 6)),
                   nz=int(rng.integers(2, 5)))
    n = 200
    positions = rng.uniform([0, 0, 0], [mesh.lx, mesh.ly, mesh.lz],
                            size=(n, 3))
    # random start cells force genuinely multi-cell hops for MH
    start = rng.integers(0, mesh.n_cells, size=n).astype(np.int64)

    def run(strategy):
        with push_context(Context("seq")):
            parts, c2c, p2c, bounds, pos, res = build_hex_world(
                mesh, positions, start)
            if strategy == "dh":
                overlay = identity_overlay(mesh)
                changed = direct_hop_assign(overlay, parts, pos, p2c)
                assert changed >= 0
            mres = particle_move(hex_walk, "hex_walk", parts, c2c, p2c,
                                 arg_dat(pos, OPP_READ),
                                 arg_dat(bounds, p2c, OPP_READ),
                                 arg_dat(res, OPP_WRITE))
            return p2c.p2c.copy(), res.data.copy(), mres.total_hops

    mh_cells, mh_res, mh_hops = run("mh")
    dh_cells, dh_res, dh_hops = run("dh")

    # no removals on a periodic brick: element-wise comparable
    assert np.array_equal(mh_cells, dh_cells)
    assert np.array_equal(mh_res, dh_res)
    # the walks really converged on the containing cell
    expected = mesh.cell_id(*((positions
                               / [mesh.dx, mesh.dy, mesh.dz])
                              .astype(np.int64)).T)
    assert np.array_equal(mh_cells, expected)
    # DH's whole point: the identity overlay needs one hop per particle
    assert dh_hops == len(positions)
    assert dh_hops <= mh_hops


def test_hex_dh_agrees_across_backends():
    rng = np.random.default_rng(77)
    mesh = HexMesh(nx=4, ny=3, nz=3)
    n = 120
    positions = rng.uniform([0, 0, 0], [mesh.lx, mesh.ly, mesh.lz],
                            size=(n, 3))
    start = rng.integers(0, mesh.n_cells, size=n).astype(np.int64)

    def run(backend):
        with push_context(Context(backend)):
            parts, c2c, p2c, bounds, pos, res = build_hex_world(
                mesh, positions, start)
            direct_hop_assign(identity_overlay(mesh), parts, pos, p2c)
            particle_move(hex_walk, "hex_walk", parts, c2c, p2c,
                          arg_dat(pos, OPP_READ),
                          arg_dat(bounds, p2c, OPP_READ),
                          arg_dat(res, OPP_WRITE))
            return p2c.p2c.copy(), res.data.copy()

    seq_cells, seq_res = run("seq")
    for backend in ("vec", "sanitizer"):
        cells, res = run(backend)
        assert np.array_equal(seq_cells, cells), backend
        assert np.array_equal(seq_res, res), backend


@pytest.mark.slow
def test_fempic_dh_matches_mh_end_to_end():
    """Full app on the tet duct mesh: identical physics under both
    relocation strategies, including injected/removed particles."""
    from repro.apps.fempic.config import FemPicConfig
    from repro.apps.fempic.simulation import FemPicSimulation

    def run(strategy):
        cfg = FemPicConfig.smoke().scaled(move_strategy=strategy)
        sim = FemPicSimulation(cfg)
        hist = sim.run()
        n = sim.parts.size
        state = np.hstack([sim.pos.data[:n], sim.vel.data[:n],
                           sim.p2c.p2c[:n].reshape(-1, 1)])
        # hole-filling order may differ between strategies: compare the
        # particle population as a sorted multiset
        order = np.lexsort(state.T)
        return hist, state[order]

    mh_hist, mh_state = run("mh")
    dh_hist, dh_state = run("dh")
    assert mh_hist["n_particles"] == dh_hist["n_particles"]
    np.testing.assert_allclose(mh_hist["field_energy"],
                               dh_hist["field_energy"],
                               rtol=1e-12, atol=1e-14)
    np.testing.assert_allclose(mh_state, dh_state,
                               rtol=1e-12, atol=1e-14)
