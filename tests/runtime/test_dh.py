"""Direct-hop relocation: single-rank assignment and the distributed
global move."""
import numpy as np
import pytest

from repro.core.api import decl_dat, decl_map, decl_particle_set, decl_set
from repro.mesh import StructuredOverlay, duct_mesh
from repro.runtime import (DirectHopGlobalMover, SimComm, build_rank_meshes,
                           direct_hop_assign, partition)


@pytest.fixture(scope="module")
def mesh():
    return duct_mesh(3, 3, 6, 1.0, 1.0, 2.0)


def test_direct_hop_assign_reduces_walk(mesh, rng):
    overlay = StructuredOverlay.build(mesh, 10)
    pts = rng.uniform([0, 0, 0], [1, 1, 2], size=(100, 3))
    truth = mesh.locate(pts)

    cells = decl_set(mesh.n_cells)
    parts = decl_particle_set(cells, 100)
    p2c = decl_map(parts, cells, 1, np.zeros((100, 1), dtype=int))
    pos = decl_dat(parts, 3, np.float64, pts)

    changed = direct_hop_assign(overlay, parts, pos, p2c)
    assert changed > 0
    # every guess is within a short finishing walk of the truth
    finish = mesh.locate(pts, guesses=p2c.p2c.copy())
    np.testing.assert_array_equal(finish, truth)


def test_direct_hop_assign_skips_dead_particles(mesh):
    overlay = StructuredOverlay.build(mesh, 4)
    cells = decl_set(mesh.n_cells)
    parts = decl_particle_set(cells, 2)
    p2c = decl_map(parts, cells, 1, [[0], [-1]])
    pos = decl_dat(parts, 3, np.float64, np.full((2, 3), 0.1))
    direct_hop_assign(overlay, parts, pos, p2c)
    assert p2c.p2c[1] == -1


def test_empty_particle_set_noop(mesh):
    overlay = StructuredOverlay.build(mesh, 4)
    cells = decl_set(mesh.n_cells)
    parts = decl_particle_set(cells, 0)
    p2c = decl_map(parts, cells, 1, None)
    pos = decl_dat(parts, 3, np.float64)
    assert direct_hop_assign(overlay, parts, pos, p2c) == 0


def test_global_mover_requires_rank_map(mesh):
    overlay = StructuredOverlay.build(mesh, 4)
    comm = SimComm(2)
    owner = partition("principal_direction", 2, centroids=mesh.centroids)
    meshes, plan = build_rank_meshes(mesh.c2c, owner, 2)
    with pytest.raises(ValueError):
        DirectHopGlobalMover(overlay, comm, plan, meshes)


def test_global_move_relocates_to_owner(mesh, rng):
    nranks = 2
    comm = SimComm(nranks)
    owner = partition("principal_direction", nranks,
                      centroids=mesh.centroids)
    meshes, plan = build_rank_meshes(mesh.c2c, owner, nranks)
    overlay = StructuredOverlay.build(mesh, 10).with_rank_map(owner)
    mover = DirectHopGlobalMover(overlay, comm, plan, meshes)

    # all particles start on rank 0; positions spread over the full duct
    pts = rng.uniform([0, 0, 0], [1, 1, 2], size=(60, 3))
    psets, p2cs, poss = [], [], []
    for r in range(nranks):
        cells = decl_set(meshes[r].n_local_cells)
        cells.owned_size = meshes[r].n_owned_cells
        n0 = 60 if r == 0 else 0
        parts = decl_particle_set(cells, n0)
        p2c = decl_map(parts, cells, 1,
                       np.zeros((n0, 1), dtype=int) if n0 else None)
        pos = decl_dat(parts, 3, np.float64, pts if n0 else None)
        psets.append(parts)
        p2cs.append(p2c)
        poss.append(pos)

    received = mover.global_move(psets, poss, p2cs,
                                 [[poss[r]] for r in range(nranks)])
    assert psets[0].size + psets[1].size == 60
    assert psets[1].size > 0              # some particles crossed
    assert received[1] is not None
    assert comm.stats.rma_ops > 0         # rank-map lookups went via RMA
    # every particle now sits on the rank the overlay says owns its bin
    for r in range(nranks):
        live = p2cs[r].p2c[: psets[r].size]
        assert (live >= 0).all()
        ranks = overlay.lookup_rank(poss[r].data[: psets[r].size])
        assert (ranks == r).all()


def test_overlay_memory_reported(mesh):
    comm = SimComm(4)
    owner = partition("principal_direction", 4, centroids=mesh.centroids)
    meshes, plan = build_rank_meshes(mesh.c2c, owner, 4)
    overlay = StructuredOverlay.build(mesh, 6).with_rank_map(owner)
    mover = DirectHopGlobalMover(overlay, comm, plan, meshes,
                                 ranks_per_node=2)
    # two node copies of (cell_map + rank_map)
    assert mover.overlay_nbytes == 2 * (overlay.cell_map.nbytes
                                        + overlay.rank_map.nbytes)
