"""Particle packing and migration between ranks."""
import numpy as np
import pytest

from repro.core.api import (OPP_READ, Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set)
from repro.core.move import MoveResult
from repro.runtime import (SimComm, build_rank_meshes, migrate,
                           mpi_particle_move, pack_particles)
from repro.runtime.exchange import unpack_particles


def test_pack_unpack_roundtrip(rng):
    cells = decl_set(4)
    p = decl_particle_set(cells, 6)
    a = decl_dat(p, 3, np.float64, rng.normal(size=(6, 3)))
    b = decl_dat(p, 1, np.float64, rng.normal(size=(6, 1)))
    rows = np.array([1, 4])
    buf = pack_particles([a, b], rows)
    assert buf.shape == (2, 4)

    cells2 = decl_set(4)
    q = decl_particle_set(cells2, 0)
    a2 = decl_dat(q, 3, np.float64)
    b2 = decl_dat(q, 1, np.float64)
    decl_map(q, cells2, 1, None)
    sl = q.add_particles(2, cell_indices=[0, 0])
    unpack_particles([a2, b2], sl, buf)
    np.testing.assert_allclose(a2.data, a.data[rows])
    np.testing.assert_allclose(b2.data, b.data[rows])


def _two_rank_chain(n_cells=6):
    """Global chain of cells split into two ranks."""
    c2c = np.array([[i - 1, i + 1 if i + 1 < n_cells else -1]
                    for i in range(n_cells)], dtype=np.int64)
    owner = (np.arange(n_cells) >= n_cells // 2).astype(np.int64)
    meshes, plan = build_rank_meshes(c2c, owner, 2)
    return c2c, owner, meshes, plan


def _declare_rank(rm, positions, start_cells_local):
    cells = decl_set(rm.n_local_cells)
    cells.owned_size = rm.n_owned_cells
    local_c2c = decl_map(cells, cells, 2, rm.local_c2c)
    parts = decl_particle_set(cells, len(positions))
    p2c = decl_map(parts, cells, 1,
                   np.asarray(start_cells_local).reshape(-1, 1))
    pos = decl_dat(parts, 1, np.float64, list(positions))
    return cells, local_c2c, parts, p2c, pos


def test_migrate_moves_rows():
    _, owner, meshes, plan = _two_rank_chain()
    comm = SimComm(2)
    # rank 0 has two particles; one flagged as foreign (landed in its halo
    # cell, owned by rank 1)
    r0 = _declare_rank(meshes[0], [2.9, 3.2], [2, 2])
    r1 = _declare_rank(meshes[1], [], [])
    res0 = MoveResult()
    halo_local = meshes[0].n_owned_cells  # first halo cell on rank 0
    res0.foreign_particles = np.array([1])
    res0.foreign_cells = np.array([halo_local])
    received = migrate(comm, plan, meshes, [r0[2], r1[2]],
                       [[r0[4]], [r1[4]]], [res0, None])
    assert r0[2].size == 1
    assert r1[2].size == 1
    assert received[1].tolist() == [0]
    assert r1[4].data[0, 0] == 3.2
    # the received particle's cell is the owner-local index of global cell 3
    g = meshes[0].cells_global[halo_local]
    assert r1[3].p2c[0] == plan.cell_home[g, 1]


def walk_kernel(move, p):
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_mpi_particle_move_end_to_end(backend):
    """Particles walk across the rank boundary (both directions) and out
    of the domain; final distribution must match the single-rank truth."""
    n_cells = 6
    c2c, owner, meshes, plan = _two_rank_chain(n_cells)
    comm = SimComm(2)
    # global walk kernel needs *global* cell coordinates; our local kernel
    # uses move.cell (local id), so positions are chosen per-rank such
    # that local cell index == global index on rank 0 and we use a
    # coordinate dat instead for rank 1.
    # Simpler: test with global-index-preserving layout — rank 0 owns
    # cells 0..2 (local ids equal global), rank 1 owns 3..5 (local id i
    # maps to global 3+i) so we walk in *local* coordinates by storing
    # positions relative to the local chain.
    # Use coordinate-translated positions for rank 1.
    ctxs = [Context(backend), Context(backend)]

    # rank 0 particles at 0.5 (stay), 4.5 (cross to rank 1), 9.0 (leaves)
    r0 = _declare_rank(meshes[0], [0.5, 4.5, 9.0], [0, 0, 0])
    # rank 1 particle at 1.5 (global cell 1 → crosses to rank 0);
    # rank-1-local cell 0 is global 3, so local coordinate of global 1.5
    # is 1.5 (walk kernel uses local ids: local cell c covers [c, c+1) in
    # *local* coordinates) — translate: global x → local x - 3
    r1 = _declare_rank(meshes[1], [1.5 - 3.0], [0])
    # positions on rank 1 are in local coordinates; after migration to
    # rank 0 the walk continues with rank-0-local coordinates, which for
    # this two-slab chain differ — to keep the test well-posed both ranks
    # use the same local span (halo cells extend the range walked).
    results = mpi_particle_move(
        comm, plan, meshes, ctxs, walk_kernel, "walk",
        [r0[2], r1[2]], [r0[1], r1[1]], [r0[3], r1[3]],
        [[arg_dat(r0[4], OPP_READ)], [arg_dat(r1[4], OPP_READ)]],
        [[r0[4]], [r1[4]]])
    # the 9.0 particle leaves through the end of the chain
    assert sum(r.n_removed for r in results) >= 1
    # no particle left in limbo: all live particles sit in owned cells
    for rm, r in ((meshes[0], r0), (meshes[1], r1)):
        live = r[3].p2c[: r[2].size]
        assert (live >= 0).all()
        assert (live < rm.n_owned_cells).all()
