"""Partitioners: balance, coverage, quality ordering."""
import numpy as np
import pytest

from repro.mesh import duct_mesh
from repro.runtime import edge_cut, partition


@pytest.fixture(scope="module")
def mesh():
    return duct_mesh(3, 3, 8, 1.0, 1.0, 3.0)


ALL = ["block", "principal_direction", "rcb", "graph", "spectral"]


@pytest.mark.parametrize("method", ALL)
@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_every_cell_assigned_and_balanced(mesh, method, nranks):
    owner = partition(method, nranks, centroids=mesh.centroids,
                      c2c=mesh.c2c, n_cells=mesh.n_cells)
    assert owner.shape == (mesh.n_cells,)
    counts = np.bincount(owner, minlength=nranks)
    assert counts.sum() == mesh.n_cells
    assert (counts > 0).all()
    # balance within 2x of ideal (graph bisection for odd counts is loose)
    assert counts.max() <= 2.0 * mesh.n_cells / nranks


def test_principal_direction_is_slabs(mesh):
    owner = partition("principal_direction", 4, centroids=mesh.centroids)
    z = mesh.centroids[:, 2]
    # cells of rank 0 are all below cells of rank 3
    assert z[owner == 0].max() <= z[owner == 3].min() + 1e-12


def test_principal_direction_beats_block_on_cut(mesh):
    pd = partition("principal_direction", 4, centroids=mesh.centroids)
    blk = partition("block", 4, n_cells=mesh.n_cells)
    assert edge_cut(mesh.c2c, pd) <= edge_cut(mesh.c2c, blk)


def test_graph_partition_cut_reasonable(mesh):
    g = partition("graph", 2, c2c=mesh.c2c)
    pd = partition("principal_direction", 2, centroids=mesh.centroids)
    # KL bisection should be within a small factor of the slab cut
    assert edge_cut(mesh.c2c, g) <= 3 * edge_cut(mesh.c2c, pd)


def test_rcb_splits_longest_axis(mesh):
    owner = partition("rcb", 2, centroids=mesh.centroids)
    z = mesh.centroids[:, 2]
    assert z[owner == 0].mean() < z[owner == 1].mean()


def test_spectral_finds_slab_cut(mesh):
    """On a duct, the optimal bisection is a cross-sectional slab; the
    Fiedler vector must find it (cut equal to the slab partitioners')."""
    from repro.runtime import edge_cut, partition as part
    sp = part("spectral", 2, c2c=mesh.c2c)
    pd = part("principal_direction", 2, centroids=mesh.centroids)
    assert edge_cut(mesh.c2c, sp) <= edge_cut(mesh.c2c, pd)


def test_single_rank_trivial(mesh):
    owner = partition("rcb", 1, centroids=mesh.centroids)
    assert (owner == 0).all()


def test_unknown_method():
    with pytest.raises(ValueError):
        partition("metis5", 2, n_cells=10)


def test_missing_inputs_raise():
    with pytest.raises(ValueError):
        partition("rcb", 2)
    with pytest.raises(ValueError):
        partition("graph", 2)
    with pytest.raises(ValueError):
        partition("rcb", 0, centroids=np.zeros((3, 3)))


# -- diffusive (the elastic runtime's incremental repartitioner) --------------

def test_diffusive_covers_and_respects_layers(mesh):
    from repro.runtime import diffusive
    owner = diffusive(mesh.centroids, 4)
    counts = np.bincount(owner, minlength=4)
    assert counts.sum() == mesh.n_cells
    assert (counts > 0).all()
    # layers (equal z) are atomic: one owner per layer
    z = mesh.centroids[:, 2]
    for layer in np.unique(z):
        assert np.unique(owner[z == layer]).size == 1
    # slabs in key order: rank boundaries are monotone along z
    assert (np.diff(owner[np.argsort(z, kind="stable")]) >= 0).all()


def test_diffusive_weights_shift_boundaries(mesh):
    from repro.runtime import diffusive
    uniform = diffusive(mesh.centroids, 3)
    # load the low-z half → rank 0's slab shrinks toward low z
    w = np.where(mesh.centroids[:, 2] < 1.5, 10.0, 1.0)
    skew = diffusive(mesh.centroids, 3, weights=w)
    assert not np.array_equal(uniform, skew)
    z = mesh.centroids[:, 2]
    assert z[skew == 0].max() < z[uniform == 0].max()


def test_diffusive_is_incremental(mesh):
    """A small weight change only moves cells near a slab boundary."""
    from repro.runtime import diffusive, migration_volume
    w = np.ones(mesh.n_cells)
    before = diffusive(mesh.centroids, 4, weights=w)
    w[mesh.centroids[:, 2] < 0.5] = 1.3
    after = diffusive(mesh.centroids, 4, weights=w)
    # boundaries shift by whole layers; most cells keep their owner
    moved = migration_volume(before, after)
    assert 0 < moved <= mesh.n_cells / 4


def test_diffusive_needs_one_layer_per_rank():
    from repro.runtime import diffusive
    cent = np.zeros((6, 3))
    cent[:, 2] = [0, 0, 1, 1, 2, 2]      # 3 layers
    assert np.bincount(diffusive(cent, 3)).tolist() == [2, 2, 2]
    with pytest.raises(ValueError):
        diffusive(cent, 4)


def test_diffusive_custom_keys_group_cells(mesh):
    from repro.runtime import diffusive
    # quantized keys: every cell with the same key stays together even
    # when that merges several geometric layers
    keys = (mesh.centroids[:, 2] // 1.0).astype(np.int64)
    owner = diffusive(mesh.centroids, 2, keys=keys)
    for k in np.unique(keys):
        assert np.unique(owner[keys == k]).size == 1


def test_diffusive_rejects_bad_weights(mesh):
    from repro.runtime import diffusive
    with pytest.raises(ValueError):
        diffusive(mesh.centroids, 2, weights=np.ones(3))
    with pytest.raises(ValueError):
        diffusive(mesh.centroids, 2,
                  weights=-np.ones(mesh.n_cells))


def test_partition_dispatches_diffusive(mesh):
    owner = partition("diffusive", 3, centroids=mesh.centroids)
    from repro.runtime import diffusive
    np.testing.assert_array_equal(owner, diffusive(mesh.centroids, 3))


def test_migration_volume():
    from repro.runtime import migration_volume
    before = np.array([0, 0, 1, 1])
    after = np.array([0, 1, 1, 0])
    assert migration_volume(before, after) == 2.0
    assert migration_volume(before, before) == 0.0
    w = np.array([1.0, 10.0, 1.0, 100.0])
    assert migration_volume(before, after, w) == 110.0
    with pytest.raises(ValueError):
        migration_volume(before, after[:2])
    with pytest.raises(ValueError):
        migration_volume(before, after, w[:2])
