"""Partitioners: balance, coverage, quality ordering."""
import numpy as np
import pytest

from repro.mesh import duct_mesh
from repro.runtime import edge_cut, partition


@pytest.fixture(scope="module")
def mesh():
    return duct_mesh(3, 3, 8, 1.0, 1.0, 3.0)


ALL = ["block", "principal_direction", "rcb", "graph", "spectral"]


@pytest.mark.parametrize("method", ALL)
@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_every_cell_assigned_and_balanced(mesh, method, nranks):
    owner = partition(method, nranks, centroids=mesh.centroids,
                      c2c=mesh.c2c, n_cells=mesh.n_cells)
    assert owner.shape == (mesh.n_cells,)
    counts = np.bincount(owner, minlength=nranks)
    assert counts.sum() == mesh.n_cells
    assert (counts > 0).all()
    # balance within 2x of ideal (graph bisection for odd counts is loose)
    assert counts.max() <= 2.0 * mesh.n_cells / nranks


def test_principal_direction_is_slabs(mesh):
    owner = partition("principal_direction", 4, centroids=mesh.centroids)
    z = mesh.centroids[:, 2]
    # cells of rank 0 are all below cells of rank 3
    assert z[owner == 0].max() <= z[owner == 3].min() + 1e-12


def test_principal_direction_beats_block_on_cut(mesh):
    pd = partition("principal_direction", 4, centroids=mesh.centroids)
    blk = partition("block", 4, n_cells=mesh.n_cells)
    assert edge_cut(mesh.c2c, pd) <= edge_cut(mesh.c2c, blk)


def test_graph_partition_cut_reasonable(mesh):
    g = partition("graph", 2, c2c=mesh.c2c)
    pd = partition("principal_direction", 2, centroids=mesh.centroids)
    # KL bisection should be within a small factor of the slab cut
    assert edge_cut(mesh.c2c, g) <= 3 * edge_cut(mesh.c2c, pd)


def test_rcb_splits_longest_axis(mesh):
    owner = partition("rcb", 2, centroids=mesh.centroids)
    z = mesh.centroids[:, 2]
    assert z[owner == 0].mean() < z[owner == 1].mean()


def test_spectral_finds_slab_cut(mesh):
    """On a duct, the optimal bisection is a cross-sectional slab; the
    Fiedler vector must find it (cut equal to the slab partitioners')."""
    from repro.runtime import edge_cut, partition as part
    sp = part("spectral", 2, c2c=mesh.c2c)
    pd = part("principal_direction", 2, centroids=mesh.centroids)
    assert edge_cut(mesh.c2c, sp) <= edge_cut(mesh.c2c, pd)


def test_single_rank_trivial(mesh):
    owner = partition("rcb", 1, centroids=mesh.centroids)
    assert (owner == 0).all()


def test_unknown_method():
    with pytest.raises(ValueError):
        partition("metis5", 2, n_cells=10)


def test_missing_inputs_raise():
    with pytest.raises(ValueError):
        partition("rcb", 2)
    with pytest.raises(ValueError):
        partition("graph", 2)
    with pytest.raises(ValueError):
        partition("rcb", 0, centroids=np.zeros((3, 3)))
