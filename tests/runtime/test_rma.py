"""Simulated MPI-RMA windows."""
import numpy as np

from repro.runtime import RMAWindow, SimComm


def test_get_counts_traffic():
    comm = SimComm(4)
    win = RMAWindow(np.arange(10), comm)
    out = win.get(2, np.array([1, 3, 5]))
    np.testing.assert_array_equal(out, [1, 3, 5])
    assert comm.stats.rma_ops == 1
    assert comm.stats.rma_bytes == 24


def test_one_copy_per_node():
    comm = SimComm(4)
    win = RMAWindow(np.arange(8), comm, ranks_per_node=2)
    assert win.nbytes_total == 2 * 8 * 8   # two node copies of 8 int64
    assert win.node_of(0) == 0
    assert win.node_of(3) == 1


def test_put_updates_every_copy():
    comm = SimComm(4)
    win = RMAWindow(np.zeros(4), comm, ranks_per_node=2)
    win.put(0, np.array([1]), np.array([9.0]))
    assert win.get(3, np.array([1]))[0] == 9.0


def test_accumulate_sums_duplicates():
    comm = SimComm(2)
    win = RMAWindow(np.zeros(3), comm)
    win.accumulate(0, np.array([1, 1, 2]), np.array([1.0, 2.0, 5.0]))
    np.testing.assert_array_equal(win.read_full(0), [0.0, 3.0, 5.0])


def test_fence_counts_collective():
    comm = SimComm(2)
    win = RMAWindow(np.zeros(2), comm)
    win.fence()
    win.fence()
    assert comm.stats.collectives == 2


def test_read_full_is_local():
    comm = SimComm(2)
    win = RMAWindow(np.arange(5), comm)
    before = comm.stats.rma_ops
    win.read_full(1)
    assert comm.stats.rma_ops == before
