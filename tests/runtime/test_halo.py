"""Halo construction and exchange: local numbering invariants, push and
reduce round trips."""
import numpy as np
import pytest

from repro.core.api import decl_dat, decl_set
from repro.mesh import duct_mesh
from repro.runtime import (SimComm, build_rank_meshes, partition,
                           push_cell_halos, push_node_halos,
                           reduce_cell_halos, reduce_node_halos)


@pytest.fixture(scope="module")
def world():
    mesh = duct_mesh(2, 2, 6, 1.0, 1.0, 2.0)
    owner = partition("principal_direction", 3, centroids=mesh.centroids)
    meshes, plan = build_rank_meshes(mesh.c2c, owner, 3,
                                     c2n=mesh.cell2node)
    return mesh, owner, meshes, plan


def test_owned_cells_partition_the_mesh(world):
    mesh, owner, meshes, _ = world
    owned = np.concatenate([rm.cells_global[: rm.n_owned_cells]
                            for rm in meshes])
    assert sorted(owned.tolist()) == list(range(mesh.n_cells))


def test_halo_cells_are_neighbours_of_owned(world):
    mesh, owner, meshes, _ = world
    for rm in meshes:
        owned = set(rm.cells_global[: rm.n_owned_cells].tolist())
        for g in rm.cells_global[rm.n_owned_cells:]:
            neighbours = set(mesh.c2c[g].tolist())
            assert neighbours & owned, "halo cell not adjacent to owned"


def test_local_c2c_consistent(world):
    mesh, owner, meshes, _ = world
    for rm in meshes:
        for loc in range(rm.n_owned_cells):
            g = rm.cells_global[loc]
            for a in range(4):
                gn = mesh.c2c[g, a]
                ln = rm.local_c2c[loc, a]
                if gn == -1:
                    assert ln == -1
                else:
                    assert ln >= 0
                    assert rm.cells_global[ln] == gn


def test_foreign_mask_marks_halo_only(world):
    _, _, meshes, _ = world
    for rm in meshes:
        assert not rm.foreign_cell_mask[: rm.n_owned_cells].any()
        assert rm.foreign_cell_mask[rm.n_owned_cells:].all()


def test_node_ownership_unique_and_complete(world):
    mesh, _, meshes, _ = world
    owned = np.concatenate([rm.nodes_global[: rm.n_owned_nodes]
                            for rm in meshes])
    assert sorted(owned.tolist()) == list(range(mesh.n_nodes))


def test_local_c2n_covers_all_local_cells(world):
    mesh, _, meshes, _ = world
    for rm in meshes:
        assert (rm.local_c2n >= 0).all()
        for loc in range(rm.n_local_cells):
            g = rm.cells_global[loc]
            np.testing.assert_array_equal(
                rm.nodes_global[rm.local_c2n[loc]], mesh.cell2node[g])


def test_push_cell_halos_refreshes_ghosts(world):
    mesh, _, meshes, plan = world
    comm = SimComm(3)
    dats = []
    for rm in meshes:
        s = decl_set(rm.n_local_cells)
        d = decl_dat(s, 1, np.float64)
        d.data[: rm.n_owned_cells, 0] = \
            rm.cells_global[: rm.n_owned_cells].astype(float)
        dats.append(d)
    push_cell_halos(dats, plan, comm)
    for rm, d in zip(meshes, dats):
        np.testing.assert_allclose(d.data[:, 0],
                                   rm.cells_global.astype(float))


def test_push_node_halos_refreshes_ghosts(world):
    mesh, _, meshes, plan = world
    comm = SimComm(3)
    dats = []
    for rm in meshes:
        s = decl_set(rm.n_local_nodes)
        d = decl_dat(s, 1, np.float64)
        d.data[: rm.n_owned_nodes, 0] = \
            rm.nodes_global[: rm.n_owned_nodes].astype(float)
        dats.append(d)
    push_node_halos(dats, plan, comm)
    for rm, d in zip(meshes, dats):
        np.testing.assert_allclose(d.data[:, 0],
                                   rm.nodes_global.astype(float))


def test_reduce_node_halos_accumulates_to_owner(world):
    """Every rank deposits 1 per local reference of each node; reduction
    must equal the global reference counts (node valence)."""
    mesh, _, meshes, plan = world
    comm = SimComm(3)
    dats = []
    for rm in meshes:
        s = decl_set(rm.n_local_nodes)
        d = decl_dat(s, 1, np.float64)
        # deposit from owned cells only (owner-compute)
        np.add.at(d.data[:, 0], rm.local_c2n[: rm.n_owned_cells].ravel(),
                  1.0)
        dats.append(d)
    reduce_node_halos(dats, plan, comm)
    global_counts = np.bincount(mesh.cell2node.ravel(),
                                minlength=mesh.n_nodes)
    for rm, d in zip(meshes, dats):
        own = rm.nodes_global[: rm.n_owned_nodes]
        np.testing.assert_allclose(d.data[: rm.n_owned_nodes, 0],
                                   global_counts[own])
        # ghosts zeroed
        assert (d.data[rm.n_owned_nodes:, 0] == 0).all()


def test_reduce_cell_halos_accumulates_to_owner(world):
    mesh, owner, meshes, plan = world
    comm = SimComm(3)
    dats = []
    for rm in meshes:
        s = decl_set(rm.n_local_cells)
        d = decl_dat(s, 1, np.float64)
        d.data[:, 0] = 1.0   # one unit everywhere, including ghosts
        dats.append(d)
    reduce_cell_halos(dats, plan, comm)
    # each owned cell gains 1 per rank that ghosts it
    ghost_count = np.zeros(mesh.n_cells)
    for rm in meshes:
        for g in rm.cells_global[rm.n_owned_cells:]:
            ghost_count[g] += 1
    for rm, d in zip(meshes, dats):
        own = rm.cells_global[: rm.n_owned_cells]
        np.testing.assert_allclose(d.data[: rm.n_owned_cells, 0],
                                   1.0 + ghost_count[own])


def test_invalid_owner_vector(world):
    mesh, _, _, _ = world
    with pytest.raises(ValueError):
        build_rank_meshes(mesh.c2c, np.zeros(3, dtype=int), 2)
    bad = np.zeros(mesh.n_cells, dtype=int)
    bad[0] = 7
    with pytest.raises(ValueError):
        build_rank_meshes(mesh.c2c, bad, 2)
