"""Unit tests for the benchmark regression gate itself.

``check_regression.py`` guards every perf claim in CI, so its own
direction logic (bool/equal/higher/lower and the ratio floor the sparse
gate rides on) needs pinning too.
"""
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import check_regression as cr  # noqa: E402


def payload(metrics, gates=None, **extra):
    p = {"metrics": metrics}
    if gates is not None:
        p["gates"] = gates
    p.update(extra)
    return p


# -- direction: bool ---------------------------------------------------------

def test_bool_gate_passes_on_true():
    base = payload({}, gates=[{"metric": "ok", "direction": "bool"}])
    assert cr.compare(base, payload({"ok": True}), 0.25) == []


def test_bool_gate_fails_on_false_and_truthy_nonbool():
    base = payload({}, gates=[{"metric": "ok", "direction": "bool"}])
    assert cr.compare(base, payload({"ok": False}), 0.25)
    # `1 is not True` — the gate demands a genuine boolean
    assert cr.compare(base, payload({"ok": 1}), 0.25)


# -- direction: equal --------------------------------------------------------

def test_equal_gate_is_exact_regardless_of_tolerance():
    base = payload({"n": 42}, gates=[{"metric": "n", "direction": "equal"}])
    assert cr.compare(base, payload({"n": 42}), 0.5) == []
    assert cr.compare(base, payload({"n": 43}), 0.5)


# -- directions: higher / lower ---------------------------------------------

def test_higher_gate_tolerance_window():
    base = payload({"speedup": 2.0},
                   gates=[{"metric": "speedup", "direction": "higher"}])
    assert cr.compare(base, payload({"speedup": 1.6}), 0.25) == []
    assert cr.compare(base, payload({"speedup": 1.4}), 0.25)


def test_lower_gate_tolerance_window():
    base = payload({"seconds": 1.0},
                   gates=[{"metric": "seconds", "direction": "lower"}])
    assert cr.compare(base, payload({"seconds": 1.2}), 0.25) == []
    assert cr.compare(base, payload({"seconds": 1.3}), 0.25)


def test_per_gate_tolerance_overrides_global():
    base = payload({"speedup": 2.0},
                   gates=[{"metric": "speedup", "direction": "higher",
                           "tolerance": 0.0}])
    assert cr.compare(base, payload({"speedup": 1.99}), 0.9)


def test_missing_metric_and_unknown_direction_fail():
    base = payload({"x": 1.0},
                   gates=[{"metric": "x", "direction": "higher"}])
    assert cr.compare(base, payload({}), 0.25)
    base = payload({"x": 1.0},
                   gates=[{"metric": "x", "direction": "sideways"}])
    assert cr.compare(base, payload({"x": 1.0}), 0.25)


# -- direction: min_ratio ----------------------------------------------------

def ratio_gate(minimum, tolerance=None):
    g = {"direction": "min_ratio", "numerator": "seconds.slow",
         "denominator": "seconds.fast", "min": minimum}
    if tolerance is not None:
        g["tolerance"] = tolerance
    return g


def test_min_ratio_passes_at_and_above_floor():
    base = payload({}, gates=[ratio_gate(2.0)])
    cur = payload({}, seconds={"slow": 2.0, "fast": 1.0})
    assert cr.compare(base, cur, 0.25) == []
    cur = payload({}, seconds={"slow": 5.0, "fast": 1.0})
    assert cr.compare(base, cur, 0.25) == []


def test_min_ratio_fails_below_floor():
    base = payload({}, gates=[ratio_gate(2.0)])
    cur = payload({}, seconds={"slow": 1.9, "fast": 1.0})
    failures = cr.compare(base, cur, 0.25)
    assert failures and "ratio" in failures[0]


def test_min_ratio_ignores_global_tolerance_but_honours_gate_tolerance():
    # the absolute floor must not be widened by the CLI-wide tolerance
    base = payload({}, gates=[ratio_gate(2.0)])
    cur = payload({}, seconds={"slow": 1.9, "fast": 1.0})
    assert cr.compare(base, cur, 0.9)
    # ... a per-gate tolerance does widen it
    base = payload({}, gates=[ratio_gate(2.0, tolerance=0.1)])
    assert cr.compare(base, cur, 0.25) == []


def test_min_ratio_missing_or_zero_keys_fail():
    base = payload({}, gates=[ratio_gate(2.0)])
    assert cr.compare(base, payload({}), 0.25)
    cur = payload({}, seconds={"slow": 2.0})
    assert cr.compare(base, cur, 0.25)
    cur = payload({}, seconds={"slow": 2.0, "fast": 0.0})
    failures = cr.compare(base, cur, 0.25)
    assert failures and "zero" in failures[0]


def test_lookup_path_walks_nested_dicts():
    data = {"a": {"b": {"c": 3.5}}, "flat": 1}
    assert cr.lookup_path(data, "a.b.c") == 3.5
    assert cr.lookup_path(data, "flat") == 1
    assert cr.lookup_path(data, "a.b.missing") is None
    assert cr.lookup_path(data, "a.b.c.d") is None


# -- CLI ---------------------------------------------------------------------

def test_parse_min_ratio_spec():
    g = cr.parse_min_ratio("seconds.slow/seconds.fast=2.0")
    assert g == {"direction": "min_ratio", "numerator": "seconds.slow",
                 "denominator": "seconds.fast", "min": 2.0}
    with pytest.raises(Exception):
        cr.parse_min_ratio("no-equals-sign")


def _write(tmp_path, name, data):
    p = tmp_path / name
    p.write_text(json.dumps(data))
    return str(p)


def test_main_min_ratio_cli_gate(tmp_path, capsys):
    base = _write(tmp_path, "base.json", payload({}))
    good = _write(tmp_path, "good.json",
                  payload({}, seconds={"slow": 4.0, "fast": 1.0}))
    bad = _write(tmp_path, "bad.json",
                 payload({}, seconds={"slow": 1.5, "fast": 1.0}))
    spec = "--min-ratio=seconds.slow/seconds.fast=2.0"
    assert cr.main([base, good, spec]) == 0
    assert cr.main([base, bad, spec]) == 1
    err = capsys.readouterr().err
    assert "ratio" in err


def test_main_baseline_gates_end_to_end(tmp_path):
    base = _write(tmp_path, "base.json",
                  payload({"speedup": 2.0},
                          gates=[{"metric": "speedup",
                                  "direction": "higher"},
                                 ratio_gate(2.0)]))
    cur = _write(tmp_path, "cur.json",
                 payload({"speedup": 2.1},
                         seconds={"slow": 3.0, "fast": 1.0}))
    assert cr.main([base, cur]) == 0


# -- direction: max_value ----------------------------------------------------

def value_gate(ceiling, **extra):
    g = {"direction": "max_value", "path": "latency.p99",
         "max": ceiling}
    g.update(extra)
    return g


def test_max_value_passes_at_and_below_ceiling():
    base = payload({}, gates=[value_gate(2.0)])
    assert cr.compare(base, payload({}, latency={"p99": 2.0}), 0.25) == []
    assert cr.compare(base, payload({}, latency={"p99": 0.1}), 0.25) == []


def test_max_value_fails_above_ceiling():
    base = payload({}, gates=[value_gate(2.0)])
    failures = cr.compare(base, payload({}, latency={"p99": 2.01}), 0.25)
    assert failures and "ceiling" in failures[0]


def test_max_value_ignores_global_tolerance_but_honours_gate_tolerance():
    # global tolerance must NOT relax the absolute ceiling
    base = payload({}, gates=[value_gate(2.0)])
    assert cr.compare(base, payload({}, latency={"p99": 2.4}), 0.5)
    # per-gate tolerance does: 2.0 * 1.5 = 3.0
    base = payload({}, gates=[value_gate(2.0, tolerance=0.5)])
    assert cr.compare(base, payload({}, latency={"p99": 2.9}), 0.0) == []
    assert cr.compare(base, payload({}, latency={"p99": 3.1}), 0.0)


def test_max_value_missing_or_non_numeric_path_fails():
    base = payload({}, gates=[value_gate(2.0)])
    assert cr.compare(base, payload({}), 0.25)
    cur = payload({}, latency={"p99": True})
    assert cr.compare(base, cur, 0.25)
    cur = payload({}, latency={"p99": "fast"})
    assert cr.compare(base, cur, 0.25)


def test_parse_max_value_spec():
    g = cr.parse_max_value("latency.p99=2.5")
    assert g == {"direction": "max_value", "path": "latency.p99",
                 "max": 2.5}
    with pytest.raises(Exception):
        cr.parse_max_value("no-equals-sign")
    with pytest.raises(Exception):
        cr.parse_max_value("=3.0")


def test_main_max_value_cli_gate(tmp_path, capsys):
    base = _write(tmp_path, "base.json", payload({}))
    good = _write(tmp_path, "good.json", payload({}, latency={"p99": 1.0}))
    bad = _write(tmp_path, "bad.json", payload({}, latency={"p99": 9.0}))
    spec = "--max-value=latency.p99=2.0"
    assert cr.main([base, good, spec]) == 0
    assert cr.main([base, bad, spec]) == 1
    assert "ceiling" in capsys.readouterr().err
