"""Shared fixtures.

Kernel constants (``CONST``) are process-global (mirroring
``opp_decl_const``); tests that declare constants must not leak into each
other, so every test runs against a snapshot-restored registry.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import CONST


@pytest.fixture(autouse=True)
def _isolate_constants():
    saved = CONST.snapshot()
    yield
    CONST.clear()
    for k, v in saved.items():
        CONST.declare(k, v)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def pytest_addoption(parser):
    parser.addoption("--slow", action="store_true", default=False,
                     help="run slow tests")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip = pytest.mark.skip(reason="slow test: pass --slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
