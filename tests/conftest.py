"""Shared fixtures.

Kernel constants (``CONST``) are process-global (mirroring
``opp_decl_const``); tests that declare constants must not leak into each
other, so every test runs against a snapshot-restored registry.

Randomness policy: the legacy ``np.random`` global state is seeded
per-test from the test's node id, so any test that (directly or through
library code) touches the global RNG is reproducible in isolation and
independent of execution order.  The seed is echoed in the failure
report, and conformance failures additionally surface their shrunk
minimal case there.
"""
from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.kernel import CONST


@pytest.fixture(autouse=True)
def _isolate_constants():
    saved = CONST.snapshot()
    yield
    CONST.clear()
    for k, v in saved.items():
        CONST.declare(k, v)


def _seed_for(nodeid: str) -> int:
    return zlib.crc32(nodeid.encode())


@pytest.fixture(autouse=True)
def _seed_global_rng(request):
    seed = _seed_for(request.node.nodeid)
    np.random.seed(seed)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def pytest_addoption(parser):
    parser.addoption("--slow", action="store_true", default=False,
                     help="run slow tests")
    parser.addoption("--physics", action="store_true", default=False,
                     help="run full-length physics gate tests")
    parser.addoption("--conformance-cases", action="store", default=25,
                     type=int,
                     help="randomized cases per backend in the "
                          "differential conformance sweep")


def pytest_collection_modifyitems(config, items):
    run_slow = config.getoption("--slow")
    run_physics = config.getoption("--physics")
    skip_slow = pytest.mark.skip(reason="slow test: pass --slow to run")
    skip_physics = pytest.mark.skip(
        reason="physics gate test: pass --physics to run")
    for item in items:
        if not run_slow and "slow" in item.keywords:
            item.add_marker(skip_slow)
        if not run_physics and "physics" in item.keywords:
            item.add_marker(skip_physics)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
    config.addinivalue_line(
        "markers",
        "conformance: differential backend-conformance suite "
        "(run alone with -m conformance)")
    config.addinivalue_line(
        "markers",
        "physics: full-length physics gate run against closed-form "
        "theory (run with --physics or -m physics --physics)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    report.sections.append(
        ("rng", f"np.random seeded with {_seed_for(item.nodeid)} "
                f"(crc32 of {item.nodeid!r})"))
    exc = getattr(call.excinfo, "value", None)
    shrunk = getattr(exc, "shrunk", None)
    if shrunk is not None:
        report.sections.append(
            ("conformance shrunk case", shrunk.signature()))
