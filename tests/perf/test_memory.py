"""Memory-footprint accounting."""

from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.perf import memory_report


def test_fempic_memory_report():
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(move_strategy="dh"))
    sim.seed_uniform_plasma(50)
    sim.run(2)
    rep = memory_report(sim)
    assert rep.total > 0
    assert rep.mesh_dats > 0
    assert rep.particle_dats > 0
    assert rep.maps > 0
    assert rep.overlay > 0           # DH bookkeeping is visible
    kinds = {k for _, k, _ in rep.rows}
    assert "particle dat" in kinds and "mesh dat" in kinds
    text = rep.report()
    assert "TOTAL" in text and "DH bookkeeping" in text
    # rows sorted by size
    sizes = [n for _, _, n in rep.rows]
    assert sizes == sorted(sizes, reverse=True)


def test_exact_dat_accounting():
    sim = FemPicSimulation(FemPicConfig.smoke())
    rep = memory_report(sim)
    # the 12-wide xform dat over all cells is 12*8 bytes per cell
    xf = next(n for name, _, n in rep.rows if name == "xform")
    assert xf == sim.mesh.n_cells * 12 * 8
    assert rep.overlay == 0          # MH run: no DH bookkeeping


def test_plan_cache_counted():
    sim = FemPicSimulation(FemPicConfig.smoke())
    sim.run(2)                       # vec backend builds mesh-loop plans
    rep = memory_report(sim)
    assert rep.plan_cache > 0
