"""Power-equivalent sizing (Table 2 → 18/8/5 split) and the utilization
model (Table 1 shape)."""
import pytest

from repro.perf import CLUSTERS, PAPER_BUDGET, PowerBudget, \
    power_equivalent_nodes, utilization


def test_paper_power_split():
    """12 kW: 18 ARCHER2 nodes vs 8 Bede nodes vs 5 LUMI-G nodes."""
    nodes = power_equivalent_nodes(PAPER_BUDGET)
    assert nodes["archer2"] == 18
    assert nodes["bede"] == 8
    assert nodes["lumi-g"] == 5


def test_device_counts():
    assert PAPER_BUDGET.devices_for(CLUSTERS["bede"]) == 32      # V100s
    assert PAPER_BUDGET.devices_for(CLUSTERS["lumi-g"]) == 40    # GCDs


def test_budget_floor_is_one_node():
    tiny = PowerBudget(watts=10.0)
    assert tiny.nodes_for(CLUSTERS["archer2"]) == 1


def test_single_device_full_utilization():
    u = utilization([1.0], [0], [0.0], CLUSTERS["bede"])
    assert u == pytest.approx(1.0)


def test_comm_reduces_utilization():
    c = CLUSTERS["bede"]
    u1 = utilization([1.0, 1.0], [0, 0], [0.0, 0.0], c)
    u2 = utilization([1.0, 1.0], [1000, 1000], [10e9, 10e9], c)
    assert u2 < u1 == pytest.approx(1.0)


def test_imbalance_reduces_utilization():
    c = CLUSTERS["lumi-g"]
    balanced = utilization([1.0, 1.0], [0, 0], [0.0, 0.0], c)
    skewed = utilization([1.0, 0.5], [0, 0], [0.0, 0.0], c)
    assert skewed < balanced


def test_more_work_per_byte_raises_utilization():
    """Table 1: CabanaPIC 144M particles utilizes better than 72M on the
    same device count (more compute per halo byte)."""
    c = CLUSTERS["lumi-g"]
    small = utilization([0.5] * 8, [100] * 8, [1e8] * 8, c)
    big = utilization([1.0] * 8, [100] * 8, [1e8] * 8, c)
    assert big > small


def test_utilization_input_validation():
    with pytest.raises(ValueError):
        utilization([], [], [], CLUSTERS["bede"])
    with pytest.raises(ValueError):
        utilization([1.0], [1, 2], [0.0, 1.0], CLUSTERS["bede"])
