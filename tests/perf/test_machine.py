"""Machine catalogue and the kernel-time model: the qualitative facts the
paper reports must hold in the model."""
import pytest

from repro.perf import CLUSTERS, MACHINES, comm_time, kernel_time
from repro.perf.timers import LoopStats


def deposit_stats(collisions=10_000):
    # default collision depth: the Mini-FEM-PIC DepositCharge regime —
    # node targets shared by ~24 tets at ~1450 particles per cell
    return LoopStats("DepositCharge", calls=250, n_total=250 * 70_000,
                     flops=250 * 70_000 * 30,
                     nbytes=250 * 70_000 * 100,
                     indirect_inc=True, max_collisions=collisions)


def stream_stats():
    # particle-scale streaming: ~2 GB touched per call (beyond any L3)
    return LoopStats("CalcPosVel", calls=250, n_total=250 * 20_000_000,
                     flops=250 * 20_000_000 * 15,
                     nbytes=250 * 20_000_000 * 100)


def test_catalogue_contains_paper_devices():
    for key in ("xeon_8268", "epyc_7742", "v100", "h100", "mi210",
                "mi250x_gcd"):
        assert key in MACHINES
    for key in ("avon", "archer2", "bede", "lumi-g"):
        assert key in CLUSTERS


def test_amd_safe_atomics_over_200x_slower():
    """Paper §4.1.1: AT on AMD GPUs >200× slower than UA or SR."""
    m = MACHINES["mi250x_gcd"]
    st = deposit_stats()
    at = kernel_time(st, m, "atomics")
    ua = kernel_time(st, m, "unsafe_atomics")
    sr = kernel_time(st, m, "segmented_reduction")
    assert at / ua > 200
    assert at / sr > 200


def test_amd_unsafe_marginally_beats_segmented():
    """Paper: UA gives a marginal improvement over SR — stated for
    Mini-FEM-PIC's DepositCharge, where node targets are shared by many
    tets so collision depth far exceeds the particles-per-cell count."""
    m = MACHINES["mi250x_gcd"]
    st = deposit_stats(collisions=10_000)
    ua = kernel_time(st, m, "unsafe_atomics")
    sr = kernel_time(st, m, "segmented_reduction")
    assert ua < sr < 2.0 * ua


def test_nvidia_atomics_not_pathological():
    """Paper: NVIDIA hardware atomics are well implemented."""
    m = MACHINES["v100"]
    st = deposit_stats()
    at = kernel_time(st, m, "atomics")
    sr = kernel_time(st, m, "segmented_reduction")
    assert at < 3.0 * sr


def test_streaming_kernel_faster_on_gpu():
    st = stream_stats()
    t_cpu = kernel_time(st, MACHINES["epyc_7742"])
    t_gpu = kernel_time(st, MACHINES["mi250x_gcd"])
    assert t_gpu < t_cpu


def test_divergence_penalty_applies_on_gpu_only():
    st = stream_stats()
    st.extras["branches"] = 4
    plain = stream_stats()
    m = MACHINES["v100"]
    assert kernel_time(st, m) > kernel_time(plain, m)
    c = MACHINES["xeon_8268"]
    assert kernel_time(st, c) == pytest.approx(kernel_time(plain, c))


def test_l3_bandwidth_used_for_small_working_sets():
    small = LoopStats("kernel", calls=1, n_total=1000, flops=1000.0,
                      nbytes=1_000_000)          # 1 MB << L3
    big = LoopStats("kernel", calls=1, n_total=10**7, flops=1e7,
                    nbytes=10**9)                # 1 GB >> L3
    m = MACHINES["xeon_8268"]
    t_small = kernel_time(small, m)
    # effective bandwidth for the small set must exceed DRAM rate
    assert small.nbytes / t_small > m.dram_gbs * 1e9
    t_big = kernel_time(big, m)
    assert big.nbytes / t_big <= m.dram_gbs * 1e9 * 1.01


def test_comm_time_latency_and_bandwidth():
    c = CLUSTERS["archer2"]
    lat_only = comm_time(100, 0.0, c)
    assert lat_only == pytest.approx(100 * c.net_latency_us * 1e-6)
    bw_only = comm_time(0, 25e9, c)
    assert bw_only == pytest.approx(1.0)


def test_power_values_match_table2():
    assert CLUSTERS["avon"].node_power_w == 475.0
    assert CLUSTERS["archer2"].node_power_w == 660.0
    assert CLUSTERS["bede"].node_power_w == 1500.0
    assert CLUSTERS["lumi-g"].node_power_w == 2390.0
