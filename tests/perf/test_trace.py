"""Chrome-trace export of loop timelines."""
import json


from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.apps.fempic.distributed import DistributedFemPic
from repro.perf import attach_trace, export_chrome_trace


def test_trace_records_loop_events():
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(n_steps=0))
    (log,) = attach_trace(sim.ctx.perf)
    sim.run(2)
    names = {e[0] for e in log.events}
    assert {"CalcPosVel", "Move", "DepositCharge"} <= names
    assert all(dur >= 0 for _, _, dur in log.events)
    # starts are monotone non-decreasing within a serial run
    starts = [t0 for _, t0, _ in log.events]
    assert starts == sorted(starts)


def test_export_chrome_trace_json(tmp_path):
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(n_steps=0))
    (log,) = attach_trace(sim.ctx.perf)
    sim.run(1)
    path = export_chrome_trace(log, tmp_path / "trace.json")
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"] == "Move"
               for e in events)
    assert any(e.get("ph") == "M" for e in events)


def test_multi_rank_lanes(tmp_path):
    cfg = FemPicConfig.smoke().scaled(n_steps=3)
    dist = DistributedFemPic(cfg, nranks=2)
    logs = attach_trace(*[rk.ctx.perf for rk in dist.ranks])
    dist.run()
    path = export_chrome_trace(logs, tmp_path / "trace.json",
                               lane_names=["rank 0", "rank 1"])
    data = json.loads(path.read_text())
    pids = {e["pid"] for e in data["traceEvents"]}
    assert pids == {0, 1}


def test_trace_off_by_default():
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(n_steps=0))
    sim.run(1)
    assert sim.ctx.perf.trace is None
