"""Perf recorder accumulation and reporting."""
from repro.perf import PerfRecorder


def test_accumulates_across_calls():
    rec = PerfRecorder()
    rec.record_loop("Move", n=100, seconds=0.5, flops=10.0, nbytes=100.0,
                    hops=150, is_move=True)
    rec.record_loop("Move", n=100, seconds=0.25, flops=10.0, nbytes=100.0,
                    hops=120, is_move=True, collisions=5)
    st = rec.get("Move")
    assert st.calls == 2
    assert st.seconds == 0.75
    assert st.hops == 270
    assert st.max_collisions == 5
    assert st.is_move
    assert st.mean_seconds == 0.375


def test_arithmetic_intensity():
    rec = PerfRecorder()
    rec.record_loop("k", n=1, seconds=1.0, flops=300.0, nbytes=100.0)
    assert rec.get("k").arithmetic_intensity == 3.0
    rec.record_loop("z", n=1, seconds=1.0, flops=10.0, nbytes=0.0)
    assert rec.get("z").arithmetic_intensity == 0.0


def test_breakdown_sorted_by_time():
    rec = PerfRecorder()
    rec.record_loop("fast", n=1, seconds=0.1)
    rec.record_loop("slow", n=1, seconds=0.9)
    assert [s.name for s in rec.breakdown()] == ["slow", "fast"]
    assert rec.total_seconds == 1.0


def test_disable_and_reset():
    rec = PerfRecorder()
    rec.enabled = False
    rec.record_loop("k", n=1, seconds=1.0)
    assert rec.get("k") is None
    rec.enabled = True
    rec.record_loop("k", n=1, seconds=1.0)
    rec.reset()
    assert rec.loops == {}


def test_report_formats():
    rec = PerfRecorder()
    rec.record_loop("DepositCharge", n=10, seconds=0.2, flops=1e9,
                    nbytes=2e9)
    text = rec.report("Title")
    assert "Title" in text
    assert "DepositCharge" in text
    assert "0.2" in text
