"""Roofline analysis: classification of the paper's kernel archetypes."""
import pytest

from repro.perf import MACHINES, analyze, format_table, roofline_ceiling
from repro.perf.timers import LoopStats


def make(name, ai, nbytes=1e9, **kw):
    return LoopStats(name, calls=1, n_total=10**6, flops=ai * nbytes,
                     nbytes=nbytes, **kw)


def test_ceiling_shapes():
    m = MACHINES["v100"]
    low = roofline_ceiling(0.1, m)
    assert low == pytest.approx(0.1 * m.dram_gbs)
    high = roofline_ceiling(1000.0, m)
    assert high == m.peak_gflops


def test_bandwidth_bound_classification():
    """Paper §4.1.2: almost all PIC kernels are bandwidth bound."""
    m = MACHINES["v100"]
    pts = analyze([make("Move", 0.3)], m)
    assert pts[0].bound == "DRAM"
    assert pts[0].gflops <= pts[0].ceiling_gflops * 1.01


def test_compute_bound_classification():
    m = MACHINES["v100"]
    pts = analyze([make("dense", 100.0)], m)
    assert pts[0].bound == "compute"


def test_latency_bound_deposit_on_gpu():
    """Paper: DepositCharge does not appear on the GPU roofline — it is
    latency bound from atomic serialization."""
    m = MACHINES["mi250x_gcd"]
    st = make("DepositCharge", 0.3, indirect_inc=True)
    st.max_collisions = 1500
    pts = analyze([st], m, strategy="atomics")
    assert pts[0].bound == "latency"


def test_l3_bound_on_cpu():
    """Paper: several CPU kernels sit against the L3 roof."""
    m = MACHINES["xeon_8268"]
    st = LoopStats("Move", calls=100, n_total=10**5,
                   flops=100 * 10**6 * 0.5, nbytes=100 * 10**6)  # 1MB/call
    pts = analyze([st], m)
    assert pts[0].bound == "L3"
    assert pts[0].ceiling_gflops == pytest.approx(
        min(m.peak_gflops, pts[0].ai * m.l3_gbs))


def test_zero_byte_kernels_skipped():
    m = MACHINES["v100"]
    assert analyze([LoopStats("empty")], m) == []


def test_format_table_mentions_kernels():
    m = MACHINES["xeon_8268"]
    text = format_table(analyze([make("Move", 0.3)], m), m)
    assert "Move" in text and "DRAM" in text
