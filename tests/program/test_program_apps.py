"""Apps driven through the program optimizer (`cfg.program="fuse"`):
optimized runs must be bit-identical to eager runs, the move+deposit
rewrite must replace the PR-4 hand-wired path, and the distributed
driver must coalesce halo pushes.
"""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.fempic import FemPicConfig, FemPicSimulation


def run_fempic(backend, mode, steps=3):
    cfg = FemPicConfig.smoke().scaled(backend=backend, n_steps=steps,
                                      program=mode)
    sim = FemPicSimulation(cfg)
    sim.run()
    return sim


def run_cabana(backend, mode, steps=4):
    cfg = CabanaConfig.smoke().scaled(backend=backend, n_steps=steps,
                                      program=mode)
    sim = CabanaSimulation(cfg)
    sim.run()
    return sim


def test_fempic_program_seq_bit_equal():
    plain = run_fempic("seq", "off")
    fused = run_fempic("seq", "fuse")
    assert fused.parts.size == plain.parts.size
    for attr in ("phi", "ncd", "nw", "ef"):
        assert np.array_equal(getattr(fused, attr).data,
                              getattr(plain, attr).data), attr
    assert fused.history["field_energy"] == plain.history["field_energy"]
    assert fused.program is not None and fused.program.n_flushes > 0
    assert plain.program is None


def test_fempic_program_vec_matches():
    """vec is allclose rather than bit-equal: the move+deposit rewrite
    reorders scatter accumulation, exactly like the hand-fused
    ``fuse_move`` path it replaces (see test_fused_move.py)."""
    plain = run_fempic("vec", "off")
    fused = run_fempic("vec", "fuse")
    assert fused.parts.size == plain.parts.size
    for attr in ("phi", "ncd", "nw", "ef"):
        np.testing.assert_allclose(
            getattr(fused, attr).data, getattr(plain, attr).data,
            rtol=1e-9, atol=1e-18, err_msg=attr)
    np.testing.assert_allclose(fused.history["field_energy"],
                               plain.history["field_energy"],
                               rtol=1e-9, atol=1e-18)


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_cabana_program_bit_equal(backend):
    plain = run_cabana(backend, "off")
    fused = run_cabana(backend, "fuse")
    assert fused.history["e_energy"] == plain.history["e_energy"]
    assert fused.history["b_energy"] == plain.history["b_energy"]
    for attr in ("e", "b", "j", "acc"):
        assert np.array_equal(getattr(fused, attr).data,
                              getattr(plain, attr).data), attr


def test_fempic_program_rewrites_move_deposit():
    """With the optimizer on, the separate Move + DepositCharge loops
    become one fused move — the Program-expressible form of the PR-4
    ``fuse_move`` special case, sharing its legality check."""
    sim = run_fempic("vec", "fuse", steps=2)
    plans = sim.program.plans
    rewrites = [rw for p in plans for rw in p.rewrites]
    assert any("Move" in rw and "DepositCharge" in rw for rw in rewrites)
    assert any(g.rewritten for p in plans for g in p.groups
               if g.kind == "move")
    assert "rewritten from separate deposit loop" in sim.program.explain()


def test_vec_programs_fuse_loops():
    fem = run_fempic("vec", "fuse", steps=2)
    cab = run_cabana("vec", "fuse", steps=2)
    for sim in (fem, cab):
        fused = [g for p in sim.program.plans for g in p.groups
                 if g.kind == "loops" and g.fused]
        assert fused, "expected at least one fused group"


def test_cabana_program_records_fallback_reasons():
    """AdvanceB's stencil read of freshly advanced E is cross-element
    RAW — the optimizer must refuse that fusion and say why."""
    sim = run_cabana("vec", "fuse", steps=2)
    reasons = sim.program.fallback_reasons
    assert any("cross-element RAW" in r for r in reasons.values())


def test_program_survives_multiple_run_calls():
    """run() may be called repeatedly; the Program (and its kernel
    cache) persists across recording spans."""
    cfg = CabanaConfig.smoke().scaled(backend="vec", n_steps=2,
                                      program="fuse")
    sim = CabanaSimulation(cfg)
    sim.run()
    first = sim.program.n_flushes
    sim.run(2)
    assert sim.program.n_flushes > first

    eager = CabanaSimulation(cfg.scaled(program="off"))
    eager.run()
    eager.run(2)
    assert sim.history["e_energy"] == eager.history["e_energy"]


def test_distributed_cabana_coalesces_pushes():
    """2-rank run: the step's adjacent e/b ghost pushes merge into one
    message per neighbour pair — msg_count strictly drops, bytes do not
    grow, physics is bit-equal."""
    from repro.apps.cabana.distributed import DistributedCabana

    def run(mode):
        cfg = CabanaConfig(nx=4, ny=4, nz=8, ppc=8, n_steps=3,
                           backend="vec", program=mode)
        sim = DistributedCabana(cfg, nranks=2)
        sim.run()
        return sim

    off, fuse = run("off"), run("fuse")
    assert fuse.history["e_energy"] == off.history["e_energy"]
    assert int(fuse.comm.stats.msg_count.sum()) < \
        int(off.comm.stats.msg_count.sum())
    assert int(fuse.comm.stats.msg_bytes.sum()) <= \
        int(off.comm.stats.msg_bytes.sum())
    assert "coalesced" in fuse.program.explain()
