"""Whole-step program optimizer: recording, flush points, legality,
fusion, temp elimination, gather hoisting, and the move+deposit rewrite.

The contract under test everywhere: running a span of loops through
``program.record(mode="fuse")`` is *bit-identical* to running them
eagerly, on every backend — optimizations either preserve semantics
exactly or fall back loop-by-loop with a recorded reason.
"""
import numpy as np
import pytest

from repro import program
from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_RW,
                            OPP_WRITE, Context, arg_dat, arg_gbl,
                            decl_dat, decl_global, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            particle_move, push_context)


# -- kernels (module level so every backend can retrieve their source) ---------


def k_double(x, y):
    y[0] = 2.0 * x[0]


def k_add_one(y, z):
    z[0] = y[0] + 1.0


def k_axpy(x, y):
    y[0] = y[0] + 0.5 * x[0]


def k_gather2(c, out):
    out[0] = out[0] + 0.25 * c[0]


def k_deposit(w, acc):
    acc[0] += w[0]


def k_gather_mark(c, out, hits):
    out[0] = out[0] + 0.1 * c[0]
    hits[0] += 1


def k_reduce(x, total):
    total[0] += x[0]


def k_scale_by_gbl(x, g):
    x[0] = x[0] * g[0]


def k_walk_done(move, p):
    move.done()


def _world(backend="vec", n_cells=16, n_parts=40):
    ctx = Context(backend)
    with push_context(ctx):
        cells = decl_set(n_cells, "cells")
        parts = decl_particle_set(cells, n_parts, "parts")
        chain = [[i - 1 if i > 0 else -1,
                  i + 1 if i + 1 < n_cells else -1]
                 for i in range(n_cells)]
        c2c = decl_map(cells, cells, 2, chain, "c2c")
        rng = np.random.default_rng(7)
        p2c = decl_map(parts, cells, 1,
                       rng.integers(0, n_cells, size=(n_parts, 1)), "p2c")
        w = {
            "ctx": ctx, "cells": cells, "parts": parts, "c2c": c2c,
            "p2c": p2c,
            "a": decl_dat(cells, 1, np.float64,
                          rng.normal(size=n_cells), "a"),
            "b": decl_dat(cells, 1, np.float64, None, "b"),
            "c": decl_dat(cells, 1, np.float64, None, "c"),
            "acc": decl_dat(cells, 1, np.float64, None, "acc"),
            "pw": decl_dat(parts, 1, np.float64,
                           rng.normal(size=n_parts), "pw"),
            "pos": decl_dat(parts, 1, np.float64,
                            rng.uniform(0, n_cells, size=n_parts), "pos"),
            "out": decl_dat(parts, 1, np.float64,
                            np.ones(n_parts), "out"),
            "g": decl_global(1, np.float64, [0.0], "g"),
        }
    return w


def _chain(w):
    """a --k_double--> b --k_add_one--> c : the fusable direct chain."""
    par_loop(k_double, "Double", w["cells"], OPP_ITERATE_ALL,
             arg_dat(w["a"], OPP_READ), arg_dat(w["b"], OPP_WRITE))
    par_loop(k_add_one, "AddOne", w["cells"], OPP_ITERATE_ALL,
             arg_dat(w["b"], OPP_READ), arg_dat(w["c"], OPP_WRITE))


# -- recording / flush semantics -----------------------------------------------


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_deferred_equals_eager(backend):
    w = _world(backend)
    with push_context(w["ctx"]):
        _chain(w)
        exp_b, exp_c = w["b"].data.copy(), w["c"].data.copy()
        w["b"].fill(0.0)
        w["c"].fill(0.0)
        with program.record(mode="fuse") as prog:
            _chain(w)
        assert np.array_equal(w["b"].data, exp_b)
        assert np.array_equal(w["c"].data, exp_c)
    assert prog.n_flushes == 1


def test_host_read_mid_trace_flushes():
    w = _world("vec")
    with push_context(w["ctx"]):
        with program.record(mode="fuse") as prog:
            par_loop(k_double, "Double", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["a"], OPP_READ), arg_dat(w["b"], OPP_WRITE))
            # observing b must flush the pending loop right here
            assert np.array_equal(w["b"].data, 2.0 * w["a"].data)
            assert prog.n_flushes == 1
            par_loop(k_add_one, "AddOne", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["b"], OPP_READ), arg_dat(w["c"], OPP_WRITE))
        assert prog.n_flushes == 2


def test_unrelated_read_does_not_flush():
    w = _world("vec")
    with push_context(w["ctx"]):
        with program.record(mode="fuse") as prog:
            par_loop(k_double, "Double", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["a"], OPP_READ), arg_dat(w["b"], OPP_WRITE))
            w["out"].data  # particle dat: untouched by the pending loop
            assert prog.n_flushes == 0


def test_mode_off_is_a_passthrough():
    w = _world("seq")
    with push_context(w["ctx"]):
        with program.record(mode="off") as prog:
            par_loop(k_double, "Double", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["a"], OPP_READ), arg_dat(w["b"], OPP_WRITE))
            # no tracer installed: the loop already ran
            assert np.array_equal(w["b"].data, 2.0 * w["a"].data)
    assert prog.n_flushes == 0


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="program mode"):
        program.Program("sideways")


def test_lazy_move_result_resolves():
    w = _world("vec")
    with push_context(w["ctx"]):
        with program.record(mode="fuse") as prog:
            res = particle_move(k_walk_done, "Hold", w["parts"], w["c2c"],
                                w["p2c"], arg_dat(w["pos"], OPP_READ))
            assert res.n_removed == 0     # resolving forces the flush
            assert prog.n_flushes == 1


# -- fusion ---------------------------------------------------------------------


def test_vec_fuses_direct_chain_bit_equal():
    w = _world("vec")
    with push_context(w["ctx"]):
        _chain(w)
        exp_b, exp_c = w["b"].data.copy(), w["c"].data.copy()
        w["b"].fill(0.0)
        w["c"].fill(0.0)
        with program.record(mode="fuse") as prog:
            _chain(w)
        assert np.array_equal(w["b"].data, exp_b)
        assert np.array_equal(w["c"].data, exp_c)
    (plan,) = prog.plans
    fused = [g for g in plan.groups if g.fused and g.kind == "loops"]
    assert len(fused) == 1 and len(fused[0].nodes) == 2
    assert "fuse  Double+AddOne" in prog.explain()


def test_seq_groups_but_runs_loop_by_loop():
    w = _world("seq")
    with push_context(w["ctx"]):
        with program.record(mode="fuse") as prog:
            _chain(w)
    assert any("loop-by-loop" in r
               for r in prog.fallback_reasons.values())
    assert not any(g.fused for p in prog.plans
                   for g in p.groups if g.kind == "loops")


def test_gather_hoisting_counts_shared_indirect_reads():
    w = _world("vec")

    def body():
        par_loop(k_gather2, "GatherA", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["a"], w["p2c"], OPP_READ),
                 arg_dat(w["out"], OPP_RW))
        par_loop(k_gather2, "GatherB", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["a"], w["p2c"], OPP_READ),
                 arg_dat(w["out"], OPP_RW))

    with push_context(w["ctx"]):
        body()
        expect = w["out"].data.copy()
        w["out"].fill(1.0)
        with program.record(mode="fuse") as prog:
            body()
        assert np.array_equal(w["out"].data, expect)
    (plan,) = prog.plans
    (group,) = [g for g in plan.groups if g.kind == "loops"]
    assert group.fused and group.hoisted >= 1


def test_transient_temp_is_eliminated():
    w = _world("vec")
    w["b"].transient = True

    with push_context(w["ctx"]):
        with program.record(mode="fuse") as prog:
            _chain(w)
        # c carries the chain's result; the transient b was never
        # written back to memory
        assert np.array_equal(w["c"].data, 2.0 * w["a"].data + 1.0)
        assert np.count_nonzero(w["b"].data) == 0
    (plan,) = prog.plans
    (group,) = [g for g in plan.groups if g.kind == "loops"]
    assert group.eliminated_names == ["b"]
    assert "eliminated temps: b" in prog.explain()


def test_transient_used_across_groups_is_not_eliminated():
    w = _world("vec")
    w["b"].transient = True

    with push_context(w["ctx"]):
        with program.record(mode="fuse"):
            par_loop(k_double, "Double", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["a"], OPP_READ), arg_dat(w["b"], OPP_WRITE))
            # particle loop splits the group; b must survive to here
            par_loop(k_gather2, "Gather", w["parts"], OPP_ITERATE_ALL,
                     arg_dat(w["b"], w["p2c"], OPP_READ),
                     arg_dat(w["out"], OPP_RW))
        assert np.array_equal(w["b"].data, 2.0 * w["a"].data)


# -- legality fallbacks ----------------------------------------------------------


def test_indirect_war_falls_back(backend="vec"):
    """The forced-fusion-illegal case: an indirect read of ``acc``
    followed by an indirect INC of ``acc`` (WAR through p2c).  Both
    loops also INC a dat so halo bounds match — the WAR legality rule
    itself must refuse the fusion."""
    w = _world(backend)
    hits = None
    with push_context(w["ctx"]):
        hits = decl_dat(w["cells"], 1, np.float64, None, "hits")

        def body():
            par_loop(k_gather_mark, "WarRead", w["parts"],
                     OPP_ITERATE_ALL,
                     arg_dat(w["acc"], w["p2c"], OPP_READ),
                     arg_dat(w["out"], OPP_RW),
                     arg_dat(hits, w["p2c"], OPP_INC))
            par_loop(k_deposit, "WarInc", w["parts"], OPP_ITERATE_ALL,
                     arg_dat(w["pw"], OPP_READ),
                     arg_dat(w["acc"], w["p2c"], OPP_INC))

        body()
        exp_out = w["out"].data.copy()
        exp_acc = w["acc"].data.copy()
        exp_hits = hits.data.copy()
        w["out"].fill(1.0)
        w["acc"].fill(0.0)
        hits.fill(0.0)
        with program.record(mode="fuse") as prog:
            body()
        assert np.array_equal(w["out"].data, exp_out)
        assert np.array_equal(w["acc"].data, exp_acc)
        assert np.array_equal(hits.data, exp_hits)
    reasons = prog.fallback_reasons
    assert any("indirect write on 'acc'" in r for r in reasons.values())
    assert not any(g.fused for p in prog.plans
                   for g in p.groups if g.kind == "loops")


def test_global_read_after_reduce_falls_back():
    w = _world("vec")
    with push_context(w["ctx"]):
        def body():
            par_loop(k_reduce, "Reduce", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["a"], OPP_READ),
                     arg_gbl(w["g"], OPP_INC))
            par_loop(k_scale_by_gbl, "Scale", w["cells"],
                     OPP_ITERATE_ALL,
                     arg_dat(w["b"], OPP_RW),
                     arg_gbl(w["g"], OPP_READ))

        body()
        exp_b, exp_g = w["b"].data.copy(), w["g"].data.copy()
        w["b"].fill(0.0)
        w["g"].data[:] = 0.0
        with program.record(mode="fuse") as prog:
            body()
        assert np.array_equal(w["b"].data, exp_b)
        assert np.array_equal(w["g"].data, exp_g)
    assert any("after reduction in group" in r
               for r in prog.fallback_reasons.values())


def test_commutative_indirect_inc_pair_fuses():
    """Two scatter-adds into the same dat are order-free and DO fuse."""
    w = _world("vec")

    def body():
        par_loop(k_deposit, "DepA", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["pw"], OPP_READ),
                 arg_dat(w["acc"], w["p2c"], OPP_INC))
        par_loop(k_deposit, "DepB", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["pw"], OPP_READ),
                 arg_dat(w["acc"], w["p2c"], OPP_INC))

    with push_context(w["ctx"]):
        body()
        expect = w["acc"].data.copy()
        w["acc"].fill(0.0)
        with program.record(mode="fuse") as prog:
            body()
        assert np.allclose(w["acc"].data, expect, rtol=0, atol=0)
    (plan,) = prog.plans
    (group,) = [g for g in plan.groups if g.kind == "loops"]
    assert group.fused and len(group.nodes) == 2


# -- move+deposit rewrite --------------------------------------------------------


def k_walk_chain(move, p, hits):
    hits[0] += 1
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


def _run_move_deposit(w, hits, mode):
    """Walk every particle to its containing cell, then deposit; the
    move mutates p2c, so callers hand in a *fresh* world per run."""
    def body():
        res = particle_move(k_walk_chain, "Walk", w["parts"],
                            w["c2c"], w["p2c"],
                            arg_dat(w["pos"], OPP_READ),
                            arg_dat(hits, w["p2c"], OPP_INC))
        par_loop(k_deposit, "Deposit", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["pw"], OPP_READ),
                 arg_dat(w["acc"], w["p2c"], OPP_INC))
        return res

    with push_context(w["ctx"]):
        if mode == "off":
            return body().n_removed, None
        prog = program.Program(mode)
        with program.record(mode=mode, program=prog):
            res = body()
            n_removed = res.n_removed     # resolves the lazy result
        return n_removed, prog


def test_move_then_deposit_is_rewritten():
    w_off = _world("vec")
    hits_off = None
    with push_context(w_off["ctx"]):
        hits_off = decl_dat(w_off["cells"], 1, np.float64, None, "hits")
    n_off, _ = _run_move_deposit(w_off, hits_off, "off")

    w = _world("vec")
    with push_context(w["ctx"]):
        hits = decl_dat(w["cells"], 1, np.float64, None, "hits")
    n_fuse, prog = _run_move_deposit(w, hits, "fuse")

    assert n_fuse == n_off
    assert np.array_equal(w["acc"].data, w_off["acc"].data)
    assert np.array_equal(hits.data, hits_off.data)
    assert np.array_equal(w["p2c"].p2c, w_off["p2c"].p2c)
    (plan,) = prog.plans
    assert plan.rewrites and "Walk+Deposit" in plan.rewrites[0]
    move_groups = [g for g in plan.groups if g.kind == "move"]
    assert move_groups and move_groups[0].rewritten
    assert "rewritten from separate deposit loop" in prog.explain()


def test_move_deposit_rewrite_refused_on_shared_dat():
    """The candidate loop reads the dat the move's kernel INCs — the
    shared legality check must refuse the rewrite and run both
    separately."""
    def run(mode):
        w = _world("vec")
        with push_context(w["ctx"]):
            hits = decl_dat(w["cells"], 1, np.float64, None, "hits")

            def body():
                particle_move(k_walk_chain, "Walk", w["parts"],
                              w["c2c"], w["p2c"],
                              arg_dat(w["pos"], OPP_READ),
                              arg_dat(hits, w["p2c"], OPP_INC))
                par_loop(k_gather2, "HitsGather", w["parts"],
                         OPP_ITERATE_ALL,
                         arg_dat(hits, w["p2c"], OPP_READ),
                         arg_dat(w["out"], OPP_RW))

            if mode == "off":
                body()
                return w, hits, None
            prog = program.Program(mode)
            with program.record(mode=mode, program=prog):
                body()
            return w, hits, prog

    w_off, hits_off, _ = run("off")
    w, hits, prog = run("fuse")
    assert np.array_equal(w["out"].data, w_off["out"].data)
    assert np.array_equal(hits.data, hits_off.data)
    (plan,) = prog.plans
    assert not plan.rewrites
    move_groups = [g for g in plan.groups if g.kind == "move"]
    assert move_groups and not move_groups[0].rewritten


# -- Program API -----------------------------------------------------------------


def test_program_from_step_and_explain():
    w = _world("vec")

    def step():
        with push_context(w["ctx"]):
            _chain(w)

    prog = program.Program.from_step(step)
    assert prog.n_flushes == 1
    text = prog.explain()
    assert "program mode: fuse" in text and "shape 1 (x1):" in text


def test_repeated_shapes_share_plans_and_kernels():
    w = _world("vec")
    prog = program.Program("fuse")
    for _ in range(4):
        with push_context(w["ctx"]):
            with program.record(mode="fuse", program=prog):
                _chain(w)
    assert prog.n_flushes == 4
    assert len(prog.executed) == 1        # one distinct shape
    (entry,) = prog.executed.values()
    assert entry[1] == 4                  # executed four times
    assert len(prog.gen_cache) == 1       # one fused kernel compiled
