"""Sanitizer × program optimizer: deferring and optimizing a program
must not hide descriptor races.  The sanitizer backend never takes the
fused-execution path (only ``vec`` does), so at flush time every loop
replays through shadow execution with its *original* per-loop access
descriptors — a mis-declared kernel is caught exactly as it is eagerly.
"""
import numpy as np

from repro import program
from repro.core.api import (OPP_READ, OPP_RW, OPP_WRITE, OPP_ITERATE_ALL,
                            Context, arg_dat, decl_dat, decl_set,
                            par_loop, push_context)


def k_ok(x, y):
    y[0] = 2.0 * x[0]


def k_bad_write_to_read(x, y):
    x[0] = 0.0              # mutates a READ arg
    y[0] = 1.0


def _world(ctx):
    with push_context(ctx):
        s = decl_set(12, "cells")
        x = decl_dat(s, 1, np.float64, np.arange(12.0), "x")
        y = decl_dat(s, 1, np.float64, None, "y")
    return s, x, y


def test_clean_program_stays_clean():
    ctx = Context("sanitizer")
    s, x, y = _world(ctx)
    with push_context(ctx):
        with program.record(mode="fuse") as prog:
            par_loop(k_ok, "Ok", s, OPP_ITERATE_ALL,
                     arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
            par_loop(k_ok, "Ok2", s, OPP_ITERATE_ALL,
                     arg_dat(y, OPP_READ), arg_dat(x, OPP_WRITE))
    assert ctx.backend.violations == []
    assert prog.n_flushes == 1
    # the sanitizer executes loop-by-loop, with a recorded reason
    assert any("sanitizer" in r
               for r in prog.fallback_reasons.values())


def test_fused_program_still_reports_races():
    ctx = Context("sanitizer")
    s, x, y = _world(ctx)
    with push_context(ctx):
        with program.record(mode="fuse"):
            # a fusable-looking pair: the second loop is mis-declared
            par_loop(k_ok, "Ok", s, OPP_ITERATE_ALL,
                     arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
            par_loop(k_bad_write_to_read, "Bad", s, OPP_ITERATE_ALL,
                     arg_dat(y, OPP_READ), arg_dat(x, OPP_WRITE))
    violations = ctx.backend.violations
    assert violations, "deferred execution hid the descriptor race"
    v = violations[0]
    assert v.loop_name == "Bad" and v.arg_index == 0
    # shadow execution also contained the stray write
    assert np.array_equal(y.data[:, 0], 2.0 * np.arange(12.0))
