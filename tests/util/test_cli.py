"""CLI: the artifact's `<app_binary> <config_file>` workflow."""
import pytest

from repro.cli import main


def test_mesh_generation(tmp_path, capsys):
    out = tmp_path / "duct.dat"
    assert main(["mesh", "--nx", "2", "--ny", "2", "--nz", "3",
                 "--out", str(out)]) == 0
    assert out.exists()
    assert "72 cells" in capsys.readouterr().out
    from repro.mesh import load_mesh
    assert load_mesh(out).n_cells == 72


def test_fempic_run_with_config_file(tmp_path, capsys):
    cfgfile = tmp_path / "run.cfg"
    cfgfile.write_text("""
    # Mini-FEM-PIC laptop run
    nx = 2
    ny = 2
    nz = 6
    n_steps = 3
    plasma_den = 2e3
    n0 = 2e3
    """)
    assert main(["fempic", str(cfgfile)]) == 0
    out = capsys.readouterr().out
    assert "Mini-FEM-PIC: 144 cells, 3 steps" in out
    assert "DepositCharge" in out


def test_fempic_flag_overrides_config(tmp_path, capsys):
    cfgfile = tmp_path / "run.cfg"
    cfgfile.write_text("nx = 2\nny = 2\nnz = 6\nn_steps = 9\n"
                       "plasma_den = 2e3\nn0 = 2e3\n")
    assert main(["fempic", str(cfgfile), "--steps", "2",
                 "--move", "dh"]) == 0
    out = capsys.readouterr().out
    assert "2 steps" in out and "move=dh" in out


def test_fempic_vtk_output(tmp_path, capsys):
    assert main(["fempic", "--steps", "2", "--vtk",
                 str(tmp_path / "viz"), "--quiet"]) == 0
    assert (tmp_path / "viz" / "fempic_mesh.vtk").exists()
    assert (tmp_path / "viz" / "fempic_ions.vtk").exists()


def test_cabana_run_and_validate(capsys):
    assert main(["cabana", "--steps", "4", "--ppc", "4"]) == 0
    out = capsys.readouterr().out
    assert "CabanaPIC" in out and "Move_Deposit" in out
    assert main(["cabana", "--steps", "4", "--ppc", "4", "--quiet",
                 "--validate"]) == 0
    assert "validation" in capsys.readouterr().out


def test_cabana_pusher_flag(capsys):
    assert main(["cabana", "--steps", "2", "--ppc", "2",
                 "--pusher", "vay"]) == 0
    assert "pusher=vay" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["warpx"])


def test_module_entrypoint(tmp_path):
    import subprocess
    import sys
    out = tmp_path / "m.npz"
    r = subprocess.run([sys.executable, "-m", "repro", "mesh",
                        "--nx", "1", "--ny", "1", "--nz", "2",
                        "--out", str(out)],
                       capture_output=True, text=True)
    assert r.returncode == 0, r.stderr
    assert out.exists()


def test_advec_subcommand(capsys):
    assert main(["advec", "--steps", "5", "--flow", "rotation"]) == 0
    out = capsys.readouterr().out
    assert "flow=rotation" in out and "hops" in out


def test_twod_subcommand(capsys):
    assert main(["twod", "--steps", "3"]) == 0
    out = capsys.readouterr().out
    assert "sheet model" in out and "field energy" in out
