"""Per-rank RNG derivation."""
import numpy as np
import pytest

from repro.util import rank_rng


def test_reproducible():
    a = rank_rng(7, 0, 4).random(5)
    b = rank_rng(7, 0, 4).random(5)
    np.testing.assert_array_equal(a, b)


def test_ranks_independent():
    a = rank_rng(7, 0, 4).random(100)
    b = rank_rng(7, 1, 4).random(100)
    assert not np.allclose(a, b)


def test_bounds():
    with pytest.raises(IndexError):
        rank_rng(7, 4, 4)
    with pytest.raises(IndexError):
        rank_rng(7, -1, 4)
