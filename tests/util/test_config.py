"""Config-file parsing and dataclass overlay."""
import pytest

from repro.apps.fempic import FemPicConfig
from repro.util import apply_to_dataclass, load_config, parse_config_text


def test_parse_types():
    vals = parse_config_text("""
    # a comment
    steps = 250
    den   = 1.0e18
    use_dh = true
    mesh = box_48000.dat
    flag = off
    """)
    assert vals == {"steps": 250, "den": 1.0e18, "use_dh": True,
                    "mesh": "box_48000.dat", "flag": False}


def test_inline_comments_and_blank_lines():
    vals = parse_config_text("a = 1  # trailing\n\n\nb = 2\n")
    assert vals == {"a": 1, "b": 2}


def test_malformed_line_raises():
    with pytest.raises(ValueError):
        parse_config_text("no equals sign here")
    with pytest.raises(ValueError):
        parse_config_text(" = 3")


def test_load_config(tmp_path):
    f = tmp_path / "run.cfg"
    f.write_text("nx = 8\nplasma_den = 5e3\n")
    assert load_config(f) == {"nx": 8, "plasma_den": 5e3}


def test_apply_to_dataclass():
    cfg = FemPicConfig()
    out = apply_to_dataclass({"nx": 9, "dt": 0.01, "bogus": 1}, cfg)
    assert out.nx == 9 and out.dt == 0.01
    assert cfg.nx != 9  # original untouched
    with pytest.raises(ValueError):
        apply_to_dataclass({"bogus": 1}, cfg, strict=True)
