"""Checkpoint/restart: a restarted run must continue bit-exactly."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.util.checkpoint import load_checkpoint, save_checkpoint


def test_fempic_restart_continues_exactly(tmp_path):
    cfg = FemPicConfig.smoke().scaled(n_steps=0, dt=0.2)
    ref = FemPicSimulation(cfg)
    ref.run(8)

    half = FemPicSimulation(cfg)
    half.run(4)
    ckpt = save_checkpoint(half, tmp_path / "fempic.npz")

    resumed = FemPicSimulation(cfg)
    assert load_checkpoint(resumed, ckpt) == 4
    resumed.run(4)

    np.testing.assert_array_equal(resumed.phi.data, ref.phi.data)
    np.testing.assert_array_equal(resumed.pos.data, ref.pos.data)
    assert resumed.parts.size == ref.parts.size
    # RNG state restored → the same injection stream continued
    assert resumed.history["injected"] == ref.history["injected"][4:]


def test_cabana_restart_continues_exactly(tmp_path):
    cfg = CabanaConfig.smoke()
    ref = CabanaSimulation(cfg)
    ref.run(6)

    half = CabanaSimulation(cfg)
    half.run(3)
    ckpt = save_checkpoint(half, tmp_path / "cabana.npz")
    resumed = CabanaSimulation(cfg)
    load_checkpoint(resumed, ckpt)
    resumed.run(3)

    np.testing.assert_array_equal(resumed.e.data, ref.e.data)
    np.testing.assert_array_equal(resumed.vel.data, ref.vel.data)
    assert resumed.history["e_energy"] == ref.history["e_energy"][3:]


def test_mesh_mismatch_rejected(tmp_path):
    a = FemPicSimulation(FemPicConfig.smoke())
    ckpt = save_checkpoint(a, tmp_path / "a.npz")
    b = FemPicSimulation(FemPicConfig.smoke().scaled(nz=8))
    with pytest.raises(ValueError):
        load_checkpoint(b, ckpt)


def test_non_simulation_rejected(tmp_path):
    class Empty:
        pass
    with pytest.raises(ValueError):
        save_checkpoint(Empty(), tmp_path / "x.npz")
