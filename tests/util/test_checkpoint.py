"""Checkpoint/restart: a restarted run must continue bit-exactly."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.util.checkpoint import load_checkpoint, save_checkpoint


def test_fempic_restart_continues_exactly(tmp_path):
    cfg = FemPicConfig.smoke().scaled(n_steps=0, dt=0.2)
    ref = FemPicSimulation(cfg)
    ref.run(8)

    half = FemPicSimulation(cfg)
    half.run(4)
    ckpt = save_checkpoint(half, tmp_path / "fempic.npz")

    resumed = FemPicSimulation(cfg)
    assert load_checkpoint(resumed, ckpt) == 4
    resumed.run(4)

    np.testing.assert_array_equal(resumed.phi.data, ref.phi.data)
    np.testing.assert_array_equal(resumed.pos.data, ref.pos.data)
    assert resumed.parts.size == ref.parts.size
    # RNG state restored → the same injection stream continued
    assert resumed.history["injected"] == ref.history["injected"][4:]


def test_cabana_restart_continues_exactly(tmp_path):
    cfg = CabanaConfig.smoke()
    ref = CabanaSimulation(cfg)
    ref.run(6)

    half = CabanaSimulation(cfg)
    half.run(3)
    ckpt = save_checkpoint(half, tmp_path / "cabana.npz")
    resumed = CabanaSimulation(cfg)
    load_checkpoint(resumed, ckpt)
    resumed.run(3)

    np.testing.assert_array_equal(resumed.e.data, ref.e.data)
    np.testing.assert_array_equal(resumed.vel.data, ref.vel.data)
    assert resumed.history["e_energy"] == ref.history["e_energy"][3:]


def test_mesh_mismatch_rejected(tmp_path):
    a = FemPicSimulation(FemPicConfig.smoke())
    ckpt = save_checkpoint(a, tmp_path / "a.npz")
    b = FemPicSimulation(FemPicConfig.smoke().scaled(nz=8))
    with pytest.raises(ValueError):
        load_checkpoint(b, ckpt)


def test_non_simulation_rejected(tmp_path):
    class Empty:
        pass
    with pytest.raises(ValueError):
        save_checkpoint(Empty(), tmp_path / "x.npz")


def test_twod_restart_continues_exactly(tmp_path):
    from repro.apps.twod import TwoDConfig, TwoDSheetModel
    cfg = TwoDConfig(n_steps=0)
    ref = TwoDSheetModel(cfg)
    ref.run(6)

    half = TwoDSheetModel(cfg)
    half.run(3)
    ckpt = save_checkpoint(half, tmp_path / "twod.npz")
    resumed = TwoDSheetModel(cfg)
    load_checkpoint(resumed, ckpt)   # twod keeps no step counter
    resumed.run(3)

    np.testing.assert_array_equal(resumed.phi.data, ref.phi.data)
    np.testing.assert_array_equal(resumed.pos.data, ref.pos.data)
    assert resumed.history["field_energy"] == ref.history["field_energy"][3:]


def test_advec_restart_continues_exactly(tmp_path):
    from repro.apps.advec import AdvecConfig, AdvecSimulation
    cfg = AdvecConfig()
    ref = AdvecSimulation(cfg)
    ref.run(6)

    half = AdvecSimulation(cfg)
    half.run(3)
    ckpt = save_checkpoint(half, tmp_path / "advec.npz")
    resumed = AdvecSimulation(cfg)
    assert load_checkpoint(resumed, ckpt) == 3
    resumed.run(3)

    np.testing.assert_array_equal(resumed.pos.data, ref.pos.data)
    np.testing.assert_array_equal(resumed.disp.data, ref.disp.data)
    assert resumed.parts.size == ref.parts.size


def test_format_version_mismatch_rejected(tmp_path):
    from repro.util.checkpoint import CHECKPOINT_FORMAT
    sim = FemPicSimulation(FemPicConfig.smoke())
    ckpt = save_checkpoint(sim, tmp_path / "v.npz")
    with np.load(ckpt) as data:
        payload = {k: data[k] for k in data.files}
    payload["__format__"] = np.array([CHECKPOINT_FORMAT + 1])
    np.savez_compressed(ckpt, **payload)
    fresh = FemPicSimulation(FemPicConfig.smoke())
    with pytest.raises(ValueError, match="format"):
        load_checkpoint(fresh, ckpt)
