"""Legacy-VTK writer: structural validity of the emitted files."""
import numpy as np
import pytest

from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.util.vtk import write_vtk_mesh, write_vtk_particles


def parse_sections(text):
    out = {}
    for line in text.splitlines():
        head = line.split(" ")[0]
        if head in ("POINTS", "CELLS", "CELL_TYPES", "CELL_DATA",
                    "POINT_DATA", "VECTORS", "SCALARS"):
            out.setdefault(head, []).append(line)
    return out


def test_mesh_file_structure(tmp_path):
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(n_steps=3))
    sim.run()
    path = write_vtk_mesh(
        tmp_path / "duct.vtk", sim.mesh.points, sim.mesh.cell2node,
        cell_data={"electric_field": sim.ef.data,
                   "volume": sim.cvol.data},
        point_data={"potential": sim.phi.data})
    text = path.read_text()
    sec = parse_sections(text)
    assert sec["POINTS"][0] == f"POINTS {sim.mesh.n_nodes} double"
    assert sec["CELLS"][0].split()[1] == str(sim.mesh.n_cells)
    assert f"CELL_DATA {sim.mesh.n_cells}" in text
    assert f"POINT_DATA {sim.mesh.n_nodes}" in text
    assert "VECTORS electric_field double" in text
    assert "SCALARS potential double 1" in text
    # all tets
    assert text.count("\n10\n") >= 1


def test_particle_file_structure(tmp_path):
    rng = np.random.default_rng(0)
    pos = rng.random((17, 3))
    vel = rng.normal(size=(17, 3))
    w = rng.random(17)
    path = write_vtk_particles(tmp_path / "p.vtk", pos,
                               fields={"velocity": vel, "weight": w})
    text = path.read_text()
    assert "POINTS 17 double" in text
    assert "CELLS 17 34" in text
    assert "VECTORS velocity double" in text
    assert "SCALARS weight double 1" in text


def test_field_row_mismatch_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_vtk_particles(tmp_path / "p.vtk", np.zeros((4, 3)),
                            fields={"w": np.zeros(3)})


def test_shape_validation(tmp_path):
    with pytest.raises(ValueError):
        write_vtk_particles(tmp_path / "p.vtk", np.zeros((4, 2)))
    with pytest.raises(ValueError):
        write_vtk_mesh(tmp_path / "m.vtk", np.zeros((4, 3)),
                       np.zeros((2, 3), dtype=int))


def test_multicomponent_scalar_fields(tmp_path):
    path = write_vtk_particles(tmp_path / "p.vtk", np.zeros((2, 3)),
                               fields={"lc": np.ones((2, 4))})
    text = path.read_text()
    for c in range(4):
        assert f"SCALARS lc_{c} double 1" in text
