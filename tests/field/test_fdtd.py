"""Vacuum FDTD checks of the CabanaPIC field kernels."""

from repro.field import seed_standing_wave, vacuum_cavity_energy_series


def test_vacuum_energy_bounded():
    """Leap-frog E/B energies oscillate but the total must not drift."""
    ee, be = vacuum_cavity_energy_series(nz=16, steps=64)
    total = ee + be
    # bounded oscillation, no secular growth/decay
    first = total[: len(total) // 2].mean()
    second = total[len(total) // 2:].mean()
    assert abs(second - first) / first < 1e-6
    assert (total.max() - total.min()) / total.mean() < 0.05


def test_energy_exchanges_between_e_and_b():
    ee, be = vacuum_cavity_energy_series(nz=16, steps=64)
    assert be.max() > 0.1 * ee.max()   # a real standing-wave exchange
    assert ee.min() < 0.9 * ee.max()


def test_zero_field_stays_zero():
    from repro.apps.cabana import CabanaConfig, CabanaSimulation
    sim = CabanaSimulation(CabanaConfig(nx=2, ny=2, nz=4, ppc=0, n_steps=3))
    sim.run()
    assert sim.history["e_energy"] == [0.0, 0.0, 0.0]
    assert sim.history["b_energy"] == [0.0, 0.0, 0.0]


def test_seed_standing_wave_shape():
    from repro.apps.cabana import CabanaConfig, CabanaSimulation
    sim = CabanaSimulation(CabanaConfig(nx=2, ny=2, nz=8, ppc=0))
    seed_standing_wave(sim, mode=2, amplitude=0.5)
    ex = sim.e.data[:, 0]
    assert ex.max() <= 0.5 + 1e-12
    assert ex.min() < 0   # mode 2 has sign changes
