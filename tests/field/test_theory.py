"""Plasma theory helpers."""
import math

import numpy as np
import pytest

from repro.field import (fastest_growing_mode, fit_exponential_rate,
                         plasma_frequency, two_stream_growth_rate)


def test_plasma_frequency():
    assert plasma_frequency(1.0) == pytest.approx(1.0)
    assert plasma_frequency(4.0, mass=4.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        plasma_frequency(-1.0)


def test_growth_rate_stable_regime():
    # large k·v0 is stable
    assert two_stream_growth_rate(k=100.0, v0=1.0, wp=1.0) == 0.0


def test_growth_rate_unstable_regime():
    g = two_stream_growth_rate(k=0.5, v0=1.0, wp=1.0)
    assert g > 0


def test_max_growth_at_fastest_mode():
    wp, v0 = 1.0, 0.2
    k_star = fastest_growing_mode(v0, wp)
    g_star = two_stream_growth_rate(k_star, v0, wp)
    assert g_star == pytest.approx(wp / math.sqrt(8.0), rel=1e-12)
    for k in (0.5 * k_star, 1.5 * k_star):
        assert two_stream_growth_rate(k, v0, wp) < g_star


def test_fit_exponential_rate():
    t = np.linspace(0.0, 5.0, 50)
    e = 3.0 * np.exp(0.7 * t)
    assert fit_exponential_rate(t, e) == pytest.approx(0.7, rel=1e-10)
    with pytest.raises(ValueError):
        fit_exponential_rate(t, -e)
    with pytest.raises(ValueError):
        fit_exponential_rate(t[:5], e)
