"""Plasma theory helpers."""
import math

import numpy as np
import pytest

from repro.field import (fastest_growing_mode, fit_exponential_rate,
                         plasma_frequency, two_stream_growth_rate)


def test_plasma_frequency():
    assert plasma_frequency(1.0) == pytest.approx(1.0)
    assert plasma_frequency(4.0, mass=4.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        plasma_frequency(-1.0)


def test_growth_rate_stable_regime():
    # large k·v0 is stable
    assert two_stream_growth_rate(k=100.0, v0=1.0, wp=1.0) == 0.0


def test_growth_rate_unstable_regime():
    g = two_stream_growth_rate(k=0.5, v0=1.0, wp=1.0)
    assert g > 0


def test_max_growth_at_fastest_mode():
    wp, v0 = 1.0, 0.2
    k_star = fastest_growing_mode(v0, wp)
    g_star = two_stream_growth_rate(k_star, v0, wp)
    assert g_star == pytest.approx(wp / math.sqrt(8.0), rel=1e-12)
    for k in (0.5 * k_star, 1.5 * k_star):
        assert two_stream_growth_rate(k, v0, wp) < g_star


def test_fit_exponential_rate():
    t = np.linspace(0.0, 5.0, 50)
    e = 3.0 * np.exp(0.7 * t)
    assert fit_exponential_rate(t, e) == pytest.approx(0.7, rel=1e-10)
    with pytest.raises(ValueError):
        fit_exponential_rate(t, -e)
    with pytest.raises(ValueError):
        fit_exponential_rate(t[:5], e)


def test_landau_root_benchmark_points():
    """Exact kinetic roots at the textbook kλD points (ωp = vth = 1):
    values from the standard tabulation of the Langmuir dispersion."""
    from repro.field import landau_damping_rate, landau_frequency, landau_root
    w = landau_root(0.5)
    assert w.real == pytest.approx(1.41566, abs=2e-5)
    assert -w.imag == pytest.approx(0.153359, abs=2e-6)
    assert landau_damping_rate(0.3) == pytest.approx(0.012620, abs=2e-6)
    assert landau_damping_rate(0.4) == pytest.approx(0.066128, abs=2e-6)
    assert landau_frequency(0.5) == pytest.approx(1.41566, abs=2e-5)


def test_landau_root_scales_with_plasma_parameters():
    """ω scales linearly with ωp at fixed kλD (k rescaled with vth)."""
    from repro.field import landau_root
    base = landau_root(0.5, vth=1.0, wp=1.0)
    scaled = landau_root(1.0, vth=1.0, wp=2.0)   # same kλD = 0.5
    assert scaled.real == pytest.approx(2.0 * base.real, rel=1e-10)
    assert scaled.imag == pytest.approx(2.0 * base.imag, rel=1e-10)


def test_landau_root_weak_damping_limit():
    """Small kλD: damping vanishes and ω approaches Bohm–Gross."""
    from repro.field import landau_damping_rate, landau_frequency
    assert landau_damping_rate(0.1) < 1e-10
    assert landau_frequency(0.1) == pytest.approx(
        math.sqrt(1.0 + 3.0 * 0.01), rel=1e-3)


def test_landau_root_rejects_bad_args():
    from repro.field import landau_root
    for bad in ({"k": -0.5}, {"k": 0.5, "vth": 0.0},
                {"k": 0.5, "wp": -1.0}):
        with pytest.raises(ValueError):
            landau_root(**bad)
