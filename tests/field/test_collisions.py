"""Monte-Carlo collisions: statistics and invariants."""
import numpy as np
import pytest

from repro.core.api import Context, decl_dat, decl_particle_set, decl_set, \
    push_context
from repro.field.collisions import MCCollisions


def make_swarm(n, vel0=(1.0, 0.0, 0.0)):
    cells = decl_set(4)
    p = decl_particle_set(cells, n)
    vel = decl_dat(p, 3, np.float64, np.tile(vel0, (n, 1)))
    return p, vel


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_speed_preserved(backend, rng):
    with push_context(Context(backend)):
        p, vel = make_swarm(500, (0.6, -0.8, 0.0))
        mcc = MCCollisions(p, vel, frequency=50.0, dt=0.1, seed=2)
        scattered = mcc.apply()
        assert scattered > 400          # p = 1 - e^-5 ≈ 0.993
        speeds = np.linalg.norm(vel.data, axis=1)
        np.testing.assert_allclose(speeds, 1.0, rtol=1e-12)


def test_collision_rate_matches_probability():
    with push_context(Context("vec")):
        p, vel = make_swarm(20_000)
        mcc = MCCollisions(p, vel, frequency=1.0, dt=0.5, seed=3)
        expected = 1.0 - np.exp(-0.5)
        scattered = mcc.apply()
        assert scattered / p.size == pytest.approx(expected, abs=0.02)
        assert mcc.total_collisions == scattered


def test_isotropization():
    """A beam relaxes to zero mean velocity under frequent collisions."""
    with push_context(Context("vec")):
        p, vel = make_swarm(20_000, (1.0, 0.0, 0.0))
        mcc = MCCollisions(p, vel, frequency=100.0, dt=1.0, seed=4)
        for _ in range(3):
            mcc.apply()
        mean = vel.data.mean(axis=0)
        assert np.linalg.norm(mean) < 0.03
        # energy unchanged by elastic heavy-target scattering
        assert (np.linalg.norm(vel.data, axis=1) ** 2).mean() == \
            pytest.approx(1.0, rel=1e-12)


def test_zero_frequency_never_scatters():
    with push_context(Context("vec")):
        p, vel = make_swarm(100)
        mcc = MCCollisions(p, vel, frequency=0.0, dt=1.0)
        assert mcc.apply() == 0
        np.testing.assert_array_equal(vel.data[:, 0], 1.0)


def test_seq_vec_same_draws_same_result():
    out = {}
    for backend in ("seq", "vec"):
        with push_context(Context(backend)):
            p, vel = make_swarm(200, (0.0, 0.0, 2.0))
            mcc = MCCollisions(p, vel, frequency=5.0, dt=0.2, seed=9)
            mcc.apply()
            out[backend] = vel.data.copy()
    np.testing.assert_allclose(out["seq"], out["vec"], rtol=1e-13)


def test_validation():
    cells = decl_set(2)
    p = decl_particle_set(cells, 3)
    wrong_dim = decl_dat(p, 2, np.float64)
    with pytest.raises(ValueError):
        MCCollisions(p, wrong_dim, 1.0, 0.1)
    vel = decl_dat(p, 3, np.float64)
    with pytest.raises(ValueError):
        MCCollisions(p, vel, -1.0, 0.1)
    with pytest.raises(ValueError):
        MCCollisions(p, vel, 1.0, 0.0)


def test_empty_set_noop():
    with push_context(Context("vec")):
        cells = decl_set(2)
        p = decl_particle_set(cells, 0)
        vel = decl_dat(p, 3, np.float64)
        mcc = MCCollisions(p, vel, 1.0, 0.1)
        assert mcc.apply() == 0


# -- ionization -----------------------------------------------------------------

from repro.field.collisions import MCCIonization  # noqa: E402


def make_energetic_swarm(n, speed=3.0):
    cells = decl_set(4)
    p = decl_particle_set(cells, n)
    from repro.core.api import decl_map
    p2c = decl_map(p, cells, 1,
                   (np.arange(n) % 4).reshape(-1, 1))
    vel = decl_dat(p, 3, np.float64,
                   np.tile([speed, 0.0, 0.0], (n, 1)))
    pos = decl_dat(p, 3, np.float64,
                   np.arange(3.0 * n).reshape(n, 3))
    return p, p2c, vel, pos


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_ionization_creates_secondaries(backend):
    with push_context(Context(backend)):
        p, p2c, vel, pos = make_energetic_swarm(300)
        ion = MCCIonization(p, vel, p2c, frequency=50.0, dt=0.1,
                            threshold=1.0, energy_cost=1.0, seed=6,
                            extra_dats=[pos])
        born = ion.apply()
        assert born > 250                    # p ≈ 0.993, KE = 4.5 > 1
        assert p.size == 300 + born
        # secondaries inherit cell and position from their parents
        assert (p2c.p2c[300:] >= 0).all()
        parents_ke = 0.5 * (vel.data[:300] ** 2).sum(axis=1)
        np.testing.assert_allclose(parents_ke[parents_ke < 4.0],
                                   4.5 - 1.0, rtol=1e-12)
        secondary_ke = 0.5 * (vel.data[300:] ** 2).sum(axis=1)
        assert secondary_ke.mean() < 0.1     # born slow


def test_no_ionization_below_threshold():
    with push_context(Context("vec")):
        p, p2c, vel, pos = make_energetic_swarm(100, speed=0.5)
        ion = MCCIonization(p, vel, p2c, frequency=100.0, dt=1.0,
                            threshold=1.0, energy_cost=0.5)
        assert ion.apply() == 0
        assert p.size == 100


def test_ionization_energy_bookkeeping():
    """Total kinetic energy drops by ~cost per event (secondaries are
    born almost at rest)."""
    with push_context(Context("vec")):
        p, p2c, vel, pos = make_energetic_swarm(500)
        ke_before = 0.5 * (vel.data ** 2).sum()
        ion = MCCIonization(p, vel, p2c, frequency=2.0, dt=0.25,
                            threshold=1.0, energy_cost=1.0, seed=1)
        born = ion.apply()
        ke_after = 0.5 * (vel.data ** 2).sum()
        assert born > 0
        assert ke_after == pytest.approx(ke_before - born, rel=0.02)


def test_ionization_validation():
    p, p2c, vel, pos = make_energetic_swarm(4)
    with pytest.raises(ValueError):
        MCCIonization(p, vel, p2c, 1.0, 0.1, threshold=1.0,
                      energy_cost=2.0)      # cost above threshold
    with pytest.raises(ValueError):
        MCCIonization(p, vel, p2c, -1.0, 0.1, threshold=1.0,
                      energy_cost=0.5)
