"""Velocity-moment diagnostics: conservation-level checks."""
import numpy as np
import pytest

from repro.core.api import (Context, decl_dat, decl_map,
                            decl_particle_set, decl_set, push_context)
from repro.field.diagnostics import VelocityMoments


def make_world(n_cells=4, n_parts=200, seed=0, vol=2.0):
    rng = np.random.default_rng(seed)
    cells = decl_set(n_cells)
    p = decl_particle_set(cells, n_parts)
    p2c = decl_map(p, cells, 1, rng.integers(0, n_cells,
                                             size=(n_parts, 1)))
    vel = decl_dat(p, 3, np.float64, rng.normal(size=(n_parts, 3)))
    return cells, p, p2c, vel, rng


@pytest.mark.parametrize("backend", ["seq", "vec", "hip"])
def test_counts_and_density(backend):
    with push_context(Context(backend)):
        cells, p, p2c, vel, _ = make_world(vol=2.0)
        vm = VelocityMoments(p, vel, p2c, cell_volumes=2.0, weight=10.0)
        vm.compute()
        counts = np.bincount(p2c.p2c, minlength=cells.size)
        np.testing.assert_allclose(vm.count.data[:, 0], counts)
        np.testing.assert_allclose(vm.number_density,
                                   counts * 10.0 / 2.0)


def test_momentum_matches_numpy():
    with push_context(Context("vec")):
        cells, p, p2c, vel, _ = make_world()
        vm = VelocityMoments(p, vel, p2c, cell_volumes=1.0)
        vm.compute()
        for c in range(cells.size):
            sel = p2c.p2c == c
            np.testing.assert_allclose(vm.momentum.data[c],
                                       vel.data[sel].sum(axis=0),
                                       atol=1e-12)
            if sel.any():
                np.testing.assert_allclose(vm.mean_velocity[c],
                                           vel.data[sel].mean(axis=0),
                                           atol=1e-12)


def test_global_kinetic_energy():
    with push_context(Context("vec")):
        _, p, p2c, vel, _ = make_world()
        vm = VelocityMoments(p, vel, p2c, cell_volumes=1.0, mass=2.0)
        vm.compute()
        expected = 0.5 * 2.0 * (vel.data ** 2).sum()
        assert float(vm.total_ke.value) == pytest.approx(expected,
                                                         rel=1e-12)
        # per-cell KE sums to the global value
        assert vm.ke.data.sum() == pytest.approx(expected, rel=1e-12)


def test_temperature_of_drifting_maxwellian():
    """kT recovered from a drifting thermal population (drift removed)."""
    with push_context(Context("vec")):
        rng = np.random.default_rng(5)
        cells = decl_set(1)
        n = 200_000
        p = decl_particle_set(cells, n)
        p2c = decl_map(p, cells, 1, np.zeros((n, 1), dtype=int))
        kt = 0.25
        v = rng.normal(0.0, np.sqrt(kt), size=(n, 3))
        v[:, 2] += 3.0  # drift must not contaminate the temperature
        vel = decl_dat(p, 3, np.float64, v)
        vm = VelocityMoments(p, vel, p2c, cell_volumes=1.0)
        vm.compute()
        assert vm.temperature[0] == pytest.approx(kt, rel=0.02)
        assert vm.mean_velocity[0, 2] == pytest.approx(3.0, rel=0.01)


def test_empty_cells_are_zero_not_nan():
    with push_context(Context("vec")):
        cells = decl_set(3)
        p = decl_particle_set(cells, 2)
        p2c = decl_map(p, cells, 1, [[0], [0]])
        vel = decl_dat(p, 3, np.float64, np.ones((2, 3)))
        vm = VelocityMoments(p, vel, p2c, cell_volumes=1.0)
        vm.compute()
        assert np.isfinite(vm.mean_velocity).all()
        assert (vm.mean_velocity[1:] == 0).all()
        assert (vm.temperature[1:] == 0).all()


def test_validation():
    cells = decl_set(2)
    p = decl_particle_set(cells, 2)
    p2c = decl_map(p, cells, 1, [[0], [1]])
    bad_vel = decl_dat(p, 2, np.float64)
    with pytest.raises(ValueError):
        VelocityMoments(p, bad_vel, p2c, cell_volumes=1.0)
    vel = decl_dat(p, 3, np.float64)
    with pytest.raises(ValueError):
        VelocityMoments(p, vel, p2c, cell_volumes=0.0)
