"""Connectivity maps: validation, particle maps, growth."""
import numpy as np
import pytest

from repro.core.api import decl_map, decl_particle_set, decl_set


def test_mesh_map_basics():
    cells = decl_set(2)
    nodes = decl_set(4)
    m = decl_map(cells, nodes, 2, [[0, 1], [2, 3]])
    assert m.values.shape == (2, 2)
    assert not m.is_particle_map


def test_mesh_map_accepts_flat_data():
    cells = decl_set(2)
    nodes = decl_set(4)
    m = decl_map(cells, nodes, 2, [0, 1, 2, 3])
    assert m.values[1].tolist() == [2, 3]


def test_mesh_map_requires_data():
    cells = decl_set(2)
    nodes = decl_set(4)
    with pytest.raises(ValueError):
        decl_map(cells, nodes, 2, None)


def test_map_index_bounds_checked():
    cells = decl_set(2)
    nodes = decl_set(4)
    with pytest.raises(ValueError):
        decl_map(cells, nodes, 2, [[0, 1], [2, 4]])  # 4 out of range
    with pytest.raises(ValueError):
        decl_map(cells, nodes, 2, [[0, -2], [1, 2]])  # below -1


def test_minus_one_means_boundary():
    cells = decl_set(2)
    m = decl_map(cells, cells, 2, [[-1, 1], [0, -1]])
    assert m.values[0, 0] == -1


def test_particle_map_rules():
    cells = decl_set(3)
    other = decl_set(3)
    p = decl_particle_set(cells, 2)
    with pytest.raises(ValueError):
        decl_map(p, cells, 2, None)       # arity must be 1
    with pytest.raises(ValueError):
        decl_map(p, other, 1, None)       # must target the cell set
    m = decl_map(p, cells, 1, [[0], [2]])
    assert m.is_particle_map
    assert m.p2c.tolist() == [0, 2]
    assert p.p2c_map is m


def test_particle_map_null_decl_defaults_minus_one():
    cells = decl_set(3)
    p = decl_particle_set(cells, 2)
    m = decl_map(p, cells, 1, None)
    assert m.p2c.tolist() == [-1, -1]


def test_p2c_accessor_rejects_mesh_maps():
    cells = decl_set(2)
    nodes = decl_set(2)
    m = decl_map(cells, nodes, 1, [[0], [1]])
    with pytest.raises(TypeError):
        _ = m.p2c


def test_particle_map_grows_with_set():
    cells = decl_set(3)
    p = decl_particle_set(cells, 1)
    m = decl_map(p, cells, 1, [[1]])
    p.add_particles(500, cell_indices=np.full(500, 2))
    assert m.p2c[0] == 1
    assert (m.p2c[1:] == 2).all()


def test_arity_must_be_positive():
    cells = decl_set(2)
    nodes = decl_set(2)
    with pytest.raises(ValueError):
        decl_map(cells, nodes, 0, [])
