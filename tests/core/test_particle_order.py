"""Incremental cell-sortedness tracking (:class:`ParticleOrder`).

The tracker is pure bookkeeping plus one cheap O(n) monotone check, so
these tests drive it both directly (hook-level state transitions) and
through the real mutation paths — injection, hole-filling removal,
sorting — asserting the order dirties and re-validates exactly when the
storage layout actually changes.
"""
import numpy as np
import pytest

from repro.core.api import (ParticleOrder, decl_dat, decl_map,
                            decl_particle_set, decl_set, shuffle_particles,
                            sort_particles_by_cell)


def make(cell_ids):
    cells = decl_set(int(max(cell_ids)) + 1 if len(cell_ids) else 1)
    p = decl_particle_set(cells, len(cell_ids))
    m = decl_map(p, cells, 1, np.asarray(cell_ids).reshape(-1, 1))
    d = decl_dat(p, 1, np.float64, np.arange(float(len(cell_ids))))
    return cells, p, m, d


def test_fresh_set_is_unsorted():
    _, p, _, _ = make([0, 1, 2])
    assert isinstance(p.order, ParticleOrder)
    assert not p.order.claims_sorted
    assert not p.order.is_valid()


def test_sort_marks_valid_and_bumps_epoch():
    _, p, m, _ = make([2, 0, 1, 0])
    epoch = p.order.sort_epoch
    sort_particles_by_cell(p)
    assert p.order.claims_sorted
    assert p.order.is_valid()
    assert p.order.sort_epoch == epoch + 1
    assert p.order.dirty == 0
    assert (np.diff(m.p2c) >= 0).all()


def test_is_valid_verdict_is_cached_per_mutation_state():
    _, p, _, _ = make([1, 0, 2])
    sort_particles_by_cell(p)
    assert p.order.is_valid()
    state = (p.order.mutations, p.size)
    assert p.order._verified_at == state
    # a second call with no mutations hits the cached verdict
    assert p.order.is_valid()
    assert p.order._verified_at == state


def test_direct_p2c_write_is_caught_by_validation():
    """The DH overlay writes p2c directly, bypassing the hooks; a
    claims-sorted order must still fail the live monotone check."""
    _, p, m, _ = make([0, 1, 2, 3])
    sort_particles_by_cell(p)
    assert p.order.is_valid()
    m.p2c[0] = 3          # silently break monotonicity
    p.order.mutations += 1   # any hooked mutation invalidates the cache
    assert not p.order.is_valid()
    assert not p.order.claims_sorted   # check self-invalidated


def test_note_relocated_dirties_but_zero_is_free():
    _, p, _, _ = make([0, 0, 1, 1])
    sort_particles_by_cell(p)
    p.order.note_relocated(0)
    assert p.order.claims_sorted        # nothing actually moved
    p.order.note_relocated(3)
    assert p.order.dirty == 3
    assert not p.order.claims_sorted
    assert p.order.dirty_fraction == pytest.approx(3 / 4)


def test_dirty_fraction_saturates_at_one():
    _, p, _, _ = make([0, 1])
    p.order.note_relocated(100)
    assert p.order.dirty_fraction == 1.0


def test_invalidate_counts_and_resets():
    _, p, _, _ = make([0, 1, 2])
    sort_particles_by_cell(p)
    p.order.invalidate()
    assert p.order.n_invalidations == 1
    assert p.order.dirty == p.size
    assert not p.order.is_valid()
    # invalidating an already-invalid order is not double-counted
    p.order.invalidate()
    assert p.order.n_invalidations == 1


def test_shuffle_invalidates_order():
    _, p, _, _ = make([0, 0, 1, 1, 2, 2])
    sort_particles_by_cell(p)
    shuffle_particles(p, np.random.default_rng(7))
    assert not p.order.claims_sorted


# -- interleavings through the real mutation paths ----------------------------


def test_injection_dirties_then_resort_revalidates():
    cells = decl_set(4)
    p = decl_particle_set(cells, 0)
    m = decl_map(p, cells, 1, None)
    decl_dat(p, 1, np.float64)
    p.add_particles(6, np.array([0, 0, 1, 2, 3, 3]))
    p.end_injection()
    sort_particles_by_cell(p)
    assert p.order.is_valid()
    # inject into an interior cell: appended at the tail => out of order
    p.add_particles(2, np.array([1, 1]))
    p.end_injection()
    assert p.order.dirty == 2
    assert not p.order.is_valid()
    sort_particles_by_cell(p)
    assert p.order.is_valid()
    assert (np.diff(m.p2c[: p.size]) >= 0).all()


def test_tail_removal_keeps_sorted_hole_fill_dirties():
    _, p, m, _ = make([0, 0, 1, 1, 2, 2])
    sort_particles_by_cell(p)
    # removing the tail fills no holes: order survives
    p.remove_particles(np.array([4, 5]))
    assert p.order.claims_sorted
    assert p.order.is_valid()
    # removing from the middle teleports a tail particle into the hole
    p.remove_particles(np.array([0]))
    assert p.order.dirty >= 1
    assert not p.order.claims_sorted
    sort_particles_by_cell(p)
    assert p.order.is_valid()


def test_sort_with_dead_rows_fails_validation():
    """A sort over -1 (dead) p2c rows leaves them in front: the order may
    claim sorted but must not validate as a usable segment layout."""
    _, p, m, _ = make([1, 0, 2])
    m.p2c[1] = -1
    keys = m.p2c[: p.size]
    p.compact_reorder(np.argsort(keys, kind="stable"))
    p.order.mark_sorted()
    assert p.order.claims_sorted
    assert not p.order.is_valid()      # -1 rows sorted to the front


def test_state_key_distinguishes_mutation_states():
    _, p, _, _ = make([0, 1, 2])
    sort_particles_by_cell(p)
    s0 = p.order.state
    p.order.note_relocated(1)
    s1 = p.order.state
    assert s0 != s1
    sort_particles_by_cell(p)
    assert p.order.state not in (s0, s1)
