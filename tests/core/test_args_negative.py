"""Negative paths of the argument-descriptor layer.

Every ValueError / TypeError branch in :mod:`repro.core.args` not already
covered by ``test_args.py`` gets an explicit test here — descriptor
mistakes must fail at declaration time with a message naming the
offender, never surface as silent corruption inside a backend.
"""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_READ, OPP_RW, OPP_WRITE, arg_dat,
                            decl_dat, decl_global, decl_map,
                            decl_particle_set, decl_set)
from repro.core.args import Arg


@pytest.fixture
def world():
    cells = decl_set(3, "cells")
    nodes = decl_set(5, "nodes")
    faces = decl_set(4, "faces")
    parts = decl_particle_set(cells, 4, "parts")
    other_parts = decl_particle_set(cells, 2, "other_parts")
    c2n = decl_map(cells, nodes, 2, [[0, 1], [1, 2], [3, 4]], "c2n")
    f2n = decl_map(faces, nodes, 2, [[0, 1], [1, 2], [2, 3], [3, 4]],
                   "f2n")
    p2c = decl_map(parts, cells, 1, [[0], [1], [1], [2]], "p2c")
    op2c = decl_map(other_parts, cells, 1, [[0], [1]], "op2c")
    cdat = decl_dat(cells, 1, np.float64, [1.0, 2.0, 3.0], "cdat")
    ndat = decl_dat(nodes, 1, np.float64, np.arange(5.0), "ndat")
    fdat = decl_dat(faces, 1, np.float64, np.arange(4.0), "fdat")
    pdat = decl_dat(parts, 1, np.float64, np.arange(4.0), "pdat")
    g = decl_global(1, np.float64, None, "g")
    return locals()


# -- Arg.__init__ --------------------------------------------------------------


def test_access_must_be_access_mode(world):
    with pytest.raises(TypeError, match="AccessMode"):
        Arg(world["cdat"], "read")
    with pytest.raises(TypeError, match="AccessMode"):
        Arg(world["ndat"], 3, map_=world["c2n"], map_idx=0)


def test_global_rejects_any_mapping(world):
    with pytest.raises(ValueError, match="no mapping"):
        Arg(world["g"], OPP_READ, map_=world["c2n"], map_idx=0)
    with pytest.raises(ValueError, match="no mapping"):
        Arg(world["g"], OPP_READ, p2c=world["p2c"])


def test_global_rejects_write_modes(world):
    # OPP_WRITE / OPP_RW on a global cannot be given race-free meaning
    with pytest.raises(ValueError, match="READ/INC/MIN/MAX"):
        Arg(world["g"], OPP_WRITE)
    with pytest.raises(ValueError, match="READ/INC/MIN/MAX"):
        Arg(world["g"], OPP_RW)


def test_mesh_map_requires_component_index(world):
    with pytest.raises(ValueError, match="component index"):
        Arg(world["ndat"], OPP_READ, map_=world["c2n"])


def test_mesh_map_index_bounds(world):
    with pytest.raises(IndexError, match="out of range"):
        Arg(world["ndat"], OPP_READ, map_=world["c2n"], map_idx=5)
    with pytest.raises(IndexError, match="out of range"):
        Arg(world["ndat"], OPP_READ, map_=world["c2n"], map_idx=-1)


def test_particle_map_rejected_as_mesh_map_via_arg(world):
    with pytest.raises(ValueError, match="p2c"):
        Arg(world["cdat"], OPP_READ, map_=world["p2c"], map_idx=0)


# -- arg_dat form parsing ------------------------------------------------------


def test_arg_dat_last_argument_not_access_mode(world):
    with pytest.raises(TypeError, match="access mode"):
        arg_dat(world["ndat"], 0, world["c2n"], world["p2c"])


def test_arg_dat_single_map_form_needs_particle_map(world):
    with pytest.raises(TypeError, match="particle-to-cell"):
        arg_dat(world["cdat"], world["c2n"], OPP_READ)   # mesh map
    with pytest.raises(TypeError, match="particle-to-cell"):
        arg_dat(world["cdat"], 0, OPP_READ)              # not a map at all


def test_arg_dat_too_many_arguments(world):
    with pytest.raises(TypeError, match="unsupported argument form"):
        arg_dat(world["ndat"], 0, world["c2n"], world["p2c"], None,
                OPP_READ)


# -- validate_against ----------------------------------------------------------


def test_indirect_map_must_land_on_dat_set(world):
    a = arg_dat(world["fdat"], 0, world["c2n"], OPP_READ)
    with pytest.raises(ValueError, match="does not land on"):
        a.validate_against(world["cells"])


def test_p2c_map_must_start_at_iterset(world):
    a = arg_dat(world["cdat"], world["op2c"], OPP_READ)
    with pytest.raises(ValueError, match="must start at the particle"):
        a.validate_against(world["parts"])


def test_p2c_dat_must_live_on_cell_set(world):
    a = arg_dat(world["ndat"], world["p2c"], OPP_READ)
    with pytest.raises(ValueError, match="cell set"):
        a.validate_against(world["parts"])


def test_double_p2c_must_start_at_iterset(world):
    a = arg_dat(world["ndat"], 0, world["c2n"], world["op2c"], OPP_INC)
    with pytest.raises(ValueError, match="must start at the particle"):
        a.validate_against(world["parts"])


def test_double_mesh_map_must_start_at_cells(world):
    a = arg_dat(world["ndat"], 0, world["f2n"], world["p2c"], OPP_INC)
    with pytest.raises(ValueError, match="must start at the cell set"):
        a.validate_against(world["parts"])


def test_double_mesh_map_must_land_on_dat_set(world):
    a = arg_dat(world["fdat"], 0, world["c2n"], world["p2c"], OPP_INC)
    with pytest.raises(ValueError, match="does not land on"):
        a.validate_against(world["parts"])


# -- describe() (the string sanitizer reports lean on) -------------------------


def test_describe_names_every_addressing_layer(world):
    d = arg_dat(world["ndat"], 0, world["c2n"], world["p2c"],
                OPP_INC).describe(2)
    assert "arg 2" in d and "'ndat'" in d
    assert "c2n[0]" in d and "o p2c" in d and "OPP_INC" in d
    assert arg_dat(world["pdat"], OPP_READ).describe().startswith("arg (")
