"""Auxiliary particle operations: sorting, shuffling, occupancy."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import (decl_dat, decl_map, decl_particle_set, decl_set,
                            shuffle_particles, sort_particles_by_cell)
from repro.core.particles import cell_occupancy, max_cell_occupancy


def make(cell_ids):
    cells = decl_set(int(max(cell_ids)) + 1 if len(cell_ids) else 1)
    p = decl_particle_set(cells, len(cell_ids))
    m = decl_map(p, cells, 1, np.asarray(cell_ids).reshape(-1, 1))
    d = decl_dat(p, 1, np.float64, np.arange(float(len(cell_ids))))
    return cells, p, m, d


def test_sort_groups_cells_contiguously():
    _, p, m, d = make([2, 0, 1, 0, 2, 1])
    sort_particles_by_cell(p)
    assert m.p2c.tolist() == [0, 0, 1, 1, 2, 2]
    # stable: original relative order preserved within each cell
    assert d.data[:, 0].tolist() == [1.0, 3.0, 2.0, 5.0, 0.0, 4.0]


def test_shuffle_preserves_pairing():
    _, p, m, d = make([0, 1, 2, 3, 0, 1])
    before = {(int(c), float(v)) for c, v in zip(m.p2c, d.data[:, 0])}
    shuffle_particles(p, np.random.default_rng(3))
    after = {(int(c), float(v)) for c, v in zip(m.p2c, d.data[:, 0])}
    assert before == after


def test_occupancy_counts():
    _, p, m, _ = make([0, 0, 2, 2, 2, 1])
    occ = cell_occupancy(p)
    assert occ.tolist() == [2, 1, 3]
    assert max_cell_occupancy(p) == 3


def test_occupancy_ignores_unassigned():
    _, p, m, _ = make([0, 1, 1])
    m.p2c[0] = -1
    assert cell_occupancy(p).tolist() == [0, 2]


def test_sort_requires_p2c_map():
    cells = decl_set(2)
    p = decl_particle_set(cells, 2)
    with pytest.raises(ValueError):
        sort_particles_by_cell(p)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
def test_sort_is_permutation_and_sorted(cell_ids):
    _, p, m, d = make(cell_ids)
    sort_particles_by_cell(p)
    assert (np.diff(m.p2c) >= 0).all()
    assert sorted(d.data[:, 0].astype(int).tolist()) == \
        list(range(len(cell_ids)))
