"""Dats and globals: shapes, views, growth, validation."""
import numpy as np
import pytest

from repro.core.api import (decl_dat, decl_global, decl_particle_set,
                            decl_set)


def test_dat_zero_initialised():
    s = decl_set(5)
    d = decl_dat(s, 3, np.float64)
    assert d.data.shape == (5, 3)
    assert (d.data == 0).all()


def test_dat_accepts_flat_and_2d_data():
    s = decl_set(4)
    d1 = decl_dat(s, 1, np.float64, [1.0, 2.0, 3.0, 4.0])
    assert d1.data[:, 0].tolist() == [1.0, 2.0, 3.0, 4.0]
    d2 = decl_dat(s, 2, np.float64, np.arange(8.0).reshape(4, 2))
    assert d2.data[3, 1] == 7.0


def test_dat_shape_mismatch_raises():
    s = decl_set(4)
    with pytest.raises(ValueError):
        decl_dat(s, 2, np.float64, np.zeros((3, 2)))


def test_dat_dim_must_be_positive():
    s = decl_set(4)
    with pytest.raises(ValueError):
        decl_dat(s, 0, np.float64)


def test_dat_dtype_names():
    s = decl_set(2)
    assert decl_dat(s, 1, "real").dtype == np.float64
    assert decl_dat(s, 1, "int").dtype == np.int64
    with pytest.raises(ValueError):
        decl_dat(s, 1, "quaternion")


def test_data_ro_is_readonly_view():
    s = decl_set(3)
    d = decl_dat(s, 1, np.float64, [1.0, 2.0, 3.0])
    ro = d.data_ro
    with pytest.raises(ValueError):
        ro[0] = 9.0
    d.data[0] = 9.0
    assert ro[0, 0] == 9.0  # a view, not a copy


def test_particle_dat_tracks_live_region():
    cells = decl_set(2)
    p = decl_particle_set(cells, 2)
    d = decl_dat(p, 1, np.float64, [5.0, 6.0])
    assert d.data.shape == (2, 1)
    p.add_particles(3)
    assert d.data.shape == (5, 1)
    assert d.data[:2, 0].tolist() == [5.0, 6.0]


def test_dat_growth_preserves_content():
    cells = decl_set(2)
    p = decl_particle_set(cells, 2)
    d = decl_dat(p, 2, np.float64, [[1, 2], [3, 4]])
    p.add_particles(1000)
    assert d.data[0].tolist() == [1.0, 2.0]
    assert d.data[1].tolist() == [3.0, 4.0]


def test_copy_from():
    s = decl_set(3)
    a = decl_dat(s, 1, np.float64, [1.0, 2.0, 3.0])
    b = decl_dat(s, 1, np.float64)
    b.copy_from(a)
    assert b.data[:, 0].tolist() == [1.0, 2.0, 3.0]
    other = decl_set(4)
    c = decl_dat(other, 1, np.float64)
    with pytest.raises(ValueError):
        c.copy_from(a)


def test_global_scalar():
    g = decl_global(1, np.float64, data=[2.5], name="g")
    assert g.value == 2.5
    g2 = decl_global(3)
    with pytest.raises(ValueError):
        _ = g2.value
