"""Context and backend selection."""
import pytest

from repro.backends import (DeviceBackend, OmpBackend, SeqBackend,
                            VecBackend, available_backends, make_backend)
from repro.core.api import Context, get_context, push_context, set_backend


def test_registry_names():
    assert {"seq", "vec", "omp", "cuda", "hip", "xe"} <= \
        set(available_backends())


def test_make_backend_types():
    assert isinstance(make_backend("seq"), SeqBackend)
    assert isinstance(make_backend("vec"), VecBackend)
    assert isinstance(make_backend("omp"), OmpBackend)
    cuda = make_backend("cuda")
    hip = make_backend("hip")
    assert isinstance(cuda, DeviceBackend) and cuda.kind == "cuda"
    assert isinstance(hip, DeviceBackend) and hip.kind == "hip"


def test_unknown_backend_raises():
    with pytest.raises(ValueError):
        make_backend("fpga")


def test_device_strategy_defaults():
    assert make_backend("cuda").strategy_name == "atomics"
    assert make_backend("hip").strategy_name == "unsafe_atomics"
    sr = make_backend("hip", strategy="segmented_reduction")
    assert sr.strategy_name == "segmented_reduction"


def test_omp_threads_option():
    be = make_backend("omp", nthreads=8)
    assert be.nthreads == 8
    assert be.strategy.nthreads == 8


def test_push_context_restores():
    outer = get_context()
    inner = Context("vec")
    with push_context(inner):
        assert get_context() is inner
    assert get_context() is outer


def test_set_backend_switches_global():
    before = get_context().backend_name
    try:
        ctx = set_backend("omp", nthreads=2)
        assert ctx.backend_name == "omp"
        assert get_context().backend.nthreads == 2
    finally:
        set_backend(before)
