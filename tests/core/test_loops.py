"""par_loop semantics across backends: direct, indirect, double-indirect,
globals, injected iteration, owner-compute windows."""
import numpy as np
import pytest

from repro.core.api import (CONST, OPP_INC, OPP_ITERATE_ALL,
                            OPP_ITERATE_INJECTED, OPP_MAX, OPP_MIN,
                            OPP_READ, OPP_RW, OPP_WRITE, Context, arg_dat,
                            arg_gbl, decl_const, decl_dat, decl_global,
                            decl_map, decl_particle_set, decl_set, par_loop,
                            push_context)

BACKENDS = ["seq", "vec", "omp", "cuda", "hip"]


def double_kernel(x, y):
    y[0] = 2.0 * x[0]


def scale_by_const_kernel(x):
    x[0] = x[0] * CONST.alpha


def gather_sum_kernel(out, a, b):
    out[0] = a[0] + b[0]


def deposit_kernel(w, n0, n1):
    n0[0] += 0.6 * w[0]
    n1[0] += 0.4 * w[0]


def reduce_kernel(x, total, lo, hi):
    total[0] += x[0]
    lo[0] = min(lo[0], x[0])
    hi[0] = max(hi[0], x[0])


def mark_kernel(x):
    x[0] = 1.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_direct_loop(backend):
    with push_context(Context(backend)):
        s = decl_set(7)
        x = decl_dat(s, 1, np.float64, np.arange(7.0))
        y = decl_dat(s, 1, np.float64)
        par_loop(double_kernel, "double", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
        assert np.allclose(y.data[:, 0], 2.0 * np.arange(7.0))


@pytest.mark.parametrize("backend", BACKENDS)
def test_constants_in_kernels(backend):
    decl_const("alpha", 3.0)
    with push_context(Context(backend)):
        s = decl_set(4)
        x = decl_dat(s, 1, np.float64, [1.0, 2.0, 3.0, 4.0])
        par_loop(scale_by_const_kernel, "scale", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_RW))
        assert x.data[:, 0].tolist() == [3.0, 6.0, 9.0, 12.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_indirect_read(backend):
    with push_context(Context(backend)):
        cells = decl_set(3)
        nodes = decl_set(4)
        c2n = decl_map(cells, nodes, 2, [[0, 1], [1, 2], [2, 3]])
        nd = decl_dat(nodes, 1, np.float64, [1.0, 2.0, 4.0, 8.0])
        out = decl_dat(cells, 1, np.float64)
        par_loop(gather_sum_kernel, "gather", cells, OPP_ITERATE_ALL,
                 arg_dat(out, OPP_WRITE),
                 arg_dat(nd, 0, c2n, OPP_READ),
                 arg_dat(nd, 1, c2n, OPP_READ))
        assert out.data[:, 0].tolist() == [3.0, 6.0, 12.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_double_indirect_increment(backend):
    with push_context(Context(backend)):
        cells = decl_set(2)
        nodes = decl_set(3)
        parts = decl_particle_set(cells, 4)
        c2n = decl_map(cells, nodes, 2, [[0, 1], [1, 2]])
        p2c = decl_map(parts, cells, 1, [[0], [0], [1], [1]])
        w = decl_dat(parts, 1, np.float64, [1.0, 1.0, 1.0, 1.0])
        nd = decl_dat(nodes, 1, np.float64)
        par_loop(deposit_kernel, "deposit", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
        assert np.allclose(nd.data[:, 0], [1.2, 2.0, 0.8])


@pytest.mark.parametrize("backend", BACKENDS)
def test_global_reductions(backend):
    with push_context(Context(backend)):
        s = decl_set(5)
        x = decl_dat(s, 1, np.float64, [3.0, -1.0, 4.0, 1.0, 5.0])
        total = decl_global(1, data=[0.0])
        lo = decl_global(1, data=[np.inf])
        hi = decl_global(1, data=[-np.inf])
        par_loop(reduce_kernel, "reduce", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ),
                 arg_gbl(total, OPP_INC),
                 arg_gbl(lo, OPP_MIN),
                 arg_gbl(hi, OPP_MAX))
        assert total.value == 12.0
        assert lo.value == -1.0
        assert hi.value == 5.0


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_injected_iteration_only_touches_new(backend):
    with push_context(Context(backend)):
        cells = decl_set(2)
        parts = decl_particle_set(cells, 3)
        decl_map(parts, cells, 1, [[0], [0], [1]])
        x = decl_dat(parts, 1, np.float64)
        parts.begin_injection()
        parts.add_particles(2, cell_indices=[0, 1])
        par_loop(mark_kernel, "mark", parts, OPP_ITERATE_INJECTED,
                 arg_dat(x, OPP_WRITE))
        parts.end_injection()
        assert x.data[:, 0].tolist() == [0.0, 0.0, 0.0, 1.0, 1.0]


def test_injected_on_mesh_set_rejected():
    s = decl_set(3)
    x = decl_dat(s, 1, np.float64)
    with pytest.raises(TypeError):
        par_loop(mark_kernel, "mark", s, OPP_ITERATE_INJECTED,
                 arg_dat(x, OPP_WRITE))


@pytest.mark.parametrize("backend", BACKENDS)
def test_owner_compute_window(backend):
    """Loops only touch owned elements; halo rows stay untouched."""
    with push_context(Context(backend)):
        s = decl_set(6)
        s.owned_size = 4
        x = decl_dat(s, 1, np.float64)
        par_loop(mark_kernel, "mark", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_WRITE))
        assert x.data[:, 0].tolist() == [1.0, 1.0, 1.0, 1.0, 0.0, 0.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_set_loop_is_noop(backend):
    with push_context(Context(backend)):
        cells = decl_set(2)
        parts = decl_particle_set(cells, 0)
        x = decl_dat(parts, 1, np.float64)
        par_loop(mark_kernel, "mark", parts, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_WRITE))  # must not raise


def test_loop_records_perf():
    ctx = Context("vec")
    with push_context(ctx):
        s = decl_set(10)
        x = decl_dat(s, 1, np.float64)
        par_loop(mark_kernel, "marker", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_WRITE))
    st = ctx.perf.get("marker")
    assert st is not None
    assert st.calls == 1
    assert st.n_total == 10
    assert st.nbytes > 0
