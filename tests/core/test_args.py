"""Argument descriptors: addressing kinds, validation, index gathering."""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_READ, OPP_RW, OPP_WRITE, arg_dat,
                            arg_gbl, decl_dat, decl_global, decl_map,
                            decl_particle_set, decl_set)
from repro.core.args import ArgKind


@pytest.fixture
def world():
    cells = decl_set(3, "cells")
    nodes = decl_set(5, "nodes")
    parts = decl_particle_set(cells, 4, "parts")
    c2n = decl_map(cells, nodes, 2, [[0, 1], [1, 2], [3, 4]])
    p2c = decl_map(parts, cells, 1, [[0], [1], [1], [2]])
    cdat = decl_dat(cells, 1, np.float64, [10.0, 20.0, 30.0])
    ndat = decl_dat(nodes, 1, np.float64, np.arange(5.0))
    pdat = decl_dat(parts, 1, np.float64, np.arange(4.0))
    return locals()


def test_direct_arg(world):
    a = arg_dat(world["pdat"], OPP_READ)
    assert a.kind == ArgKind.DIRECT
    a.validate_against(world["parts"])
    idx = np.array([0, 2])
    assert a.gather_indices(idx).tolist() == [0, 2]


def test_indirect_arg(world):
    a = arg_dat(world["ndat"], 1, world["c2n"], OPP_READ)
    assert a.kind == ArgKind.INDIRECT
    a.validate_against(world["cells"])
    assert a.gather_indices(np.array([0, 1, 2])).tolist() == [1, 2, 4]


def test_p2c_arg(world):
    a = arg_dat(world["cdat"], world["p2c"], OPP_READ)
    assert a.kind == ArgKind.P2C
    a.validate_against(world["parts"])
    assert a.gather_indices(np.arange(4)).tolist() == [0, 1, 1, 2]


def test_double_indirect_arg(world):
    a = arg_dat(world["ndat"], 0, world["c2n"], world["p2c"], OPP_INC)
    assert a.kind == ArgKind.DOUBLE
    a.validate_against(world["parts"])
    # particle -> cell [0,1,1,2] -> node component 0 -> [0,1,1,3]
    assert a.gather_indices(np.arange(4)).tolist() == [0, 1, 1, 3]


def test_move_hop_cell_override(world):
    a = arg_dat(world["cdat"], world["p2c"], OPP_READ)
    cells = np.array([2, 2, 0, 1])
    assert a.gather_indices(np.arange(4), cells).tolist() == [2, 2, 0, 1]


def test_validation_catches_wrong_sets(world):
    a = arg_dat(world["cdat"], OPP_READ)
    with pytest.raises(ValueError):
        a.validate_against(world["nodes"])
    b = arg_dat(world["ndat"], 0, world["c2n"], OPP_READ)
    with pytest.raises(ValueError):
        b.validate_against(world["nodes"])  # map starts at cells


def test_map_index_range_checked(world):
    with pytest.raises(IndexError):
        arg_dat(world["ndat"], 2, world["c2n"], OPP_READ)


def test_particle_map_not_accepted_as_mesh_map(world):
    with pytest.raises(ValueError):
        arg_dat(world["cdat"], 0, world["p2c"], OPP_READ)


def test_global_arg_modes():
    g = decl_global(1)
    assert arg_gbl(g, OPP_INC).is_global
    with pytest.raises(ValueError):
        arg_gbl(g, OPP_WRITE)
    with pytest.raises(ValueError):
        arg_gbl(g, OPP_RW)


def test_arg_dat_requires_trailing_access(world):
    with pytest.raises(TypeError):
        arg_dat(world["cdat"])
    with pytest.raises(TypeError):
        arg_dat(world["cdat"], 0, world["c2n"])
