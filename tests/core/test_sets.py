"""Sets and particle sets: sizing, capacity, injection, hole filling."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import decl_dat, decl_map, decl_particle_set, decl_set


def test_set_basics():
    s = decl_set(10, "cells")
    assert len(s) == 10
    assert s.owned_size == 10
    assert not s.is_particle_set


def test_set_rejects_negative_size():
    with pytest.raises(ValueError):
        decl_set(-1)


def test_owned_size_clamps():
    s = decl_set(10)
    s.owned_size = 7
    assert s.owned_size == 7
    with pytest.raises(ValueError):
        s.owned_size = 11
    with pytest.raises(ValueError):
        s.owned_size = -1


def test_particle_set_requires_mesh_set():
    cells = decl_set(4)
    p = decl_particle_set(cells, 0, "parts")
    with pytest.raises(TypeError):
        decl_particle_set(p, 0, "parts_on_parts")


def test_particle_owned_size_tracks_size():
    cells = decl_set(4)
    p = decl_particle_set(cells, 3)
    assert p.owned_size == 3
    p.add_particles(5)
    assert p.owned_size == 8


def test_add_particles_grows_capacity_and_zeroes():
    cells = decl_set(4)
    p = decl_particle_set(cells, 0)
    d = decl_dat(p, 2, np.float64)
    m = decl_map(p, cells, 1, None)
    p.add_particles(100, cell_indices=np.zeros(100, dtype=int))
    assert p.size == 100
    assert p.capacity >= 100
    assert (d.data == 0).all()
    assert (m.p2c == 0).all()


def test_add_particles_without_cells_marks_unassigned():
    cells = decl_set(4)
    p = decl_particle_set(cells, 0)
    decl_map(p, cells, 1, None)
    p.add_particles(3)
    assert (p.p2c_map.p2c == -1).all()


def test_injection_window():
    cells = decl_set(4)
    p = decl_particle_set(cells, 5)
    p.begin_injection()
    p.add_particles(3)
    assert p.injected_start == 5
    assert p.n_injected == 3
    p.end_injection()
    assert p.n_injected == 0


def test_remove_particles_hole_fill():
    cells = decl_set(4)
    p = decl_particle_set(cells, 6)
    d = decl_dat(p, 1, np.float64, np.arange(6.0))
    m = decl_map(p, cells, 1, np.arange(6) % 4)
    p.remove_particles(np.array([1, 4]))
    assert p.size == 4
    # survivors are {0,2,3,5} in some order
    assert sorted(d.data[:, 0].tolist()) == [0.0, 2.0, 3.0, 5.0]
    # map rows stayed aligned with dat rows
    assert all(int(m.p2c[i]) == int(d.data[i, 0]) % 4 for i in range(4))


def test_remove_all_particles():
    cells = decl_set(2)
    p = decl_particle_set(cells, 4)
    decl_dat(p, 1, np.float64, np.arange(4.0))
    p.remove_particles(np.arange(4))
    assert p.size == 0


def test_remove_out_of_range_raises():
    cells = decl_set(2)
    p = decl_particle_set(cells, 4)
    with pytest.raises(IndexError):
        p.remove_particles(np.array([4]))


def test_compact_reorder_permutes_all_dats():
    cells = decl_set(3)
    p = decl_particle_set(cells, 4)
    d = decl_dat(p, 1, np.float64, np.arange(4.0))
    m = decl_map(p, cells, 1, [[0], [1], [2], [0]])
    p.compact_reorder(np.array([3, 2, 1, 0]))
    assert d.data[:, 0].tolist() == [3.0, 2.0, 1.0, 0.0]
    assert m.p2c.tolist() == [0, 2, 1, 0]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 50),
       frac=st.floats(0.0, 1.0),
       seed=st.integers(0, 2**16))
def test_remove_particles_preserves_survivor_multiset(n, frac, seed):
    """Property: hole filling never loses or duplicates surviving rows."""
    rng = np.random.default_rng(seed)
    cells = decl_set(4)
    p = decl_particle_set(cells, n)
    d = decl_dat(p, 1, np.float64, np.arange(float(n)))
    kill = np.flatnonzero(rng.random(n) < frac)
    survivors = sorted(set(range(n)) - set(kill.tolist()))
    p.remove_particles(kill)
    assert p.size == len(survivors)
    assert sorted(d.data[:, 0].astype(int).tolist()) == survivors
