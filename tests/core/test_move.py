"""Particle-move semantics: walking, removal, deposits along the path,
foreign-cell pausing, hop accounting — on both elemental and vector
drivers."""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_READ, Context, arg_dat, decl_const,
                            decl_dat, decl_map, decl_particle_set, decl_set,
                            particle_move, push_context)
from repro.core.move import MoveLoop
from repro.core.types import MoveStatus

BACKENDS = ["seq", "vec", "cuda"]


def chain_world(n_cells=6, positions=(0.5, 3.2, 5.9)):
    """1-D chain of unit cells [i, i+1); c2c = [left, right]."""
    cells = decl_set(n_cells)
    c2c_data = [[i - 1, i + 1 if i + 1 < n_cells else -1]
                for i in range(n_cells)]
    c2c = decl_map(cells, cells, 2, c2c_data)
    parts = decl_particle_set(cells, len(positions))
    p2c = decl_map(parts, cells, 1, np.zeros((len(positions), 1), dtype=int))
    pos = decl_dat(parts, 1, np.float64, list(positions))
    visits = decl_dat(cells, 1, np.float64)
    return cells, c2c, parts, p2c, pos, visits


def walk_kernel(move, p):
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


def walk_count_kernel(move, p, v):
    v[0] += 1.0
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


@pytest.mark.parametrize("backend", BACKENDS)
def test_walk_finds_destination_cells(backend):
    with push_context(Context(backend)):
        _, c2c, parts, p2c, pos, _ = chain_world()
        res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                            arg_dat(pos, OPP_READ))
        assert p2c.p2c.tolist() == [0, 3, 5]
        assert res.n_removed == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_out_of_domain_particles_removed(backend):
    with push_context(Context(backend)):
        _, c2c, parts, p2c, pos, _ = chain_world(
            positions=(0.5, 7.5, 2.5))  # 7.5 beyond the chain
        res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                            arg_dat(pos, OPP_READ))
        assert res.n_removed == 1
        assert parts.size == 2
        assert sorted(p2c.p2c.tolist()) == [0, 2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_deposit_along_path_counts_every_cell(backend):
    """INC through the current cell must land once per hop — the
    electromagnetic deposit pattern."""
    with push_context(Context(backend)):
        _, c2c, parts, p2c, pos, visits = chain_world(positions=(3.5,))
        particle_move(walk_count_kernel, "walk", parts, c2c, p2c,
                      arg_dat(pos, OPP_READ),
                      arg_dat(visits, p2c, OPP_INC))
        # particle starts in cell 0, visits 0,1,2,3
        assert visits.data[:, 0].tolist() == [1.0, 1.0, 1.0, 1.0, 0.0, 0.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_hop_accounting(backend):
    with push_context(Context(backend)):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(0.5, 2.5))
        res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                            arg_dat(pos, OPP_READ))
        # 0.5 needs 1 kernel call; 2.5 needs 3 (cells 0,1,2)
        assert res.total_hops == 4


@pytest.mark.parametrize("backend", BACKENDS)
def test_unassigned_particles_skipped(backend):
    with push_context(Context(backend)):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(0.5, 1.5))
        p2c.p2c[1] = -1
        res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                            arg_dat(pos, OPP_READ))
        assert p2c.p2c.tolist() == [0, -1]
        assert parts.size == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_foreign_cell_mask_pauses_walk(backend):
    ctx = Context(backend)
    with push_context(ctx):
        cells, c2c, parts, p2c, pos, _ = chain_world(positions=(4.5,))
        loop = MoveLoop(walk_kernel, "walk", parts, c2c, p2c,
                        [arg_dat(pos, OPP_READ)])
        loop.foreign_cell_mask = np.array([False, False, False,
                                           True, True, True])
        res = ctx.backend.execute_move(loop)
        assert res.n_foreign == 1
        assert res.foreign_cells.tolist() == [3]
        assert p2c.p2c.tolist() == [3]  # paused at the first foreign cell


@pytest.mark.parametrize("backend", BACKENDS)
def test_deferred_removal_returns_indices(backend):
    ctx = Context(backend)
    with push_context(ctx):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(0.5, 9.9))
        loop = MoveLoop(walk_kernel, "walk", parts, c2c, p2c,
                        [arg_dat(pos, OPP_READ)])
        loop.defer_removal = True
        res = ctx.backend.execute_move(loop)
        assert parts.size == 2          # not deleted yet
        assert res.removed_indices.tolist() == [1]
        assert res.n_removed == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_only_indices_restricts_move(backend):
    ctx = Context(backend)
    with push_context(ctx):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(2.5, 3.5))
        loop = MoveLoop(walk_kernel, "walk", parts, c2c, p2c,
                        [arg_dat(pos, OPP_READ)],
                        only_indices=np.array([1]))
        ctx.backend.execute_move(loop)
        assert p2c.p2c.tolist() == [0, 3]  # particle 0 untouched


def test_max_hops_guard():
    decl_const("unused", 0)
    with push_context(Context("seq")):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(5.5,))
        with pytest.raises(RuntimeError):
            particle_move(walk_kernel, "walk", parts, c2c, p2c,
                          arg_dat(pos, OPP_READ), max_hops=2)


def test_move_status_semantics():
    from repro.core.move import MoveContext
    m = MoveContext()
    m.reset(3, np.array([1, 2]), 0)
    assert m.status == MoveStatus.MOVE_DONE
    m.move_to(5)
    assert m.status == MoveStatus.NEED_MOVE and m.next_cell == 5
    m.move_to(-1)
    assert m.status == MoveStatus.NEED_REMOVE
    m.remove()
    assert m.status == MoveStatus.NEED_REMOVE


def test_move_validates_maps():
    cells = decl_set(3)
    nodes = decl_set(3)
    parts = decl_particle_set(cells, 1)
    p2c = decl_map(parts, cells, 1, [[0]])
    bad_map = decl_map(cells, nodes, 1, [[0], [1], [2]])
    pos = decl_dat(parts, 1, np.float64, [0.5])
    with pytest.raises(ValueError):
        particle_move(walk_kernel, "walk", parts, bad_map, p2c,
                      arg_dat(pos, OPP_READ))


def test_move_rejects_global_reductions():
    from repro.core.api import OPP_INC, arg_gbl, decl_global
    with push_context(Context("seq")):
        _, c2c, parts, p2c, pos, _ = chain_world(positions=(0.5,))
        g = decl_global(1)
        with pytest.raises(ValueError):
            particle_move(walk_kernel, "walk", parts, c2c, p2c,
                          arg_dat(pos, OPP_READ), arg_gbl(g, OPP_INC))


def test_bytes_per_hop_model():
    with push_context(Context("seq")):
        _, c2c, parts, p2c, pos, visits = chain_world(positions=(0.5,))
        from repro.core.move import MoveLoop
        loop = MoveLoop(walk_count_kernel, "walk", parts, c2c, p2c,
                        [arg_dat(pos, OPP_READ),
                         arg_dat(visits, p2c, OPP_INC)])
        # p2c read (8) + c2c row (16) + pos read (8) + visits inc (16)
        assert loop.bytes_per_hop() == 8 + 16 + 8 + 16
