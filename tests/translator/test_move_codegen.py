"""Generated move kernels: masked status writes must match elemental
MoveContext semantics lane for lane."""
import numpy as np
import pytest

from repro.core.kernel import Kernel
from repro.core.move import MoveContext
from repro.core.types import MoveStatus
from repro.translator.codegen import VecMoveContext, generate


def run_move_both(fn, cells, c2c_rows, *arrays, hop=0):
    n = cells.shape[0]
    # elemental
    e_status = np.empty(n, dtype=np.int64)
    e_next = np.full(n, -1, dtype=np.int64)
    e_arrays = [a.copy() for a in arrays]
    for i in range(n):
        m = MoveContext()
        m.reset(int(cells[i]), c2c_rows[i], hop)
        fn(m, *[a[i] for a in e_arrays])
        e_status[i] = int(m.status)
        e_next[i] = m.next_cell if m.status == MoveStatus.NEED_MOVE else -1
    # generated
    gen = generate(Kernel(fn))
    assert gen.vectorized
    v = VecMoveContext(cells.copy(), c2c_rows.copy(), hop)
    v_arrays = [a.copy() for a in arrays]
    gen.fn(v, *v_arrays)
    v_next = np.where(v.status == int(MoveStatus.NEED_MOVE), v.next_cell, -1)
    return (e_status, e_next, e_arrays), (v.status, v_next, v_arrays)


def walk3_kernel(move, p):
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


def remove_kernel(move, p):
    if p[0] < 0:
        move.remove()
    else:
        move.done()


def hop_guard_kernel(move, p):
    if move.hop == 0:
        p[1] = p[0] * 2.0
    move.done()


def lane_pick_kernel(move, p):
    face = 0 if p[0] < 0 else 1
    move.move_to(move.c2c[face])


@pytest.mark.parametrize("positions,start_cells", [
    ([0.5, 1.5, 2.7, -0.5], [0, 0, 0, 0]),
    ([3.5, 3.5], [3, 0]),
])
def test_walk_statuses_match(positions, start_cells):
    n_cells = 5
    c2c = np.array([[i - 1, i + 1 if i + 1 < n_cells else -1]
                    for i in range(n_cells)], dtype=np.int64)
    cells = np.array(start_cells, dtype=np.int64)
    p = np.array(positions, dtype=np.float64).reshape(-1, 1)
    (es, en, _), (vs, vn, _) = run_move_both(walk3_kernel, cells,
                                             c2c[cells], p)
    np.testing.assert_array_equal(vs, es)
    np.testing.assert_array_equal(vn, en)


def test_move_to_negative_becomes_remove():
    c2c = np.array([[-1, -1]], dtype=np.int64)
    cells = np.array([0], dtype=np.int64)
    p = np.array([[5.0]])
    (es, _, _), (vs, _, _) = run_move_both(walk3_kernel, cells,
                                           c2c[cells], p)
    assert es[0] == int(MoveStatus.NEED_REMOVE)
    np.testing.assert_array_equal(vs, es)


def test_remove_call():
    c2c = np.zeros((2, 1), dtype=np.int64)
    cells = np.array([0, 0], dtype=np.int64)
    p = np.array([[-1.0], [1.0]])
    (es, _, _), (vs, _, _) = run_move_both(remove_kernel, cells,
                                           c2c[cells], p)
    assert es.tolist() == [int(MoveStatus.NEED_REMOVE),
                           int(MoveStatus.MOVE_DONE)]
    np.testing.assert_array_equal(vs, es)


@pytest.mark.parametrize("hop", [0, 1])
def test_hop_scalar_guard(hop):
    c2c = np.zeros((3, 1), dtype=np.int64)
    cells = np.zeros(3, dtype=np.int64)
    p = np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
    (es, _, ea), (vs, _, va) = run_move_both(hop_guard_kernel, cells,
                                             c2c[cells], p, hop=hop)
    np.testing.assert_array_equal(va[0], ea[0])
    expected = p[:, 0] * 2.0 if hop == 0 else np.zeros(3)
    np.testing.assert_array_equal(va[0][:, 1], expected)


def test_lane_varying_c2c_gather():
    c2c = np.array([[10, 20], [30, 40]], dtype=np.int64)
    cells = np.array([0, 1], dtype=np.int64)
    p = np.array([[-1.0], [1.0]])
    (es, en, _), (vs, vn, _) = run_move_both(lane_pick_kernel, cells,
                                             c2c[cells], p)
    assert en.tolist() == [10, 40]
    np.testing.assert_array_equal(vn, en)
