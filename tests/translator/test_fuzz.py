"""Translator fuzzing: randomly generated kernels in the restricted
language must behave identically elementally and vectorized.

This is the strongest guarantee the DSL can offer — whatever science
source a user writes (inside the subset), the generated parallel program
computes the same thing.
"""
import textwrap

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import Kernel
from repro.translator.codegen import generate

_NAMES = ["a[0]", "a[1]", "a[2]", "b[0]", "b[1]", "t", "u"]
_BINOPS = ["+", "-", "*"]
_CALLS = ["sqrt(abs({}))", "abs({})", "min({}, {})", "max({}, {})",
          "exp(-abs({}))"]


@st.composite
def expressions(draw, locals_=(), depth=0):
    """A random arithmetic expression over params/locals/constants.

    ``locals_`` lists the local names already defined at this point, so
    generated kernels never read an unbound variable."""
    hi = 5 if depth < 3 else 2
    choice = draw(st.integers(0, hi))
    if choice == 0:
        return draw(st.sampled_from(_NAMES[:5]))
    if choice == 1:
        return repr(draw(st.floats(-3, 3, allow_nan=False,
                                   allow_infinity=False)))
    if choice == 2:
        if not locals_:
            return draw(st.sampled_from(_NAMES[:5]))
        return draw(st.sampled_from(list(locals_)))
    if choice == 3:
        left = draw(expressions(locals_, depth + 1))
        right = draw(expressions(locals_, depth + 1))
        op = draw(st.sampled_from(_BINOPS))
        return f"({left} {op} {right})"
    if choice == 4:
        inner = draw(expressions(locals_, depth + 1))
        call = draw(st.sampled_from(_CALLS))
        if call.count("{}") == 2:
            other = draw(expressions(locals_, depth + 1))
            return call.format(inner, other)
        return call.format(inner)
    # guarded division
    num = draw(expressions(locals_, depth + 1))
    den = draw(expressions(locals_, depth + 1))
    return f"({num} / (abs({den}) + 1.0))"


@st.composite
def kernels(draw):
    """A random kernel body: local defs, optional branch, param stores."""
    lines = [f"t = {draw(expressions())}",
             f"u = {draw(expressions(('t',)))}"]
    avail = ("t", "u")
    if draw(st.booleans()):
        cond = (f"{draw(expressions(avail))} > {draw(expressions(avail))}")
        then_store = f"b[{draw(st.integers(0, 1))}] = " \
            f"{draw(expressions(avail))}"
        else_store = f"b[{draw(st.integers(0, 1))}] = " \
            f"{draw(expressions(avail))}"
        lines += [f"if {cond}:", f"    {then_store}",
                  "else:", f"    {else_store}"]
    lines.append(f"b[{draw(st.integers(0, 1))}] = "
                 f"{draw(expressions(avail))}")
    if draw(st.booleans()):
        lines.append(f"b[0] += {draw(expressions(avail))}")
    body = textwrap.indent("\n".join(lines), "    ")
    return f"def fuzz_kernel(a, b):\n{body}\n"


@settings(max_examples=60, deadline=None)
@given(src=kernels(), seed=st.integers(0, 2**16), n=st.integers(1, 40))
def test_random_kernels_agree(src, seed, n):
    ns = {}
    from math import exp, sqrt  # noqa: F401 - elemental execution names
    ns["sqrt"] = sqrt
    ns["exp"] = exp
    exec(compile(src, "<fuzz>", "exec"), ns)
    fn = ns["fuzz_kernel"]

    kernel = Kernel(fn)
    kernel._source = src           # source is synthetic, not on disk
    gen = generate(kernel)
    assert gen.vectorized, f"fuzzed kernel fell back:\n{src}"

    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, 3))
    b = rng.normal(size=(n, 2))
    a_el, b_el = a.copy(), b.copy()
    for i in range(n):
        fn(a_el[i], b_el[i])
    a_vec, b_vec = a.copy(), b.copy()
    gen.fn(a_vec, b_vec)

    np.testing.assert_allclose(b_vec, b_el, rtol=1e-10, atol=1e-10,
                               err_msg=src)
    np.testing.assert_array_equal(a_vec, a_el)   # inputs untouched
