"""Move-kernel fuzzing: random branch trees ending in move-control calls
must behave identically under elemental MoveContext semantics and the
generated masked status-array writes."""
import textwrap

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import Kernel
from repro.core.move import MoveContext
from repro.core.types import MoveStatus
from repro.translator.codegen import VecMoveContext, generate

ARITY = 3


@st.composite
def leaf(draw):
    """One terminal move-control statement."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return "move.done()"
    if kind == 1:
        return "move.remove()"
    if kind == 2:
        return f"move.move_to(move.c2c[{draw(st.integers(0, ARITY - 1))}])"
    # lane-varying neighbour pick
    a = draw(st.integers(0, ARITY - 1))
    b = draw(st.integers(0, ARITY - 1))
    return (f"move.move_to(move.c2c[{a} if p[0] > "
            f"{draw(st.floats(-1, 1, allow_nan=False))!r} else {b}])")


@st.composite
def branch_tree(draw, depth=0):
    """Nested if/else where every path ends in exactly one control call,
    optionally preceded by a deposit increment."""
    lines = []
    if draw(st.booleans()):
        lines.append(f"acc[0] += p[{draw(st.integers(0, 1))}]")
    if depth < 2 and draw(st.booleans()):
        thr = draw(st.floats(-1.5, 1.5, allow_nan=False))
        comp = draw(st.sampled_from(["p[0]", "p[1]", "move.cell * 0.3"]))
        then_b = draw(branch_tree(depth=depth + 1))
        else_b = draw(branch_tree(depth=depth + 1))
        lines.append(f"if {comp} > {thr!r}:")
        lines += ["    " + ln for ln in then_b]
        lines.append("else:")
        lines += ["    " + ln for ln in else_b]
    else:
        lines.append(draw(leaf()))
    return lines


@st.composite
def move_kernels(draw):
    body = textwrap.indent("\n".join(draw(branch_tree())), "    ")
    return f"def fuzz_move(move, p, acc):\n{body}\n"


@settings(max_examples=50, deadline=None)
@given(src=move_kernels(), seed=st.integers(0, 2**16),
       n=st.integers(1, 30))
def test_random_move_kernels_agree(src, seed, n):
    ns = {}
    exec(compile(src, "<fuzz-move>", "exec"), ns)
    fn = ns["fuzz_move"]
    kernel = Kernel(fn)
    kernel._source = src
    gen = generate(kernel)
    assert gen.vectorized, f"fuzzed move kernel fell back:\n{src}"
    assert gen.is_move

    rng = np.random.default_rng(seed)
    cells = rng.integers(0, 6, size=n)
    c2c_rows = rng.integers(-1, 6, size=(n, ARITY))
    p = rng.normal(size=(n, 2))
    acc = rng.normal(size=(n, 1))

    e_status = np.empty(n, dtype=np.int64)
    e_next = np.full(n, -1, dtype=np.int64)
    e_acc = acc.copy()
    for i in range(n):
        m = MoveContext()
        m.reset(int(cells[i]), c2c_rows[i], 0)
        fn(m, p[i], e_acc[i])
        e_status[i] = int(m.status)
        if m.status == MoveStatus.NEED_MOVE:
            e_next[i] = m.next_cell

    v = VecMoveContext(cells.copy(), c2c_rows.copy(), 0)
    v_acc = acc.copy()
    with np.errstate(invalid="ignore"):
        gen.fn(v, p.copy(), v_acc)
    v_next = np.where(v.status == int(MoveStatus.NEED_MOVE),
                      v.next_cell, -1)

    np.testing.assert_array_equal(v.status, e_status, err_msg=src)
    np.testing.assert_array_equal(v_next, e_next, err_msg=src)
    np.testing.assert_allclose(v_acc, e_acc, rtol=1e-12, err_msg=src)
