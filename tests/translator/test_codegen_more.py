"""Additional code-generation coverage: operators, dtypes, globals,
deep nesting, unroll+branch interaction."""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_MIN, OPP_READ,
                            OPP_RW, OPP_WRITE, Context, arg_dat, arg_gbl,
                            decl_dat, decl_global, decl_set, par_loop,
                            push_context)
from repro.core.kernel import Kernel
from repro.translator.codegen import generate


def run_both(fn, *arrays):
    elemental = [a.copy() for a in arrays]
    batch = [a.copy() for a in arrays]
    for i in range(arrays[0].shape[0]):
        fn(*[a[i] for a in elemental])
    gen = generate(Kernel(fn))
    assert gen.vectorized
    gen.fn(*batch)
    return elemental, batch


def mod_floordiv_kernel(a, b):
    b[0] = a[0] % 3.0
    b[1] = a[0] // 2.0


def power_kernel(a, b):
    b[0] = a[0] ** 3
    b[1] = abs(a[0]) ** 0.5


def unroll_with_branch_kernel(a, b):
    for i in range(3):
        if a[i] > 0:
            b[i] = a[i]
        else:
            b[i] = -a[i]


def deep_nest_kernel(a, b):
    if a[0] > 0:
        if a[1] > 0:
            if a[2] > 0:
                b[0] = 3.0
            else:
                b[0] = 2.0
        else:
            b[0] = 1.0
    else:
        b[0] = 0.0


def elif_chain_kernel(a, b):
    if a[0] > 0.75:
        b[0] = 4.0
    elif a[0] > 0.5:
        b[0] = 3.0
    elif a[0] > 0.25:
        b[0] = 2.0
    elif a[0] > 0.0:
        b[0] = 1.0
    else:
        b[0] = 0.0


def augassign_in_branch_kernel(a, b):
    b[0] = 1.0
    if a[0] > 0:
        b[0] += a[0]
        b[0] *= 2.0


@pytest.mark.parametrize("fn", [mod_floordiv_kernel, power_kernel,
                                unroll_with_branch_kernel,
                                deep_nest_kernel, elif_chain_kernel,
                                augassign_in_branch_kernel])
def test_vector_matches_elemental(fn, rng):
    a = rng.normal(size=(64, 3))
    b = np.zeros((64, 3))
    (ea, eb), (ba, bb) = run_both(fn, a, b)
    np.testing.assert_allclose(bb, eb, rtol=1e-13, atol=1e-13)


def int_dat_kernel(counter, flag):
    counter[0] = counter[0] + 1
    if counter[0] > 2:
        flag[0] = 1


@pytest.mark.parametrize("backend", ["seq", "vec", "cuda"])
def test_integer_dats(backend):
    with push_context(Context(backend)):
        s = decl_set(4)
        counter = decl_dat(s, 1, np.int64, [0, 1, 2, 3])
        flag = decl_dat(s, 1, np.int64)
        par_loop(int_dat_kernel, "count", s, OPP_ITERATE_ALL,
                 arg_dat(counter, OPP_RW), arg_dat(flag, OPP_RW))
        assert counter.data[:, 0].tolist() == [1, 2, 3, 4]
        assert flag.data[:, 0].tolist() == [0, 0, 1, 1]
        assert counter.dtype == np.int64


def gbl_read_kernel(x, params):
    x[0] = x[0] * params[0] + params[1]


@pytest.mark.parametrize("backend", ["seq", "vec"])
def test_global_read_broadcast(backend):
    with push_context(Context(backend)):
        s = decl_set(3)
        x = decl_dat(s, 1, np.float64, [1.0, 2.0, 3.0])
        g = decl_global(2, data=[10.0, 5.0])
        par_loop(gbl_read_kernel, "affine", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_RW), arg_gbl(g, OPP_READ))
        assert x.data[:, 0].tolist() == [15.0, 25.0, 35.0]


def masked_reduction_kernel(x, pos_sum, neg_min):
    if x[0] > 0:
        pos_sum[0] += x[0]
    else:
        neg_min[0] = min(neg_min[0], x[0])


@pytest.mark.parametrize("backend", ["seq", "vec", "omp", "cuda"])
def test_reductions_under_masks(backend):
    with push_context(Context(backend)):
        s = decl_set(6)
        x = decl_dat(s, 1, np.float64, [1.0, -2.0, 3.0, -7.0, 5.0, -1.0])
        pos = decl_global(1, data=[0.0])
        neg = decl_global(1, data=[np.inf])
        par_loop(masked_reduction_kernel, "red", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ),
                 arg_gbl(pos, OPP_INC),
                 arg_gbl(neg, OPP_MIN))
        assert pos.value == 9.0
        assert neg.value == -7.0


def test_generated_function_cached():
    k = Kernel(mod_floordiv_kernel)
    assert k.generated("vec") is k.generated("vec")


def test_flop_count_triggers_from_par_loop():
    ctx = Context("vec")
    with push_context(ctx):
        s = decl_set(10)
        a = decl_dat(s, 3, np.float64)
        b = decl_dat(s, 3, np.float64)
        par_loop(power_kernel, "pow", s, OPP_ITERATE_ALL,
                 arg_dat(a, OPP_READ), arg_dat(b, OPP_WRITE))
    st = ctx.perf.get("pow")
    assert st.flops > 0


def read_then_overwrite_kernel(a, b):
    t = b[0]          # must snapshot the value, not alias the column
    b[0] = a[0]
    b[0] += t


def test_local_alias_of_written_param_is_copied(rng):
    """Regression (found by the fuzzer): in vector form ``t = b[0]`` is a
    column *view*; without a copy, the later store to ``b`` would corrupt
    ``t`` and double-count."""
    a = rng.normal(size=(10, 1))
    b = rng.normal(size=(10, 1))
    (ea, eb), (ba, bb) = run_both(read_then_overwrite_kernel, a, b)
    np.testing.assert_allclose(bb, eb, rtol=1e-14)
    gen = generate(Kernel(read_then_overwrite_kernel))
    assert "np.array(b[:, 0])" in gen.source


def read_only_param_not_copied():
    pass


def gather_no_copy_kernel(a, b):
    t = a[0]          # `a` is never written: no defensive copy needed
    b[0] = t + 1.0


def test_unwritten_param_reads_stay_views():
    gen = generate(Kernel(gather_no_copy_kernel))
    assert "np.array(a[:, 0])" not in gen.source
