"""Kernel parser: language acceptance, rejection, unrolling, FLOP counts,
free-name analysis."""
import pytest

from repro.core.kernel import CONST, Kernel
from repro.translator.parser import KernelLanguageError, parse_kernel

GAIN = 2.5  # module constant read by a kernel below


def simple_kernel(a, b):
    b[0] = a[0] + a[1]


def docstring_kernel(a):
    """Docstrings are fine."""
    a[0] = 1.0


def unroll_kernel(a, b):
    for i in range(3):
        b[i] = 2.0 * a[i]


def nested_unroll_kernel(a, b):
    for i in range(2):
        for j in range(2):
            b[0] += a[0] * i * j


def const_kernel(a):
    a[0] = a[0] * CONST.gain


def free_name_kernel(a):
    a[0] = a[0] * GAIN


def branch_kernel(a):
    if a[0] > 0:
        a[1] = 1.0
    else:
        a[1] = -1.0


def move_kernel_ok(move, p):
    if p[0] > 0:
        move.move_to(move.c2c[0])
    else:
        move.done()


def test_simple_parse():
    ir = parse_kernel(Kernel(simple_kernel))
    assert ir.params == ["a", "b"]
    assert not ir.is_move
    assert ir.flop_count == 1.0


def test_docstring_allowed():
    parse_kernel(Kernel(docstring_kernel))


def test_unrolling_multiplies_flops():
    ir = parse_kernel(Kernel(unroll_kernel))
    assert ir.flop_count == 3.0  # one mult per unrolled trip


def test_nested_unroll():
    ir = parse_kernel(Kernel(nested_unroll_kernel))
    # 4 iterations × (add in += counts 1, two mults count 2)
    assert ir.flop_count == 12.0


def test_const_not_a_free_name():
    ir = parse_kernel(Kernel(const_kernel))
    assert ir.free_names == ["CONST"]


def test_module_free_name_detected():
    ir = parse_kernel(Kernel(free_name_kernel))
    assert "GAIN" in ir.free_names


def test_branches_accepted():
    parse_kernel(Kernel(branch_kernel))


def test_move_kernel_detected():
    ir = parse_kernel(Kernel(move_kernel_ok))
    assert ir.is_move
    assert ir.data_params == ["p"]


# -- rejections -----------------------------------------------------------------


def while_kernel(a):
    while a[0] > 0:
        a[0] -= 1.0


def call_kernel(a):
    a[0] = print(a[0])


def return_value_kernel(a):
    return a[0]


def early_return_kernel(a):
    if a[0] > 0:
        return
    a[0] = 1.0


def variable_range_kernel(a, b):
    for i in range(int(a[0])):
        b[0] += 1.0


def comprehension_kernel(a):
    a[0] = sum([x for x in (1, 2)])


def move_call_without_move_param(a):
    a[0] = 1.0
    move.done()  # noqa: F821


def rebind_param_kernel(a):
    a = 1.0  # noqa: F841


@pytest.mark.parametrize("bad", [
    while_kernel, call_kernel, return_value_kernel, early_return_kernel,
    variable_range_kernel, comprehension_kernel, rebind_param_kernel,
])
def test_rejected_constructs(bad):
    with pytest.raises(KernelLanguageError):
        parse_kernel(Kernel(bad))


def test_huge_unroll_rejected():
    def big(a):
        for i in range(1000):
            a[0] += 1.0
    # defined nested: source retrieval works through inspect
    with pytest.raises(KernelLanguageError):
        parse_kernel(Kernel(big))


def test_keyword_params_rejected():
    def kw(a, *, b):
        a[0] = 1.0
    with pytest.raises(KernelLanguageError):
        parse_kernel(Kernel(kw))
