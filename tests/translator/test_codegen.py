"""Code generator: the generated vector program must agree with the
elemental kernel executed row by row, across the whole kernel language."""
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import CONST, Kernel
from repro.translator.codegen import generate


def run_both(fn, *arrays):
    """Execute elemental per-row and generated batch; return both results."""
    elemental = [a.copy() for a in arrays]
    batch = [a.copy() for a in arrays]
    n = arrays[0].shape[0]
    for i in range(n):
        fn(*[a[i] for a in elemental])
    gen = generate(Kernel(fn))
    assert gen.vectorized, f"{fn.__name__} fell back to elemental loop"
    gen.fn(*batch)
    return elemental, batch


def arith_kernel(a, b):
    b[0] = a[0] * 2.0 + a[1] / 3.0 - a[2] ** 2


def math_calls_kernel(a, b):
    b[0] = sqrt(abs(a[0])) + exp(a[1] * 0.01)  # noqa: F821
    b[1] = min(a[0], a[1])
    b[2] = max(a[0], a[1], a[2])


def branch_kernel(a, b):
    if a[0] > 0.5:
        b[0] = 1.0
    elif a[0] > 0.0:
        b[0] = 0.5
    else:
        b[0] = -1.0


def nested_branch_kernel(a, b):
    if a[0] > 0:
        if a[1] > 0:
            b[0] = 3.0
        else:
            b[0] = 2.0
    else:
        b[0] = 1.0


def local_var_kernel(a, b):
    t = a[0] + a[1]
    u = t * t
    b[0] = u - t


def masked_local_kernel(a, b):
    if a[0] > 0:
        t = a[0] * 2.0
    else:
        t = a[0] * -3.0
    b[0] = t


def augassign_kernel(a, b):
    b[0] += a[0]
    b[0] *= 2.0


def ifexp_kernel(a, b):
    b[0] = 1.0 if a[0] > a[1] else -1.0


def boolop_kernel(a, b):
    if a[0] > 0 and a[1] > 0 or not (a[2] > 0):
        b[0] = 7.0


def unrolled_kernel(a, b):
    for i in range(3):
        b[i] = a[i] * (i + 1)


def chained_compare_kernel(a, b):
    if 0.0 < a[0] < 0.5:
        b[0] = 1.0


def int_cast_kernel(a, b):
    b[0] = int(a[0] * 3.0)


KERNELS3 = [arith_kernel, math_calls_kernel, branch_kernel,
            nested_branch_kernel, local_var_kernel, masked_local_kernel,
            augassign_kernel, ifexp_kernel, boolop_kernel, unrolled_kernel,
            chained_compare_kernel, int_cast_kernel]

# names used by math_calls_kernel when executed elementally
sqrt = math.sqrt
exp = math.exp


@pytest.mark.parametrize("fn", KERNELS3)
def test_vector_matches_elemental(fn, rng):
    a = rng.normal(size=(40, 3))
    b = rng.normal(size=(40, 3))
    (ea, eb), (ba, bb) = run_both(fn, a, b)
    np.testing.assert_allclose(bb, eb, rtol=1e-13, atol=1e-13)
    np.testing.assert_allclose(ba, ea, rtol=1e-13, atol=1e-13)


def test_generated_source_is_inspectable():
    gen = generate(Kernel(arith_kernel))
    assert "arith_kernel__vec" in gen.source
    assert "[:, 0]" in gen.source


def test_constants_resolved_at_call_time():
    def k(a):
        a[0] = a[0] * CONST.codegen_gain
    CONST.declare("codegen_gain", 2.0)
    gen = generate(Kernel(k))
    x = np.ones((4, 1))
    gen.fn(x)
    assert (x == 2.0).all()
    CONST.codegen_gain = 5.0
    gen.fn(x)
    assert (x == 10.0).all()


def test_closure_values_captured():
    factor = 4.0

    def k(a):
        a[0] = a[0] * factor

    gen = generate(Kernel(k))
    x = np.ones((3, 1))
    gen.fn(x)
    assert (x == 4.0).all()


def test_fallback_for_untranslatable():
    def weird(a):
        total = 0.0
        while total < a[0]:
            total += 1.0
        a[0] = total
    gen = generate(Kernel(weird))
    assert not gen.vectorized
    x = np.array([[2.5], [0.0]])
    gen.fn(x)
    assert x[:, 0].tolist() == [3.0, 0.0]


def test_lane_varying_component_gather():
    def pick(a, b):
        idx = 0 if a[0] > 0 else 2
        b[0] = a[idx]
    a = np.array([[1.0, 5.0, 9.0], [-1.0, 5.0, 9.0]])
    b = np.zeros((2, 3))
    gen = generate(Kernel(pick))
    assert gen.vectorized
    gen.fn(a, b)
    assert b[:, 0].tolist() == [1.0, 9.0]


def test_lane_varying_store_rejected_gracefully():
    def bad_store(a, b):
        idx = 0 if a[0] > 0 else 1
        b[idx] = 1.0
    gen = generate(Kernel(bad_store))
    assert not gen.vectorized  # falls back, still executable
    a = np.array([[1.0], [-1.0]])
    b = np.zeros((2, 2))
    gen.fn(a, b)
    assert b.tolist() == [[1.0, 0.0], [0.0, 1.0]]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 100), st.integers(0, 2**16))
def test_property_branchy_kernel_agreement(n, seed):
    """Property: masked translation equals elemental for random inputs of
    any batch size."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, 3))
    b = np.zeros((n, 3))
    (ea, eb), (ba, bb) = run_both(nested_branch_kernel, a, b)
    np.testing.assert_array_equal(bb, eb)
