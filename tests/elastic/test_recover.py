"""Snapshots and rank-failure recovery.

Same-rank-count recovery must be bit-exact (the partition is restored
identically, so even float reductions regroup the same way); shrinking
recovery must conserve the assembled state; the proc supervisor must
survive an injected hard rank death and reproduce the uninterrupted
run's history.
"""
import json

import numpy as np
import pytest

from repro.apps.fempic import FemPicConfig
from repro.apps.fempic.distributed import DistributedFemPic
from repro.apps.twod.config import TwoDConfig
from repro.apps.twod.distributed import DistributedTwoD
from repro.dist.driver import run_distributed
from repro.elastic import (latest_snapshot, restore_snapshot,
                           snapshot_step_dir, write_snapshot)
from repro.elastic.migrate import _get
from repro.runtime import SimComm

CFG_FEM = FemPicConfig.smoke().scaled(n_steps=0, dt=0.2)


def _total_particles(app):
    return sum(_get(app.ranks[r], "parts").size
               for r in range(app.comm.nranks))


# -- snapshot directory protocol ----------------------------------------------

def test_latest_snapshot_scans_and_prunes(tmp_path):
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    assert latest_snapshot(tmp_path) is None
    for step in (2, 4):
        app.step()
        write_snapshot(app, step, tmp_path, keep=2)
    step, snap = latest_snapshot(tmp_path)
    assert step == 4 and snap == snapshot_step_dir(tmp_path, 4)
    # keep=2 prunes the oldest once a third lands
    write_snapshot(app, 6, tmp_path, keep=2)
    assert not snapshot_step_dir(tmp_path, 2).exists()
    assert snapshot_step_dir(tmp_path, 4).exists()
    # a manifest-less (in-flight/crashed) dir is invisible
    snapshot_step_dir(tmp_path, 99).mkdir()
    assert latest_snapshot(tmp_path)[0] == 6


def test_manifest_format_mismatch_rejected(tmp_path):
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    app.step()
    snap = write_snapshot(app, 1, tmp_path)
    manifest = json.loads((snap / "manifest.json").read_text())
    manifest["format"] = 999
    (snap / "manifest.json").write_text(json.dumps(manifest))
    assert latest_snapshot(tmp_path) is None
    fresh = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    with pytest.raises(ValueError, match="manifest"):
        restore_snapshot(fresh, snap)


def test_snapshot_carries_elastic_state(tmp_path):
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    app.step()
    state = {"policy": {"mode": "auto"}, "n_rebalances": 3}
    snap = write_snapshot(app, 1, tmp_path, elastic_state=state)
    fresh = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    step, restored = restore_snapshot(fresh, snap)
    assert step == 1
    assert restored == state


# -- restore paths ------------------------------------------------------------

def test_same_ranks_restore_is_bit_exact(tmp_path):
    ref = DistributedFemPic(CFG_FEM, comm=SimComm(2))
    for _ in range(8):
        ref.step()

    half = DistributedFemPic(CFG_FEM, comm=SimComm(2))
    for _ in range(4):
        half.step()
    write_snapshot(half, 4, tmp_path)

    resumed = DistributedFemPic(CFG_FEM, comm=SimComm(2))
    step, _ = restore_snapshot(resumed, latest_snapshot(tmp_path)[1])
    assert step == 4
    for _ in range(4):
        resumed.step()

    assert ref.history.keys() == resumed.history.keys()
    for key in ref.history:
        np.testing.assert_array_equal(np.asarray(ref.history[key]),
                                      np.asarray(resumed.history[key]),
                                      err_msg=key)
    for r in range(2):
        np.testing.assert_array_equal(
            _get(resumed.ranks[r], "phi").data,
            _get(ref.ranks[r], "phi").data)
        np.testing.assert_array_equal(
            _get(resumed.ranks[r], "pos").data,
            _get(ref.ranks[r], "pos").data)


def test_restore_onto_more_ranks_rejected(tmp_path):
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    app.step()
    snap = write_snapshot(app, 1, tmp_path)
    grown = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(3))
    with pytest.raises(ValueError, match="growing"):
        restore_snapshot(grown, snap)


def test_shrink_restore_conserves_particles(tmp_path):
    """3-rank snapshot onto 2 ranks: particles and owned rows survive
    the re-scatter, and the shrunken app keeps stepping."""
    cfg = TwoDConfig(n_steps=0)
    app = DistributedTwoD(cfg, comm=SimComm(3))
    for _ in range(3):
        app.step()
    n_before = _total_particles(app)
    snap = write_snapshot(app, 3, tmp_path)

    small = DistributedTwoD(cfg, comm=SimComm(2))
    step, _ = restore_snapshot(small, snap)
    assert step == 3
    assert _total_particles(small) == n_before
    assert small.history == app.history
    # every particle landed on the rank that owns its cell
    for r in range(2):
        rk = small.ranks[r]
        n = _get(rk, "parts").size
        gcell = small.meshes[r].cells_global[_get(rk, "p2c").p2c[:n]]
        assert (np.asarray(small.cell_owner)[gcell] == r).all()
    small.step()


# -- the proc supervisor ------------------------------------------------------

def test_proc_kill_recovery_bit_equal(tmp_path):
    """Rank 1 dies hard at step 5; the supervisor relaunches from the
    step-4 snapshot and the final history matches the undisturbed run
    bit for bit."""
    base = run_distributed("fempic", CFG_FEM, nranks=3, transport="proc",
                           n_steps=8)
    rec = run_distributed("fempic", CFG_FEM, nranks=3, transport="proc",
                          n_steps=8, checkpoint_every=2,
                          checkpoint_dir=tmp_path, recover=True,
                          kill=(1, 5))
    assert rec.restarts == 1
    assert base.history.keys() == rec.history.keys()
    for key in base.history:
        np.testing.assert_array_equal(np.asarray(base.history[key]),
                                      np.asarray(rec.history[key]),
                                      err_msg=key)


def test_proc_shrink_recovery_completes(tmp_path):
    """Rank 2 dies at step 3; the supervisor restarts on 2 ranks from
    the step-2 snapshot and runs to completion."""
    rec = run_distributed("fempic", CFG_FEM, nranks=3, transport="proc",
                          n_steps=6, checkpoint_every=2,
                          checkpoint_dir=tmp_path, recover=True,
                          recover_ranks=2, kill=(2, 3))
    assert rec.restarts == 1
    for key, vals in rec.history.items():
        assert len(vals) == 6, key


def test_proc_unrecoverable_failure_still_raises(tmp_path):
    """No snapshot on disk yet → the supervisor must re-raise."""
    from repro.dist.transport import RankFailure
    with pytest.raises(RankFailure):
        run_distributed("fempic", CFG_FEM, nranks=2, transport="proc",
                        n_steps=6, checkpoint_every=10,
                        checkpoint_dir=tmp_path, recover=True,
                        kill=(1, 2))
