"""Elastic runtime decision layer: monitor maths and policy triggers."""
import numpy as np
import pytest

from repro.elastic import ImbalanceMonitor, RebalancePolicy
from repro.elastic.policy import REBALANCE_MODES


def _mon(nranks=4, alpha=1.0):
    return ImbalanceMonitor(nranks, alpha=alpha)


def test_monitor_differences_cumulative_busy():
    mon = _mon(2)
    mon.observe([10.0, 10.0], [5, 5])
    assert mon.imbalance is None          # no complete interval yet
    mon.observe([11.0, 13.0], [5, 5])     # interval: [1, 3] → max/mean = 1.5
    assert mon.last_imbalance == pytest.approx(1.5)
    assert mon.imbalance == pytest.approx(1.5)
    assert mon.excess_seconds == pytest.approx(3.0 - 2.0)
    assert mon.mean_interval_seconds == pytest.approx(2.0)


def test_monitor_ewma_smooths_spikes():
    mon = _mon(2, alpha=0.5)
    mon.observe([0.0, 0.0], [1, 1])
    mon.observe([1.0, 1.0], [1, 1])       # balanced: raw 1.0
    mon.observe([1.5, 4.0], [1, 1])       # spike: raw [0.5,3.0] → 1.714…
    raw = 3.0 / 1.75
    assert mon.last_imbalance == pytest.approx(raw)
    assert mon.imbalance == pytest.approx(0.5 * raw + 0.5 * 1.0)
    assert mon.imbalance < mon.last_imbalance


def test_monitor_reset_interval_clears_imbalance():
    mon = _mon(2)
    mon.observe([0.0, 0.0], [1, 1])
    mon.observe([1.0, 3.0], [1, 1])
    assert mon.imbalance is not None
    mon.reset_interval()
    assert mon.imbalance is None
    # differencing continues from the retained cumulative vector
    mon.observe([2.0, 6.0], [1, 1])
    assert mon.last_imbalance == pytest.approx(3.0 / 2.0)


def test_monitor_rejects_wrong_shape():
    with pytest.raises(ValueError):
        _mon(3).observe([1.0, 2.0], [1, 1])


def test_monitor_round_trip():
    mon = _mon(3, alpha=0.25)
    mon.observe([1.0, 2.0, 3.0], [4, 5, 6])
    mon.observe([2.0, 4.0, 9.0], [4, 5, 6])
    clone = ImbalanceMonitor.from_dict(mon.to_dict())
    assert clone.to_dict() == mon.to_dict()
    # both continue identically
    mon.observe([3.0, 5.0, 10.0], [4, 5, 6])
    clone.observe([3.0, 5.0, 10.0], [4, 5, 6])
    assert clone.imbalance == mon.imbalance


def _ready_monitor(imbalance_pair=(1.0, 9.0), particles=500):
    mon = _mon(2)
    mon.observe([0.0, 0.0], [particles // 2, particles - particles // 2])
    mon.observe(list(imbalance_pair),
                [particles // 2, particles - particles // 2])
    return mon


def test_policy_mode_validation():
    assert set(REBALANCE_MODES) == {"never", "auto", "always"}
    with pytest.raises(ValueError):
        RebalancePolicy("sometimes")


def test_policy_never_is_off():
    pol = RebalancePolicy("never")
    assert not pol.enabled
    assert not pol.should_rebalance(_ready_monitor())


def test_policy_respects_threshold_and_floor():
    pol = RebalancePolicy("always", threshold=1.2, min_particles=64)
    assert pol.should_rebalance(_ready_monitor())
    # balanced load → no trigger
    assert not pol.should_rebalance(_ready_monitor((5.0, 5.0)))
    # too few particles → bookkeeping dominates, no trigger
    assert not pol.should_rebalance(_ready_monitor(particles=10))
    # no complete interval → no trigger
    fresh = _mon(2)
    fresh.observe([0.0, 0.0], [500, 500])
    assert not pol.should_rebalance(fresh)


def test_policy_auto_amortises_migration_cost():
    pol = RebalancePolicy("auto", alpha=1.0)
    mon = _ready_monitor((1.0, 9.0))      # excess = 4 s/interval
    assert pol.should_rebalance(mon)      # optimistic bootstrap
    pol.note_migration(100.0)             # a migration costing 100 s
    pol.note_check()
    # 4 s/interval × 1 interval lifetime < 100 s cost → skip
    assert not pol.should_rebalance(mon)
    assert pol.n_skips == 1
    pol.note_migration(1.0)               # cheap migration re-learned
    assert pol.migrate_seconds < 100.0
    assert pol.should_rebalance(mon)


def test_policy_always_ignores_cost_model():
    pol = RebalancePolicy("always")
    pol.note_migration(1e9)
    assert pol.should_rebalance(_ready_monitor())


def test_policy_round_trip():
    pol = RebalancePolicy("auto", alpha=0.5, threshold=1.3,
                          min_particles=10)
    pol.note_check()
    pol.note_migration(2.5)
    pol.note_check()
    pol.note_migration(3.5)
    clone = RebalancePolicy.from_dict(pol.to_dict())
    assert clone.to_dict() == pol.to_dict()
    mon = _ready_monitor()
    assert clone.should_rebalance(mon) == pol.should_rebalance(mon)
