"""Live migration: a rebalance must move ownership without changing the
assembled global state — bit for bit — for every distributed app."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig
from repro.apps.cabana.distributed import DistributedCabana
from repro.apps.fempic import FemPicConfig
from repro.apps.fempic.distributed import DistributedFemPic
from repro.apps.twod.config import TwoDConfig
from repro.apps.twod.distributed import DistributedTwoD
from repro.dist.driver import run_distributed
from repro.elastic import rebalance
from repro.elastic.migrate import _get, node_owners
from repro.runtime import SimComm


def _assemble(app):
    """Global view of everything a migration is allowed to touch:
    owned mesh rows scattered by global id, global accumulators summed,
    particles as a canonically sorted row set."""
    spec = app._migration_spec()
    comm = app.comm
    out = {}
    for name in spec.get("cell", ()):
        out[f"cell:{name}"] = _owned_rows(
            app, name, lambda m: (m.cells_global, m.n_owned_cells),
            len(app.cell_owner))
    if spec.get("node"):
        n_nodes = node_owners(spec["c2n"], app.cell_owner,
                              comm.nranks).size
        for name in spec["node"]:
            out[f"node:{name}"] = _owned_rows(
                app, name, lambda m: (m.nodes_global, m.n_owned_nodes),
                n_nodes)
    for name in spec.get("globals", ()):
        out[f"global:{name}"] = sum(
            _get(app.ranks[r], name).data.copy()
            for r in range(comm.nranks))
    cols, gcells = [], []
    for r in range(comm.nranks):
        rk = app.ranks[r]
        n = _get(rk, "parts").size
        gcells.append(app.meshes[r].cells_global[
            _get(rk, "p2c").p2c[:n]])
        dats = [_get(rk, name).data for name in spec.get("part", ())]
        cols.append(np.column_stack(
            [d[:n].reshape(n, int(np.prod(d.shape[1:], dtype=np.int64)))
             for d in dats]))
    rows = np.concatenate(cols) if cols else np.empty((0, 0))
    gcells = np.concatenate(gcells) if gcells else np.empty(0, np.int64)
    table = np.column_stack([gcells.astype(np.float64), rows])
    out["particles"] = table[np.lexsort(table.T[::-1])]
    return out


def _owned_rows(app, name, pick, n_global):
    g = None
    for r in range(app.comm.nranks):
        ids, n = pick(app.meshes[r])
        arr = _get(app.ranks[r], name).data
        if g is None:
            g = np.zeros((n_global,) + arr.shape[1:], dtype=arr.dtype)
        g[ids[:n]] = arr[:n]
    return g


def _skewed_owner(app):
    """A genuinely different target partition: load rank 0's cells."""
    weights = np.where(np.asarray(app.cell_owner) == 0, 8.0, 1.0)
    return app._elastic_partition(weights)


def _check_rebalance_preserves(app, steps):
    for _ in range(steps):
        app.step()
    before = _assemble(app)
    old_owner = np.asarray(app.cell_owner).copy()
    report = rebalance(app, _skewed_owner(app))
    assert report.n_cells_moved > 0
    assert not np.array_equal(app.cell_owner, old_owner)
    after = _assemble(app)
    assert before.keys() == after.keys()
    for key in before:
        np.testing.assert_array_equal(before[key], after[key],
                                      err_msg=key)
    app.step()                  # and the app still runs
    return report


def test_fempic_rebalance_preserves_state():
    cfg = FemPicConfig.smoke().scaled(n_steps=0, dt=0.2)
    app = DistributedFemPic(cfg, comm=SimComm(3))
    report = _check_rebalance_preserves(app, steps=4)
    assert report.n_nodes_moved > 0
    assert report.n_particles_moved > 0


def test_twod_rebalance_preserves_state():
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(3))
    report = _check_rebalance_preserves(app, steps=3)
    assert report.n_particles_moved > 0


def test_cabana_rebalance_preserves_state():
    app = DistributedCabana(CabanaConfig.smoke(), comm=SimComm(3))
    report = _check_rebalance_preserves(app, steps=3)
    assert report.n_particles_moved > 0


def test_rebalance_same_owner_is_noop():
    app = DistributedTwoD(TwoDConfig(n_steps=0), comm=SimComm(2))
    app.step()
    report = rebalance(app, np.asarray(app.cell_owner).copy())
    assert (report.n_cells_moved, report.n_nodes_moved,
            report.n_particles_moved) == (0, 0, 0)


def test_node_owner_is_min_adjacent_cell_owner():
    # two triangles sharing nodes 1, 2; cells owned by ranks 1 and 0
    c2n = np.array([[0, 1, 2], [1, 2, 3]])
    owners = node_owners(c2n, np.array([1, 0]), nranks=2)
    np.testing.assert_array_equal(owners, [1, 0, 0, 0])


def _assert_histories_close(base: dict, other: dict):
    """Integer histories exactly; float histories to the
    reduction-reassociation tolerance (per-rank sums regroup when
    ownership moves)."""
    assert base.keys() == other.keys()
    for key in base:
        a, b = np.asarray(base[key]), np.asarray(other[key])
        if np.issubdtype(a.dtype, np.integer):
            np.testing.assert_array_equal(a, b, err_msg=key)
        else:
            np.testing.assert_allclose(a, b, rtol=1e-9, err_msg=key)


def test_controller_rebalances_and_keeps_histories():
    """With the cost gate opened (threshold 0) the controller must
    actually migrate, and the physics must be preserved."""
    from repro.elastic import ElasticController
    cfg = FemPicConfig.smoke().scaled(n_steps=0, dt=0.2)
    base = DistributedFemPic(cfg, comm=SimComm(3))
    for _ in range(6):
        base.step()

    app = DistributedFemPic(cfg, comm=SimComm(3))
    ctl = ElasticController(app, mode="always", check_every=2,
                            threshold=0.0, min_particles=1)
    ctl.run(6)
    assert ctl.n_rebalances >= 1
    stats = ctl.stats()
    assert stats["cells_moved"] > 0
    assert stats["rebalances"] == ctl.n_rebalances
    _assert_histories_close(base.history, app.history)


def test_driver_rebalance_always_keeps_histories():
    """The driver-level `rebalance=always` path (trigger timing depends
    on measured busy seconds, so the migration count is not asserted)."""
    cfg = FemPicConfig.smoke().scaled(n_steps=6, dt=0.2)
    base = run_distributed("fempic", cfg, nranks=2, seed_ppc=4)
    reb = run_distributed("fempic", cfg, nranks=2, seed_ppc=4,
                          rebalance="always")
    assert reb.elastic is not None
    assert reb.elastic["mode"] == "always"
    assert reb.rank_load_imbalance() >= 1.0
    _assert_histories_close(base.history, reb.history)


def test_proc_rebalance_always_keeps_histories():
    cfg = FemPicConfig.smoke().scaled(n_steps=6, dt=0.2)
    base = run_distributed("fempic", cfg, nranks=2, seed_ppc=4)
    reb = run_distributed("fempic", cfg, nranks=2, seed_ppc=4,
                          transport="proc", rebalance="always")
    assert reb.elastic is not None
    _assert_histories_close(base.history, reb.history)
