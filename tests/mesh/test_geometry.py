"""Tet geometry: volumes, barycentric transforms, gradients — with
hypothesis property tests on random non-degenerate tetrahedra."""
import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mesh.geometry import (barycentric_coords, p1_gradients,
                                 points_in_tets,
                                 tet_barycentric_transforms, tet_centroids,
                                 tet_volumes)

UNIT_TET = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
CELLS1 = np.array([[0, 1, 2, 3]])


def test_unit_tet_volume():
    assert tet_volumes(UNIT_TET, CELLS1)[0] == pytest.approx(1.0 / 6.0)


def test_centroid():
    np.testing.assert_allclose(tet_centroids(UNIT_TET, CELLS1)[0],
                               [0.25, 0.25, 0.25])


def test_barycentric_at_vertices():
    xf = tet_barycentric_transforms(UNIT_TET, CELLS1)
    for i, v in enumerate(UNIT_TET):
        lam = barycentric_coords(xf, v.reshape(1, 3))[0]
        expected = np.zeros(4)
        expected[i] = 1.0
        np.testing.assert_allclose(lam, expected, atol=1e-14)


def test_barycentric_at_centroid():
    xf = tet_barycentric_transforms(UNIT_TET, CELLS1)
    lam = barycentric_coords(xf, np.array([[0.25, 0.25, 0.25]]))[0]
    np.testing.assert_allclose(lam, [0.25] * 4, atol=1e-14)


def test_points_in_tets():
    xf = tet_barycentric_transforms(UNIT_TET, CELLS1)
    inside = np.array([[0.1, 0.1, 0.1]])
    outside = np.array([[0.9, 0.9, 0.9]])
    assert points_in_tets(xf, inside)[0]
    assert not points_in_tets(xf, outside)[0]


def test_gradients_partition_of_unity():
    grads, vols = p1_gradients(UNIT_TET, CELLS1)
    np.testing.assert_allclose(grads.sum(axis=1), 0.0, atol=1e-14)
    assert vols[0] == pytest.approx(1.0 / 6.0)


def test_gradient_reproduces_linear_field():
    """∇(Σ φ_i λ_i) must equal the exact gradient of a linear field."""
    grads, _ = p1_gradients(UNIT_TET, CELLS1)
    coeffs = np.array([3.0, -1.0, 2.0])  # φ = 3x - y + 2z
    phi = UNIT_TET @ coeffs
    grad = np.einsum("i,id->d", phi, grads[0])
    np.testing.assert_allclose(grad, coeffs, atol=1e-13)


coords = st.floats(-10, 10, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(st.lists(coords, min_size=12, max_size=12),
       st.lists(st.floats(0.01, 1.0), min_size=3, max_size=3))
def test_property_barycentric_roundtrip(flat, lam_raw):
    """For any non-degenerate tet, λ(x(λ)) = λ and Σλ = 1."""
    pts = np.array(flat).reshape(4, 3) + UNIT_TET * 5.0
    vol = tet_volumes(pts, CELLS1)[0]
    assume(abs(vol) > 1e-2)
    if vol < 0:
        pts = pts[[0, 2, 1, 3]]
    lam123 = np.array(lam_raw)
    lam123 = lam123 / (lam123.sum() + 1.0)  # interior by construction
    lam = np.concatenate([[1.0 - lam123.sum()], lam123])
    x = (lam[:, None] * pts).sum(axis=0)
    xf = tet_barycentric_transforms(pts, CELLS1)
    out = barycentric_coords(xf, x.reshape(1, 3))[0]
    np.testing.assert_allclose(out, lam, atol=1e-7)
    assert out.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(coords, min_size=12, max_size=12))
def test_property_gradients_orthogonality(flat):
    flat = list(flat)
    """∇λ_i · (v_j − v_i-opposite-face) structure: λ_i is 1 at v_i and 0
    at the other vertices, so grads satisfy ∇λ_i · (v_j − v_k) patterns;
    check via direct evaluation at vertices."""
    pts = np.array(flat).reshape(4, 3) + UNIT_TET * 5.0
    vol = tet_volumes(pts, CELLS1)[0]
    assume(abs(vol) > 1e-2)
    if vol < 0:
        pts = pts[[0, 2, 1, 3]]
    grads, _ = p1_gradients(pts, CELLS1)
    v0 = pts[0]
    for i in range(4):
        for j in range(4):
            # λ_i(x) = δ_i0 + ∇λ_i·(x − v0); at vertex v_j it must be δ_ij
            base = 1.0 if i == 0 else 0.0
            lam_at_vj = base + grads[0, i] @ (pts[j] - v0)
            expected = 1.0 if i == j else 0.0
            assert lam_at_vj == pytest.approx(expected, abs=1e-6)
