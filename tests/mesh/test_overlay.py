"""Structured overlay (direct-hop support): construction and lookups."""
import numpy as np
import pytest

from repro.mesh import StructuredOverlay, duct_mesh


@pytest.fixture(scope="module")
def world():
    mesh = duct_mesh(3, 3, 6, 1.0, 1.0, 2.0)
    return mesh, StructuredOverlay.build(mesh, 8)


def test_cell_map_complete(world):
    mesh, ov = world
    assert ov.cell_map.shape == (8 * 8 * 8,)
    assert (ov.cell_map >= 0).all()
    assert (ov.cell_map < mesh.n_cells).all()


def test_lookup_lands_near_target(world):
    """The DH guess plus a short walk must find the true cell quickly —
    the guess must be within a few hops."""
    mesh, ov = world
    rng = np.random.default_rng(5)
    pts = rng.uniform([0, 0, 0], [1, 1, 2], size=(200, 3))
    truth = mesh.locate(pts)
    guess = ov.lookup_cell(pts)
    resumed = mesh.locate(pts, guesses=guess)
    np.testing.assert_array_equal(resumed, truth)
    # guesses should be geometrically close: centroid distance bounded by
    # a couple of bin diagonals
    d = np.linalg.norm(mesh.centroids[guess] - pts, axis=1)
    assert d.max() < 3.0 * np.linalg.norm(ov.spacing)


def test_bin_of_clips_outside_points(world):
    _, ov = world
    b = ov.bin_of(np.array([[99.0, 99.0, 99.0], [-99.0, 0.0, 0.0]]))
    assert (b >= 0).all() and (b < ov.cell_map.size).all()


def test_rank_map_lookup(world):
    mesh, ov = world
    owner = (np.arange(mesh.n_cells) % 4).astype(np.int64)
    ov2 = ov.with_rank_map(owner)
    pts = mesh.centroids[:20]
    ranks = ov2.lookup_rank(pts)
    assert (ranks == owner[ov2.lookup_cell(pts)]).all()


def test_rank_lookup_without_map_raises(world):
    _, ov = world
    with pytest.raises(ValueError):
        ov.lookup_rank(np.zeros((1, 3)))


def test_memory_accounting(world):
    mesh, ov = world
    assert ov.nbytes == ov.cell_map.nbytes
    ov2 = ov.with_rank_map(np.zeros(mesh.n_cells, dtype=np.int64))
    assert ov2.nbytes == 2 * ov.cell_map.nbytes


def test_invalid_dims():
    with pytest.raises(ValueError):
        StructuredOverlay([0, 0, 0], [1, 1, 1], [0, 1, 1],
                          np.zeros(0, dtype=np.int64))


def test_cell_map_shape_checked():
    with pytest.raises(ValueError):
        StructuredOverlay([0, 0, 0], [1, 1, 1], [2, 2, 2],
                          np.zeros(7, dtype=np.int64))
