"""2-D triangular mesh substrate."""
import numpy as np
import pytest

from repro.mesh.tri import TriMesh, square_tri_mesh


@pytest.fixture(scope="module")
def mesh():
    return square_tri_mesh(6, 4, 2.0, 1.0)


def test_counts_and_area(mesh):
    assert mesh.n_cells == 2 * 6 * 4
    assert mesh.n_nodes == 7 * 5
    assert mesh.areas.sum() == pytest.approx(2.0)
    assert (mesh.areas > 0).all()


def test_c2c_symmetric_opposite_vertex(mesh):
    for c in range(mesh.n_cells):
        for i in range(3):
            n = mesh.c2c[c, i]
            if n >= 0:
                assert c in mesh.c2c[n]
                # the shared edge excludes vertex i
                shared = set(mesh.cell2node[c]) & set(mesh.cell2node[n])
                assert len(shared) == 2
                assert mesh.cell2node[c, i] not in shared


def test_boundary_edges_count(mesh):
    # boundary edges = perimeter squares' hypotenuse-free edges: 2*(nx+ny)
    n_wall_edges = int((mesh.c2c == -1).sum())
    assert n_wall_edges == 2 * (6 + 4)


def test_barycentric_identities(mesh, rng):
    pts = rng.uniform([0, 0], [2.0, 1.0], size=(100, 2))
    cells = mesh.locate(pts)
    assert (cells >= 0).all()
    lam = mesh.barycentric(cells, pts)
    np.testing.assert_allclose(lam.sum(axis=1), 1.0, atol=1e-12)
    assert (lam >= -1e-9).all()
    # reconstruct the point from its weights
    verts = mesh.points[mesh.cell2node[cells]]
    back = np.einsum("ni,nid->nd", lam, verts)
    np.testing.assert_allclose(back, pts, atol=1e-12)


def test_locate_outside(mesh):
    assert mesh.locate(np.array([[5.0, 5.0]]))[0] == -1


def test_gradients_partition_of_unity(mesh):
    np.testing.assert_allclose(mesh.grads.sum(axis=1), 0.0, atol=1e-13)


def test_gradient_reproduces_linear_field(mesh):
    coeffs = np.array([2.0, -3.0])
    phi = mesh.points @ coeffs
    g = np.einsum("ci,cid->cd", phi[mesh.cell2node], mesh.grads)
    np.testing.assert_allclose(g, np.broadcast_to(coeffs, g.shape),
                               atol=1e-11)


def test_degenerate_rejected():
    with pytest.raises(ValueError):
        square_tri_mesh(0, 2)
    with pytest.raises(ValueError):
        TriMesh(points=np.array([[0, 0], [1, 0], [2, 0]]),
                cell2node=np.array([[0, 1, 2]]))   # collinear
