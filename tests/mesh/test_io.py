"""Mesh file round trips (.dat ASCII and .npz binary)."""
import numpy as np
import pytest

from repro.mesh import duct_mesh
from repro.mesh.io import (load_mesh, read_mesh_dat, save_mesh,
                           write_mesh_dat)


@pytest.fixture(scope="module")
def mesh():
    return duct_mesh(2, 3, 4, 1.0, 1.5, 2.0)


def _assert_same(a, b):
    np.testing.assert_array_equal(a.cell2node, b.cell2node)
    np.testing.assert_allclose(a.points, b.points, rtol=0, atol=0)
    np.testing.assert_array_equal(a.c2c, b.c2c)          # re-derived
    np.testing.assert_allclose(a.volumes, b.volumes)
    assert set(a.tags) == set(b.tags)
    for name in a.tags:
        if name == "extent":
            assert tuple(a.tags[name]) == tuple(b.tags[name])
        else:
            np.testing.assert_array_equal(a.tags[name], b.tags[name])


@pytest.mark.parametrize("suffix", [".dat", ".npz"])
def test_roundtrip(mesh, tmp_path, suffix):
    path = tmp_path / f"duct{suffix}"
    save_mesh(mesh, path)
    _assert_same(mesh, load_mesh(path))


def test_dat_is_bit_exact(mesh, tmp_path):
    """%.17g round-trips float64 exactly."""
    path = write_mesh_dat(mesh, tmp_path / "m.dat")
    again = read_mesh_dat(path)
    assert (again.points == mesh.points).all()


def test_dat_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.dat"
    bad.write_text("not a mesh\n")
    with pytest.raises(ValueError):
        read_mesh_dat(bad)


def test_unknown_suffix(mesh, tmp_path):
    with pytest.raises(ValueError):
        save_mesh(mesh, tmp_path / "m.vtu")
    with pytest.raises(ValueError):
        load_mesh(tmp_path / "m.vtu")


@pytest.mark.parametrize("suffix", [".dat", ".npz"])
def test_simulation_runs_from_saved_mesh(tmp_path, suffix):
    """The artifact workflow: generate once, reload for every run — a
    simulation on the loaded mesh must match one on the generated mesh
    exactly."""
    from repro.apps.fempic import FemPicConfig, FemPicSimulation
    from repro.mesh import duct_mesh as gen

    cfg = FemPicConfig.smoke().scaled(n_steps=5, dt=0.2)
    path = save_mesh(gen(cfg.nx, cfg.ny, cfg.nz, cfg.lx, cfg.ly, cfg.lz),
                     tmp_path / f"duct{suffix}")

    generated = FemPicSimulation(cfg)
    generated.run()
    from_file = FemPicSimulation(cfg.scaled(mesh_file=str(path)))
    from_file.run()
    np.testing.assert_allclose(from_file.history["field_energy"],
                               generated.history["field_energy"],
                               rtol=1e-12)
    assert from_file.history["n_particles"] == \
        generated.history["n_particles"]
