"""Periodic hex mesh: stencil correctness and wrap-around."""
import numpy as np
import pytest

from repro.mesh import FACES, STENCIL, HexMesh


@pytest.fixture(scope="module")
def mesh():
    return HexMesh(4, 3, 5, 1.0, 1.0, 2.0)


def test_counts_and_spacing(mesh):
    assert mesh.n_cells == 60
    assert mesh.dx == pytest.approx(0.25)
    assert mesh.dz == pytest.approx(0.4)
    assert mesh.cell_volume == pytest.approx(0.25 * (1 / 3) * 0.4)


def test_cell_id_roundtrip(mesh):
    c = np.arange(mesh.n_cells)
    i, j, k = mesh.cell_ijk(c)
    np.testing.assert_array_equal(mesh.cell_id(i, j, k), c)


def test_periodic_wrap(mesh):
    # cell (0,0,0): XM neighbour is (nx-1,0,0)
    assert mesh.stencil_c2c[0, STENCIL["XM"]] == 3
    assert mesh.face_c2c[0, FACES["XM"]] == 3
    # cell (nx-1,...) XP wraps to 0
    assert mesh.stencil_c2c[3, STENCIL["XP"]] == 0


def test_stencil_consistency(mesh):
    c = np.arange(mesh.n_cells)
    i, j, k = mesh.cell_ijk(c)
    np.testing.assert_array_equal(
        mesh.stencil_c2c[:, STENCIL["XPYPZP"]],
        mesh.cell_id(i + 1, j + 1, k + 1))
    np.testing.assert_array_equal(
        mesh.stencil_c2c[:, STENCIL["ZM"]], mesh.cell_id(i, j, k - 1))


def test_faces_are_mutual(mesh):
    xm = mesh.face_c2c[:, FACES["XM"]]
    xp = mesh.face_c2c[:, FACES["XP"]]
    c = np.arange(mesh.n_cells)
    np.testing.assert_array_equal(mesh.face_c2c[xm, FACES["XP"]], c)
    np.testing.assert_array_equal(mesh.face_c2c[xp, FACES["XM"]], c)


def test_centroids_inside_box(mesh):
    c = mesh.centroids
    assert (c > 0).all()
    assert (c[:, 0] < 1.0).all() and (c[:, 2] < 2.0).all()


def test_invalid_dims():
    with pytest.raises(ValueError):
        HexMesh(0, 1, 1)
