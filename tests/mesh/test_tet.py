"""Duct mesh generator: counts, consistency, tags, point location."""
import numpy as np
import pytest

from repro.mesh import duct_mesh
from repro.mesh.geometry import barycentric_coords
from repro.mesh.unstructured import boundary_faces


@pytest.fixture(scope="module")
def mesh():
    return duct_mesh(3, 3, 6, 1.0, 1.0, 2.0)


def test_counts(mesh):
    assert mesh.n_cells == 6 * 3 * 3 * 6
    assert mesh.n_nodes == 4 * 4 * 7


def test_volumes_positive_and_sum(mesh):
    assert (mesh.volumes > 0).all()
    assert mesh.volumes.sum() == pytest.approx(2.0)


def test_c2c_symmetry(mesh):
    for c in range(mesh.n_cells):
        for i in range(4):
            n = mesh.c2c[c, i]
            if n >= 0:
                assert c in mesh.c2c[n]


def test_every_interior_face_shared(mesh):
    bf = boundary_faces(mesh.cell2node, mesh.c2c)
    n_faces_total = 4 * mesh.n_cells
    n_boundary = bf.shape[0]
    assert (n_faces_total - n_boundary) % 2 == 0


def test_inlet_faces_at_z0(mesh):
    faces = mesh.tags["inlet_faces"]
    assert faces.shape[0] == 2 * 3 * 3   # 2 boundary triangles per box face
    z = mesh.points[faces[:, 2:], 2]
    assert np.allclose(z, 0.0)


def test_node_tags_partition_boundary(mesh):
    inlet = set(mesh.tags["inlet_nodes"].tolist())
    wall = set(mesh.tags["wall_nodes"].tolist())
    outlet = set(mesh.tags["outlet_nodes"].tolist())
    assert not (inlet & wall)
    assert not (inlet & outlet)
    assert not (wall & outlet)


def test_locate_random_points(mesh, rng):
    pts = rng.uniform([0, 0, 0], [1, 1, 2], size=(300, 3))
    cells = mesh.locate(pts)
    assert (cells >= 0).all()
    lam = barycentric_coords(mesh.xforms[cells], pts)
    assert (lam >= -1e-9).all()


def test_locate_outside_returns_minus_one(mesh):
    out = mesh.locate(np.array([[5.0, 5.0, 5.0]]))
    assert out[0] == -1


def test_locate_honours_guesses(mesh, rng):
    pts = rng.uniform([0, 0, 0], [1, 1, 2], size=(50, 3))
    base = mesh.locate(pts)
    guessed = mesh.locate(pts, guesses=np.full(50, mesh.n_cells - 1))
    np.testing.assert_array_equal(base, guessed)


def test_degenerate_rejected():
    with pytest.raises(ValueError):
        duct_mesh(0, 1, 1)


def test_small_duct_has_no_interior():
    m = duct_mesh(1, 1, 1)
    assert m.n_cells == 6
