"""Backend registry extensibility (paper §3.4: new parallelizations are
added as new templates and reused by every application)."""
import numpy as np
import pytest

from repro.backends import (VecBackend, available_backends, make_backend,
                            register_backend)
from repro.backends import __init__ as _  # noqa: F401


class ColoringBackend(VecBackend):
    """A 'new parallelization': vector execution with colour-round
    conflict resolution instead of atomics."""

    name = "coloring"

    def __init__(self, **opts):
        super().__init__(strategy="coloring", **opts)


@pytest.fixture
def registered():
    import repro.backends as b
    if "coloring_test" not in b.available_backends():
        register_backend("coloring_test", lambda **kw: ColoringBackend(**kw))
    yield
    b._REGISTRY.pop("coloring_test", None)


def test_registered_backend_runs_applications(registered):
    from repro.apps.cabana import CabanaConfig, CabanaSimulation

    base = CabanaSimulation(CabanaConfig.smoke())
    base.run()
    custom = CabanaSimulation(CabanaConfig.smoke()
                              .scaled(backend="coloring_test"))
    custom.run()
    np.testing.assert_allclose(custom.history["e_energy"],
                               base.history["e_energy"], rtol=1e-10)


def test_registered_backend_listed(registered):
    assert "coloring_test" in available_backends()
    be = make_backend("coloring_test")
    assert be.strategy_name == "coloring"


def test_duplicate_registration_rejected(registered):
    with pytest.raises(ValueError):
        register_backend("coloring_test", lambda **kw: ColoringBackend())
    with pytest.raises(ValueError):
        register_backend("seq", lambda **kw: ColoringBackend())


def test_factory_must_be_callable():
    with pytest.raises(TypeError):
        register_backend("broken", "not callable")
