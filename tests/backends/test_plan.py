"""Loop-plan cache (OP2-style): reuse, correctness, exclusions."""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_WRITE,
                            Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            push_context)


def gather_kernel(out, a, b):
    out[0] = a[0] + b[0]


def deposit_kernel(w, n0):
    n0[0] += w[0]


def build_mesh_world():
    cells = decl_set(5)
    nodes = decl_set(6)
    c2n = decl_map(cells, nodes, 2,
                   [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
    nd = decl_dat(nodes, 1, np.float64, np.arange(6.0))
    out = decl_dat(cells, 1, np.float64)
    return cells, c2n, nd, out


def run_gather(cells, c2n, nd, out):
    par_loop(gather_kernel, "gather", cells, OPP_ITERATE_ALL,
             arg_dat(out, OPP_WRITE),
             arg_dat(nd, 0, c2n, OPP_READ),
             arg_dat(nd, 1, c2n, OPP_READ))


def test_mesh_loop_plans_are_reused():
    ctx = Context("vec")
    with push_context(ctx):
        world = build_mesh_world()
        run_gather(*world)
        assert ctx.backend.plan.misses == 2   # one per indirect arg
        assert ctx.backend.plan.hits == 0
        for _ in range(3):
            run_gather(*world)
        assert ctx.backend.plan.misses == 2
        assert ctx.backend.plan.hits == 6
        np.testing.assert_allclose(world[3].data[:, 0],
                                   [1.0, 3.0, 5.0, 7.0, 9.0])


def test_particle_loops_never_planned():
    ctx = Context("vec")
    with push_context(ctx):
        cells = decl_set(3)
        nodes = decl_set(3)
        parts = decl_particle_set(cells, 4)
        c2n = decl_map(cells, nodes, 1, [[0], [1], [2]])
        p2c = decl_map(parts, cells, 1, [[0], [1], [1], [2]])
        w = decl_dat(parts, 1, np.float64, np.ones(4))
        nd = decl_dat(nodes, 1, np.float64)
        for _ in range(2):
            par_loop(deposit_kernel, "dep", parts, OPP_ITERATE_ALL,
                     arg_dat(w, OPP_READ),
                     arg_dat(nd, 0, c2n, p2c, OPP_INC))
        assert len(ctx.backend.plan) == 0     # dynamic map → unplannable
        np.testing.assert_allclose(nd.data[:, 0], [2.0, 4.0, 2.0])


def test_plan_respects_owner_compute_window():
    ctx = Context("vec")
    with push_context(ctx):
        cells, c2n, nd, out = build_mesh_world()
        run_gather(cells, c2n, nd, out)
        cells.owned_size = 3                  # different iteration window
        out.fill(0.0)
        run_gather(cells, c2n, nd, out)
        # a second plan entry was built for the smaller window
        assert ctx.backend.plan.misses == 4
        assert out.data[:, 0].tolist() == [1.0, 3.0, 5.0, 0.0, 0.0]


def test_plan_clear():
    ctx = Context("vec")
    with push_context(ctx):
        world = build_mesh_world()
        run_gather(*world)
        ctx.backend.plan.clear()
        assert len(ctx.backend.plan) == 0
        run_gather(*world)                    # rebuilt, still correct
        np.testing.assert_allclose(world[3].data[:, 0],
                                   [1.0, 3.0, 5.0, 7.0, 9.0])


@pytest.mark.parametrize("backend", ["omp", "cuda", "hip"])
def test_all_vec_family_backends_have_plans(backend):
    ctx = Context(backend)
    with push_context(ctx):
        world = build_mesh_world()
        run_gather(*world)
        run_gather(*world)
        assert ctx.backend.plan.hits > 0
