"""The paper's future-work target: Intel GPU code generation ("extend
the code-generation to produce parallelizations for other architectures,
such as Intel GPUs")."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.backends import available_backends, make_backend
from repro.perf import MACHINES, kernel_time


def test_xe_backend_registered():
    assert "xe" in available_backends()
    be = make_backend("xe")
    assert be.kind == "xe"
    assert be.strategy_name == "atomics"


def test_xe_runs_applications():
    base = CabanaSimulation(CabanaConfig.smoke())
    base.run()
    xe = CabanaSimulation(CabanaConfig.smoke().scaled(backend="xe"))
    xe.run()
    np.testing.assert_allclose(xe.history["e_energy"],
                               base.history["e_energy"], rtol=1e-10)
    st = xe.ctx.perf.get("Interpolate")
    assert st.extras.get("device") == "xe"


def test_max_1550_in_catalogue():
    m = MACHINES["max_1550"]
    assert m.kind == "gpu"
    assert m.peak_gflops > MACHINES["mi250x_gcd"].peak_gflops
    # pricing works end to end
    sim = CabanaSimulation(CabanaConfig.smoke().scaled(backend="xe"))
    sim.run()
    t = kernel_time(sim.ctx.perf.get("Move_Deposit"), m, "atomics")
    assert t > 0


def test_unknown_device_kind_rejected():
    from repro.backends import DeviceBackend
    with pytest.raises(ValueError):
        DeviceBackend(kind="tpu")
