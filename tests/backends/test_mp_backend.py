"""The ``mp`` backend: true shared-memory multiprocess execution.

These tests force the parallel path with ``min_chunk=1`` so even tiny
test sets are split across workers, and check the graceful-degradation
paths (``nworkers=1``, unresolvable kernels) fall back to ``vec``.
"""
import pickle

import numpy as np
import pytest

from repro.backends import available_backends, make_backend
from repro.backends.mp import MpBackend
from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_RW,
                            OPP_WRITE, Context, arg_dat, arg_gbl, decl_dat,
                            decl_global, decl_map, decl_particle_set,
                            decl_set, par_loop, particle_move, push_context)
from repro.core.kernel import Kernel, kernel_from_ref, kernel_ref

MP_OPTS = {"nworkers": 2, "min_chunk": 1}


def saxpy_kernel(x, y):
    y[0] = y[0] + 2.5 * x[0]
    y[1] = y[1] - x[1]


def deposit2_kernel(w, a, b):
    a[0] += w[0]
    b[0] += w[0] * 0.5


def walk_kernel(move, p):
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


def build_deposit_world(seed, n_parts):
    rng = np.random.default_rng(seed)
    cells = decl_set(6)
    nodes = decl_set(8)
    parts = decl_particle_set(cells, n_parts)
    c2n = decl_map(cells, nodes, 2, rng.integers(0, 8, size=(6, 2)))
    p2c = decl_map(parts, cells, 1, rng.integers(0, 6, size=(n_parts, 1)))
    w = decl_dat(parts, 1, np.float64, rng.normal(size=n_parts))
    nd = decl_dat(nodes, 1, np.float64)
    return parts, c2n, p2c, w, nd


@pytest.fixture
def mp_ctx():
    ctx = Context("mp", **MP_OPTS)
    yield ctx
    ctx.backend.close()


def energy_kernel(x, e):
    e[0] += x[0] * x[0] + x[1] * x[1]


def test_mp_backend_registered():
    assert "mp" in available_backends()
    be = make_backend("mp", nworkers=2)
    assert isinstance(be, MpBackend)
    be.close()


def test_direct_rw_matches_expected(mp_ctx):
    with push_context(mp_ctx):
        s = decl_set(301)   # odd size: uneven block-aligned chunks
        x = decl_dat(s, 2, np.float64, np.arange(602.0).reshape(301, 2))
        y = decl_dat(s, 2, np.float64, np.ones((301, 2)))
        par_loop(saxpy_kernel, "saxpy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        expected = np.ones((301, 2))
        expected[:, 0] += 2.5 * np.arange(602.0).reshape(301, 2)[:, 0]
        expected[:, 1] -= np.arange(602.0).reshape(301, 2)[:, 1]
        np.testing.assert_allclose(y.data, expected)
    assert mp_ctx.backend.stats["parallel_loops"] == 1
    assert mp_ctx.backend.stats["fallback_loops"] == 0


def test_indirect_inc_scatter_merge_matches_seq(mp_ctx):
    with push_context(Context("seq")):
        parts, c2n, p2c, w, nd = build_deposit_world(7, 64)
        par_loop(deposit2_kernel, "dep", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
        expected = nd.data.copy()
    with push_context(mp_ctx):
        parts, c2n, p2c, w, nd = build_deposit_world(7, 64)
        par_loop(deposit2_kernel, "dep", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
        np.testing.assert_allclose(nd.data, expected, rtol=1e-12,
                                   atol=1e-12)
    assert mp_ctx.backend.stats["parallel_loops"] == 1
    st = mp_ctx.perf.get("dep")
    assert st.extras["strategy"] == "scatter_arrays"
    assert st.extras["nworkers"] == 2
    assert len(st.worker_seconds) == 2
    assert st.load_imbalance >= 1.0


def test_global_reduction_matches_seq(mp_ctx):
    vals = np.random.default_rng(3).normal(size=(130, 2))
    with push_context(Context("seq")):
        s = decl_set(130)
        x = decl_dat(s, 2, np.float64, vals)
        e = decl_global(1, np.float64)
        par_loop(energy_kernel, "energy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_gbl(e, OPP_INC))
        expected = e.value
    with push_context(mp_ctx):
        s = decl_set(130)
        x = decl_dat(s, 2, np.float64, vals)
        e = decl_global(1, np.float64)
        par_loop(energy_kernel, "energy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_gbl(e, OPP_INC))
        assert e.value == pytest.approx(expected, rel=1e-12)
    assert mp_ctx.backend.stats["parallel_loops"] == 1


def test_move_matches_seq(mp_ctx):
    rng = np.random.default_rng(11)
    n_cells, n_parts = 8, 120
    positions = rng.uniform(-1.0, n_cells + 1.0, size=n_parts)
    starts = rng.integers(0, n_cells, size=n_parts)

    results = {}
    for name, ctx in (("seq", Context("seq")), ("mp", mp_ctx)):
        with push_context(ctx):
            cells = decl_set(n_cells)
            c2c = decl_map(cells, cells, 2,
                           [[i - 1, i + 1 if i + 1 < n_cells else -1]
                            for i in range(n_cells)])
            parts = decl_particle_set(cells, n_parts)
            p2c = decl_map(parts, cells, 1, starts.reshape(-1, 1))
            pos = decl_dat(parts, 1, np.float64, positions)
            res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                                arg_dat(pos, OPP_READ))
            results[name] = (res.n_removed,
                             sorted(zip(pos.data[:, 0], p2c.p2c.tolist())))
    assert results["seq"] == results["mp"] or (
        results["seq"][0] == results["mp"][0]
        and np.allclose([p for p, _ in results["seq"][1]],
                        [p for p, _ in results["mp"][1]])
        and [c for _, c in results["seq"][1]]
        == [c for _, c in results["mp"][1]])
    assert mp_ctx.backend.stats["parallel_moves"] == 1
    assert mp_ctx.perf.get("walk").worker_seconds


def test_nworkers_one_degrades_to_vec():
    ctx = Context("mp", nworkers=1)
    with push_context(ctx):
        s = decl_set(40)
        x = decl_dat(s, 2, np.float64, np.arange(80.0).reshape(40, 2))
        y = decl_dat(s, 2, np.float64)
        par_loop(saxpy_kernel, "saxpy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        assert np.isfinite(y.data).all()
    assert ctx.backend.stats["fallback_loops"] == 1
    assert ctx.backend.stats["parallel_loops"] == 0
    assert ctx.perf.get("saxpy").extras.get("mp_fallback") is True
    assert ctx.backend._pool is None   # never even forked
    ctx.backend.close()


def test_unresolvable_kernel_degrades_to_vec(mp_ctx):
    def local_kernel(x, y):        # nested def: no importable reference
        y[0] = x[0] * 3.0

    with push_context(mp_ctx):
        s = decl_set(64)
        x = decl_dat(s, 1, np.float64, np.arange(64.0))
        y = decl_dat(s, 1, np.float64)
        par_loop(local_kernel, "local", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
        np.testing.assert_allclose(y.data[:, 0], np.arange(64.0) * 3.0)
    assert mp_ctx.backend.stats["fallback_loops"] == 1


def test_small_loops_stay_local():
    ctx = Context("mp", nworkers=2)   # default min_chunk=512
    with push_context(ctx):
        s = decl_set(10)
        x = decl_dat(s, 2, np.float64)
        y = decl_dat(s, 2, np.float64)
        par_loop(saxpy_kernel, "saxpy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
    assert ctx.backend.stats["fallback_loops"] == 1
    assert ctx.backend._pool is None
    ctx.backend.close()


def test_capacity_grow_readopts_shared_buffer(mp_ctx):
    with push_context(mp_ctx):
        cells = decl_set(4)
        parts = decl_particle_set(cells, 32)
        decl_map(parts, cells, 1, np.zeros((32, 1), dtype=np.int64))
        x = decl_dat(parts, 1, np.float64, np.ones(32))
        y = decl_dat(parts, 1, np.float64)
        par_loop(saxpy_kernel_1d, "s1", parts, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        first = y.data.copy()
        # force reallocation well past the shared segment's capacity
        sl = parts.add_particles(4 * parts.capacity,
                                 cell_indices=np.zeros(4 * parts.capacity,
                                                       dtype=np.int64))
        x.data[sl] = 2.0
        par_loop(saxpy_kernel_1d, "s1", parts, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        np.testing.assert_allclose(y.data[:32, 0], first[:, 0] + 2.5)
        np.testing.assert_allclose(y.data[32:, 0], 5.0)
    assert mp_ctx.backend.stats["parallel_loops"] == 2


def saxpy_kernel_1d(x, y):
    y[0] = y[0] + 2.5 * x[0]


def test_close_is_idempotent_and_reentrant(mp_ctx):
    with push_context(mp_ctx):
        s = decl_set(64)
        x = decl_dat(s, 1, np.float64, np.arange(64.0))
        y = decl_dat(s, 1, np.float64)
        par_loop(saxpy_kernel_1d, "s1", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        before = y.data.copy()
        mp_ctx.backend.close()
        mp_ctx.backend.close()          # idempotent
        np.testing.assert_allclose(y.data, before)   # buffers survive
        par_loop(saxpy_kernel_1d, "s1", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))   # pool revives
        np.testing.assert_allclose(y.data[:, 0],
                                   before[:, 0] + 2.5 * np.arange(64.0))


# -- kernel reference plumbing (what makes kernels cross processes) ----------


def test_kernel_ref_roundtrip():
    ref = kernel_ref(saxpy_kernel_1d)
    assert ref == (__name__, "saxpy_kernel_1d")
    kern = kernel_from_ref(*ref)
    assert kern.fn is saxpy_kernel_1d
    # cached: same Kernel object on repeat resolution
    assert kernel_from_ref(*ref) is kern


def test_kernel_ref_rejects_locals():
    def nested(x):
        x[0] = 0.0
    assert kernel_ref(nested) is None
    assert kernel_ref(lambda x: x) is None


def test_kernel_pickles_by_reference():
    kern = Kernel(saxpy_kernel_1d)
    clone = pickle.loads(pickle.dumps(kern))
    assert clone.fn is saxpy_kernel_1d
    with pytest.raises(pickle.PicklingError):
        def nested(x):
            x[0] = 0.0
        pickle.dumps(Kernel(nested))


# -- arena scatter cache vs CPython id reuse ---------------------------------


def test_arena_scatter_survives_id_reuse_with_different_shape():
    """Scatter segments are keyed by (id(dat), worker); CPython reuses
    object ids, so a key hit can be a different dat whose component
    count differs — the arena must recreate, never hand back a segment
    of the wrong shape (this surfaced as a nondeterministic np.add.at
    broadcast failure in the conformance sweep)."""
    from repro.backends.mp import _Arena, _shared_memory

    if _shared_memory() is None:
        pytest.skip("platform lacks shared memory")

    class FakeDat:
        def __init__(self, shape):
            self.raw = np.zeros(shape, dtype=np.float64)

    arena = _Arena()
    try:
        wide = FakeDat((8, 2))
        spec = arena.scatter(wide, 0)
        assert tuple(spec[1]) == (8, 2)
        # simulate id reuse: a narrower dat lands on the same cache key
        narrow = FakeDat((8, 1))
        arena._scatter[(id(narrow), 0)] = \
            arena._scatter.pop((id(wide), 0))
        spec2 = arena.scatter(narrow, 0)
        assert tuple(spec2[1]) == (8, 1)
        # growth still reuses-by-recreate, larger capacity wins
        grown = FakeDat((16, 1))
        arena._scatter[(id(grown), 0)] = \
            arena._scatter.pop((id(narrow), 0))
        assert tuple(arena.scatter(grown, 0)[1]) == (16, 1)
    finally:
        arena.close()
