"""mp-backend locality features: per-loop fallback reasons, the small
direct-loop dispatch floor, and the cell-segment work decomposition
(shared-dat increments with no scatter merge)."""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_WRITE,
                            Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            push_context, sort_particles_by_cell)


def scale_kernel(x, y):
    y[0] = 3.0 * x[0]


def deposit_p2c_kernel(w, acc):
    acc[0] += w[0]
    acc[1] += 2.0 * w[0]


@pytest.fixture
def mp_ctx():
    # library defaults: min_chunk=512 exercises the small-dispatch floor
    ctx = Context("mp", nworkers=2)
    yield ctx
    ctx.backend.close()


def build_deposit_world(rng, n_parts, n_cells=16, sort=False):
    cells = decl_set(n_cells)
    parts = decl_particle_set(cells, n_parts)
    p2c = decl_map(parts, cells, 1,
                   rng.integers(0, n_cells, size=(n_parts, 1)))
    w = decl_dat(parts, 1, np.float64,
                 rng.integers(-8, 9, size=n_parts).astype(np.float64))
    acc = decl_dat(cells, 2, np.float64)
    if sort:
        sort_particles_by_cell(parts)
    return parts, p2c, w, acc


def test_small_direct_loop_dispatches_instead_of_falling_back(mp_ctx):
    """Sub-``min_chunk`` loops without indirect-INC scatters dispatch on
    the ``small_chunk`` floor — the BENCH_mp fallback-reduction clause."""
    with push_context(mp_ctx):
        s = decl_set(100)        # 100 < 2*512, but 100 >= 2*24
        x = decl_dat(s, 1, np.float64, np.arange(100.0))
        y = decl_dat(s, 1, np.float64)
        par_loop(scale_kernel, "scale", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
        assert np.array_equal(y.data[:, 0], 3.0 * np.arange(100.0))
    be = mp_ctx.backend
    assert be.stats["parallel_loops"] == 1
    assert be.stats["small_parallel_loops"] == 1
    assert be.stats["fallback_loops"] == 0
    assert "scale" not in be.fallback_reasons


def test_small_loop_below_floor_records_tiny_reason(mp_ctx):
    with push_context(mp_ctx):
        s = decl_set(30)         # 30 // 24 == 1 chunk: not worth a hop
        x = decl_dat(s, 1, np.float64, np.arange(30.0))
        y = decl_dat(s, 1, np.float64)
        par_loop(scale_kernel, "scale30", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
        assert np.array_equal(y.data[:, 0], 3.0 * np.arange(30.0))
    be = mp_ctx.backend
    assert be.stats["fallback_loops"] == 1
    assert be.fallback_reasons["scale30"] == "tiny(n=30)"
    assert mp_ctx.perf.get("scale30").extras["mp_fallback_reason"] \
        == "tiny(n=30)"


def test_small_deposit_loop_still_falls_back(mp_ctx):
    """Indirect-INC scatters pay a merge pass per worker: the small
    floor must not apply to them."""
    rng = np.random.default_rng(0)
    with push_context(mp_ctx):
        parts, p2c, w, acc = build_deposit_world(rng, n_parts=100)
        par_loop(deposit_p2c_kernel, "SmallDeposit", parts,
                 OPP_ITERATE_ALL, arg_dat(w, OPP_READ),
                 arg_dat(acc, p2c, OPP_INC))
    be = mp_ctx.backend
    assert be.stats["parallel_loops"] == 0
    assert be.fallback_reasons["SmallDeposit"] == "tiny(n=100)"


def test_unreferencable_kernel_reason(mp_ctx):
    def local_kernel(x, y):
        y[0] = x[0]

    with push_context(mp_ctx):
        s = decl_set(2048)
        x = decl_dat(s, 1, np.float64, np.ones(2048))
        y = decl_dat(s, 1, np.float64)
        par_loop(local_kernel, "localk", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_WRITE))
    assert mp_ctx.backend.fallback_reasons["localk"] == "kernel-unref"


def test_segment_decomposition_increments_shared_dat(mp_ctx):
    """A verifiably cell-sorted particle deposit splits on cell-segment
    boundaries: every worker owns whole cells, so the P2C increments go
    straight into the shared dat and the result is bit-identical to seq
    (integer-valued data keeps reduceat out of the comparison)."""
    seq_ctx = Context("seq")
    with push_context(seq_ctx):
        parts, p2c, w, acc = build_deposit_world(
            np.random.default_rng(5), n_parts=2000, sort=True)
        par_loop(deposit_p2c_kernel, "SegDeposit", parts,
                 OPP_ITERATE_ALL, arg_dat(w, OPP_READ),
                 arg_dat(acc, p2c, OPP_INC))
        want = acc.data.copy()

    with push_context(mp_ctx):
        parts, p2c, w, acc = build_deposit_world(
            np.random.default_rng(5), n_parts=2000, sort=True)
        par_loop(deposit_p2c_kernel, "SegDeposit", parts,
                 OPP_ITERATE_ALL, arg_dat(w, OPP_READ),
                 arg_dat(acc, p2c, OPP_INC))
        got = acc.data.copy()

    be = mp_ctx.backend
    assert be.stats["segment_loops"] == 1
    assert be.stats["fallback_loops"] == 0
    st = mp_ctx.perf.get("SegDeposit")
    assert st.extras["strategy"] == "shared_segments"
    assert st.extras["decomposition"] == "segment"
    assert np.array_equal(got, want)


def test_unsorted_deposit_uses_scatter_arrays(mp_ctx):
    with push_context(mp_ctx):
        parts, p2c, w, acc = build_deposit_world(
            np.random.default_rng(6), n_parts=2000, sort=False)
        par_loop(deposit_p2c_kernel, "BlockDeposit", parts,
                 OPP_ITERATE_ALL, arg_dat(w, OPP_READ),
                 arg_dat(acc, p2c, OPP_INC))
    st = mp_ctx.perf.get("BlockDeposit")
    assert st.extras["strategy"] == "scatter_arrays"
    assert st.extras["decomposition"] == "block"
    assert mp_ctx.backend.stats["segment_loops"] == 0


def test_dirty_order_disables_segment_decomposition(mp_ctx):
    """A move that relocates particles dirties the order; the next
    deposit must fall off the segment path (stale offsets would race)."""
    with push_context(mp_ctx):
        parts, p2c, w, acc = build_deposit_world(
            np.random.default_rng(7), n_parts=2000, sort=True)
        parts.order.note_relocated(5)
        par_loop(deposit_p2c_kernel, "DirtyDeposit", parts,
                 OPP_ITERATE_ALL, arg_dat(w, OPP_READ),
                 arg_dat(acc, p2c, OPP_INC))
    st = mp_ctx.perf.get("DirtyDeposit")
    assert st.extras["decomposition"] == "block"
    assert mp_ctx.backend.stats["segment_loops"] == 0
