"""The particle-locality engine: autotuner policy, cached segment
layouts, the pre-sorted segmented reduction, and the vec fast path.

Bit-identity assertions use *integer-valued* float data throughout:
``np.add.reduceat`` on SIMD NumPy builds reassociates segment sums, so
the pre-sorted fast path is only bitwise-reproducible when every partial
sum is exact (integers under ~2^53 are).  General float data is checked
with ``allclose`` instead — the same contract the race-handling
strategies already document.
"""
import numpy as np
import pytest

from repro.backends.locality import LocalityAutotuner
from repro.backends.plan import PlanCache
from repro.backends.reduction import SegmentedPresorted, make_strategy
from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_RW,
                            Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            push_context, sort_particles_by_cell)

# -- autotuner policy ---------------------------------------------------------


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        LocalityAutotuner(mode="sometimes")


def test_never_mode_is_off():
    t = LocalityAutotuner(mode="never")
    assert not t.enabled
    assert not t.should_sort(10_000)


def test_always_mode_sorts_above_min_size():
    t = LocalityAutotuner(mode="always", min_particles=64)
    assert t.should_sort(64)
    assert not t.should_sort(63)     # bookkeeping outweighs any win


def test_auto_bootstraps_optimistically():
    t = LocalityAutotuner(mode="auto")
    assert t.should_sort(1000)       # nothing measured yet: sort and learn


def test_auto_skips_when_sort_cost_dominates():
    t = LocalityAutotuner(mode="auto")
    t.note_sort(1000, seconds=1.0)           # sort_pp = 1e-3
    t.note_loop(1000, seconds=1e-4, fast=False)   # slow_pp = 1e-7
    t.note_loop(1000, seconds=5e-5, fast=True)    # fast_pp = 5e-8
    assert not t.should_sort(1000)   # gain 5e-8*n << cost 1e-3*n
    assert t.n_skips == 1


def test_auto_sorts_when_gain_dominates():
    t = LocalityAutotuner(mode="auto")
    t.note_sort(1000, seconds=1e-5)          # sort_pp = 1e-8
    t.note_loop(1000, seconds=1.0, fast=False)    # slow_pp = 1e-3
    t.note_loop(1000, seconds=1e-4, fast=True)    # fast_pp = 1e-7
    assert t.should_sort(1000)
    assert t.n_skips == 0


def test_loops_between_sorts_tracks_amortisation_window():
    t = LocalityAutotuner(mode="auto", alpha=1.0)
    t.note_sort(100, 1e-3)
    for _ in range(5):
        t.note_loop(100, 1e-4, fast=True)
    t.note_sort(100, 1e-3)
    assert t.loops_between_sorts == pytest.approx(5.0)


# -- cached segment layouts ---------------------------------------------------


def make_sorted_world(cell_ids):
    cells = decl_set(int(max(cell_ids)) + 1)
    p = decl_particle_set(cells, len(cell_ids))
    m = decl_map(p, cells, 1, np.asarray(cell_ids).reshape(-1, 1))
    sort_particles_by_cell(p)
    assert p.order.is_valid()
    return cells, p, m


def test_segment_layout_shapes_and_offsets():
    cells, p, m = make_sorted_world([2, 0, 2, 0, 0])
    plan = PlanCache()
    counts, offsets, nonempty, starts = plan.segments(p)
    assert counts.tolist() == [3, 0, 2]
    assert offsets.tolist() == [0, 3, 3, 5]
    assert nonempty.tolist() == [0, 2]
    assert starts.tolist() == [0, 3]


def test_segments_cached_per_order_state():
    _, p, _ = make_sorted_world([1, 0, 1, 0])
    plan = PlanCache()
    plan.segments(p)
    assert (plan.segment_misses, plan.segment_hits) == (1, 0)
    plan.segments(p)
    assert (plan.segment_misses, plan.segment_hits) == (1, 1)
    # any mutation (even one that keeps the set sorted) changes the key
    p.order.note_relocated(0)
    plan.segments(p)
    assert plan.segment_misses == 2


def test_clear_drops_segment_cache():
    _, p, _ = make_sorted_world([0, 1])
    plan = PlanCache()
    plan.segments(p)
    plan.clear()
    assert plan.segment_hits == plan.segment_misses == 0
    plan.segments(p)
    assert plan.segment_misses == 1


# -- the pre-sorted segmented reduction ---------------------------------------


def test_presorted_registered():
    assert isinstance(make_strategy("segmented_presorted"),
                      SegmentedPresorted)


def test_presorted_matches_add_at_on_sorted_rows(rng):
    rows = np.sort(rng.integers(0, 12, size=200))
    vals = rng.normal(size=(200, 3))
    want = np.zeros((12, 3))
    np.add.at(want, rows, vals)
    got = np.zeros((12, 3))
    coll = SegmentedPresorted().apply(got, rows, vals)
    assert np.allclose(got, want)
    assert coll == int(np.bincount(rows).max())


def test_presorted_bit_equal_on_integer_values(rng):
    rows = np.sort(rng.integers(0, 9, size=300))
    vals = rng.integers(-8, 8, size=(300, 2)).astype(np.float64)
    want = np.zeros((9, 2))
    np.add.at(want, rows, vals)
    got = np.zeros((9, 2))
    SegmentedPresorted().apply(got, rows, vals)
    assert np.array_equal(got, want)


def test_presorted_with_explicit_starts():
    rows = np.array([0, 0, 3, 3, 3, 5])
    vals = np.ones((6, 1))
    starts = np.array([0, 2, 5])
    out = np.zeros((6, 1))
    SegmentedPresorted().apply(out, rows, vals, starts=starts)
    assert out[:, 0].tolist() == [2.0, 0.0, 0.0, 3.0, 0.0, 1.0]


def test_presorted_correct_on_unsorted_rows_too():
    """Distinct runs of the same key resolve through np.add.at."""
    rows = np.array([1, 1, 0, 1, 1])
    vals = np.ones((5, 1))
    out = np.zeros((3, 1))
    SegmentedPresorted().apply(out, rows, vals)
    assert out[:, 0].tolist() == [1.0, 4.0, 0.0]


def test_presorted_empty_is_noop():
    out = np.zeros((4, 1))
    assert SegmentedPresorted().apply(out, np.empty(0, np.int64),
                                      np.empty((0, 1))) == 0
    assert not out.any()


# -- the vec fast path --------------------------------------------------------


def gather_deposit_kernel(e, w, acc):
    w[0] = w[0] + e[0]
    acc[0] += w[0]
    acc[1] += 2.0 * w[0]


def build_loop_world(rng, n_parts=600, n_cells=24, sort=False):
    cells = decl_set(n_cells)
    parts = decl_particle_set(cells, n_parts)
    p2c = decl_map(parts, cells, 1,
                   rng.integers(0, n_cells, size=(n_parts, 1)))
    # integer-valued floats: every partial sum is exact, so reduceat
    # reassociation cannot produce bit differences
    e = decl_dat(cells, 1, np.float64,
                 rng.integers(-4, 5, size=n_cells).astype(np.float64))
    w = decl_dat(parts, 1, np.float64,
                 rng.integers(-8, 9, size=n_parts).astype(np.float64))
    acc = decl_dat(cells, 2, np.float64)
    if sort:
        sort_particles_by_cell(parts)
    return parts, p2c, e, w, acc


def run_gather_deposit(backend, rng_seed, sort, **options):
    rng = np.random.default_rng(rng_seed)
    ctx = Context(backend, **options)
    try:
        with push_context(ctx):
            parts, p2c, e, w, acc = build_loop_world(rng, sort=sort)
            par_loop(gather_deposit_kernel, "GatherDeposit", parts,
                     OPP_ITERATE_ALL,
                     arg_dat(e, p2c, OPP_READ),
                     arg_dat(w, OPP_RW),
                     arg_dat(acc, p2c, OPP_INC))
        stats = ctx.perf.get("GatherDeposit")
        # pair every particle value with its cell so sorted and unsorted
        # runs compare positionally-independently
        pairs = sorted(zip(p2c.p2c.tolist(), w.data[:, 0].tolist()))
        return acc.data.copy(), pairs, stats
    finally:
        close = getattr(ctx.backend, "close", None)
        if close:
            close()


def test_vec_fast_path_engages_and_matches_seq_bitwise():
    acc_seq, pairs_seq, _ = run_gather_deposit("seq", 42, sort=True)
    acc_vec, pairs_vec, st = run_gather_deposit("vec", 42, sort=True,
                                                locality="always")
    assert st.extras.get("locality_fast_path") is True
    assert st.extras.get("strategy") == "segmented_presorted"
    assert np.array_equal(acc_vec, acc_seq)
    assert pairs_vec == pairs_seq


def test_vec_default_locality_is_off():
    _, _, st = run_gather_deposit("vec", 42, sort=True)
    assert "locality_fast_path" not in st.extras


def test_vec_always_sorts_unsorted_input_and_records_pseudo_loop():
    rng = np.random.default_rng(3)
    ctx = Context("vec", locality="always")
    with push_context(ctx):
        parts, p2c, e, w, acc = build_loop_world(rng, sort=False)
        par_loop(gather_deposit_kernel, "GatherDeposit", parts,
                 OPP_ITERATE_ALL,
                 arg_dat(e, p2c, OPP_READ),
                 arg_dat(w, OPP_RW),
                 arg_dat(acc, p2c, OPP_INC))
    assert parts.order.is_valid()        # the engine sorted the set
    assert ctx.perf.get("SortParticles") is not None
    assert ctx.backend.locality.n_sorts == 1


@pytest.mark.parametrize("backend,options", [
    ("seq", {}),
    ("vec", {}),
    ("vec", {"locality": "always"}),
    ("mp", {"nworkers": 2, "min_chunk": 16}),
])
def test_sorted_vs_unsorted_bit_identical(backend, options):
    """The ISSUE's conformance clause: on integer-valued data, sorting
    the particles first must not change a single INC deposit bit."""
    acc_u, pairs_u, _ = run_gather_deposit(backend, 1234, False, **options)
    acc_s, pairs_s, _ = run_gather_deposit(backend, 1234, True, **options)
    assert np.array_equal(acc_s, acc_u)
    assert pairs_s == pairs_u


@pytest.mark.parametrize("backend,options", [
    ("vec", {}),
    ("vec", {"locality": "always"}),
    ("mp", {"nworkers": 2, "min_chunk": 16}),
])
def test_backends_match_seq_bitwise_on_sorted_integer_data(backend,
                                                           options):
    acc_seq, pairs_seq, _ = run_gather_deposit("seq", 77, sort=True)
    acc, pairs, _ = run_gather_deposit(backend, 77, sort=True, **options)
    assert np.array_equal(acc, acc_seq)
    assert pairs == pairs_seq
