"""Cross-backend consistency: every backend must produce the sequential
reference answer for randomized loop/move workloads (the DSL's core
guarantee), plus backend-specific extras."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_READ, OPP_RW,
                            Context, arg_dat, decl_dat, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            particle_move, push_context)

OTHERS = ["vec", "omp", "cuda", "hip", "mp"]


def saxpy_kernel(x, y):
    y[0] = y[0] + 2.5 * x[0]
    y[1] = y[1] - x[1]


def deposit2_kernel(w, a, b):
    a[0] += w[0]
    b[0] += w[0] * 0.5


def walk_kernel(move, p):
    lo = move.cell * 1.0
    if p[0] < lo:
        move.move_to(move.c2c[0])
    elif p[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        move.done()


def build_deposit_world(seed, n_parts):
    rng = np.random.default_rng(seed)
    cells = decl_set(6)
    nodes = decl_set(8)
    parts = decl_particle_set(cells, n_parts)
    c2n = decl_map(cells, nodes, 2,
                   rng.integers(0, 8, size=(6, 2)))
    p2c = decl_map(parts, cells, 1,
                   rng.integers(0, 6, size=(n_parts, 1)))
    w = decl_dat(parts, 1, np.float64, rng.normal(size=n_parts))
    nd = decl_dat(nodes, 1, np.float64)
    return parts, c2n, p2c, w, nd


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16), n_parts=st.integers(1, 64),
       backend=st.sampled_from(OTHERS))
def test_property_deposit_matches_seq(seed, n_parts, backend):
    with push_context(Context("seq")):
        parts, c2n, p2c, w, nd = build_deposit_world(seed, n_parts)
        par_loop(deposit2_kernel, "dep", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
        expected = nd.data.copy()
    with push_context(Context(backend)):
        parts, c2n, p2c, w, nd = build_deposit_world(seed, n_parts)
        par_loop(deposit2_kernel, "dep", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
        np.testing.assert_allclose(nd.data, expected, rtol=1e-12,
                                   atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16), backend=st.sampled_from(OTHERS))
def test_property_move_matches_seq(seed, backend):
    rng = np.random.default_rng(seed)
    n_cells, n_parts = 8, 40
    positions = rng.uniform(-1.0, n_cells + 1.0, size=n_parts)
    starts = rng.integers(0, n_cells, size=n_parts)

    results = {}
    for be in ("seq", backend):
        with push_context(Context(be)):
            cells = decl_set(n_cells)
            c2c = decl_map(cells, cells, 2,
                           [[i - 1, i + 1 if i + 1 < n_cells else -1]
                            for i in range(n_cells)])
            parts = decl_particle_set(cells, n_parts)
            p2c = decl_map(parts, cells, 1, starts.reshape(-1, 1))
            pos = decl_dat(parts, 1, np.float64, positions)
            res = particle_move(walk_kernel, "walk", parts, c2c, p2c,
                                arg_dat(pos, OPP_READ))
            # survivors identified by their position value (order differs
            # after hole filling)
            results[be] = (res.n_removed,
                           sorted(zip(pos.data[:, 0], p2c.p2c.tolist())))
    assert results["seq"][0] == results[backend][0]
    seq_pairs = results["seq"][1]
    oth_pairs = results[backend][1]
    assert [c for _, c in seq_pairs] == [c for _, c in oth_pairs]
    np.testing.assert_allclose([p for p, _ in seq_pairs],
                               [p for p, _ in oth_pairs])


@pytest.mark.parametrize("backend", OTHERS)
def test_rw_direct_roundtrip(backend):
    with push_context(Context(backend)):
        s = decl_set(5)
        x = decl_dat(s, 2, np.float64, np.arange(10.0).reshape(5, 2))
        y = decl_dat(s, 2, np.float64, np.ones((5, 2)))
        par_loop(saxpy_kernel, "saxpy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
        expected = np.ones((5, 2))
        expected[:, 0] += 2.5 * np.arange(10.0).reshape(5, 2)[:, 0]
        expected[:, 1] -= np.arange(10.0).reshape(5, 2)[:, 1]
        np.testing.assert_allclose(y.data, expected)


def test_device_backend_reports_extras():
    ctx = Context("cuda")
    with push_context(ctx):
        parts, c2n, p2c, w, nd = build_deposit_world(1, 32)
        par_loop(deposit2_kernel, "dep", parts, OPP_ITERATE_ALL,
                 arg_dat(w, OPP_READ),
                 arg_dat(nd, 0, c2n, p2c, OPP_INC),
                 arg_dat(nd, 1, c2n, p2c, OPP_INC))
    st_ = ctx.perf.get("dep")
    assert st_.extras["device"] == "cuda"
    assert st_.extras["strategy"] == "atomics"
    assert st_.max_collisions >= 1


def test_omp_backend_reports_threads():
    ctx = Context("omp", nthreads=3)
    with push_context(ctx):
        s = decl_set(4)
        x = decl_dat(s, 2, np.float64)
        y = decl_dat(s, 2, np.float64)
        par_loop(saxpy_kernel, "saxpy", s, OPP_ITERATE_ALL,
                 arg_dat(x, OPP_READ), arg_dat(y, OPP_RW))
    assert ctx.perf.get("saxpy").extras["nthreads"] == 3
