"""Matrix-PIC sparse-operator engine: incremental CSR maintenance,
one-shot deposits, strategy registration, autotuner dispatch, and
end-to-end app conformance under a forced ``sparse_csr`` strategy.

The load-bearing invariant: after any particle mutation (relocations,
hole-fills, injections, sorts) an *incrementally patched* operator must
be bit-for-bit identical to one assembled from scratch.
"""
import numpy as np
import pytest

from repro.backends.locality import LocalityAutotuner
from repro.backends.reduction import make_strategy
from repro.backends.sparse_ops import (CsrOperator, have_scipy,
                                       sparse_deposit)
from repro.core.api import (Context, decl_dat, decl_map,
                            decl_particle_set, decl_set, push_context)
from repro.core.particles import sort_particles_by_cell

pytestmark = pytest.mark.skipif(not have_scipy(),
                                reason="scipy.sparse not available")

N_CELLS = 7
N_NODES = 9


def build_world(n_parts=40, seed=0, with_map=False):
    rng = np.random.default_rng(seed)
    cells = decl_set(N_CELLS)
    parts = decl_particle_set(cells, n_parts)
    p2c = decl_map(parts, cells, 1,
                   rng.integers(0, N_CELLS, size=(n_parts, 1)))
    parts.p2c_map = p2c
    if with_map:
        nodes = decl_set(N_NODES)
        c2n = decl_map(cells, nodes, 3,
                       rng.integers(0, N_NODES, size=(N_CELLS, 3)))
        return parts, p2c, c2n
    return parts, p2c, None


def assert_bit_identical(op, reference_op):
    """The maintained operator must equal a from-scratch assembly."""
    a, b = op.P, reference_op.P
    assert a.shape == b.shape
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.data, b.data)


def fresh_copy(op):
    new = CsrOperator(op.p2c_map, map_=op.map, map_idx=op.map_idx,
                      weight_fn=op.weight_fn)
    new.refresh()
    return new


# -- incremental maintenance --------------------------------------------------

def test_refresh_hit_when_order_state_unchanged():
    with push_context(Context("seq")):
        _, p2c, _ = build_world()
        op = CsrOperator(p2c)
        assert op.refresh() == "full"
        assert op.refresh() == "hit"
        assert op.stats["refresh_hits"] == 1


def test_relocations_patch_only_dirty_rows():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world()
        op = CsrOperator(p2c)
        op.refresh()
        moved = np.array([3, 11, 17])
        p2c.p2c[moved] = (p2c.p2c[moved] + 1) % N_CELLS
        parts.order.note_relocated(moved.size)
        assert op.refresh() == "incremental"
        assert op.stats["rows_patched"] == moved.size
        assert_bit_identical(op, fresh_copy(op))


def test_injections_append_tail_rows():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=20)
        op = CsrOperator(p2c)
        op.refresh()
        parts.add_particles(6, cell_indices=np.arange(6) % N_CELLS)
        assert op.refresh() == "incremental"
        assert op.P.shape[0] == 26
        assert_bit_identical(op, fresh_copy(op))


def test_hole_fills_patch_teleported_rows():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=30)
        op = CsrOperator(p2c)
        op.refresh()
        parts.remove_particles(np.array([0, 4, 29]))
        assert op.refresh() == "incremental"
        assert op.P.shape[0] == 27
        assert_bit_identical(op, fresh_copy(op))


def test_sort_forces_full_rebuild():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world()
        op = CsrOperator(p2c)
        op.refresh()
        p2c.p2c[[0, 5]] = [(p2c.p2c[0] + 1) % N_CELLS,
                           (p2c.p2c[5] + 1) % N_CELLS]
        parts.order.note_relocated(2)     # accrue some dirt first...
        assert op.refresh() == "incremental"
        sort_particles_by_cell(parts)     # ...then reset the counter
        assert op.refresh() == "full"     # negative delta -> from scratch
        assert op.stats["full_rebuilds"] == 2
        assert_bit_identical(op, fresh_copy(op))


def test_wholesale_disorder_forces_full_rebuild():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=40)
        op = CsrOperator(p2c)
        op.refresh()
        rng = np.random.default_rng(1)
        p2c.p2c[:] = rng.integers(0, N_CELLS, size=40)
        parts.order.note_relocated(30)    # 75% dirty > threshold
        assert op.refresh() == "full"
        assert_bit_identical(op, fresh_copy(op))


def test_mixed_mutation_sequence_stays_bit_identical():
    """Interleave every mutation kind and re-check after each refresh."""
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=25, seed=3)
        op = CsrOperator(p2c)
        op.refresh()
        rng = np.random.default_rng(5)
        for step in range(8):
            k = rng.integers(1, 4)
            idx = rng.choice(parts.size, size=k, replace=False)
            p2c.p2c[idx] = rng.integers(0, N_CELLS, size=k)
            parts.order.note_relocated(int(k))
            if step % 3 == 1:
                parts.add_particles(2, cell_indices=[step % N_CELLS, 0])
            if step % 3 == 2 and parts.size > 6:
                parts.remove_particles(np.array([1, parts.size - 1]))
            op.refresh()
            assert_bit_identical(op, fresh_copy(op))
        assert op.stats["incremental_updates"] > 0


def test_double_addressing_through_mesh_map():
    with push_context(Context("seq")):
        parts, p2c, c2n = build_world(with_map=True)
        for map_idx in (None, 1):
            op = CsrOperator(p2c, map_=c2n, map_idx=map_idx)
            op.refresh()
            p2c.p2c[[2, 9]] = [0, 6]
            parts.order.note_relocated(2)
            assert op.refresh() == "incremental"
            assert_bit_identical(op, fresh_copy(op))


def test_dead_particles_get_zero_weight_rows():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=10)
        p2c.p2c[[1, 7]] = -1
        parts.order.invalidate()
        op = CsrOperator(p2c)
        op.refresh()
        dense = op.P.toarray()
        assert not dense[1].any() and not dense[7].any()
        field = np.arange(N_CELLS, dtype=np.float64).reshape(-1, 1)
        assert (op.gather(field)[[1, 7]] == 0.0).all()


# -- gather / deposit numerics ------------------------------------------------

def test_gather_and_deposit_match_dense_reference():
    with push_context(Context("seq")):
        parts, p2c, _ = build_world(n_parts=50, seed=2)
        op = CsrOperator(p2c)
        rng = np.random.default_rng(2)
        field = rng.normal(size=(N_CELLS, 3))
        np.testing.assert_allclose(op.gather(field),
                                   field[p2c.p2c], rtol=1e-15)
        vals = rng.normal(size=(parts.size, 3))
        got = np.zeros((N_CELLS, 3))
        mult = op.deposit(got, vals)
        want = np.zeros_like(got)
        np.add.at(want, p2c.p2c, vals)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)
        assert mult == np.bincount(p2c.p2c).max()


def test_pt_assembled_from_plan_segments_when_sorted():
    with push_context(Context("vec")) as ctx:
        parts, p2c, _ = build_world(n_parts=60, seed=4)
        sort_particles_by_cell(parts)
        op = ctx.backend.plan.sparse_operator(p2c)
        _ = op.PT
        assert op.stats["pt_from_segments"] == 1
        got = np.zeros((N_CELLS, 1))
        op.deposit(got, np.ones((parts.size, 1)))
        np.testing.assert_array_equal(
            got[:, 0], np.bincount(p2c.p2c, minlength=N_CELLS))


def test_sparse_deposit_float_matches_add_at():
    rng = np.random.default_rng(0)
    rows = rng.integers(-1, N_CELLS, size=200)   # includes dead rows
    vals = rng.normal(size=(200, 2))
    got = np.zeros((N_CELLS, 2))
    sparse_deposit(got, rows, vals)
    want = np.zeros_like(got)
    alive = rows >= 0
    np.add.at(want, rows[alive], vals[alive])
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)


def test_sparse_deposit_integer_data_is_bit_exact():
    rng = np.random.default_rng(1)
    rows = rng.integers(0, N_CELLS, size=500)
    vals = rng.integers(-(2 ** 40), 2 ** 40, size=(500, 1))
    got = np.zeros((N_CELLS, 1), dtype=np.int64)
    sparse_deposit(got, rows, vals)
    want = np.zeros_like(got)
    np.add.at(want, rows, vals)
    np.testing.assert_array_equal(got, want)


# -- strategy registration / autotuner ----------------------------------------

def test_sparse_csr_registered_as_reduction_strategy():
    strat = make_strategy("sparse_csr")
    assert strat.name == "sparse_csr"
    rng = np.random.default_rng(3)
    rows = rng.integers(0, N_CELLS, size=80)
    vals = rng.normal(size=(80, 2))
    got = np.zeros((N_CELLS, 2))
    strat.apply(got, rows, vals)
    want = np.zeros_like(got)
    np.add.at(want, rows, vals)
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)


def test_autotuner_sparse_mode_validation():
    with pytest.raises(ValueError):
        LocalityAutotuner(sparse="sometimes")


def test_pick_strategy_forced_modes():
    tuner = LocalityAutotuner(sparse="always")
    assert tuner.pick_strategy("L", "deposit",
                               ["atomics", "sparse_csr"], 10 ** 5) \
        == "sparse_csr"
    tuner = LocalityAutotuner(sparse="never")
    assert tuner.pick_strategy("L", "deposit",
                               ["atomics", "sparse_csr"], 10 ** 5) \
        == "atomics"


def test_pick_strategy_small_sets_never_go_sparse():
    tuner = LocalityAutotuner(sparse="auto", min_particles=64)
    assert tuner.pick_strategy("L", "deposit",
                               ["atomics", "sparse_csr"], 10) == "atomics"


def test_pick_strategy_explores_then_exploits():
    tuner = LocalityAutotuner(sparse="auto", explore_every=4)
    cands = ["segmented_presorted", "sparse_csr"]
    # explore: unmeasured arms run first, in candidate order
    assert tuner.pick_strategy("L", "deposit", cands, 10 ** 5) == cands[0]
    tuner.note_strategy_cost("L", "deposit", cands[0], 10 ** 5, 1.0)
    assert tuner.pick_strategy("L", "deposit", cands, 10 ** 5) == cands[1]
    tuner.note_strategy_cost("L", "deposit", cands[1], 10 ** 5, 0.1)
    # exploit: the cheaper measured arm wins most picks...
    picks = [tuner.pick_strategy("L", "deposit", cands, 10 ** 5)
             for _ in range(6)]
    assert picks.count("sparse_csr") >= 4
    # ...with a periodic runner-up re-measure mixed in
    assert "segmented_presorted" in picks


def test_note_strategy_cost_is_an_ewma():
    tuner = LocalityAutotuner(sparse="auto", alpha=0.5)
    tuner.note_strategy_cost("L", "deposit", "sparse_csr", 100, 1.0)
    tuner.note_strategy_cost("L", "deposit", "sparse_csr", 100, 3.0)
    assert tuner.strategy_costs[("L", "deposit", "sparse_csr")] \
        == pytest.approx(0.5 * 0.01 + 0.5 * 0.03)


# -- end-to-end: forced sparse_csr across the apps' deposit loops -------------

def test_cabana_forced_sparse_matches_seq():
    from repro.apps.cabana import CabanaConfig, CabanaSimulation
    cfg = CabanaConfig.smoke()
    ref = CabanaSimulation(cfg.scaled(backend="seq"))
    ref.run()
    sim = CabanaSimulation(cfg.scaled(
        backend="vec", backend_options={"strategy": "sparse_csr"}))
    sim.run()
    np.testing.assert_allclose(sim.history["e_energy"],
                               ref.history["e_energy"],
                               rtol=1e-9, atol=1e-18)
    np.testing.assert_allclose(sim.j.data, ref.j.data,
                               rtol=1e-9, atol=1e-12)


def test_fempic_forced_sparse_matches_seq_and_maintains_operators():
    from repro.apps.fempic import FemPicConfig, FemPicSimulation
    cfg = FemPicConfig.smoke().scaled(n_steps=8)
    ref = FemPicSimulation(cfg.scaled(backend="seq"))
    ref.run()
    sim = FemPicSimulation(cfg.scaled(
        backend="vec", backend_options={"strategy": "sparse_csr"}))
    sim.run()
    np.testing.assert_allclose(sim.history["field_energy"],
                               ref.history["field_energy"], rtol=1e-9)
    assert sim.history["n_particles"] == ref.history["n_particles"]
    # fempic's full-set deposit loops engage *maintained* operators that
    # ride injections and removals incrementally; each must still equal a
    # from-scratch assembly bit-for-bit at the end of the run
    ops = list(sim.ctx.backend.plan._sparse_ops.values())
    assert ops
    assert any(op.stats["incremental_updates"] > 0 for op in ops)
    for op in ops:
        op.refresh()
        assert_bit_identical(op, fresh_copy(op))


def test_advec_forced_sparse_matches_seq():
    from repro.apps.advec import AdvecConfig, AdvecSimulation
    cfg = AdvecConfig(nx=8, ny=8, vx0=0.25, vy0=0.125, dt=0.1, ppc=2,
                      n_steps=0)
    ref = AdvecSimulation(cfg.scaled(backend="seq"))
    ref.run(25)
    sim = AdvecSimulation(cfg.scaled(
        backend="vec", backend_options={"strategy": "sparse_csr"}))
    sim.run(25)
    np.testing.assert_allclose(sim.positions_xy(), ref.positions_xy(),
                               atol=1e-12)
    np.testing.assert_array_equal(sim.p2c.p2c, ref.p2c.p2c)
