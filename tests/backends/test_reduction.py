"""Race-handling strategies: all five must compute the same sums."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.reduction import (AtomicAdd, Coloring, ScatterArrays,
                                      SegmentedReduction, UnsafeAtomicAdd,
                                      make_strategy)

ALL = ["atomics", "unsafe_atomics", "segmented_reduction",
       "scatter_arrays", "coloring"]


def reference_sum(shape, rows, values):
    out = np.zeros(shape)
    np.add.at(out, rows, values)
    return out


@pytest.mark.parametrize("name", ALL)
def test_matches_reference(name, rng):
    target = np.zeros((20, 3))
    rows = rng.integers(0, 20, size=500)
    values = rng.normal(size=(500, 3))
    expected = target + reference_sum(target.shape, rows, values)
    strat = make_strategy(name)
    strat.apply(target, rows, values)
    np.testing.assert_allclose(target, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", ALL)
def test_accumulates_onto_existing(name, rng):
    target = rng.normal(size=(5, 2))
    base = target.copy()
    rows = np.array([0, 0, 4])
    values = np.ones((3, 2))
    make_strategy(name).apply(target, rows, values)
    np.testing.assert_allclose(target - base,
                               reference_sum(target.shape, rows, values),
                               rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", ALL)
def test_empty_batch(name):
    target = np.ones((4, 1))
    out = make_strategy(name).apply(target, np.empty(0, dtype=np.int64),
                                    np.empty((0, 1)))
    assert (target == 1.0).all()
    assert out == 0


def test_collision_reporting():
    target = np.zeros((4, 1))
    rows = np.array([1, 1, 1, 2])
    values = np.ones((4, 1))
    assert AtomicAdd().apply(target, rows, values) == 3
    target[:] = 0
    assert UnsafeAtomicAdd().apply(target, rows, values) == 3
    target[:] = 0
    assert SegmentedReduction().apply(target, rows, values) == 3


def test_coloring_returns_colour_count():
    target = np.zeros((4, 1))
    rows = np.array([0, 0, 0, 1])
    ncolours = Coloring().apply(target, rows, np.ones((4, 1)))
    assert ncolours == 3  # worst-case multiplicity


def test_scatter_arrays_thread_counts():
    with pytest.raises(ValueError):
        ScatterArrays(nthreads=0)
    target = np.zeros((6, 1))
    rows = np.arange(6)
    ScatterArrays(nthreads=4).apply(target, rows, np.ones((6, 1)))
    assert (target == 1.0).all()


def test_unknown_strategy():
    with pytest.raises(ValueError):
        make_strategy("quantum")


@settings(max_examples=30, deadline=None)
@given(n_rows=st.integers(1, 30), n=st.integers(0, 200),
       seed=st.integers(0, 2**16),
       name=st.sampled_from(ALL))
def test_property_all_strategies_equal_reference(n_rows, n, seed, name):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=n)
    values = rng.normal(size=(n, 2))
    target = np.zeros((n_rows, 2))
    make_strategy(name).apply(target, rows, values)
    np.testing.assert_allclose(
        target, reference_sum(target.shape, rows, values),
        rtol=1e-10, atol=1e-10)
