"""Rate-measurement unit tests on synthetic signals with known rates."""
import numpy as np
import pytest

from repro.validate import (energy_peaks, log_slope, measure_damping,
                            measure_growth)


def _damped_mode_energy(t, gamma, omega):
    """Mode energy of a damped oscillation: |e^{-γt} cos(ωt)|²."""
    return (np.exp(-gamma * t) * np.cos(omega * t)) ** 2 + 1e-30


def test_energy_peaks_finds_oscillation_maxima():
    t = np.linspace(0.0, 20.0, 2001)
    e = _damped_mode_energy(t, 0.1, 1.5)
    peaks = energy_peaks(e)
    # one peak every π/ω
    spacing = np.diff(t[peaks])
    assert np.allclose(spacing, np.pi / 1.5, rtol=0.02)


def test_energy_peaks_tiny_input():
    assert energy_peaks(np.array([1.0, 2.0])).size == 0


def test_log_slope_recovers_rate():
    t = np.linspace(0.0, 5.0, 100)
    assert log_slope(t, 2.0 * np.exp(-0.9 * t)) == \
        pytest.approx(-0.9, rel=1e-10)
    with pytest.raises(ValueError):
        log_slope(t, -np.exp(t))
    with pytest.raises(ValueError):
        log_slope(t[:3], np.exp(t))


def test_measure_damping_synthetic():
    gamma, omega = 0.15, 1.4
    t = np.linspace(0.0, 25.0, 2501)
    fit = measure_damping(t, _damped_mode_energy(t, gamma, omega))
    assert fit.rate == pytest.approx(2.0 * gamma, rel=0.02)
    assert fit.frequency == pytest.approx(omega, rel=0.02)
    assert fit.n_peaks >= 4
    assert set(fit.to_dict()) == {"rate", "frequency", "n_peaks"}


def test_measure_damping_needs_enough_peaks():
    t = np.linspace(0.0, 25.0, 2501)
    e = _damped_mode_energy(t, 0.15, 1.4)
    with pytest.raises(ValueError, match="peaks"):
        measure_damping(t, e, t_window=(1.0, 2.0))


def test_measure_growth_auto_window():
    t = np.linspace(0.0, 30.0, 1500)
    e = 1e-8 * np.exp(0.7 * t)
    e = np.minimum(e, 1.0)              # saturation plateau
    fit = measure_growth(t, e)
    assert fit.rate == pytest.approx(0.7, rel=1e-6)
    lo, hi = fit.window
    assert 0 < lo < hi < t.size
    # the window must sit strictly inside the exponential stretch
    assert e[hi] < 0.05 * e.max()


def test_measure_growth_explicit_window():
    t = np.linspace(0.0, 10.0, 200)
    e = np.exp(0.5 * t)
    fit = measure_growth(t, e, window=(50, 150))
    assert fit.rate == pytest.approx(0.5, rel=1e-8)
    assert fit.window == (50, 150)


def test_measure_growth_rejects_flat_signal():
    t = np.linspace(0.0, 10.0, 200)
    with pytest.raises(ValueError, match="window"):
        measure_growth(t, np.ones_like(t))
