"""Full-length physics gates: measured rates vs closed-form theory.

Everything here is ``physics``-marked (run with ``--physics``): each
test runs a full instability/damping history, so the module is minutes
of work — it is the CI physics job, not part of the default suite.
The sweep axes mirror the paper's claim: the *same* DSL app must
produce correct physics on every backend × strategy combination, and
the distributed transports must not change it either.
"""
import numpy as np
import pytest

from repro.validate import run_physics_gates

pytestmark = pytest.mark.physics

BACKEND_MATRIX = [
    ("vec", "default"),
    ("vec", "sparse_csr"),
    ("vec", "locality_always"),
    ("omp", "default"),
    ("mp", "default"),
    ("mp", "sparse_csr"),
]


@pytest.mark.parametrize("backend,strategy", BACKEND_MATRIX)
def test_landau_gate(backend, strategy):
    report = run_physics_gates("landau", backend=backend,
                               strategy=strategy)
    assert report.ok, report.summary()


@pytest.mark.parametrize("backend,strategy", BACKEND_MATRIX)
def test_multispecies_gate(backend, strategy):
    report = run_physics_gates("multispecies", backend=backend,
                               strategy=strategy)
    assert report.ok, report.summary()


@pytest.mark.parametrize("transport", [None, "sim", "proc"])
def test_twostream_gate(transport):
    report = run_physics_gates("twostream", transport=transport)
    assert report.ok, report.summary()


def test_landau_gate_seq_oracle():
    """The elemental seq oracle itself must pass the physics gate (it
    is the reference everything else is compared against)."""
    report = run_physics_gates("landau", backend="seq")
    assert report.ok, report.summary()


def test_rates_identical_across_backends():
    """Beyond each backend passing its own gate: the *measured rate*
    must be the same number everywhere, because the histories are
    allclose at 1e-9 across backends."""
    rates = {}
    for backend, strategy in [("vec", "default"), ("omp", "default"),
                              ("mp", "sparse_csr")]:
        report = run_physics_gates("multispecies", backend=backend,
                                   strategy=strategy)
        rates[(backend, strategy)] = report.gates[0].measured
    values = list(rates.values())
    assert np.allclose(values, values[0], rtol=1e-9), rates


def test_twostream_transports_bit_identical():
    """sim and proc transports must yield the same measured rate."""
    sim = run_physics_gates("twostream", transport="sim")
    proc = run_physics_gates("twostream", transport="proc")
    assert sim.gates[0].measured == proc.gates[0].measured
