"""Conservation-ledger unit tests."""
import numpy as np

from repro.validate import ConservationLedger, relative_drift


def test_relative_drift_basic():
    assert relative_drift([10.0, 10.0, 10.0]) == 0.0
    assert relative_drift([10.0, 10.5, 9.8]) == \
        np.float64(0.5 / 10.5)
    assert relative_drift([1.0]) == 0.0


def test_relative_drift_explicit_scale():
    # zero-mean conserved series: meaningless without a physical scale
    assert relative_drift([0.0, 1e-16, -1e-16], scale=1.0) == 1e-16


def test_ledger_pass_and_fail():
    ledger = ConservationLedger()
    ledger.bound("energy", [1.0, 1.0001, 0.9999], 1e-3)
    ledger.bound("charge", [-5.0, -5.0, -5.0], 1e-12)
    assert ledger.ok
    bad = ledger.bound("momentum", [0.0, 0.5], 1e-6, scale=1.0)
    assert not bad.ok
    assert not ledger.ok
    assert ledger.failures == [bad]
    assert "FAIL" in str(bad)
    assert str(ledger).count("\n") == 2


def test_ledger_bound_constant():
    ledger = ConservationLedger()
    assert ledger.bound_constant("n", [100, 100, 100]).ok
    assert not ledger.bound_constant("n2", [100, 99]).ok


def test_ledger_to_dict_roundtrip():
    ledger = ConservationLedger()
    ledger.bound("energy", [1.0, 1.001], 1e-2)
    d = ledger.to_dict()
    assert d["ok"] is True
    assert d["entries"][0]["name"] == "energy"
    assert 0 < d["entries"][0]["drift"] < d["entries"][0]["tolerance"]
