"""Gate driver machinery (fast; full gate runs are physics-marked)."""
import pytest

from repro.validate import (GATE_APPS, STRATEGY_OPTIONS, GateReport,
                            run_physics_gates)
from repro.validate.gates import PROFILES


def test_gate_apps_and_profiles_cover_each_other():
    assert set(GATE_APPS) == {"landau", "twostream", "multispecies"}
    for profile, apps in PROFILES.items():
        assert set(apps) == set(GATE_APPS), profile
    assert set(STRATEGY_OPTIONS) == {"default", "sparse_csr",
                                     "locality_always"}


def test_gate_result_bounds():
    report = GateReport(app="landau", backend="vec",
                        strategy="default", profile="ci")
    ok = report.gate("rate", measured=1.05, expected=1.0, rel_tol=0.10)
    assert ok.ok and ok.rel_error == pytest.approx(0.05)
    bad = report.gate("rate2", measured=1.5, expected=1.0, rel_tol=0.10)
    assert not bad.ok
    assert not report.ok
    banded = report.gate("rate3", measured=1.4, expected=1.0,
                         band=(0.5, 2.0))
    assert banded.ok and banded.lo == 0.5 and banded.hi == 2.0
    d = report.to_dict()
    assert d["ok"] is False and len(d["gates"]) == 3
    assert "FAIL" in report.summary()


def test_gate_band_handles_negative_expected():
    report = GateReport(app="x", backend="vec", strategy="default",
                        profile="ci")
    g = report.gate("damping", measured=-0.3, expected=-0.31,
                    rel_tol=0.2)
    assert g.lo < g.hi and g.ok


def test_run_physics_gates_rejects_bad_args():
    with pytest.raises(ValueError, match="unknown gate app"):
        run_physics_gates("fempic")
    with pytest.raises(ValueError, match="only supported"):
        run_physics_gates("landau", transport="proc")
    with pytest.raises(ValueError, match="transport"):
        run_physics_gates("twostream", transport="tcp")
    with pytest.raises(ValueError, match="profile"):
        run_physics_gates("landau", profile="nightly")
    with pytest.raises(ValueError, match="strategy"):
        run_physics_gates("landau", strategy="csr")
