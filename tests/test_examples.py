"""Every example in examples/ must run to completion (deliverable (b))."""
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent
                   / "examples").glob("*.py"))

EXPECTED = {"quickstart.py", "fempic_duct.py", "cabana_twostream.py",
            "distributed_mpi.py", "advection_gallery.py",
            "translator_inspect.py", "twod_langmuir.py",
            "landau_damping.py"}


def test_expected_examples_present():
    assert {p.name for p in EXAMPLES} >= EXPECTED


@pytest.mark.slow
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, tmp_path):
    result = subprocess.run([sys.executable, str(path)],
                            capture_output=True, text=True, timeout=600,
                            cwd=path.parent.parent)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"


@pytest.mark.parametrize("name", ["quickstart.py",
                                  "translator_inspect.py"])
def test_fast_examples_always_run(name, tmp_path):
    path = next(p for p in EXAMPLES if p.name == name)
    result = subprocess.run([sys.executable, str(path)],
                            capture_output=True, text=True, timeout=300,
                            cwd=path.parent.parent)
    assert result.returncode == 0, result.stderr[-2000:]


@pytest.mark.parametrize("name", ["cabana_twostream.py",
                                  "twod_langmuir.py",
                                  "landau_damping.py"])
def test_physics_examples_headless_smoke(name, tmp_path):
    """The physics examples must run headlessly with a tiny step count
    (and say why the rate fit was skipped) — the full-length runs stay
    behind --slow."""
    path = next(p for p in EXAMPLES if p.name == name)
    result = subprocess.run([sys.executable, str(path), "--steps", "8"],
                            capture_output=True, text=True, timeout=300,
                            cwd=path.parent.parent)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "too short" in result.stdout or "less than two" \
        in result.stdout, result.stdout[-2000:]
