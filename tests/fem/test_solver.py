"""KSP-style CG solver: convergence, preconditioners, edge cases."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import KSPSolver, jacobi_preconditioner, ssor_preconditioner


def spd_matrix(n, rng, density=0.2):
    a = sp.random(n, n, density=density, random_state=np.random.RandomState(
        rng.integers(2**31)))
    a = a + a.T + 2.0 * n * sp.eye(n)
    return a.tocsr()


@pytest.mark.parametrize("pc", ["jacobi", "ssor", "none"])
def test_cg_solves_spd_system(pc, rng):
    a = spd_matrix(60, rng)
    x_true = rng.normal(size=60)
    b = a @ x_true
    res = KSPSolver(a, pc=pc, rtol=1e-12).solve(b)
    assert res.converged
    np.testing.assert_allclose(res.x, x_true, rtol=1e-8, atol=1e-8)


def test_initial_guess_speeds_convergence(rng):
    a = spd_matrix(80, rng)
    x_true = rng.normal(size=80)
    b = a @ x_true
    cold = KSPSolver(a, rtol=1e-10).solve(b)
    warm = KSPSolver(a, rtol=1e-10).solve(b, x0=x_true + 1e-8)
    assert warm.iterations <= cold.iterations


def test_zero_rhs_returns_zero(rng):
    a = spd_matrix(10, rng)
    res = KSPSolver(a).solve(np.zeros(10))
    assert res.converged
    np.testing.assert_allclose(res.x, 0.0)


def test_max_iterations_respected(rng):
    a = spd_matrix(50, rng)
    b = rng.normal(size=50)
    res = KSPSolver(a, pc="none", rtol=1e-16, atol=0.0, max_it=2).solve(b)
    assert res.iterations <= 2


def test_rhs_shape_checked(rng):
    a = spd_matrix(5, rng)
    with pytest.raises(ValueError):
        KSPSolver(a).solve(np.zeros(6))


def test_nonsquare_rejected():
    with pytest.raises(ValueError):
        KSPSolver(sp.random(3, 4, density=0.5).tocsr())


def test_unknown_pc_rejected(rng):
    with pytest.raises(ValueError):
        KSPSolver(spd_matrix(4, rng), pc="multigrid")


def test_jacobi_rejects_zero_diagonal():
    a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(ValueError):
        jacobi_preconditioner(a)


def test_ssor_omega_validated(rng):
    a = spd_matrix(4, rng)
    with pytest.raises(ValueError):
        ssor_preconditioner(a, omega=2.5)


def test_jacobi_application(rng):
    a = sp.diags([2.0, 4.0, 8.0]).tocsr()
    pc = jacobi_preconditioner(a)
    np.testing.assert_allclose(pc(np.array([2.0, 4.0, 8.0])), 1.0)


def test_pc_accelerates_ill_conditioned():
    n = 100
    diag = np.logspace(0, 4, n)
    a = sp.diags(diag).tocsr()
    b = np.ones(n)
    plain = KSPSolver(a, pc="none", rtol=1e-10).solve(b)
    jac = KSPSolver(a, pc="jacobi", rtol=1e-10).solve(b)
    assert jac.iterations < plain.iterations
