"""FEM assembly: stiffness properties, Dirichlet elimination, lumping."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import DirichletSystem, build_stiffness, lumped_node_volumes
from repro.mesh import duct_mesh


@pytest.fixture(scope="module")
def world():
    mesh = duct_mesh(3, 3, 5, 1.0, 1.0, 1.5)
    return mesh, build_stiffness(mesh.points, mesh.cell2node)


def test_stiffness_symmetric(world):
    _, k = world
    assert abs(k - k.T).max() < 1e-12


def test_stiffness_rows_sum_zero(world):
    """Constants are in the kernel of the Laplacian: K·1 = 0."""
    mesh, k = world
    ones = np.ones(mesh.n_nodes)
    assert np.abs(k @ ones).max() < 1e-11


def test_harmonic_function_interior_residual(world):
    mesh, k = world
    phi = mesh.points @ np.array([1.0, -2.0, 0.5])
    r = k @ phi
    boundary = set(np.concatenate([mesh.tags["inlet_nodes"],
                                   mesh.tags["wall_nodes"],
                                   mesh.tags["outlet_nodes"]]).tolist())
    interior = [i for i in range(mesh.n_nodes) if i not in boundary]
    assert np.abs(r[interior]).max() < 1e-11


def test_positive_semidefinite(world):
    _, k = world
    rng = np.random.default_rng(0)
    for _ in range(5):
        x = rng.normal(size=k.shape[0])
        assert x @ (k @ x) >= -1e-10


def test_lumped_volumes_sum_to_domain(world):
    mesh, _ = world
    v = lumped_node_volumes(mesh.points, mesh.cell2node)
    assert v.sum() == pytest.approx(1.5)
    assert (v > 0).all()


def test_dirichlet_reduction_shapes(world):
    mesh, k = world
    dn = mesh.tags["wall_nodes"]
    sys = DirichletSystem(k, dn, np.ones(len(dn)))
    assert sys.k_ff.shape == (mesh.n_nodes - len(dn),) * 2
    full = sys.full_vector(np.zeros(mesh.n_nodes - len(dn)))
    assert (full[dn] == 1.0).all()


def test_dirichlet_duplicate_nodes_rejected(world):
    _, k = world
    with pytest.raises(ValueError):
        DirichletSystem(k, [1, 1], np.ones(2))


def test_dirichlet_value_count_checked(world):
    _, k = world
    with pytest.raises(ValueError):
        DirichletSystem(k, [1, 2], np.ones(3))


def test_reduce_rhs_moves_coupling(world):
    """Solving the reduced system must equal solving the full pinned
    system."""
    mesh, k = world
    dn = np.concatenate([mesh.tags["inlet_nodes"], mesh.tags["wall_nodes"],
                         mesh.tags["outlet_nodes"]])
    dn = np.unique(dn)
    phi_exact = mesh.points @ np.array([2.0, 1.0, -1.0])
    sys = DirichletSystem(k, dn, phi_exact[dn])
    rhs = sys.reduce_rhs(np.zeros(mesh.n_nodes))
    x = sp.linalg.spsolve(sys.k_ff.tocsc(), rhs)
    np.testing.assert_allclose(sys.full_vector(x), phi_exact, atol=1e-9)


# -- sorted scatter-add (the np.add.at replacement) ---------------------------


def test_sorted_scatter_add_bit_equal_to_add_at(rng):
    from repro.fem import sorted_scatter_add
    for _ in range(20):
        n_out = int(rng.integers(1, 40))
        rows = rng.integers(0, n_out, size=int(rng.integers(0, 400)))
        vals = rng.normal(size=rows.size)
        want = np.zeros(n_out)
        np.add.at(want, rows, vals)
        got = sorted_scatter_add(rows, vals, n_out)
        assert np.array_equal(got, want)     # bitwise, not allclose


def test_sorted_scatter_add_empty():
    from repro.fem import sorted_scatter_add
    out = sorted_scatter_add(np.empty(0, np.int64), np.empty(0), 5)
    assert out.shape == (5,) and not out.any()


def test_lumped_volumes_bit_equal_to_add_at_form(world):
    """The vectorised lumping must match the historical np.add.at loop
    bit-for-bit on the real duct mesh."""
    from repro.mesh.geometry import p1_gradients
    mesh, _ = world
    _, vols = p1_gradients(mesh.points, mesh.cell2node)
    want = np.zeros(mesh.n_nodes)
    np.add.at(want, mesh.cell2node.ravel(), np.repeat(vols / 4.0, 4))
    got = lumped_node_volumes(mesh.points, mesh.cell2node)
    assert np.array_equal(got, want)
