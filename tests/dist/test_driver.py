"""run_distributed: one code path, two transports.  Real rank processes
must reproduce the simulated run exactly — histories, comm ledgers,
field-solve ledgers — for every app and for MPI+X backends."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig
from repro.apps.fempic import FemPicConfig
from repro.apps.twod.config import TwoDConfig
from repro.dist.driver import DistResult, run_distributed

CFG_FEM = FemPicConfig.smoke().scaled(n_steps=5, dt=0.2)
CFG_CAB = CabanaConfig.smoke().scaled(n_steps=5)
CFG_2D = TwoDConfig(n_steps=5)


@pytest.fixture(scope="module")
def fem_sim2():
    return run_distributed("fempic", CFG_FEM, nranks=2, transport="sim")


def _assert_histories_equal(a: dict, b: dict):
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_array_equal(np.asarray(a[key]),
                                      np.asarray(b[key]))


def test_fempic_proc_matches_sim_exactly(fem_sim2):
    proc = run_distributed("fempic", CFG_FEM, nranks=2, transport="proc")
    _assert_histories_equal(proc.history, fem_sim2.history)
    np.testing.assert_array_equal(proc.stats.msg_count,
                                  fem_sim2.stats.msg_count)
    np.testing.assert_array_equal(proc.stats.msg_bytes,
                                  fem_sim2.stats.msg_bytes)
    assert proc.stats.collectives == fem_sim2.stats.collectives
    assert proc.solve_stats is not None
    assert proc.solve_stats.total_bytes == \
        fem_sim2.solve_stats.total_bytes


def test_fempic_proc_4rank_matches(fem_sim2):
    proc = run_distributed("fempic", CFG_FEM, nranks=4, transport="proc")
    np.testing.assert_allclose(proc.history["field_energy"],
                               fem_sim2.history["field_energy"],
                               rtol=1e-10)
    assert proc.history["n_particles"] == fem_sim2.history["n_particles"]


def test_cabana_proc_matches_sim():
    sim = run_distributed("cabana", CFG_CAB, nranks=2, transport="sim")
    proc = run_distributed("cabana", CFG_CAB, nranks=2, transport="proc")
    _assert_histories_equal(proc.history, sim.history)
    np.testing.assert_array_equal(proc.stats.msg_count,
                                  sim.stats.msg_count)


def test_twod_proc_matches_sim():
    sim = run_distributed("twod", CFG_2D, nranks=3, transport="sim")
    proc = run_distributed("twod", CFG_2D, nranks=3, transport="proc")
    _assert_histories_equal(proc.history, sim.history)


def test_fempic_dh_proc_counts_rma(fem_sim2):
    cfg = CFG_FEM.scaled(move_strategy="dh")
    proc = run_distributed("fempic", cfg, nranks=2, transport="proc")
    sim = run_distributed("fempic", cfg, nranks=2, transport="sim")
    _assert_histories_equal(proc.history, sim.history)
    assert proc.stats.rma_ops == sim.stats.rma_ops > 0
    assert proc.stats.rma_bytes == sim.stats.rma_bytes


def test_mpi_plus_x_proc_ranks_run_mp_backend(fem_sim2):
    """True MPI+X: each rank process runs the shared-memory mp backend
    on-node; physics must match the plain run bit for bit."""
    cfg = CFG_FEM.scaled(backend="mp",
                         backend_options={"nworkers": 2, "min_chunk": 1})
    proc = run_distributed("fempic", cfg, nranks=2, transport="proc")
    _assert_histories_equal(proc.history, fem_sim2.history)


def test_dist_result_perf_merge(fem_sim2):
    proc = run_distributed("fempic", CFG_FEM, nranks=2, transport="proc")
    assert isinstance(proc, DistResult)
    busy = proc.busy_seconds_per_rank()
    assert len(busy) == 2 and all(b > 0 for b in busy)
    assert proc.critical_path_seconds == max(busy)
    # rank 0 carries the gathered Newton solve on top of its loops
    assert proc.rank_perf[0].get("Solve") is not None
    assert proc.wall_seconds > 0
    assert len(proc.rank_walls) == 2


def test_run_distributed_validates_inputs():
    with pytest.raises(ValueError, match="transport"):
        run_distributed("fempic", CFG_FEM, nranks=2, transport="tcp")
    with pytest.raises(ValueError, match="config"):
        run_distributed("fempic", None, nranks=2)
    with pytest.raises(ValueError, match="unknown app"):
        run_distributed("nothere", CFG_FEM, nranks=2, transport="sim")
