"""Fault injection: every failure mode must end in a structured
RankFailure naming the culprit rank — within the op timeout, never as a
deadlock."""
import os
import time

import numpy as np
import pytest

from repro.dist.proc import ProcCluster
from repro.dist.transport import RankFailure


def _entry_dropped_rank(t):
    """Rank 1 dies mid-program; the others block on it."""
    if t.my_rank == 1:
        os._exit(1)
    if t.my_rank == 0:
        return t.recv(0, 1, tag=3)  # never arrives
    t.send(t.my_rank, 0, np.zeros(1), tag=9)
    return "done"


def _entry_slow_rank(t):
    """Rank 1 oversleeps the op deadline while the rest rendezvous."""
    if t.my_rank == 1:
        time.sleep(10.0)
        return "late"
    vals = [np.zeros(1)] * t.nranks
    return t.allreduce(vals, "sum")


def _entry_oversized(t):
    """Rank 0 tries to ship a frame over the negotiated limit."""
    if t.my_rank == 0:
        t.send(0, 1, np.zeros(1 << 16), tag=1)  # 512 KiB > 64 KiB cap
        return "sent"
    if t.my_rank == 1:
        return t.recv(1, 0, tag=1)
    return "idle"


def _entry_app_exception(t):
    if t.my_rank == 2:
        raise ValueError("boom in user code")
    vals = [np.zeros(1)] * t.nranks
    return t.allreduce(vals, "sum")


def _entry_collective_vs_death(t):
    """Peers blocked *inside a collective* when a rank dies must fail
    fast via the RANK_DOWN broadcast, not wait out the timeout."""
    if t.my_rank == 0:
        raise RuntimeError("early exit")
    vals = [np.zeros(1)] * t.nranks
    return t.allreduce(vals, "sum")


def test_dropped_rank_raises_rank_dead_not_hang():
    t0 = time.monotonic()
    with pytest.raises(RankFailure) as exc_info:
        ProcCluster(3, _entry_dropped_rank, op_timeout=8.0).run()
    elapsed = time.monotonic() - t0
    exc = exc_info.value
    assert exc.kind == "rank-dead"
    assert exc.rank == 1
    assert elapsed < 8.0, "death must be detected via EOF, not timeout"


def test_slow_rank_hits_op_timeout():
    t0 = time.monotonic()
    with pytest.raises(RankFailure) as exc_info:
        ProcCluster(3, _entry_slow_rank, op_timeout=1.0).run()
    elapsed = time.monotonic() - t0
    assert exc_info.value.kind == "timeout"
    assert elapsed < 8.0, "timeout must fire long before the sleeper wakes"


def test_oversized_frame_is_rejected_cleanly():
    t0 = time.monotonic()
    with pytest.raises(RankFailure) as exc_info:
        ProcCluster(2, _entry_oversized, op_timeout=8.0,
                    max_frame_bytes=64 * 1024).run()
    elapsed = time.monotonic() - t0
    exc = exc_info.value
    assert exc.kind == "oversized-frame"
    assert exc.rank == 0
    assert elapsed < 8.0


def test_app_exception_surfaces_with_culprit_rank():
    with pytest.raises(RankFailure) as exc_info:
        ProcCluster(3, _entry_app_exception, op_timeout=8.0).run()
    exc = exc_info.value
    assert exc.rank == 2
    assert "boom in user code" in str(exc)


def test_peers_in_collective_fail_fast_on_rank_death():
    t0 = time.monotonic()
    with pytest.raises(RankFailure) as exc_info:
        ProcCluster(3, _entry_collective_vs_death, op_timeout=30.0).run()
    elapsed = time.monotonic() - t0
    assert exc_info.value.rank == 0
    # with a 30 s timeout, finishing quickly proves the RANK_DOWN
    # broadcast (not the deadline) unblocked the survivors
    assert elapsed < 10.0
