"""ProcTransport semantics over real rank processes: point-to-point
ordering, collectives bit-identical to SimComm, and CommStats ledgers
that merge back to exactly the simulated program-level view."""
import numpy as np
import pytest

from repro.dist.proc import ProcCluster
from repro.runtime.comm import CommStats, SimComm


def _entry_ring(t):
    """Ring exchange plus out-of-order tag delivery."""
    r, n = t.my_rank, t.nranks
    payload = np.arange(4, dtype=np.float64) + 10 * r
    t.send(r, (r + 1) % n, payload, tag=7)
    got = t.recv(r, (r - 1) % n, tag=7)
    # tag buffering: rank 0 sends tag 5 then 6; rank 1 drains 6 first
    if r == 0:
        t.send(0, 1, np.array([5.0]), tag=5)
        t.send(0, 1, np.array([6.0]), tag=6)
        first, second = None, None
    elif r == 1:
        first = float(t.recv(1, 0, tag=6)[0])
        second = float(t.recv(1, 0, tag=5)[0])
    else:
        first, second = None, None
    return {"rank": r, "ring": got, "first": first, "second": second,
            "stats": t.stats.to_dict()}


def _entry_collectives(t):
    r, n = t.my_rank, t.nranks
    vals = [np.zeros(2) for _ in range(n)]
    vals[r] = np.array([1.5 * (r + 1), -float(r)])
    s = t.allreduce(vals, "sum")
    mn = t.allreduce(vals, "min")
    mx = t.allreduce(vals, "max")
    counts = np.zeros((n, n), dtype=np.int64)
    counts[r] = np.arange(n) + 100 * r
    a2a = t.alltoall_counts(counts)
    t.barrier()
    return {"sum": s, "min": mn, "max": mx, "a2a": a2a,
            "collectives": t.stats.collectives}


def test_ring_and_tag_buffering():
    n = 3
    out = ProcCluster(n, _entry_ring).run()
    for r in range(n):
        src = (r - 1) % n
        np.testing.assert_array_equal(
            out[r]["ring"], np.arange(4, dtype=np.float64) + 10 * src)
    assert out[1]["first"] == 6.0
    assert out[1]["second"] == 5.0


def test_collectives_match_simcomm_bitwise():
    n = 3
    out = ProcCluster(n, _entry_collectives).run()

    sim = SimComm(n)
    vals = [np.array([1.5 * (r + 1), -float(r)]) for r in range(n)]
    expect_sum = sim.allreduce(vals, "sum")
    expect_min = sim.allreduce(vals, "min")
    expect_max = sim.allreduce(vals, "max")
    counts = np.stack([np.arange(n) + 100 * r for r in range(n)])
    expect_a2a = sim.alltoall_counts(counts)

    for r in range(n):
        np.testing.assert_array_equal(out[r]["sum"], expect_sum)
        np.testing.assert_array_equal(out[r]["min"], expect_min)
        np.testing.assert_array_equal(out[r]["max"], expect_max)
        np.testing.assert_array_equal(out[r]["a2a"], expect_a2a)
        assert out[r]["collectives"] == 5  # 3 allreduce + a2a + barrier


def test_merged_proc_stats_equal_sim_stats():
    """Each rank ledgers only what it initiated; merged they must equal
    the simulated ledger for the identical traffic pattern."""
    n = 3
    out = ProcCluster(n, _entry_ring).run()
    merged = CommStats(n)
    for payload in out:
        merged.merge(CommStats.from_dict(payload["stats"]))

    sim = SimComm(n)
    for r in range(n):
        sim.send(r, (r + 1) % n, np.arange(4, dtype=np.float64) + 10 * r,
                 tag=7)
    for r in range(n):
        sim.recv(r, (r - 1) % n, tag=7)
    sim.send(0, 1, np.array([5.0]), tag=5)
    sim.send(0, 1, np.array([6.0]), tag=6)
    sim.recv(1, 0, tag=6)
    sim.recv(1, 0, tag=5)

    np.testing.assert_array_equal(merged.msg_count, sim.stats.msg_count)
    np.testing.assert_array_equal(merged.msg_bytes, sim.stats.msg_bytes)
    assert merged.collectives == sim.stats.collectives == 0


def test_commstats_serde_roundtrip():
    st = CommStats(2)
    st.record(0, 1, 128)
    st.record(1, 0, 64)
    st.collectives = 3
    st.rma_ops = 2
    st.rma_bytes = 96
    clone = CommStats.from_dict(st.to_dict())
    np.testing.assert_array_equal(clone.msg_count, st.msg_count)
    np.testing.assert_array_equal(clone.msg_bytes, st.msg_bytes)
    assert clone.collectives == 3
    assert clone.rma_ops == 2 and clone.rma_bytes == 96


def test_commstats_merge_semantics():
    a, b = CommStats(2), CommStats(2)
    a.record(0, 1, 100)
    a.collectives = 4
    a.rma_ops = 1
    a.rma_bytes = 8
    b.record(1, 0, 50)
    b.collectives = 4
    b.rma_ops = 2
    b.rma_bytes = 16
    a.merge(b)
    assert a.msg_count[0, 1] == 1 and a.msg_count[1, 0] == 1
    assert a.total_bytes == 150
    assert a.collectives == 4        # per-op program count: max, not sum
    assert a.rma_ops == 3 and a.rma_bytes == 24
    with pytest.raises(ValueError):
        a.merge(CommStats(3))
