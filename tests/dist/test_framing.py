"""Wire-protocol unit tests: frame codec, size limits, structured errors."""
import pickle

import numpy as np
import pytest

from repro.dist.proc import (DEFAULT_MAX_FRAME, FrameError, K_P2P,
                             decode_frame, encode_frame)
from repro.dist.transport import (RankFailure, TRANSPORT_KINDS,
                                  create_transport)
from repro.runtime.comm import SimComm


@pytest.mark.parametrize("payload", [
    np.arange(12, dtype=np.float64).reshape(3, 4),
    np.arange(5, dtype=np.int64),
    np.array(7, dtype=np.int64),              # 0-d must survive
    np.empty((0, 3), dtype=np.float64),       # empty must survive
    np.asfortranarray(np.arange(6.0).reshape(2, 3)),
])
def test_ndarray_roundtrip(payload):
    blob = encode_frame(K_P2P, 1, 2, 9, payload)
    kind, src, dst, tag, out = decode_frame(blob)
    assert (kind, src, dst, tag) == (K_P2P, 1, 2, 9)
    assert out.dtype == payload.dtype
    assert out.shape == payload.shape
    np.testing.assert_array_equal(out, payload)


def test_control_object_roundtrip():
    obj = {"op": "allreduce", "reduce": "sum",
           "value": np.array([1.5, 2.5])}
    _k, _s, _d, _t, out = decode_frame(encode_frame(2, 0, -1, 0, obj))
    assert out["op"] == "allreduce" and out["reduce"] == "sum"
    np.testing.assert_array_equal(out["value"], obj["value"])


def test_zero_dim_int_survives_round_trip_as_scalar_convertible():
    # the in-flight count of mpi_particle_move is reduced as a 0-d array
    # and converted with int() — the codec must not promote its shape
    _k, _s, _d, _t, out = decode_frame(
        encode_frame(K_P2P, 0, 1, 0, np.array(3)))
    assert out.shape == ()
    assert int(out) == 3


def test_oversized_frame_raises_structured_failure():
    big = np.zeros(1024, dtype=np.float64)
    with pytest.raises(RankFailure) as exc_info:
        encode_frame(K_P2P, 3, 0, 0, big, max_frame_bytes=1024)
    exc = exc_info.value
    assert exc.kind == "oversized-frame"
    assert exc.rank == 3
    assert "limit" in exc.detail


def test_decode_rejects_bad_magic():
    blob = bytearray(encode_frame(K_P2P, 0, 1, 0, np.zeros(2)))
    blob[:4] = b"XXXX"
    with pytest.raises(FrameError, match="magic"):
        decode_frame(bytes(blob))


def test_decode_rejects_bad_version():
    blob = bytearray(encode_frame(K_P2P, 0, 1, 0, np.zeros(2)))
    blob[4] = 99
    with pytest.raises(FrameError, match="version"):
        decode_frame(bytes(blob))


def test_decode_rejects_truncation_and_length_mismatch():
    blob = encode_frame(K_P2P, 0, 1, 0, np.zeros(4))
    with pytest.raises(FrameError, match="short"):
        decode_frame(blob[:8])
    with pytest.raises(FrameError, match="length"):
        decode_frame(blob[:-3])


def test_rank_failure_pickle_preserves_fields():
    exc = RankFailure(2, "timeout", "no frame within 1.0s")
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, RankFailure)
    assert clone.rank == 2
    assert clone.kind == "timeout"
    assert clone.detail == "no frame within 1.0s"
    assert "rank 2" in str(clone)


def test_create_transport():
    assert TRANSPORT_KINDS == ("sim", "proc")
    comm = create_transport("sim", 3)
    assert isinstance(comm, SimComm) and comm.nranks == 3
    with pytest.raises(TypeError):
        create_transport("sim", 2, bogus=1)
    with pytest.raises(ValueError, match="ProcCluster|run_distributed"):
        create_transport("proc", 2)
    with pytest.raises(ValueError, match="unknown transport"):
        create_transport("tcp", 2)


def test_default_frame_limit_is_sane():
    assert DEFAULT_MAX_FRAME >= 16 * 1024 * 1024
