"""Regression tests for deterministic process reaping (dist.proc).

``ProcCluster`` (and the service warm pool built on the same helper)
must never leak rank processes: after ``reap_procs`` returns, every
process — prompt exiter, straggler, or outright hang — is joined,
terminated if necessary, and its ``multiprocessing.Process`` handle
closed, so no zombies or sentinel fds survive pool recycling.
"""
import multiprocessing as mp
import time

import pytest

from repro.dist.proc import ProcCluster, reap_procs

_CTX = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")


def _exit_fast():
    pass


def _hang_forever():
    time.sleep(3600)


def _assert_closed(proc):
    """A closed Process handle raises on any liveness query."""
    with pytest.raises(ValueError):
        proc.is_alive()


def test_reap_joins_prompt_exiters_and_closes_handles():
    procs = [_CTX.Process(target=_exit_fast) for _ in range(3)]
    for p in procs:
        p.start()
    reap_procs(procs, join_timeout=10.0)
    for p in procs:
        _assert_closed(p)


def test_reap_terminates_hung_process_within_deadline():
    hung = _CTX.Process(target=_hang_forever)
    ok = _CTX.Process(target=_exit_fast)
    hung.start()
    ok.start()
    t0 = time.monotonic()
    reap_procs([hung, ok], join_timeout=0.5)
    elapsed = time.monotonic() - t0
    # the deadline is shared, not per-process: well under timeout+term
    assert elapsed < 10.0
    _assert_closed(hung)
    _assert_closed(ok)


def test_reap_tolerates_already_joined_processes():
    p = _CTX.Process(target=_exit_fast)
    p.start()
    p.join()
    reap_procs([p], join_timeout=1.0)
    _assert_closed(p)


def _rank_entry(transport):
    return transport.my_rank


def test_proc_cluster_leaves_no_children_behind():
    before = len(mp.active_children())
    result = ProcCluster(2, _rank_entry).run()
    assert result == [0, 1]
    # reap happened inside run(): no lingering rank processes
    assert len(mp.active_children()) <= before
