"""The distributed-op conformance harness: deterministic generation,
clean sweeps over both transports, and — the point of the exercise —
catching and shrinking an injected distribution bug."""
import numpy as np
import pytest

import repro.verify.dist_conformance as dc
from repro.verify.dist_conformance import (DIST_OP_NAMES, DistCase,
                                           DistConformanceFailure,
                                           generate_dist_case,
                                           run_dist_case,
                                           run_dist_conformance)


def test_generation_is_deterministic():
    a, b = generate_dist_case(42), generate_dist_case(42)
    assert a.to_dict() == b.to_dict()
    assert a.nranks in (2, 3)
    assert a.n_cells >= 2 * a.nranks
    assert set(a.program) <= set(DIST_OP_NAMES)
    assert generate_dist_case(43).to_dict() != a.to_dict()


def test_case_replace_and_signature():
    case = generate_dist_case(7)
    smaller = case.replace(n_parts=4)
    assert smaller.n_parts == 4 and smaller.seed == case.seed
    assert f"seed={case.seed}" in case.signature()
    assert "ranks=" in case.signature()


def test_every_op_conforms_individually():
    """Each catalog op alone must agree with the 1-rank oracle."""
    for op in DIST_OP_NAMES:
        case = DistCase(seed=5, n_cells=9, n_nodes=6, arity=3,
                        n_parts=30, nranks=3, program=(op,))
        expected = run_dist_case(case.replace(nranks=1), "sim")
        got = run_dist_case(case, "sim")
        mismatches = dc.compare_states(expected, got)
        assert not mismatches, f"op {op!r}: {mismatches}"


def test_sweep_passes_over_sim():
    res = run_dist_conformance(n_cases=10, seed=0, transport="sim")
    assert res["executions"] == 10
    assert res["transport"] == "sim"


def test_sweep_passes_over_proc():
    res = run_dist_conformance(n_cases=2, seed=3, transport="proc")
    assert res["executions"] == 2


def test_assembled_state_has_global_shapes():
    case = DistCase(seed=11, n_cells=8, n_nodes=5, arity=2, n_parts=16,
                    nranks=2, program=("deposit_nodes", "gbl_reduce"))
    state = run_dist_case(case, "sim")
    assert state["cell_acc"].shape == (8, 1)
    assert state["node_a"].shape == (5, 2)
    assert state["g_sum_hist"].shape == (1,)
    # no particle moved, so everyone survives with their global ids
    np.testing.assert_array_equal(state["pid"], np.arange(16))


def test_injected_distribution_bug_is_caught_and_shrunk(monkeypatch):
    """A bug that only manifests on >1 rank (a lost ghost contribution)
    must be detected, attributed, shrunk, and reported with a repro
    command."""
    real = dc.DIST_OPS["cell_neighbor_inc"]

    def buggy(world):
        real(world)
        ranks = world["ranks"]
        if world["comm"].nranks > 1 and ranks[1] is not None:
            ranks[1].cell_acc.data[0, 0] += 1.0  # corrupt one owner row

    monkeypatch.setitem(dc.DIST_OPS, "cell_neighbor_inc", buggy)
    with pytest.raises(DistConformanceFailure) as exc_info:
        run_dist_conformance(n_cases=5, seed=0, transport="sim")
    failure = exc_info.value
    assert "cell_neighbor_inc" in failure.shrunk.program
    assert len(failure.shrunk.program) == 1
    assert failure.mismatches
    msg = str(failure)
    assert "--dist-conformance" in msg
    assert f"--seed {failure.case.seed}" in msg
    assert "minimal case" in msg


def test_unknown_transport_rejected():
    case = generate_dist_case(1)
    with pytest.raises(ValueError, match="transport"):
        run_dist_case(case, "tcp")
