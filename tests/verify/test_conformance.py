"""Differential backend-conformance suite.

Marked ``conformance`` so CI can run the full randomized sweep as its
own job (``pytest -m conformance``); the sweep size follows the
``--conformance-cases`` option so local runs stay quick.
"""
import numpy as np
import pytest

from repro.core.args import ArgKind
from repro.core.types import AccessMode
from repro.verify.conformance import (DEFAULT_BACKENDS, Case,
                                      ConformanceFailure, OP_NAMES, OPS,
                                      _build_world, _conformance_backend,
                                      compare_states, generate_case,
                                      run_case, run_conformance,
                                      shrink_case)

pytestmark = pytest.mark.conformance

BACKENDS = list(DEFAULT_BACKENDS)


# -- generator determinism -----------------------------------------------------


def test_generation_is_deterministic():
    a, b = generate_case(42), generate_case(42)
    assert a.signature() == b.signature()
    assert generate_case(43).signature() != a.signature()


def test_case_replace_and_signature():
    c = generate_case(1)
    d = c.replace(n_parts=4)
    assert d.n_parts == 4 and d.seed == c.seed
    assert f"parts={c.n_parts}" in c.signature()
    assert all(op in OP_NAMES for op in c.program)


def test_world_build_is_deterministic():
    from repro.core.api import Context, push_context
    c = generate_case(5)
    with push_context(Context("seq")):
        w1 = _build_world(c)
        w2 = _build_world(c)
        assert np.array_equal(w1["pos"].data, w2["pos"].data)
        assert np.array_equal(w1["c2n"].values, w2["c2n"].values)


# -- descriptor-matrix coverage (backend × ArgKind × AccessMode) ---------------


def test_catalog_covers_descriptor_matrix():
    """The op catalog must exercise every ArgKind × AccessMode combo the
    backends dispatch on (racy combos like indirect WRITE are excluded
    by design — the sanitizer rejects them instead)."""
    from repro.core.loops import add_loop_hook, remove_loop_hook

    seen = set()

    def record(loop):
        for a in loop.args:
            seen.add((a.kind, a.access))

    hook = add_loop_hook(record)
    try:
        case = generate_case(0).replace(program=OP_NAMES)
        run_case(case, _conformance_backend("seq"))
    finally:
        remove_loop_hook(hook)

    required = {
        (ArgKind.DIRECT, AccessMode.READ),
        (ArgKind.DIRECT, AccessMode.WRITE),
        (ArgKind.DIRECT, AccessMode.RW),
        (ArgKind.DIRECT, AccessMode.INC),
        (ArgKind.INDIRECT, AccessMode.READ),
        (ArgKind.INDIRECT, AccessMode.INC),
        (ArgKind.P2C, AccessMode.READ),
        (ArgKind.P2C, AccessMode.INC),
        (ArgKind.DOUBLE, AccessMode.INC),
        (ArgKind.GLOBAL, AccessMode.READ),
        (ArgKind.GLOBAL, AccessMode.INC),
        (ArgKind.GLOBAL, AccessMode.MIN),
        (ArgKind.GLOBAL, AccessMode.MAX),
    }
    assert required <= seen


def test_two_set_shared_dat_op_sums_both_sets():
    """The multi-species op must accumulate contributions from BOTH
    particle sets into the one shared cell dat (and snapshot the second
    set's state so divergences there are caught)."""
    from repro.core.api import Context, push_context
    case = generate_case(11).replace(program=("two_set_shared_inc",))
    state = run_case(case, _conformance_backend("seq"))
    with push_context(Context("seq")):
        w = _build_world(case)
    acc = np.zeros(case.n_cells)
    wa = w["w"].data[: w["parts"].size]
    np.add.at(acc, w["p2c"].p2c[: w["parts"].size],
              wa[:, 0] * wa[:, 1])
    wb = w["w_b"].data[: w["parts_b"].size]
    np.add.at(acc, w["p2c_b"].p2c[: w["parts_b"].size],
              0.5 * wb[:, 0] - wb[:, 1])
    assert np.allclose(state["cell_acc"][:, 0], acc, rtol=1e-12)
    for key in ("pid_b", "p2c_b_assign", "w_b", "out_b"):
        assert key in state
    # the trailing gather saw the combined deposit of both sets
    assert not np.allclose(state["out_b"],
                           np.ones_like(state["out_b"]))


# -- per-op single-program conformance -----------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("op", OP_NAMES)
def test_single_op_conforms(backend_name, op):
    oracle = _conformance_backend("seq")
    backend = _conformance_backend(backend_name)
    try:
        for seed in (0, 1):
            case = generate_case(seed).replace(program=(op,))
            mismatches = compare_states(run_case(case, oracle),
                                        run_case(case, backend))
            assert not mismatches, f"{op} on {backend_name}: {mismatches}"
    finally:
        if hasattr(backend, "close"):
            backend.close()


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_move_with_removals_and_hole_filling(backend_name):
    """Repeated moves force removals (chain walk-off) and hole-filling
    compaction; survivor state must match the oracle keyed by pid."""
    oracle = _conformance_backend("seq")
    backend = _conformance_backend(backend_name)
    try:
        case = generate_case(9).replace(
            n_parts=64, program=("move", "p2c_inc", "move",
                                 "double_deposit", "move"))
        expected = run_case(case, oracle)
        got = run_case(case, backend)
        assert expected["n_removed"][0] > 0, "case must remove particles"
        assert compare_states(expected, got) == []
    finally:
        if hasattr(backend, "close"):
            backend.close()


# -- the randomized sweep ------------------------------------------------------


def test_conformance_sweep(request):
    n = int(request.config.getoption("--conformance-cases"))
    summary = run_conformance(n_cases=n, seed=0, backends=BACKENDS)
    assert summary["executions"] == n * len(BACKENDS)


# -- mismatch reporting + shrinking --------------------------------------------


class _LyingBackend:
    """Oracle-like backend that corrupts the global sum — a stand-in for
    a real backend divergence, used to prove the shrinker minimises."""

    name = "lying"

    def __init__(self):
        from repro.backends import SeqBackend
        self._seq = SeqBackend()
        self.plan = None

    def execute(self, loop):
        out = self._seq.execute(loop)
        if loop.name == "c_gbl_reduce":
            loop.args[1].dat.data += 1.0     # corrupt g_sum
        return out

    def execute_move(self, loop):
        return self._seq.execute_move(loop)


def test_shrinker_minimises_failing_case():
    from repro.backends import SeqBackend
    oracle = SeqBackend()
    lying = _LyingBackend()
    case = generate_case(3).replace(
        program=("direct_axpy", "gbl_reduce", "mesh_inc", "p2c_gather"))
    mismatches = compare_states(run_case(case, oracle),
                                run_case(case, lying))
    assert any(m.startswith("g_sum") for m in mismatches)

    shrunk, shrunk_mismatches = shrink_case(case, oracle, lying)
    assert shrunk_mismatches
    # minimal program is the single corrupted op on the smallest world
    assert shrunk.program == ("gbl_reduce",)
    assert shrunk.n_parts <= 8
    assert len(shrunk.program) < len(case.program)


def test_failure_report_names_minimal_case_and_repro():
    err = ConformanceFailure(
        "vec", generate_case(7),
        generate_case(7).replace(program=("gbl_reduce",), n_parts=4),
        ["g_sum: max abs deviation 1.000e+00"])
    msg = str(err)
    assert "minimal case" in msg
    assert "program=[gbl_reduce]" in msg
    assert "--seed 7 --cases 1 --backends vec" in msg
    assert "g_sum" in msg


def test_sweep_raises_conformance_failure_on_divergence(monkeypatch):
    import repro.verify.conformance as conf
    monkeypatch.setitem(conf._BACKEND_CLASSES, "lying", None)
    monkeypatch.setattr(conf, "make_backend",
                        lambda name, **kw: (_LyingBackend()
                                            if name == "lying"
                                            else conf.SeqBackend()))
    with pytest.raises(ConformanceFailure) as exc:
        conf.run_conformance(n_cases=30, seed=0, backends=("lying",),
                             shrink=True)
    assert exc.value.backend_name == "lying"
    assert exc.value.shrunk.program == ("gbl_reduce",)


def test_compare_states_reports_kinds():
    a = {"x": np.array([1.0, 2.0]), "n": np.array([3])}
    same = {"x": np.array([1.0, 2.0]), "n": np.array([3])}
    assert compare_states(a, same) == []
    off = {"x": np.array([1.0, 2.5]), "n": np.array([4])}
    issues = compare_states(a, off)
    assert any("x" in m and "deviation" in m for m in issues)
    assert any("n" in m and "integer" in m for m in issues)
    assert compare_states(a, {"x": np.array([1.0, 2.0])}) \
        == ["n: missing from result"]
    assert "shape" in compare_states(a, {"x": np.zeros(3),
                                         "n": np.array([3])})[0]
