"""Access-descriptor sanitizer: shadow execution + static race analysis.

Every violation kind has a deliberately mis-declared kernel here, and the
clean paths are checked to be bit-identical to the sequential oracle —
the sanitizer must never flag (or perturb) a correctly declared loop.
"""
import numpy as np
import pytest

from repro.core.api import (OPP_INC, OPP_ITERATE_ALL, OPP_MAX, OPP_MIN,
                            OPP_READ, OPP_RW, OPP_WRITE, Context, arg_dat,
                            arg_gbl, decl_dat, decl_global, decl_map,
                            decl_particle_set, decl_set, par_loop,
                            particle_move, push_context)
from repro.core.loops import active_loop_hooks
from repro.verify import (DescriptorViolationError, RecordingView,
                          SanitizerBackend, install_static_checker,
                          static_violations, uninstall_static_checker)
from repro.verify.sanitize import (ALIASING_RACE, NON_ADDITIVE_INC,
                                   NON_MONOTONIC_GLOBAL, NONUNIQUE_WRITE,
                                   PARTIAL_WRITE, READ_BEFORE_WRITE,
                                   WRITE_TO_READ)


def make_world(n_cells=6, n_nodes=5, n_parts=20, seed=7):
    rng = np.random.default_rng(seed)
    cells = decl_set(n_cells, "cells")
    nodes = decl_set(n_nodes, "nodes")
    parts = decl_particle_set(cells, n_parts, "parts")
    c2n = decl_map(cells, nodes, 2,
                   rng.integers(0, n_nodes, size=(n_cells, 2)), "c2n")
    chain = [[i - 1 if i > 0 else -1,
              i + 1 if i + 1 < n_cells else -1] for i in range(n_cells)]
    c2c = decl_map(cells, cells, 2, chain, "c2c")
    p2c = decl_map(parts, cells, 1,
                   rng.integers(0, n_cells, size=(n_parts, 1)), "p2c")
    return {
        "cells": cells, "nodes": nodes, "parts": parts,
        "c2n": c2n, "c2c": c2c, "p2c": p2c,
        "cell_q": decl_dat(cells, 1, np.float64, None, "cell_q"),
        "node_q": decl_dat(nodes, 2, np.float64, None, "node_q"),
        "w": decl_dat(parts, 2, np.float64,
                      rng.normal(size=(n_parts, 2)), "w"),
        "out": decl_dat(parts, 2, np.float64,
                        np.ones((n_parts, 2)), "out"),
        "pos": decl_dat(parts, 1, np.float64,
                        rng.uniform(0.0, n_cells, size=n_parts), "pos"),
    }


def sanitizer_ctx(**opts):
    return Context("sanitizer", **opts)


def kinds(backend):
    return {v.kind for v in backend.violations}


# -- clean loops: no violations, oracle-identical results ----------------------


def deposit_kernel(w, cq, nq):
    cq[0] += w[0]
    nq[0] += 0.5 * w[0]
    nq[1] += w[1]


def run_deposit(backend_name):
    ctx = Context(backend_name)
    with push_context(ctx):
        w = make_world()
        par_loop(deposit_kernel, "deposit", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ),
                 arg_dat(w["cell_q"], w["p2c"], OPP_INC),
                 arg_dat(w["node_q"], 0, w["c2n"], w["p2c"], OPP_INC))
        return w["cell_q"].data.copy(), w["node_q"].data.copy(), ctx


def test_clean_deposit_matches_seq_bitwise():
    cq_seq, nq_seq, _ = run_deposit("seq")
    cq_san, nq_san, ctx = run_deposit("sanitizer")
    assert np.array_equal(cq_seq, cq_san)
    assert np.array_equal(nq_seq, nq_san)
    assert ctx.backend.violations == []
    assert ctx.backend.loops_checked == 1
    assert ctx.backend.elements_checked == 20


def test_clean_global_reductions_pass():
    def reduce_k(w, s, mn, mx):
        s[0] += w[0]
        mn[0] = min(mn[0], w[0])
        mx[0] = max(mx[0], w[0])

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        s = decl_global(1, np.float64, None, "s")
        mn = decl_global(1, np.float64, [np.inf], "mn")
        mx = decl_global(1, np.float64, [-np.inf], "mx")
        par_loop(reduce_k, "reduce", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_gbl(s, OPP_INC),
                 arg_gbl(mn, OPP_MIN), arg_gbl(mx, OPP_MAX))
        assert ctx.backend.violations == []
        assert np.isclose(s.data[0], w["w"].data[:, 0].sum())
        assert np.isclose(mn.data[0], w["w"].data[:, 0].min())
        assert np.isclose(mx.data[0], w["w"].data[:, 0].max())


# -- each violation kind -------------------------------------------------------


def test_write_to_read_caught():
    def bad(w, out):
        w[0] = 0.0          # mutates a READ arg
        out[0] = w[1]
        out[1] = w[1]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        before = w["w"].data.copy()
        par_loop(bad, "bad_read", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_dat(w["out"], OPP_WRITE))
        assert kinds(ctx.backend) == {WRITE_TO_READ}
        v = ctx.backend.violations[0]
        assert (v.loop_name, v.arg_index, v.kind) == ("bad_read", 0,
                                                      WRITE_TO_READ)
        assert "bad_read" in str(v) and "arg 0" in str(v)
        # the proxy contains the undeclared write: data is untouched
        assert np.array_equal(w["w"].data, before)


def test_read_before_write_caught():
    def bad(w, out):
        out[0] = out[0] + w[0]   # consumes prior value under WRITE
        out[1] = w[1]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        par_loop(bad, "bad_write", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_dat(w["out"], OPP_WRITE))
        assert kinds(ctx.backend) == {READ_BEFORE_WRITE}
        assert ctx.backend.violations[0].arg_index == 1


def test_partial_write_caught():
    def bad(w, out):
        out[0] = w[0]            # out[1] left stale

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        par_loop(bad, "bad_partial", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_dat(w["out"], OPP_WRITE))
        assert kinds(ctx.backend) == {PARTIAL_WRITE}
        assert "[1]" in ctx.backend.violations[0].detail


def test_non_additive_inc_caught():
    def bad(w, cq):
        cq[0] = w[0]             # overwrite declared as INC

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        par_loop(bad, "bad_inc", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ),
                 arg_dat(w["cell_q"], w["p2c"], OPP_INC))
        assert NON_ADDITIVE_INC in kinds(ctx.backend)
        v = next(x for x in ctx.backend.violations
                 if x.kind == NON_ADDITIVE_INC)
        assert v.loop_name == "bad_inc" and v.arg_index == 1
        assert "cell_q" in v.descriptor


def test_scaling_inc_caught():
    def bad(w, cq):
        cq[0] += w[0]
        cq[0] = cq[0] * 2.0      # scales the accumulator: not additive

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        par_loop(bad, "bad_scale", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ),
                 arg_dat(w["cell_q"], w["p2c"], OPP_INC))
        assert NON_ADDITIVE_INC in kinds(ctx.backend)


def test_non_monotonic_global_caught():
    def bad(w, mx):
        mx[0] = w[0]             # may lower a MAX reduction

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        mx = decl_global(1, np.float64, [np.inf], "mx")
        par_loop(bad, "bad_max", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_gbl(mx, OPP_MAX))
        assert kinds(ctx.backend) == {NON_MONOTONIC_GLOBAL}


def test_violations_deduplicated_with_count():
    def bad(w, out):
        out[0] = w[0]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world(n_parts=20)
        par_loop(bad, "bad_partial", w["parts"], OPP_ITERATE_ALL,
                 arg_dat(w["w"], OPP_READ), arg_dat(w["out"], OPP_WRITE))
        assert len(ctx.backend.violations) == 1    # one per loop/arg/kind
        assert ctx.backend.violations[0].count == 20
        assert "[x20]" in str(ctx.backend.violations[0])


def test_raise_mode_and_clear():
    def bad(w, out):
        out[0] = w[0]

    with push_context(sanitizer_ctx(on_violation="raise")) as ctx:
        w = make_world()
        with pytest.raises(DescriptorViolationError) as exc:
            par_loop(bad, "bad_partial", w["parts"], OPP_ITERATE_ALL,
                     arg_dat(w["w"], OPP_READ),
                     arg_dat(w["out"], OPP_WRITE))
        assert exc.value.violation.kind == PARTIAL_WRITE
        ctx.backend.clear()
        assert ctx.backend.violations == []
    with pytest.raises(ValueError):
        SanitizerBackend(on_violation="bogus")


def test_report_summarises():
    b = SanitizerBackend()
    assert "0 violation(s)" in b.report()


# -- static race analysis ------------------------------------------------------


def test_nonunique_write_flagged_statically():
    def k(src, nq):
        nq[0] = src[0]
        nq[1] = src[0]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()   # random c2n has duplicate targets for 6 cells
        par_loop(k, "dup_write", w["cells"], OPP_ITERATE_ALL,
                 arg_dat(w["cell_q"], OPP_READ),
                 arg_dat(w["node_q"], 0, w["c2n"], OPP_WRITE))
        assert NONUNIQUE_WRITE in kinds(ctx.backend)


def test_aliasing_race_flagged_statically():
    def k(a, b):
        b[0] += a[0]
        b[1] += a[1]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        # same dat reached READ via component 0 and INC via component 1:
        # overlapping rows with conflicting modes
        par_loop(k, "alias", w["cells"], OPP_ITERATE_ALL,
                 arg_dat(w["node_q"], 0, w["c2n"], OPP_READ),
                 arg_dat(w["node_q"], 1, w["c2n"], OPP_INC))
        assert ALIASING_RACE in kinds(ctx.backend)


def test_inc_inc_aliasing_is_legal():
    # fempic deposits through all tet corners of the same dat: INC+INC
    # on overlapping rows must NOT be flagged
    def k(src, a, b):
        a[0] += src[0]
        b[0] += src[0]

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        par_loop(k, "inc_inc", w["cells"], OPP_ITERATE_ALL,
                 arg_dat(w["cell_q"], OPP_READ),
                 arg_dat(w["node_q"], 0, w["c2n"], OPP_INC),
                 arg_dat(w["node_q"], 1, w["c2n"], OPP_INC))
        assert ALIASING_RACE not in kinds(ctx.backend)


def test_static_checker_hook_works_on_any_backend():
    def k(src, nq):
        nq[0] = src[0]
        nq[1] = src[0]

    assert active_loop_hooks() == 0
    hook = install_static_checker(on_violation="collect")
    try:
        assert active_loop_hooks() == 1
        with push_context(Context("seq")):
            w = make_world()
            par_loop(k, "dup_write", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["cell_q"], OPP_READ),
                     arg_dat(w["node_q"], 0, w["c2n"], OPP_WRITE))
        assert {v.kind for v in hook.violations} == {NONUNIQUE_WRITE}
    finally:
        uninstall_static_checker(hook)
    assert active_loop_hooks() == 0


def test_static_checker_raise_mode():
    def k(src, nq):
        nq[0] = src[0]
        nq[1] = src[0]

    hook = install_static_checker(on_violation="raise")
    try:
        with push_context(Context("seq")):
            w = make_world()
            with pytest.raises(DescriptorViolationError):
                par_loop(k, "dup_write", w["cells"], OPP_ITERATE_ALL,
                         arg_dat(w["cell_q"], OPP_READ),
                         arg_dat(w["node_q"], 0, w["c2n"], OPP_WRITE))
    finally:
        uninstall_static_checker(hook)


def test_static_violations_callable_directly():
    from repro.core.loops import ParLoop
    with push_context(Context("seq")):
        w = make_world()
        loop = ParLoop(deposit_kernel, "deposit", w["parts"],
                       OPP_ITERATE_ALL,
                       [arg_dat(w["w"], OPP_READ),
                        arg_dat(w["cell_q"], w["p2c"], OPP_INC),
                        arg_dat(w["node_q"], 0, w["c2n"], w["p2c"],
                                OPP_INC)])
        assert static_violations(loop) == []


# -- recording proxy -----------------------------------------------------------


def test_recording_view_tracks_components():
    v = RecordingView(np.arange(4.0))
    _ = v[0]
    v[1] = 9.0
    _ = v[1]          # read after write: not fresh
    _ = v[-1]         # negative index normalised
    assert v.reads == {0, 1, 3}
    assert v.writes == {1}
    assert v.fresh_reads == {0, 3}
    assert len(v) == 4
    assert list(v)[1] == 9.0


def test_recording_view_slices():
    v = RecordingView(np.zeros(4))
    v[1:3] = 5.0
    assert v.writes == {1, 2}
    _ = v[:]
    assert v.fresh_reads == {0, 3}


# -- move loops ----------------------------------------------------------------


def walk_done_write(move, pos, lc):
    lo = move.cell * 1.0
    if pos[0] < lo:
        move.move_to(move.c2c[0])
    elif pos[0] >= lo + 1.0:
        move.move_to(move.c2c[1])
    else:
        lc[0] = pos[0] - lo      # written only on the final hop
        lc[1] = lo
        move.done()


def test_move_write_on_done_hop_is_clean():
    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        lc = decl_dat(w["parts"], 2, np.float64, None, "lc")
        res = particle_move(walk_done_write, "walk", w["parts"],
                            w["c2c"], w["p2c"],
                            arg_dat(w["pos"], OPP_READ),
                            arg_dat(lc, OPP_WRITE))
        assert ctx.backend.violations == []
        assert res.extras == {"sanitized": True}
        # every surviving particle landed in its containing cell
        n = w["parts"].size
        cells = w["p2c"].p2c[:n]
        pos = w["pos"].data[:n, 0]
        assert np.all((pos >= cells) & (pos < cells + 1))


def test_move_matches_seq_result():
    def run(backend_name):
        with push_context(Context(backend_name)):
            w = make_world(seed=11)
            lc = decl_dat(w["parts"], 2, np.float64, None, "lc")
            res = particle_move(walk_done_write, "walk", w["parts"],
                                w["c2c"], w["p2c"],
                                arg_dat(w["pos"], OPP_READ),
                                arg_dat(lc, OPP_WRITE))
            n = w["parts"].size
            return (res.total_hops, res.n_removed,
                    w["p2c"].p2c[:n].copy(), lc.data[:n].copy())

    seq = run("seq")
    san = run("sanitizer")
    assert seq[0] == san[0] and seq[1] == san[1]
    assert np.array_equal(seq[2], san[2])
    assert np.array_equal(seq[3], san[3])


def test_move_read_mutation_caught():
    def bad(move, pos, lc):
        pos[0] = 0.5             # mutates READ position mid-walk
        lc[0] = 1.0
        lc[1] = 2.0
        move.done()

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        lc = decl_dat(w["parts"], 2, np.float64, None, "lc")
        particle_move(bad, "bad_walk", w["parts"], w["c2c"], w["p2c"],
                      arg_dat(w["pos"], OPP_READ), arg_dat(lc, OPP_WRITE))
        assert WRITE_TO_READ in kinds(ctx.backend)
        v = next(x for x in ctx.backend.violations
                 if x.kind == WRITE_TO_READ)
        assert v.loop_name == "bad_walk" and v.arg_index == 0


def test_move_partial_write_over_walk_caught():
    def bad(move, pos, lc):
        lc[0] = pos[0]           # lc[1] never written on any hop
        move.done()

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        lc = decl_dat(w["parts"], 2, np.float64, None, "lc")
        particle_move(bad, "bad_walk", w["parts"], w["c2c"], w["p2c"],
                      arg_dat(w["pos"], OPP_READ), arg_dat(lc, OPP_WRITE))
        assert PARTIAL_WRITE in kinds(ctx.backend)


def test_move_inc_additivity_checked():
    def bad(move, pos, hits):
        hits[0] = 1              # overwrite declared INC
        move.done()

    with push_context(sanitizer_ctx()) as ctx:
        w = make_world()
        hits = decl_dat(w["cells"], 1, np.int64, None, "hits")
        particle_move(bad, "bad_hits", w["parts"], w["c2c"], w["p2c"],
                      arg_dat(w["pos"], OPP_READ),
                      arg_dat(hits, w["p2c"], OPP_INC))
        assert NON_ADDITIVE_INC in kinds(ctx.backend)


# -- vec backend's opt-in unique-write check -----------------------------------


def test_vec_check_unique_writes_opt_in():
    def k(src, nq):
        nq[0] = src[0]
        nq[1] = src[0]

    def run(**opts):
        with push_context(Context("vec", **opts)):
            w = make_world()
            par_loop(k, "dup_write", w["cells"], OPP_ITERATE_ALL,
                     arg_dat(w["cell_q"], OPP_READ),
                     arg_dat(w["node_q"], 0, w["c2n"], OPP_WRITE))

    run()   # default: silent (racy but permitted, matching OP-PIC)
    with pytest.raises(RuntimeError, match="nonunique-write"):
        run(check_unique_writes=True)


# -- apps under the sanitizer (acceptance criterion) ---------------------------


@pytest.mark.slow
@pytest.mark.parametrize("app", ["fempic", "cabana", "advec", "twod"])
def test_apps_sanitize_clean(app):
    from repro.cli import _verify_app
    assert _verify_app(app, steps=None, quiet=True) == 0
