"""End-to-end API integration: the paper's Figures 4, 5 and 6 listings
translated line for line, including the ``opp_``-prefixed aliases."""
import numpy as np
import pytest

from repro.core.api import (CONST, OPP_INC, OPP_ITERATE_ALL,
                            OPP_ITERATE_INJECTED, OPP_READ, OPP_REAL,
                            OPP_WRITE, Context, decl_const, opp_arg_dat,
                            opp_decl_dat, opp_decl_map, opp_decl_particle_set,
                            opp_decl_set, opp_par_loop, opp_particle_move,
                            push_context)

# Figure 4's mesh: 9 cells (C1-C9), 16 nodes (N1-N16), 3x3 quads;
# the listing's 1-based ids become 0-based here.
C2N = [[0, 1, 4, 5], [1, 2, 5, 6], [2, 3, 6, 7],
       [4, 5, 8, 9], [5, 6, 9, 10], [6, 7, 10, 11],
       [8, 9, 12, 13], [9, 10, 13, 14], [10, 11, 14, 15]]
C2C = [[1, 3, -1, -1], [0, 2, 4, -1], [1, 5, -1, -1],
       [0, 4, 6, -1], [1, 3, 5, 7], [2, 4, 8, -1],
       [3, 7, -1, -1], [4, 6, 8, -1], [5, 7, -1, -1]]


def compute_electric_field_kernel(ef, sd, np0, np1, np2, np3):
    """Figure 5's first elemental function (a representative body)."""
    ef[0] += sd[0] * 0.25 * (np0[0] + np1[0] + np2[0] + np3[0])


def deposit_charge_on_nodes_kernel(pc, cd0, cd1, cd2, cd3):
    """Figure 5's second elemental function."""
    cd0[0] += 0.25 * pc[0]
    cd1[0] += 0.25 * pc[0]
    cd2[0] += 0.25 * pc[0]
    cd3[0] += 0.25 * pc[0]


def init_injected(pc):
    pc[0] = CONST.injected_charge


def move_particles_kernel(move, ppos):
    """Figure 6's template: done / need-move / need-remove blocks."""
    target = int(ppos[0])
    if move.cell == target:
        move.done()                       # OPP_PARTICLE_MOVE_DONE
    elif target < 0 or target > 8:
        move.remove()                     # OPP_PARTICLE_NEED_REMOVE
    else:
        # walk towards the target cell through the quad neighbours
        row = move.cell // 3
        trow = target // 3
        col = move.cell % 3
        tcol = target % 3
        if trow > row:
            nxt = move.cell + 3
        elif trow < row:
            nxt = move.cell - 3
        elif tcol > col:
            nxt = move.cell + 1
        else:
            nxt = move.cell - 1
        move.move_to(nxt)                 # OPP_PARTICLE_NEED_MOVE


@pytest.mark.parametrize("backend", ["seq", "vec", "omp", "cuda", "hip"])
def test_paper_listing_workflow(backend):
    with push_context(Context(backend)):
        # -- Figure 4: declarations --------------------------------------
        nodes = opp_decl_set(16, "nodes")
        cells = opp_decl_set(9, "cells")
        x = opp_decl_particle_set("x", cells, 4)

        cn = opp_decl_map(cells, nodes, 4, C2N, "cell_to_nodes_map")
        cc = opp_decl_map(cells, cells, 4, C2C, "cell_to_cell_map")
        p2cell_i = opp_decl_map(x, cells, 1, [[0], [4], [4], [8]],
                                "particles_to_cells_index")

        efield = opp_decl_dat(cells, 1, OPP_REAL, None, "electric field")
        sd = opp_decl_dat(cells, 1, OPP_REAL, np.full(9, 2.0),
                          "shape deriv")
        npot = opp_decl_dat(nodes, 1, OPP_REAL, np.arange(16.0),
                            "node potential")
        cd = opp_decl_dat(nodes, 1, OPP_REAL, None, "charge density")
        pc = opp_decl_dat(x, 1, OPP_REAL, np.ones(4), "particle charge")
        ppos = opp_decl_dat(x, 1, OPP_REAL, [[0.0], [2.0], [6.0], [99.0]],
                            "particle position")

        # -- Figure 5: loop over mesh elements ---------------------------
        opp_par_loop(compute_electric_field_kernel,
                     "Compute Electric Field", cells, OPP_ITERATE_ALL,
                     opp_arg_dat(efield, OPP_INC),
                     opp_arg_dat(sd, OPP_READ),
                     opp_arg_dat(npot, 0, cn, OPP_READ),
                     opp_arg_dat(npot, 1, cn, OPP_READ),
                     opp_arg_dat(npot, 2, cn, OPP_READ),
                     opp_arg_dat(npot, 3, cn, OPP_READ))
        # cell 0 touches nodes 0,1,4,5 -> mean 2.5, times sd 2.0
        assert efield.data[0, 0] == pytest.approx(5.0)

        # -- Figure 5: loop over particles (double indirection) ----------
        opp_par_loop(deposit_charge_on_nodes_kernel,
                     "Deposit Charge on Nodes", x, OPP_ITERATE_ALL,
                     opp_arg_dat(pc, OPP_READ),
                     opp_arg_dat(cd, 0, cn, p2cell_i, OPP_INC),
                     opp_arg_dat(cd, 1, cn, p2cell_i, OPP_INC),
                     opp_arg_dat(cd, 2, cn, p2cell_i, OPP_INC),
                     opp_arg_dat(cd, 3, cn, p2cell_i, OPP_INC))
        assert cd.data.sum() == pytest.approx(4.0)  # total charge lands

        # -- injection (OPP_ITERATE_INJECTED) ----------------------------
        decl_const("injected_charge", 3.0)
        x.begin_injection()
        sl = x.add_particles(2, cell_indices=[4, 4])
        ppos.data[sl] = [[8.0], [1.0]]
        opp_par_loop(init_injected, "Init Injected", x,
                     OPP_ITERATE_INJECTED, opp_arg_dat(pc, OPP_WRITE))
        x.end_injection()
        assert pc.data[:, 0].tolist() == [1.0, 1.0, 1.0, 1.0, 3.0, 3.0]

        # -- Figure 6: particle move -------------------------------------
        res = opp_particle_move(move_particles_kernel, "Move Particles",
                                x, cc, p2cell_i,
                                opp_arg_dat(ppos, OPP_READ))
        assert res.n_removed == 1                 # the target-99 particle
        assert x.size == 5
        # every survivor reached the cell its position names
        targets = ppos.data[: x.size, 0].astype(int)
        np.testing.assert_array_equal(p2cell_i.p2c, targets)
