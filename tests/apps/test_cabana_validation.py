"""The paper's §4 validation: OP-PIC CabanaPIC vs the original
(structured) implementation — per-iteration field energies must agree to
~1e-15 (below FP64 precision at the problem's dynamic range)."""
import numpy as np
import pytest

from repro.apps.cabana import (CabanaConfig, CabanaSimulation,
                               StructuredCabanaReference)


@pytest.fixture(scope="module")
def pair():
    cfg = CabanaConfig(nx=6, ny=6, nz=10, ppc=16, n_steps=15)
    ref = StructuredCabanaReference(cfg)
    ref.run()
    sim = CabanaSimulation(cfg)
    sim.run()
    return ref, sim


def test_e_energy_matches_machine_precision(pair):
    ref, sim = pair
    a = np.array(sim.history["e_energy"])
    b = np.array(ref.history["e_energy"])
    assert np.abs(a - b).max() / b.max() < 1e-12


def test_b_energy_matches_machine_precision(pair):
    ref, sim = pair
    a = np.array(sim.history["b_energy"])
    b = np.array(ref.history["b_energy"])
    scale = max(b.max(), 1e-300)
    assert np.abs(a - b).max() / scale < 1e-12


def test_particle_trajectories_match(pair):
    """Stronger than the paper's check: with no removals the particle
    ordering is stable, so per-particle state must agree."""
    ref, sim = pair
    n = sim.parts.size
    np.testing.assert_allclose(sim.vel.data[:n], ref.vel, rtol=1e-10,
                               atol=1e-14)
    np.testing.assert_array_equal(sim.p2c.p2c[:n], ref.cell)
    np.testing.assert_allclose(sim.pos.data[:n], ref.pos, rtol=1e-10,
                               atol=1e-12)


def test_hop_counts_match(pair):
    """Both implementations walk the same paths."""
    ref, sim = pair
    ref2 = StructuredCabanaReference(sim.cfg)
    hops_ref = sum(ref2._move_deposit() or 0 for _ in range(1))
    assert hops_ref >= sim.cfg.n_particles


def test_seq_backend_also_validates():
    cfg = CabanaConfig.smoke().scaled(backend="seq", n_steps=6)
    ref = StructuredCabanaReference(cfg)
    ref.run()
    sim = CabanaSimulation(cfg)
    sim.run()
    a = np.array(sim.history["e_energy"])
    b = np.array(ref.history["e_energy"])
    assert np.abs(a - b).max() / b.max() < 1e-12
