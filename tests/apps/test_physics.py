"""Physics validation: the CabanaPIC two-stream instability must grow the
field energy exponentially at a rate compatible with the cold-beam
dispersion relation."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.field import fit_exponential_rate, two_stream_growth_rate


@pytest.mark.slow
def test_two_stream_growth_rate_slow():
    """Quantitative growth-rate check at the fastest-growing mode
    (k·v0 = √(3/8)·ωp, γ = ωp/√8).  A cell-centred-deposit PIC measures
    within ~1.5× of cold-beam theory; assert a [0.5, 2]× band."""
    lz = 2.0
    k = 2.0 * np.pi / lz
    wp = 1.0                       # total beam density 1, q = m = 1
    v0 = np.sqrt(3.0 / 8.0) * wp / k
    cfg = CabanaConfig(nx=2, ny=2, nz=32, lx=0.2, ly=0.2, lz=lz,
                       ppc=100, v0=v0, perturbation=5e-3, mode=1,
                       n_steps=340, cfl=0.4)
    sim = CabanaSimulation(cfg)
    sim.run()
    e = np.array(sim.history["e_energy"])
    t = (np.arange(len(e)) + 1) * cfg.dt
    rate = fit_exponential_rate(t[5:300], e[5:300])  # measured 2γ
    gamma = two_stream_growth_rate(k, v0, wp)
    assert gamma == pytest.approx(wp / np.sqrt(8.0), rel=1e-6)
    assert 0.5 * 2 * gamma < rate < 2.0 * 2 * gamma


def test_two_stream_energy_grows():
    """Fast qualitative check: seeded perturbation grows by orders of
    magnitude before saturation."""
    cfg = CabanaConfig(nx=2, ny=2, nz=24, lx=0.2, ly=0.2, lz=2.0,
                       ppc=64, v0=0.1, perturbation=1e-3, mode=1,
                       n_steps=120, cfl=0.4)
    sim = CabanaSimulation(cfg)
    sim.run()
    e = np.array(sim.history["e_energy"])
    assert e[-1] > 50.0 * e[2] or e.max() > 50.0 * e[2]


def test_stable_when_unperturbed():
    """No perturbation → no seeded mode → field energy stays near the
    particle-noise floor (many orders below the perturbed run)."""
    base = CabanaConfig(nx=2, ny=2, nz=24, lx=0.2, ly=0.2, lz=2.0,
                        ppc=64, v0=0.1, mode=1, n_steps=60, cfl=0.4)
    quiet = CabanaSimulation(base.scaled(perturbation=0.0))
    loud = CabanaSimulation(base.scaled(perturbation=1e-2))
    quiet.run()
    loud.run()
    assert max(loud.history["e_energy"]) > \
        10.0 * max(quiet.history["e_energy"])
