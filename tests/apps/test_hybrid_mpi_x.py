"""MPI+X combinations (paper: "OpenMP, CUDA, HIP and their combinations
with MPI"): the distributed drivers run each rank on any on-node backend
and produce identical physics."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, StructuredCabanaReference
from repro.apps.cabana.distributed import DistributedCabana
from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.apps.fempic.distributed import DistributedFemPic

CFG_FEM = FemPicConfig.smoke().scaled(n_steps=6, dt=0.2)
CFG_CAB = CabanaConfig.smoke().scaled(n_steps=6)


@pytest.fixture(scope="module")
def fem_reference():
    sim = FemPicSimulation(CFG_FEM)
    sim.run()
    return sim.history["field_energy"]


@pytest.fixture(scope="module")
def cab_reference():
    ref = StructuredCabanaReference(CFG_CAB)
    ref.run()
    return ref.history["e_energy"]


@pytest.mark.parametrize("backend", ["seq", "omp", "cuda", "hip"])
def test_mpi_plus_x_fempic(fem_reference, backend):
    dist = DistributedFemPic(CFG_FEM.scaled(backend=backend), nranks=2)
    dist.run()
    np.testing.assert_allclose(dist.history["field_energy"],
                               fem_reference, rtol=1e-10)


@pytest.mark.parametrize("backend", ["omp", "cuda", "hip"])
def test_mpi_plus_x_cabana(cab_reference, backend):
    dist = DistributedCabana(CFG_CAB.scaled(backend=backend), nranks=2)
    dist.run()
    a = np.array(dist.history["e_energy"])
    b = np.array(cab_reference)
    assert np.abs(a - b).max() / b.max() < 1e-12


def test_mpi_cuda_records_device_extras():
    dist = DistributedCabana(CFG_CAB.scaled(backend="cuda"), nranks=2)
    dist.run()
    st = dist.ranks[0].ctx.perf.get("Interpolate")
    assert st.extras.get("device") == "cuda"
