"""CabanaPIC (DSL): invariants and backend consistency."""
import numpy as np
import pytest

from repro.apps.cabana import (CabanaConfig, CabanaSimulation,
                               two_stream_initial_state)


@pytest.fixture(scope="module")
def baseline():
    sim = CabanaSimulation(CabanaConfig.smoke())
    sim.run()
    return sim


def test_initial_state_deterministic():
    cfg = CabanaConfig.smoke()
    a = two_stream_initial_state(cfg)
    b = two_stream_initial_state(cfg)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_initial_state_counts_and_beams():
    cfg = CabanaConfig.smoke()
    cells, offsets, vel = two_stream_initial_state(cfg)
    assert len(cells) == cfg.n_particles
    assert (np.bincount(cells) == cfg.ppc).all()
    assert (np.abs(offsets) <= 1.0).all()
    # equal and opposite beams
    assert (vel[:, 2] > 0).sum() == (vel[:, 2] < 0).sum()
    assert vel[:, 2].mean() == pytest.approx(0.0, abs=1e-12)


def test_particle_count_conserved(baseline):
    """Periodic boundaries: no particle is ever created or removed."""
    assert baseline.parts.size == baseline.cfg.n_particles


def test_offsets_stay_in_cell(baseline):
    off = baseline.pos.data[: baseline.parts.size]
    assert (np.abs(off) <= 1.0 + 1e-12).all()


def test_momentum_budget_reasonable(baseline):
    """Symmetric beams: net momentum stays near zero."""
    vel = baseline.vel.data[: baseline.parts.size]
    pz = vel[:, 2].sum()
    scale = np.abs(vel[:, 2]).sum()
    assert abs(pz) < 1e-6 * max(scale, 1.0)


def test_charge_weighted_current_deposited(baseline):
    """After a step the current dat reflects the beams: finite values,
    dominated by the z component."""
    j = baseline.j.data
    assert np.isfinite(j).all()
    assert np.abs(j[:, 2]).max() > 0


@pytest.mark.parametrize("backend", ["seq", "omp", "cuda", "hip"])
def test_backends_match_vec(baseline, backend):
    sim = CabanaSimulation(CabanaConfig.smoke().scaled(backend=backend))
    sim.run()
    np.testing.assert_allclose(sim.history["e_energy"],
                               baseline.history["e_energy"],
                               rtol=1e-10, atol=1e-18)
    np.testing.assert_allclose(sim.history["b_energy"],
                               baseline.history["b_energy"],
                               rtol=1e-10, atol=1e-18)


def test_hip_segmented_reduction_option(baseline):
    sim = CabanaSimulation(CabanaConfig.smoke().scaled(
        backend="hip", backend_options={"strategy": "segmented_reduction"}))
    sim.run()
    np.testing.assert_allclose(sim.history["e_energy"],
                               baseline.history["e_energy"],
                               rtol=1e-10, atol=1e-18)


def test_perf_breakdown_contains_paper_kernels(baseline):
    names = set(baseline.ctx.perf.loops)
    for kernel in ("Interpolate", "Move_Deposit", "AccumulateCurrent",
                   "AdvanceB", "AdvanceE"):
        assert kernel in names
    move = baseline.ctx.perf.get("Move_Deposit")
    assert move.is_move
    assert move.hops >= baseline.cfg.n_particles  # at least one per step


def test_conservation_ledger_smoke():
    """Bounded-drift ledger over the smoke run: total (field + kinetic)
    energy drifts below 1e-3, net beam momentum is conserved at machine
    precision, and the periodic domain never loses a particle."""
    from repro.validate import ConservationLedger

    cfg = CabanaConfig.smoke()
    sim = CabanaSimulation(cfg)
    total, pz, count = [], [], []
    for _ in range(cfg.n_steps):
        sim.step()
        n = sim.parts.size
        vel = sim.vel.data[:n]
        ke = 0.5 * cfg.msp * cfg.weight * float((vel * vel).sum())
        total.append(sim.history["e_energy"][-1]
                     + sim.history["b_energy"][-1] + ke)
        pz.append(cfg.msp * cfg.weight * float(vel[:, 2].sum()))
        count.append(n)
    p_scale = cfg.msp * cfg.weight \
        * float(np.abs(sim.vel.data[:sim.parts.size]).sum())
    ledger = ConservationLedger()
    ledger.bound("total_energy", total, 1e-3)
    ledger.bound("momentum_z", pz, 1e-12, scale=p_scale)
    ledger.bound_constant("n_particles", count)
    assert ledger.ok, f"conservation ledger failed:\n{ledger}"
