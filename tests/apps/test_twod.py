"""2-D sheet model: cold-plasma oscillation at the plasma frequency."""
import numpy as np
import pytest

from repro.apps.twod import (TwoDConfig, TwoDSheetModel,
                             build_tri_stiffness, lumped_node_areas)
from repro.mesh.tri import square_tri_mesh

CFG = TwoDConfig(nx=16, ny=8, ppc=8, dt=0.05, n_steps=0)


def test_tri_stiffness_properties():
    mesh = square_tri_mesh(5, 4, 1.0, 1.0)
    k = build_tri_stiffness(mesh)
    assert abs(k - k.T).max() < 1e-12
    assert np.abs(k @ np.ones(mesh.n_nodes)).max() < 1e-12
    assert lumped_node_areas(mesh).sum() == pytest.approx(1.0)


def test_neutral_plasma_is_quiet():
    """No displacement → only particle-noise fields, clearly below the
    seeded mode's field."""
    sim = TwoDSheetModel(CFG.scaled(displacement=0.0))
    sim.run(1)
    seeded = TwoDSheetModel(CFG.scaled(displacement=0.05))
    seeded.run(1)
    assert sim.history["field_energy"][0] < \
        0.5 * seeded.history["field_energy"][0]


def test_langmuir_oscillation_at_plasma_frequency():
    """The seeded mode's field energy dips every half Langmuir period:
    the minima spacing measures ωp (P1-FEM PIC with a handful of
    particles per cell and slow wall loss lands within ~20%)."""
    cfg = CFG.scaled(n_steps=300)
    sim = TwoDSheetModel(cfg)
    sim.run()
    e = np.array(sim.history["field_energy"])
    mins = np.flatnonzero((e[1:-1] < e[:-2]) & (e[1:-1] < e[2:])) + 1
    assert len(mins) >= 3, "expected several oscillation minima"
    spacing = np.median(np.diff(mins).astype(float))
    omega = np.pi / (spacing * cfg.dt)
    assert omega == pytest.approx(cfg.plasma_frequency, rel=0.2)


def test_particles_mostly_retained():
    cfg = CFG.scaled(n_steps=100)
    sim = TwoDSheetModel(cfg)
    sim.run()
    assert sim.history["n_particles"][-1] > 0.9 * cfg.n_particles
    lc = sim.lc.data[: sim.parts.size]
    np.testing.assert_allclose(lc.sum(axis=1), 1.0, atol=1e-9)
    assert (lc >= -1e-9).all()


@pytest.mark.parametrize("backend", ["seq", "cuda"])
def test_backends_match(backend):
    ref = TwoDSheetModel(CFG)
    ref.run(5)
    other = TwoDSheetModel(CFG.scaled(backend=backend))
    other.run(5)
    np.testing.assert_allclose(other.history["field_energy"],
                               ref.history["field_energy"], rtol=1e-10)
    assert other.history["n_particles"] == ref.history["n_particles"]


@pytest.mark.parametrize("nranks", [2, 3])
def test_distributed_matches_single(nranks):
    from repro.apps.twod.distributed import DistributedTwoD
    cfg = CFG.scaled(n_steps=15)
    single = TwoDSheetModel(cfg)
    single.run()
    dist = DistributedTwoD(cfg, nranks=nranks)
    dist.run()
    a = np.array(dist.history["field_energy"])
    b = np.array(single.history["field_energy"])
    assert np.abs(a - b).max() / b.max() < 1e-12
    assert dist.history["n_particles"] == single.history["n_particles"]
    # PIC traffic flows (migration + halos); solve ledger is separate
    assert dist.comm.stats.total_messages > 0
    assert dist.solve_stats.total_bytes > 0


def test_lumped_node_areas_bit_equal_to_add_at_form():
    from repro.apps.twod.simulation import lumped_node_areas
    from repro.mesh.tri import square_tri_mesh
    mesh = square_tri_mesh(7, 5, 1.0, 1.0)
    want = np.zeros(mesh.n_nodes)
    np.add.at(want, mesh.cell2node.ravel(), np.repeat(mesh.areas / 3.0, 3))
    assert np.array_equal(lumped_node_areas(mesh), want)
