"""Particle pushers (paper §2): Boris (fused), Velocity Verlet, Vay,
Higuera–Cary — classic integrator properties in uniform fields."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.cabana import kernels as k
from repro.apps.cabana.init import declare_cabana_constants
from repro.core.kernel import Kernel
from repro.core.move import MoveContext
from repro.core.types import MoveStatus


def uniform_interp(n: int, e=(0.0, 0.0, 0.0), b=(0.0, 0.0, 0.0)):
    """Interpolator rows encoding spatially-uniform E and B."""
    ip = np.zeros((n, 18))
    ip[:, 0], ip[:, 4], ip[:, 8] = e
    ip[:, 12], ip[:, 14], ip[:, 16] = b
    return ip


def boris_step(vel, ip, cfg):
    """Drive the fused kernel's Boris block once (walk suppressed)."""
    move = MoveContext()
    move.reset(0, np.array([0, 0, 0, 0, 0, 0]), 0)
    pos = np.zeros(3)
    disp = np.zeros(3)
    w = np.array([0.0])
    pushed = np.array([0.0])
    acc = np.zeros(3)
    k.move_deposit_kernel(move, pos, disp, vel, w, pushed, ip, acc)
    assert move.status == MoveStatus.MOVE_DONE  # zero weight, no net move
    return vel


@pytest.fixture
def constants():
    cfg = CabanaConfig(nx=2, ny=2, nz=2, ppc=0, cfl=0.1)
    declare_cabana_constants(cfg)
    return cfg


PUSHER_FNS = {
    "velocity_verlet": k.push_velocity_verlet_kernel,
    "vay": k.push_vay_kernel,
    "higuera_cary": k.push_higuera_cary_kernel,
}


def drive(pusher: str, vel0, e, b, steps, cfg):
    """Advance one particle's velocity with the named pusher."""
    vel = np.array(vel0, dtype=np.float64)
    history = [vel.copy()]
    for _ in range(steps):
        if pusher == "boris":
            ip1 = uniform_interp(1, e, b)[0]
            boris_step(vel, ip1, cfg)
        else:
            pos = np.zeros(3)
            disp = np.zeros(3)
            pushed = np.array([0.0])
            PUSHER_FNS[pusher](pos, disp, vel, pushed,
                               uniform_interp(1, e, b)[0])
            assert pushed[0] == 1.0
        history.append(vel.copy())
    return np.array(history)


ROTATING = ["boris", "vay", "higuera_cary"]


@pytest.mark.parametrize("pusher", ROTATING)
def test_gyration_conserves_speed(constants, pusher):
    """Pure magnetic rotation must conserve |v| exactly (all three
    magnetic pushers are volume/energy preserving)."""
    hist = drive(pusher, [0.3, 0.0, 0.1], e=(0, 0, 0), b=(0, 0, 2.0),
                 steps=200, cfg=constants)
    speeds = np.linalg.norm(hist, axis=1)
    np.testing.assert_allclose(speeds, speeds[0], rtol=1e-13)


@pytest.mark.parametrize("pusher", ROTATING)
def test_gyration_angle_matches_tan_half(constants, pusher):
    """Per-step rotation angle is 2·atan(ω dt/2) for all three pushers
    (they share the τ-vector construction)."""
    cfg = constants
    bz = 1.5
    hist = drive(pusher, [0.2, 0.0, 0.0], e=(0, 0, 0), b=(0, 0, bz),
                 steps=1, cfg=cfg)
    v0, v1 = hist[0, :2], hist[1, :2]
    # scalar z-component of the 2-D cross product (np.cross on 2-D
    # vectors is deprecated as of NumPy 2.0)
    cross_z = v0[0] * v1[1] - v0[1] * v1[0]
    angle = np.arctan2(cross_z, v0 @ v1)
    t = cfg.qsp * cfg.dt / (2 * cfg.msp) * bz
    assert abs(angle) == pytest.approx(2 * np.arctan(abs(t)), rel=1e-12)
    # dv/dt = (q/m) v × B rotates clockwise about B for q > 0, i.e. the
    # signed in-plane angle is −2·atan(t); electrons (q < 0) go the
    # other way
    assert np.sign(angle) == -np.sign(t)


@pytest.mark.parametrize("pusher", ROTATING)
def test_exb_drift(constants, pusher):
    """In crossed uniform fields the mean velocity is the E×B drift."""
    cfg = constants
    e = (0.0, 0.4, 0.0)
    b = (0.0, 0.0, 2.0)
    drift = np.cross(e, b) / (b[2] ** 2)
    hist = drive(pusher, drift, e, b, steps=400, cfg=cfg)
    mean_v = hist.mean(axis=0)
    np.testing.assert_allclose(mean_v, drift, atol=5e-3)


def test_velocity_verlet_ignores_b(constants):
    hist = drive("velocity_verlet", [0.1, 0.0, 0.0], e=(0, 0, 0),
                 b=(0, 0, 5.0), steps=10, cfg=constants)
    np.testing.assert_array_equal(hist[-1], hist[0])


def test_velocity_verlet_matches_boris_without_b(constants):
    hist_vv = drive("velocity_verlet", [0.1, 0.2, 0.0],
                    e=(0.3, -0.1, 0.2), b=(0, 0, 0), steps=20,
                    cfg=constants)
    hist_b = drive("boris", [0.1, 0.2, 0.0],
                   e=(0.3, -0.1, 0.2), b=(0, 0, 0), steps=20,
                   cfg=constants)
    np.testing.assert_allclose(hist_vv, hist_b, rtol=1e-13)


def test_higuera_cary_equals_boris_nonrelativistic(constants):
    """In the non-relativistic form both apply the identical exact
    rotation: trajectories agree to rounding."""
    args = ([0.2, -0.1, 0.3], (0.1, 0.0, -0.2), (0.5, 0.2, 1.0), 50,
            constants)
    np.testing.assert_allclose(drive("higuera_cary", *args),
                               drive("boris", *args), rtol=1e-12,
                               atol=1e-15)


def test_vay_close_to_boris(constants):
    """Vay agrees with Boris through second order in dt."""
    args = ([0.2, -0.1, 0.3], (0.1, 0.0, -0.2), (0.5, 0.2, 1.0), 50,
            constants)
    a = drive("vay", *args)
    b = drive("boris", *args)
    assert np.abs(a - b).max() < 1e-3
    assert np.abs(a - b).max() > 0  # genuinely different algebra


@pytest.mark.parametrize("pusher", sorted(PUSHER_FNS))
def test_pushers_are_translatable(pusher):
    gen = Kernel(PUSHER_FNS[pusher]).generated("vec")
    assert gen.vectorized


@pytest.mark.parametrize("pusher", sorted(PUSHER_FNS))
def test_simulation_integration(pusher):
    """Full CabanaPIC step with each pusher stays finite and conserves
    particles; magnetic pushers track Boris closely over a short run."""
    cfg = CabanaConfig.smoke().scaled(pusher=pusher, n_steps=6)
    sim = CabanaSimulation(cfg)
    sim.run()
    assert sim.parts.size == cfg.n_particles
    assert np.isfinite(sim.history["e_energy"]).all()
    assert "PushParticles" in sim.ctx.perf.loops


def test_unknown_pusher_rejected():
    with pytest.raises(ValueError):
        CabanaSimulation(CabanaConfig.smoke().scaled(pusher="rk4"))
