"""Whole-app backend equivalence (paper §3: every parallelization must
compute the same physics).

Runs small FemPIC and CabanaPIC problems end-to-end under each CPU
execution strategy — sequential reference, vectorised with atomic and
segmented-reduction race handling, simulated OpenMP, and the true
multiprocess backend — and checks fields and particle state agree to
``np.allclose``.
"""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.fempic import FemPicConfig, FemPicSimulation

#: (backend name, backend options) — mp uses min_chunk=1 so the tiny
#: smoke problems still exercise the real worker-pool path
STRATEGIES = [
    ("vec", {}),
    ("vec", {"strategy": "segmented_reduction"}),
    ("omp", {}),
    ("mp", {"nworkers": 2, "min_chunk": 1}),
]

IDS = ["vec-atomics", "vec-segmented", "omp", "mp"]


@pytest.fixture(scope="module")
def fempic_reference():
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(backend="seq"))
    sim.run()
    return sim


@pytest.fixture(scope="module")
def cabana_reference():
    sim = CabanaSimulation(CabanaConfig.smoke().scaled(backend="seq"))
    sim.run()
    return sim


def _close(ctx):
    be = ctx.backend
    if hasattr(be, "close"):
        be.close()


@pytest.mark.parametrize(("backend", "options"), STRATEGIES, ids=IDS)
def test_fempic_equivalence(backend, options, fempic_reference):
    ref = fempic_reference
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(
        backend=backend, backend_options=options))
    sim.run()
    try:
        assert sim.parts.size == ref.parts.size
        for attr in ("phi", "ncd", "nw", "ef"):
            np.testing.assert_allclose(
                getattr(sim, attr).data, getattr(ref, attr).data,
                rtol=1e-9, atol=1e-18, err_msg=f"{backend}: {attr}")
        for attr in ("pos", "vel", "lc"):
            np.testing.assert_allclose(
                getattr(sim, attr).data, getattr(ref, attr).data,
                rtol=1e-9, atol=1e-18, err_msg=f"{backend}: {attr}")
        np.testing.assert_allclose(sim.history["field_energy"],
                                   ref.history["field_energy"], rtol=1e-9)
    finally:
        _close(sim.ctx)


@pytest.mark.parametrize(("backend", "options"), STRATEGIES, ids=IDS)
def test_cabana_equivalence(backend, options, cabana_reference):
    ref = cabana_reference
    sim = CabanaSimulation(CabanaConfig.smoke().scaled(
        backend=backend, backend_options=options))
    sim.run()
    try:
        assert sim.parts.size == ref.parts.size
        for attr in ("e", "b", "j", "acc"):
            np.testing.assert_allclose(
                getattr(sim, attr).data, getattr(ref, attr).data,
                rtol=1e-9, atol=1e-18, err_msg=f"{backend}: {attr}")
        for attr in ("pos", "vel"):
            np.testing.assert_allclose(
                getattr(sim, attr).data, getattr(ref, attr).data,
                rtol=1e-9, atol=1e-18, err_msg=f"{backend}: {attr}")
        np.testing.assert_allclose(sim.history["e_energy"],
                                   ref.history["e_energy"],
                                   rtol=1e-9, atol=1e-18)
    finally:
        _close(sim.ctx)


def test_mp_actually_parallelised_fempic():
    """The mp runs above must not silently fall back to vec."""
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(
        backend="mp", backend_options={"nworkers": 2, "min_chunk": 1}))
    sim.run()
    stats = sim.ctx.backend.stats
    _close(sim.ctx)
    assert stats["parallel_loops"] > 0
    assert stats["parallel_moves"] > 0
    assert stats["fallback_loops"] == 0
    assert stats["fallback_moves"] == 0
