"""1-D electrostatic validation app: init, conservation, backends."""
import numpy as np
import pytest

from repro.apps.landau import (ElectrostaticSimulation, LandauConfig,
                               SpeciesSpec, landau_config,
                               maxwellian_quantiles, two_beam_config,
                               van_der_corput)

HISTORY_KEYS = ("field_energy", "mode_energy", "kinetic_energy",
                "total_energy", "momentum", "charge", "n_particles")


def test_van_der_corput_low_discrepancy():
    seq = van_der_corput(64)
    assert seq.shape == (64,)
    assert ((seq > 0) & (seq < 1)).all()
    assert np.unique(seq).size == 64
    # star discrepancy of the base-2 sequence is O(log n / n); the
    # empirical CDF of the first 64 points is uniform to ~1/16
    assert abs(np.sort(seq) - (np.arange(64) + 0.5) / 64).max() < 0.1


def test_maxwellian_quantiles_symmetric_unit_variance():
    u = (np.arange(10000) + 0.5) / 10000
    v = maxwellian_quantiles(u)
    assert abs(v.mean()) < 1e-12
    assert v.std() == pytest.approx(1.0, rel=1e-3)
    assert maxwellian_quantiles(np.array([0.5]))[0] == \
        pytest.approx(0.0, abs=1e-12)


def test_quiet_start_is_deterministic():
    cfg = LandauConfig.smoke()
    a = ElectrostaticSimulation(cfg)
    b = ElectrostaticSimulation(cfg)
    for sa, sb in zip(a.species, b.species):
        assert (sa.pos.data == sb.pos.data).all()
        assert (sa.vel.data == sb.vel.data).all()
    a.run(5)
    b.run(5)
    for key in HISTORY_KEYS:
        assert a.history[key] == b.history[key]


def test_quiet_start_seeds_requested_mode():
    cfg = landau_config(nz=32, ppc=50, n_steps=1, perturbation=0.05)
    sim = ElectrostaticSimulation(cfg)
    sim.run()
    # the seeded ripple must dominate the diagnosed mode: energy in
    # mode 1 far above the (zero-RNG) discretization floor of mode 2
    assert sim.mode_energy(1) > 1e3 * sim.mode_energy(2)


def test_landau_smoke_conserves():
    sim = ElectrostaticSimulation(LandauConfig.smoke())
    h = sim.run()
    assert len(h["charge"]) == sim.cfg.n_steps
    q = np.array(h["charge"])
    assert np.abs(q - q[0]).max() < 1e-12 * abs(q[0])
    p = np.array(h["momentum"])
    p_scale = np.sqrt(2.0 * sim.cfg.lz * h["kinetic_energy"][0])
    assert np.abs(p - p[0]).max() < 1e-12 * p_scale
    assert h["n_particles"] == [sim.cfg.n_particles] * sim.cfg.n_steps


def test_two_beam_counter_streams():
    cfg = two_beam_config(nz=16, ppc=20, n_steps=5)
    sim = ElectrostaticSimulation(cfg)
    assert len(sim.species) == 2
    v0 = cfg.species[0].drift
    assert v0 > 0 and cfg.species[1].drift == -v0
    na = sim.species[0].pset.size
    assert sim.species[0].vel.data[:na, 0].mean() == \
        pytest.approx(v0, rel=1e-12)
    sim.run()
    # beams deposit into ONE shared rho: net charge is both species'
    q_expected = sum(s.charge * s.density for s in cfg.species) * cfg.lz
    assert sim.history["charge"][-1] == pytest.approx(q_expected,
                                                      rel=1e-12)


def test_particles_stay_in_their_cells():
    """After every step each particle's p2c cell must contain it."""
    cfg = landau_config(nz=24, ppc=40, n_steps=8, dt=0.3)  # big dt: hops
    sim = ElectrostaticSimulation(cfg)
    for _ in range(cfg.n_steps):
        sim.step()
        for sp in sim.species:
            n = sp.pset.size
            x = sp.pos.data[:n, 0]
            cell = sp.p2c.p2c[:n]
            assert ((x >= cell * cfg.dx) & (x < (cell + 1) * cfg.dx)).all()
            assert ((x >= 0.0) & (x < cfg.lz)).all()


def test_deposit_matches_host_reference():
    """The DSL deposit loop must reproduce a direct CIC host deposit
    (rho holds the deposit of the *pre-push* positions, so deposit
    once without stepping)."""
    from repro.core.api import push_context
    cfg = two_beam_config(nz=16, ppc=30, n_steps=1)
    sim = ElectrostaticSimulation(cfg)
    with push_context(sim.ctx):
        sim.deposit_and_solve()
    rho = np.zeros(cfg.nz)
    for sp in sim.species:
        n = sp.pset.size
        x = sp.pos.data[:n, 0]
        j = np.minimum((x / cfg.dx).astype(np.int64), cfg.nz - 1)
        f = x / cfg.dx - j
        np.add.at(rho, j, sp.qw.data[:n, 0] * (1.0 - f))
        np.add.at(rho, (j + 1) % cfg.nz, sp.qw.data[:n, 0] * f)
    assert np.allclose(sim.rho.data[:, 0], rho, rtol=1e-12, atol=1e-14)


@pytest.mark.parametrize("backend,options", [
    ("vec", {}),
    ("omp", {}),
    ("mp", {"nworkers": 2}),
    ("vec", {"strategy": "sparse_csr"}),
    ("vec", {"locality": "always"}),
])
def test_backends_match_seq_oracle(backend, options):
    """Every backend × strategy must reproduce the seq histories on
    both the Maxwellian and the two-set multi-species problem."""
    for maker in (landau_config, two_beam_config):
        base = maker(nz=16, ppc=20, n_steps=6)
        ref = ElectrostaticSimulation(base.scaled(backend="seq"))
        ref.run()
        sim = ElectrostaticSimulation(base.scaled(
            backend=backend, backend_options=dict(options)))
        sim.run()
        assert sim.history["n_particles"] == ref.history["n_particles"]
        for key in HISTORY_KEYS[:-1]:
            assert np.allclose(sim.history[key], ref.history[key],
                               rtol=1e-9, atol=1e-12), (maker.__name__,
                                                        key)


def test_config_properties():
    cfg = landau_config(k_lambda_d=0.5)
    assert cfg.k1 == pytest.approx(0.5)
    assert cfg.plasma_frequency == pytest.approx(1.0)
    assert cfg.n_particles == cfg.nz * cfg.species[0].ppc
    sp = SpeciesSpec(density=4.0, mass=4.0)
    assert sp.plasma_frequency_sq() == pytest.approx(1.0)
