"""Fused move+deposit: the deposit kernel rides along inside the move
loop (per frontier round for cabana's segment currents, at settling time
for FemPIC's node charge) and must reproduce the separate-loop physics.
"""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, CabanaSimulation
from repro.apps.fempic import FemPicConfig, FemPicSimulation

BACKENDS = [("seq", {}), ("vec", {}),
            ("mp", {"nworkers": 2, "min_chunk": 16})]


def run_fempic(backend, options, fused, steps=4):
    cfg = FemPicConfig.smoke().scaled(
        backend=backend, backend_options=options, n_steps=steps,
        fuse_move=fused)
    sim = FemPicSimulation(cfg)
    sim.run()
    return sim


def run_cabana(backend, options, fused, steps=4):
    cfg = CabanaConfig.smoke().scaled(
        backend=backend, backend_options=options, n_steps=steps,
        fuse_move=fused)
    sim = CabanaSimulation(cfg)
    sim.run()
    return sim


@pytest.mark.parametrize("backend,options", BACKENDS)
def test_fempic_fused_matches_unfused(backend, options):
    plain = run_fempic(backend, options, fused=False)
    fused = run_fempic(backend, options, fused=True)
    assert fused.parts.size == plain.parts.size
    for attr in ("phi", "ncd", "nw", "ef", "pos", "vel", "lc"):
        np.testing.assert_allclose(
            getattr(fused, attr).data, getattr(plain, attr).data,
            rtol=1e-9, atol=1e-18, err_msg=attr)


def test_fempic_fused_seq_is_bit_identical():
    """seq runs the deposit at the very same program point the unfused
    DepositCharge loop would reach each particle: same FP order."""
    plain = run_fempic("seq", {}, fused=False)
    fused = run_fempic("seq", {}, fused=True)
    assert np.array_equal(fused.nw.data, plain.nw.data)
    assert np.array_equal(fused.phi.data, plain.phi.data)
    assert np.array_equal(fused.pos.data[: fused.parts.size],
                          plain.pos.data[: plain.parts.size])


def test_fempic_fused_records_fused_deposit():
    sim = run_fempic("vec", {}, fused=True, steps=2)
    st = sim.ctx.perf.get("Move")
    assert st is not None
    assert st.extras.get("fused_deposit") == "done"
    # the standalone deposit loop must not have run
    assert sim.ctx.perf.get("DepositCharge") is None


@pytest.mark.parametrize("backend,options", BACKENDS)
def test_cabana_fused_matches_unfused(backend, options):
    plain = run_cabana(backend, options, fused=False)
    fused = run_cabana(backend, options, fused=True)
    for attr in ("acc", "pos", "vel", "e", "b"):
        np.testing.assert_allclose(
            getattr(fused, attr).data, getattr(plain, attr).data,
            rtol=1e-9, atol=1e-18, err_msg=attr)


def test_cabana_fused_seq_is_bit_identical():
    """The hand-fused kernel deposits each hop's current as it walks;
    the split walk+deposit pair replays the identical FP sequence."""
    plain = run_cabana("seq", {}, fused=False)
    fused = run_cabana("seq", {}, fused=True)
    assert np.array_equal(fused.acc.data, plain.acc.data)
    assert np.array_equal(fused.vel.data[: fused.parts.size],
                          plain.vel.data[: plain.parts.size])


def test_fused_move_dirties_particle_order():
    """Relocations inside a fused move must feed the order tracker just
    like a plain move's."""
    sim = run_fempic("vec", {}, fused=True, steps=3)
    assert sim.parts.order.mutations > 0
