"""Distributed Mini-FEM-PIC must reproduce the single-rank run exactly
(same injection stream, same physics) for any rank count or partitioner."""
import numpy as np
import pytest

from repro.apps.fempic import FemPicConfig, FemPicSimulation
from repro.apps.fempic.distributed import DistributedFemPic

CFG = FemPicConfig.smoke().scaled(n_steps=8, dt=0.2)


@pytest.fixture(scope="module")
def single():
    sim = FemPicSimulation(CFG)
    sim.run()
    return sim


@pytest.mark.parametrize("nranks", [1, 2, 3, 4])
def test_matches_single_rank(single, nranks):
    dist = DistributedFemPic(CFG, nranks=nranks)
    dist.run()
    np.testing.assert_allclose(dist.history["field_energy"],
                               single.history["field_energy"], rtol=1e-10)
    assert dist.history["n_particles"] == single.history["n_particles"]
    assert sum(dist.history["removed"]) == sum(single.history["removed"])


def test_dh_distributed_matches(single):
    dist = DistributedFemPic(CFG.scaled(move_strategy="dh"), nranks=3)
    dist.run()
    np.testing.assert_allclose(dist.history["field_energy"],
                               single.history["field_energy"], rtol=1e-10)


@pytest.mark.parametrize("method", ["rcb", "graph", "block"])
def test_partitioner_robustness(single, method):
    """Any partitioner must yield a healthy run.  When inlet faces spread
    over several ranks the per-rank injection streams (and rounding
    carries) differ from the single-rank run, so only statistical
    agreement is required."""
    dist = DistributedFemPic(CFG, nranks=2, partition_method=method)
    dist.run()
    n_single = single.history["n_particles"][-1]
    n_dist = dist.history["n_particles"][-1]
    assert abs(n_dist - n_single) <= 2 * CFG.n_steps
    e = np.array(dist.history["field_energy"])
    assert np.isfinite(e).all() and (e > 0).all()
    for rk in dist.ranks:
        live = rk.p2c.p2c[: rk.parts.size]
        assert (live >= 0).all()
        assert (live < rk.rm.n_owned_cells).all()


def test_all_live_particles_in_owned_cells():
    dist = DistributedFemPic(CFG, nranks=3)
    dist.run()
    for rk in dist.ranks:
        live = rk.p2c.p2c[: rk.parts.size]
        assert (live >= 0).all()
        assert (live < rk.rm.n_owned_cells).all()


def test_comm_traffic_recorded():
    dist = DistributedFemPic(CFG, nranks=2)
    dist.run()
    assert dist.comm.stats.total_messages > 0
    assert dist.comm.stats.total_bytes > 0
    assert dist.comm.stats.collectives > 0


def test_busy_seconds_per_rank_reported():
    dist = DistributedFemPic(CFG, nranks=2)
    dist.run()
    busy = dist.busy_seconds_per_rank()
    assert len(busy) == 2
    assert all(b > 0 for b in busy)
