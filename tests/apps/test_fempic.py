"""Mini-FEM-PIC: behaviour, conservation, backend consistency, MH vs DH."""
import numpy as np
import pytest

from repro.apps.fempic import FemPicConfig, FemPicSimulation


@pytest.fixture(scope="module")
def baseline():
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(backend="seq",
                                                       n_steps=10))
    sim.run()
    return sim


def test_particles_injected_at_constant_rate(baseline):
    inj = baseline.history["injected"]
    assert all(i > 0 for i in inj)
    assert max(inj) - min(inj) <= 1   # constant rate up to carry rounding


def test_particle_count_balance(baseline):
    hist = baseline.history
    expected = sum(hist["injected"]) - sum(hist["removed"])
    assert hist["n_particles"][-1] == expected


def test_wall_potential_held(baseline):
    sim = baseline
    wall = sim.mesh.tags["wall_nodes"]
    np.testing.assert_allclose(sim.phi.data[wall, 0],
                               sim.cfg.wall_potential)
    inlet = sim.mesh.tags["inlet_nodes"]
    np.testing.assert_allclose(sim.phi.data[inlet, 0],
                               sim.cfg.inlet_potential)


def test_particles_always_inside_their_cells(baseline):
    """After a move, every particle's stored weights are valid barycentric
    coordinates of its cell."""
    sim = baseline
    lc = sim.lc.data[: sim.parts.size]
    assert (lc >= -1e-9).all()
    np.testing.assert_allclose(lc.sum(axis=1), 1.0, atol=1e-9)


def test_deposited_charge_matches_particle_count(baseline):
    """Charge conservation: Σ node weights == number of particles (each
    deposits barycentric weights summing to one)."""
    sim = baseline
    assert sim.nw.data.sum() == pytest.approx(sim.parts.size, rel=1e-12)


def test_field_energy_positive_and_finite(baseline):
    e = np.array(baseline.history["field_energy"])
    assert (e > 0).all()
    assert np.isfinite(e).all()


@pytest.mark.parametrize("backend", ["vec", "omp", "cuda", "hip", "mp"])
def test_backends_match_seq(baseline, backend):
    sim = FemPicSimulation(FemPicConfig.smoke().scaled(backend=backend,
                                                       n_steps=10))
    sim.run()
    np.testing.assert_allclose(sim.history["field_energy"],
                               baseline.history["field_energy"],
                               rtol=1e-12)
    assert sim.history["n_particles"] == baseline.history["n_particles"]


def test_dh_matches_mh_physics():
    cfg = FemPicConfig.smoke().scaled(n_steps=10, dt=0.15)
    mh = FemPicSimulation(cfg.scaled(move_strategy="mh"))
    dh = FemPicSimulation(cfg.scaled(move_strategy="dh"))
    mh.run()
    dh.run()
    np.testing.assert_allclose(dh.history["field_energy"],
                               mh.history["field_energy"], rtol=1e-12)


def test_dh_reduces_hops():
    cfg = FemPicConfig.smoke().scaled(n_steps=10, dt=0.15)
    mh = FemPicSimulation(cfg.scaled(move_strategy="mh"))
    dh = FemPicSimulation(cfg.scaled(move_strategy="dh"))
    mh.run()
    dh.run()
    assert dh.ctx.perf.get("Move").hops < mh.ctx.perf.get("Move").hops


def test_long_run_reaches_quasi_steady_state():
    """Once the first ions reach the outlet, removal starts and the
    population growth slows."""
    cfg = FemPicConfig.smoke().scaled(n_steps=60, dt=0.3)
    sim = FemPicSimulation(cfg)
    sim.run()
    assert sum(sim.history["removed"]) > 0
    n = sim.history["n_particles"]
    half = len(n) // 2
    early_growth = n[half - 1] - n[0]
    late_growth = n[-1] - n[half - 1]
    assert late_growth < early_growth


def test_unknown_move_strategy_rejected():
    with pytest.raises(ValueError):
        FemPicSimulation(FemPicConfig.smoke().scaled(move_strategy="warp"))


def test_perf_breakdown_contains_paper_kernels(baseline):
    names = set(baseline.ctx.perf.loops)
    for kernel in ("CalcPosVel", "Move", "DepositCharge",
                   "ComputeF1Vector", "ComputeJMatrix",
                   "ComputeElectricField", "Solve"):
        assert kernel in names


def test_thermal_injection():
    """A finite inlet temperature spreads the injected velocities around
    the drift while keeping every ion moving into the duct."""
    from repro.core.api import push_context

    cold = FemPicSimulation(FemPicConfig.smoke().scaled(
        plasma_den=2e4, n0=2e4))
    with push_context(cold.ctx):
        cold.inject()
    np.testing.assert_allclose(cold.vel.data[: cold.parts.size, 2],
                               cold.cfg.injection_velocity)
    assert (cold.vel.data[: cold.parts.size, :2] == 0).all()

    warm = FemPicSimulation(FemPicConfig.smoke().scaled(
        plasma_den=2e4, n0=2e4, injection_temperature=0.04))
    with push_context(warm.ctx):
        warm.inject()
    vz = warm.vel.data[: warm.parts.size, 2]
    vx = warm.vel.data[: warm.parts.size, 0]
    assert vz.std() > 0.05              # spread exists
    assert (vz > 0).all()               # flux points into the duct
    assert abs(vx.mean()) < 0.2         # transverse drift-free


def test_conservation_ledger_smoke():
    """Bounded-drift ledger over a smoke run.  Mini-FEM-PIC is an open
    system (inlet injection, wall absorption) so total energy is not
    conserved — what must hold every step is exact charge accounting:
    deposited node charge per particle stays exactly 1 (each particle's
    barycentric weights sum to one), and the particle balance
    (injected − removed) matches the population."""
    from repro.validate import ConservationLedger

    sim = FemPicSimulation(FemPicConfig.smoke().scaled(n_steps=8))
    charge_per_particle, balance_defect = [], []
    for _ in range(sim.cfg.n_steps):
        sim.step()
        charge_per_particle.append(sim.nw.data.sum() / sim.parts.size)
        hist = sim.history
        balance_defect.append(hist["n_particles"][-1]
                              - (sum(hist["injected"])
                                 - sum(hist["removed"])))
    ledger = ConservationLedger()
    ledger.bound("charge_per_particle", charge_per_particle, 1e-12)
    ledger.bound_constant("particle_balance", balance_defect)
    assert ledger.ok, f"conservation ledger failed:\n{ledger}"
