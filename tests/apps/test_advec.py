"""Advection mini-app: exact periodic return, rotation, migration."""
import numpy as np
import pytest

from repro.apps.advec import (AdvecConfig, AdvecSimulation,
                              DistributedAdvec, cell_velocity_field)

CFG = AdvecConfig(nx=8, ny=8, vx0=0.25, vy0=0.125, dt=0.1, ppc=2,
                  n_steps=0)


@pytest.mark.parametrize("backend", ["seq", "vec", "cuda"])
def test_uniform_advection_periodic_return(backend):
    """After exactly one x-period every particle is back at its start
    (the advection is exact for a uniform field on a periodic mesh)."""
    sim = AdvecSimulation(CFG.scaled(backend=backend))
    start = sim.positions_xy().copy()
    sim.run(int(round(CFG.lx / (CFG.vx0 * CFG.dt))))       # 40 steps
    np.testing.assert_allclose(sim.positions_xy()[:, 0], start[:, 0],
                               atol=1e-12)


def test_uniform_advection_full_period_both_axes():
    # 80 steps = 2 x-periods = 1 y-period
    sim = AdvecSimulation(CFG)
    start = sim.positions_xy().copy()
    sim.run(80)
    np.testing.assert_allclose(sim.positions_xy(), start, atol=1e-12)


def test_no_particles_lost():
    sim = AdvecSimulation(CFG)
    sim.run(25)
    assert sim.parts.size == CFG.n_particles
    assert (sim.p2c.p2c >= 0).all()
    assert (np.abs(sim.pos.data) <= 1.0 + 1e-12).all()


def test_mean_velocity_matches_flow():
    sim = AdvecSimulation(CFG)
    start = sim.positions_xy().copy()
    sim.run(10)
    delta = sim.positions_xy() - start
    # unwrap the periodic boundary: map each displacement to (-L/2, L/2]
    delta[:, 0] = (delta[:, 0] + CFG.lx / 2) % CFG.lx - CFG.lx / 2
    delta[:, 1] = (delta[:, 1] + CFG.ly / 2) % CFG.ly - CFG.ly / 2
    np.testing.assert_allclose(delta[:, 0], CFG.vx0 * 10 * CFG.dt,
                               rtol=1e-9)
    np.testing.assert_allclose(delta[:, 1], CFG.vy0 * 10 * CFG.dt,
                               rtol=1e-9)


def test_rotation_field_shape():
    cfg = CFG.scaled(flow="rotation", omega=2.0)
    vel = cell_velocity_field(cfg, np.array([[0.75, 0.5], [0.5, 0.75]]))
    # at (0.75, 0.5): r = (0.25, 0) -> v = ω(−0, 0.25·ω)
    np.testing.assert_allclose(vel[0], [0.0, 0.5], atol=1e-12)
    np.testing.assert_allclose(vel[1], [-0.5, 0.0], atol=1e-12)


def test_rotation_preserves_radius():
    """Solid-body rotation keeps particles near their starting radius
    (piecewise-constant cell velocities introduce only a small error)."""
    cfg = AdvecConfig(nx=32, ny=32, flow="rotation", omega=1.0, dt=0.02,
                      ppc=1, n_steps=0)
    sim = AdvecSimulation(cfg)
    centre = np.array([cfg.lx / 2, cfg.ly / 2])
    r0 = np.linalg.norm(sim.positions_xy() - centre, axis=1)
    sim.run(60)
    r1 = np.linalg.norm(sim.positions_xy() - centre, axis=1)
    inner = r0 < 0.3   # avoid the corners where rotation meets the wrap
    assert np.abs(r1[inner] - r0[inner]).max() < 0.08


def test_unknown_flow_rejected():
    with pytest.raises(ValueError):
        AdvecSimulation(CFG.scaled(flow="turbulent"))


@pytest.mark.parametrize("nranks", [2, 4])
def test_distributed_matches_single(nranks):
    single = AdvecSimulation(CFG)
    single.run(30)
    expected = {(round(x, 9), round(y, 9))
                for x, y in single.positions_xy()}

    dist = DistributedAdvec(CFG, nranks=nranks)
    dist.run(30)
    assert dist.total_particles() == CFG.n_particles
    got = set()
    for r, rk in enumerate(dist.ranks):
        cfg = CFG
        rm = dist.meshes[r]
        c = rm.cells_global[rk["p2c"].p2c]
        i = c % cfg.nx
        j = (c // cfg.nx) % cfg.ny
        n = rk["parts"].size
        x = (i + 0.5 * (rk["pos"].data[:n, 0] + 1.0)) * cfg.dx
        y = (j + 0.5 * (rk["pos"].data[:n, 1] + 1.0)) * cfg.dy
        got |= {(round(a, 9), round(b, 9)) for a, b in zip(x, y)}
    assert got == expected


def test_distributed_migration_happens():
    dist = DistributedAdvec(CFG, nranks=2)
    dist.run(20)
    assert dist.comm.stats.total_messages > 0
