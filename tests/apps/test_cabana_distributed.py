"""Distributed CabanaPIC vs the structured reference."""
import numpy as np
import pytest

from repro.apps.cabana import CabanaConfig, StructuredCabanaReference
from repro.apps.cabana.distributed import DistributedCabana

CFG = CabanaConfig.smoke()


@pytest.fixture(scope="module")
def reference():
    ref = StructuredCabanaReference(CFG)
    ref.run()
    return ref


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_matches_reference(reference, nranks):
    dist = DistributedCabana(CFG, nranks=nranks)
    dist.run()
    a = np.array(dist.history["e_energy"])
    b = np.array(reference.history["e_energy"])
    assert np.abs(a - b).max() / b.max() < 1e-12


def test_particles_conserved_across_ranks(reference):
    dist = DistributedCabana(CFG, nranks=4)
    dist.run()
    assert sum(rk.parts.size for rk in dist.ranks) == CFG.n_particles


def test_migration_happens(reference):
    """Beams stream along z across slab boundaries — particle payload
    messages must flow."""
    dist = DistributedCabana(CFG, nranks=2)
    dist.run()
    assert dist.comm.stats.total_messages > 0
    # update-ghost traffic was timed
    for rk in dist.ranks:
        assert rk.ctx.perf.get("Update_Ghosts") is not None


def test_update_ghosts_in_breakdown(reference):
    dist = DistributedCabana(CFG, nranks=2)
    dist.run()
    names = set(dist.ranks[0].ctx.perf.loops)
    assert {"Interpolate", "Move_Deposit", "AccumulateCurrent", "AdvanceB",
            "AdvanceE", "Update_Ghosts"} <= names
