"""Fair-share scheduler policy (repro.service.scheduler).

All deterministic: the scheduler never reads a clock — every test
injects ``now``.
"""
from repro.service import jobs
from repro.service.scheduler import FairShareScheduler, QueuedJob


def spec(priority=5, tenant="default", preemptible=True, app="advec"):
    params = ({"nz": 24, "ppc": 30, "n_steps": 5} if app == "landau"
              else {"nx": 6, "ny": 6, "n_steps": 5})
    return jobs.validate_job(
        {"app": app, "priority": priority, "tenant": tenant,
         "preemptible": preemptible, "params": params})


def item(job_id, t=0.0, **kw):
    return QueuedJob(job_id=job_id, spec=spec(**kw), enqueued_at=t)


def test_priority_order_with_submission_tiebreak():
    s = FairShareScheduler()
    s.submit(item("low", priority=2))
    s.submit(item("hi", priority=8))
    s.submit(item("hi2", priority=8))
    assert s.pop(0.0).job_id == "hi"
    assert s.pop(0.0).job_id == "hi2"
    assert s.pop(0.0).job_id == "low"
    assert s.pop(0.0) is None


def test_aging_eventually_beats_priority():
    """A starving low-priority job must outscore fresh high-priority
    arrivals once it has waited long enough (no permanent starvation)."""
    s = FairShareScheduler(aging_seconds=10.0)
    s.submit(item("starved", t=0.0, priority=1))
    # at t=30 a fresh priority-3 job arrives: 1 + 30/10 = 4 > 3
    s.submit(item("fresh", t=30.0, priority=3))
    assert s.peek(30.0).job_id == "starved"
    # but a fresh priority-9 job still wins at t=30
    s.submit(item("urgent", t=30.0, priority=9))
    assert s.pop(30.0).job_id == "urgent"


def test_fair_share_penalises_heavy_tenant():
    s = FairShareScheduler(fair_share_weight=1.0, usage_halflife=100.0)
    s.charge("hog", 6.0, now=0.0)
    s.submit(item("hog-job", t=0.0, tenant="hog", priority=5))
    s.submit(item("new-job", t=0.0, tenant="newbie", priority=5))
    assert s.pop(0.0).job_id == "new-job"
    # usage decays: after one half-life the penalty halves
    assert abs(s.usage("hog", 100.0) - 3.0) < 1e-9


def test_requeue_keeps_aging_credit_and_counts_restarts():
    s = FairShareScheduler(aging_seconds=10.0)
    it = item("j", t=0.0, priority=1)
    s.submit(it)
    popped = s.pop(50.0)
    s.requeue(popped)
    assert popped.restarts == 1
    assert popped.enqueued_at == 0.0
    assert s.score(popped, 50.0) == 1 + 5.0    # kept its 50 s of waiting


def test_cancel_removes_queued_job():
    s = FairShareScheduler()
    s.submit(item("a"))
    s.submit(item("b"))
    assert s.cancel("a").job_id == "a"
    assert s.cancel("zzz") is None
    assert s.queued_ids() == ["b"]


def test_pick_victim_rules():
    s = FairShareScheduler(preempt_margin=2.0)
    running = [item("lowrun", priority=2),
               item("midrun", priority=5),
               item("pinned", priority=1, preemptible=False)]
    # urgent arrival beats the lowest-priority preemptible job
    s.submit(item("urgent", t=0.0, priority=9))
    victim = s.pick_victim(running, now=0.0)
    assert victim.job_id == "lowrun"
    # a same-priority arrival must NOT thrash a running job
    s2 = FairShareScheduler(preempt_margin=2.0)
    s2.submit(item("peer", t=0.0, priority=2))
    assert s2.pick_victim(running, now=0.0) is None
    # non-preemptible and non-checkpointable jobs are never victims
    s3 = FairShareScheduler(preempt_margin=2.0)
    s3.submit(item("urgent", t=0.0, priority=9))
    protected = [item("pinned", priority=0, preemptible=False),
                 item("landau", priority=0, app="landau")]
    assert s3.pick_victim(protected, now=0.0) is None


def test_empty_queue_never_names_a_victim():
    s = FairShareScheduler()
    assert s.pick_victim([item("r", priority=0)], now=100.0) is None
    assert s.peek(0.0) is None


def test_stats_shape():
    s = FairShareScheduler()
    s.submit(item("a", t=0.0, priority=7))
    s.charge("t1", 2.5, now=0.0)
    st = s.stats(now=10.0)
    assert st["queued"] == 1
    assert "a" in st["scores"]
    assert "t1" in st["usage"]
