"""Warm pool mechanics (repro.service.pool): real worker processes."""
import time

import pytest

from repro.service import jobs
from repro.service.pool import (PK_CKPT, PK_DIAG, PK_DONE, PK_DOWN,
                                PK_UP, PK_YIELD, WarmPool)

ADVEC = {"app": "advec",
         "params": {"nx": 6, "ny": 6, "ppc": 2, "n_steps": 10}}


@pytest.fixture
def pool():
    p = WarmPool(2)
    p.start()
    up = 0
    deadline = time.monotonic() + 60
    while up < 2 and time.monotonic() < deadline:
        up += sum(e.kind == PK_UP for e in p.wait_event(10))
    assert up == 2, "workers never came up"
    yield p
    p.shutdown()


def run_to_done(pool, job_id, spec, checkpoint=None, tag=1,
                timeout=60.0):
    wid = pool.idle_workers()[0].worker_id
    assert pool.assign(wid, job_id, spec, checkpoint, tag=tag)
    events = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events.extend(pool.wait_event(10))
        for e in events:
            if e.kind == PK_DONE and e.payload["job_id"] == job_id:
                return e.payload, events, wid
    raise AssertionError(f"{job_id} never finished; events: "
                         f"{[e.name for e in events]}")


def test_run_streams_diag_and_ckpt_then_done(pool):
    spec = jobs.validate_job(dict(ADVEC, diag_every=5,
                                  checkpoint_every=4))
    done, events, _ = run_to_done(pool, "j1", spec)
    kinds = [e.kind for e in events]
    assert PK_DIAG in kinds and PK_CKPT in kinds
    assert done["steps"] == 10
    assert done["resumed_from"] is None
    assert len(done["history"]["mean_disp"]) == 10


def test_warm_reuse_hits_cache_and_is_bit_equal(pool):
    spec = jobs.validate_job(ADVEC)
    first, _, wid = run_to_done(pool, "a", spec)
    assert first["cache"]["enabled"] and first["cache"]["misses"] >= 1
    # force the second run onto the same (now warm) worker
    others = [h for h in pool.idle_workers() if h.worker_id != wid]
    for h in others:
        h.state = "busy"      # park them so run_to_done picks wid
    try:
        second, _, wid2 = run_to_done(pool, "b", spec, tag=2)
    finally:
        for h in others:
            h.state = "idle"
    assert wid2 == wid
    assert second["cache"]["hits"] > first["cache"]["hits"]
    assert second["history"] == first["history"]


def test_resume_from_checkpoint_on_other_worker_is_bit_equal(pool):
    spec = jobs.validate_job(ADVEC)
    baseline, _, wid = run_to_done(pool, "base", spec)
    sim, hist = jobs.build_sim(spec)
    jobs.run_steps(spec, sim, hist, 0, 4)
    ckpt = jobs.job_checkpoint(spec, sim, hist, 4)
    other = [h for h in pool.idle_workers() if h.worker_id != wid][0]
    assert pool.assign(other.worker_id, "resumed", spec, ckpt, tag=9)
    deadline = time.monotonic() + 60
    done = None
    while done is None and time.monotonic() < deadline:
        for e in pool.wait_event(10):
            if e.kind == PK_DONE:
                done = e.payload
    assert done["resumed_from"] == 4
    assert done["history"] == baseline["history"]


def test_preempt_yields_checkpoint_and_worker_goes_idle(pool):
    long = jobs.validate_job(
        {"app": "advec",
         "params": {"nx": 8, "ny": 8, "ppc": 4, "n_steps": 5000}})
    wid = pool.idle_workers()[0].worker_id
    pool.assign(wid, "long", long, None, tag=3)
    time.sleep(0.2)
    assert pool.preempt(wid)
    deadline = time.monotonic() + 60
    yielded = None
    while yielded is None and time.monotonic() < deadline:
        for e in pool.wait_event(10):
            if e.kind == PK_YIELD:
                yielded = e.payload
    assert yielded["reason"] == "preempted"
    assert 0 < yielded["step"] < 5000
    assert yielded["checkpoint"]["step"] == yielded["step"]
    assert pool.workers[wid].state == "idle"


def test_kill_worker_surfaces_down_and_respawn(pool):
    spec = jobs.validate_job(
        {"app": "advec",
         "params": {"nx": 8, "ny": 8, "ppc": 4, "n_steps": 5000}})
    wid = pool.idle_workers()[0].worker_id
    pool.assign(wid, "doomed", spec, None, tag=4)
    time.sleep(0.2)
    assert pool.kill_worker(wid)
    deadline = time.monotonic() + 60
    down = None
    while down is None and time.monotonic() < deadline:
        for e in pool.wait_event(10):
            if e.kind == PK_DOWN:
                down = e
    assert down.payload["job_id"] == "doomed"
    assert wid not in pool.workers
    fresh = pool.ensure_target()
    assert len(fresh) == 1 and pool.respawns >= 1


def test_die_at_step_fires_only_on_fresh_runs(pool):
    spec = jobs.validate_job(dict(ADVEC, die_at_step=5,
                                  checkpoint_every=2))
    wid = pool.idle_workers()[0].worker_id
    pool.assign(wid, "inj", spec, None, tag=5)
    deadline = time.monotonic() + 60
    ckpt, down = None, None
    while down is None and time.monotonic() < deadline:
        for e in pool.wait_event(10):
            if e.kind == PK_CKPT:
                ckpt = e.payload["checkpoint"]
            elif e.kind == PK_DOWN:
                down = e
    assert down is not None and ckpt is not None
    assert ckpt["step"] == 4      # last checkpoint before the death
    pool.ensure_target()
    while not pool.idle_workers():
        pool.wait_event(10)
    # resume with the injection cleared (what the server's rescue does)
    spec.die_at_step = None
    wid2 = pool.idle_workers()[0].worker_id
    pool.assign(wid2, "inj", spec, ckpt, tag=6)
    done = None
    deadline = time.monotonic() + 60
    while done is None and time.monotonic() < deadline:
        for e in pool.wait_event(10):
            if e.kind == PK_DONE:
                done = e.payload
    assert done["steps"] == 10 and done["resumed_from"] == 4


def test_resize_grows_and_shrinks(pool):
    assert len(pool.live_workers()) == 2
    fresh = pool.resize(3)
    assert len(fresh) == 1
    assert len(pool.live_workers()) == 3
    pool.resize(1)
    assert len(pool.live_workers()) == 1
    assert pool.target_size == 1
