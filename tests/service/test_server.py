"""End-to-end service tests: asyncio server + warm pool + client."""
import time

import pytest

from repro.service import Client, ServiceError, start_server_thread
from repro.service.scheduler import FairShareScheduler

TINY = {"app": "advec",
        "params": {"nx": 6, "ny": 6, "ppc": 2, "n_steps": 10}}
LONG = {"app": "advec",
        "params": {"nx": 8, "ny": 8, "ppc": 4, "n_steps": 5000},
        "checkpoint_every": 250}
FEMPIC = {"app": "fempic",
          "params": {"nx": 2, "ny": 2, "nz": 6, "plasma_den": 2000.0,
                     "n0": 2000.0, "n_steps": 12},
          "checkpoint_every": 3}


@pytest.fixture(scope="module")
def service():
    handle = start_server_thread(
        port=0, n_workers=2,
        scheduler=FairShareScheduler(aging_seconds=5.0,
                                     preempt_margin=1.0))
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    with Client(service.host, service.port) as c:
        yield c


def test_ping_and_schemas(client):
    assert client.ping()
    assert set(client.schemas()) == {"advec", "cabana", "fempic",
                                     "landau", "twod"}


def test_submit_rejects_bad_jobs_with_structured_errors(client):
    with pytest.raises(ServiceError) as err:
        client.submit({"app": "advec", "params": {"nx": "six"},
                       "priority": 99})
    fields = {e["field"] for e in err.value.response["errors"]}
    assert fields == {"params.nx", "priority"}
    with pytest.raises(ServiceError):
        client.submit({"app": "no-such-app", "params": {}})


def test_submit_run_result_lifecycle(client):
    job_id = client.submit(dict(TINY, tenant="alice"))
    res = client.result(job_id, timeout=60)
    assert res["state"] == "done"
    assert res["result"]["steps"] == 10
    assert len(res["result"]["history"]["mean_disp"]) == 10
    status = client.status(job_id)
    assert status["state"] == "done"
    assert status["tenant"] == "alice"


def test_mixed_tenant_batch_all_complete(client):
    ids = [client.submit(dict(TINY, tenant=f"t{i % 3}",
                              priority=3 + (i % 5)))
           for i in range(6)]
    ids.append(client.submit(
        {"app": "landau", "tenant": "t9",
         "params": {"nz": 24, "ppc": 30, "n_steps": 8}}))
    states = {j: client.result(j, timeout=120)["state"] for j in ids}
    assert set(states.values()) == {"done"}


def test_watch_streams_diags_then_terminal(client):
    job_id = client.submit(dict(TINY, diag_every=2))
    events = list(client.watch(job_id))
    kinds = [e.get("event") for e in events]
    assert kinds[-1] == "done"
    diags = [e for e in events if e.get("event") == "diag"]
    assert diags and all("metrics" in d for d in diags)
    assert diags[-1]["step"] == 10


def test_cancel_running_job(client):
    job_id = client.submit(LONG)
    deadline = time.monotonic() + 30
    while client.status(job_id)["state"] == "queued" \
            and time.monotonic() < deadline:
        time.sleep(0.05)
    client.cancel(job_id)
    res = client.result(job_id, timeout=60)
    assert res["state"] == "cancelled"
    assert client.status(job_id)["state"] == "cancelled"


def test_unknown_job_and_unknown_op(client):
    with pytest.raises(ServiceError):
        client.status("job-99999")
    with pytest.raises(ServiceError):
        client.request({"op": "frobnicate"})


def test_kill_recovery_resumes_bit_equal(client):
    baseline = client.result(client.submit(FEMPIC), timeout=300)
    assert baseline["state"] == "done"
    recovered = client.result(
        client.submit(dict(FEMPIC, die_at_step=8)), timeout=300)
    assert recovered["state"] == "done"
    assert recovered["rescues"] >= 1
    assert recovered["result"]["resumed_from"] is not None
    assert recovered["result"]["history"] \
        == baseline["result"]["history"]


def test_preemption_roundtrip_bit_equal(client):
    baseline = client.result(
        client.submit(dict(LONG, priority=2, tenant="bulk")),
        timeout=300)
    lo = client.submit(dict(LONG, priority=2, tenant="bulk"))
    deadline = time.monotonic() + 30
    while client.status(lo)["state"] == "queued" \
            and time.monotonic() < deadline:
        time.sleep(0.05)
    # two workers: occupy the second (at higher priority than lo, so
    # lo is the preemption victim), then send the urgent job from a
    # fresh tenant (no fair-share penalty to overcome)
    filler = client.submit(dict(LONG, priority=3, tenant="bulk"))
    hi = client.submit(dict(TINY, priority=9, tenant="urgent"))
    assert client.result(hi, timeout=120)["state"] == "done"
    res = client.result(lo, timeout=300)
    assert res["state"] == "done"
    assert res["result"]["history"] == baseline["result"]["history"]
    stats = client.stats()
    assert stats["counters"]["preemptions"] >= 1
    client.cancel(filler)
    client.result(filler, timeout=60)


def test_stats_and_resize(client):
    stats = client.stats()
    assert {"counters", "jobs", "scheduler", "pool"} <= set(stats)
    assert client.resize(3) == 3
    deadline = time.monotonic() + 30
    while len(client.stats()["pool"]["workers"]) < 3 \
            and time.monotonic() < deadline:
        time.sleep(0.05)
    assert len(client.stats()["pool"]["workers"]) == 3
    assert client.resize(2) == 2
    with pytest.raises(ServiceError):
        client.resize(0)


def test_server_shutdown_is_clean():
    handle = start_server_thread(port=0, n_workers=1)
    with Client(handle.host, handle.port) as c:
        c.submit(TINY)
        c.shutdown()
    deadline = time.monotonic() + 30
    while handle.server.pool.workers and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not handle.server.pool.workers
    handle.stop()
