"""Job-spec validation and checkpoint payloads (repro.service.jobs)."""
import pytest

from repro.service import jobs


def ok(payload):
    return jobs.validate_job(payload)


def errors_of(payload):
    with pytest.raises(jobs.JobValidationError) as err:
        jobs.validate_job(payload)
    return {e["field"]: e["error"] for e in err.value.errors}


ADVEC = {"app": "advec",
         "params": {"nx": 6, "ny": 6, "ppc": 2, "n_steps": 8}}
FEMPIC = {"app": "fempic",
          "params": {"nx": 2, "ny": 2, "nz": 6, "plasma_den": 2000.0,
                     "n0": 2000.0, "n_steps": 6}}


# -- schema validation -------------------------------------------------------


def test_minimal_valid_job_gets_defaults():
    spec = ok(ADVEC)
    assert spec.app == "advec"
    assert spec.priority == 5
    assert spec.tenant == "default"
    assert spec.preemptible is True
    assert spec.n_steps == 8


def test_non_object_and_unknown_field_and_unknown_app():
    with pytest.raises(jobs.JobValidationError):
        jobs.validate_job(["not", "a", "dict"])
    errs = errors_of({"app": "warpx", "bogus": 1})
    assert "app" in errs and "bogus" in errs


def test_all_errors_reported_at_once():
    errs = errors_of({"app": "nope", "priority": 99, "tenant": "",
                      "diag_every": -1, "preemptible": "yes"})
    assert set(errs) >= {"app", "priority", "tenant", "diag_every",
                         "preemptible"}


def test_param_type_errors_are_structured():
    errs = errors_of({"app": "advec",
                      "params": {"nx": "six", "ppc": 2.5,
                                 "unknown_knob": 1}})
    assert "expected integer" in errs["params.nx"]
    assert "expected integer" in errs["params.ppc"]
    assert "unknown parameter" in errs["params.unknown_knob"]


def test_int_accepted_where_float_expected_but_not_bool():
    spec = ok({"app": "advec", "params": {"dt": 1}})
    assert spec.params["dt"] == 1.0
    errs = errors_of({"app": "advec", "params": {"nx": True}})
    assert "params.nx" in errs


def test_blocked_params_rejected_with_reason():
    errs = errors_of({"app": "fempic",
                      "params": {"mesh_file": "/etc/passwd",
                                 "collision_frequency": 0.1}})
    assert "blocked" in errs["params.mesh_file"]
    errs = errors_of({"app": "landau", "params": {"species": []}})
    assert "params.species" in errs


def test_backend_whitelist():
    ok({"app": "advec", "params": {"backend": "omp"}})
    errs = errors_of({"app": "advec", "params": {"backend": "cuda"}})
    assert "not servable" in errs["params.backend"]


def test_resource_caps():
    errs = errors_of({"app": "advec",
                      "params": {"n_steps": jobs.MAX_STEPS + 1}})
    assert "params.n_steps" in errs
    errs = errors_of({"app": "advec",
                      "params": {"nx": 1000, "ny": 1000, "ppc": 100}})
    assert any("cap" in e for e in errs.values())


def test_checkpoint_interval_rejected_for_non_checkpointable_app():
    errs = errors_of({"app": "landau", "params": {"nz": 24},
                      "checkpoint_every": 5})
    assert "checkpoint_every" in errs
    spec = ok({"app": "landau",
               "params": {"nz": 24, "ppc": 30, "n_steps": 5,
                          "k_lambda_d": 0.4}})
    assert not spec.adapter.checkpointable


def test_describe_schemas_covers_all_apps():
    schemas = jobs.describe_schemas()
    assert set(schemas) == set(jobs.APPS())
    assert schemas["advec"]["params"]["nx"] == "integer"
    assert schemas["landau"]["checkpointable"] is False
    for app, blocked in (("fempic", "mesh_file"),
                         ("landau", "species")):
        assert blocked not in schemas[app]["params"]


# -- checkpoint round trips --------------------------------------------------


@pytest.mark.parametrize("payload,mid", [(ADVEC, 4), (FEMPIC, 3)])
def test_checkpoint_resume_is_bit_equal(payload, mid):
    spec = ok(payload)
    n = spec.n_steps
    sim, hist = jobs.build_sim(spec)
    jobs.run_steps(spec, sim, hist, 0, mid)
    ckpt = jobs.job_checkpoint(spec, sim, hist, mid)
    jobs.run_steps(spec, sim, hist, mid, n)
    full = {k: list(v) for k, v in hist.items()}

    sim2, hist2, start = jobs.job_restore(spec, ckpt)
    assert start == mid
    jobs.run_steps(spec, sim2, hist2, start, n)
    assert hist2 == full


def test_checkpoint_refuses_non_checkpointable_and_wrong_app():
    lspec = ok({"app": "landau", "params": {"nz": 24, "ppc": 30,
                                            "n_steps": 3}})
    sim, hist = jobs.build_sim(lspec)
    jobs.run_steps(lspec, sim, hist, 0, 1)
    with pytest.raises(ValueError, match="not checkpointable"):
        jobs.job_checkpoint(lspec, sim, hist, 1)

    aspec = ok(ADVEC)
    asim, ahist = jobs.build_sim(aspec)
    ackpt = jobs.job_checkpoint(aspec, asim, ahist, 0)
    fspec = ok(FEMPIC)
    with pytest.raises(ValueError, match="checkpoint is for app"):
        jobs.job_restore(fspec, ackpt)


def test_advec_history_is_synthesised():
    spec = ok(ADVEC)
    sim, hist = jobs.build_sim(spec)
    jobs.run_steps(spec, sim, hist, 0, 2)
    assert set(hist) == {"mean_disp", "hops", "n_particles"}
    assert len(hist["mean_disp"]) == 2
