"""Warm-pool determinism conformance (service tenet: cache reuse must
never change physics).

For each app, the oracle is a *cold* in-process run — fresh process
state, object cache disabled, plain ``build_sim`` + step loop.  The
same job submitted twice to a warm service (second run hits the
worker's mesh/stiffness cache and reuses translated kernels) must
reproduce the oracle history bit-for-bit, through the JSON wire format
(Python float round-trips are exact).
"""
import json

import pytest

from repro.runtime import objcache
from repro.service import Client, jobs, start_server_thread
from repro.service.server import _json_default

CASES = {
    "advec": {"app": "advec",
              "params": {"nx": 6, "ny": 6, "ppc": 2, "n_steps": 8,
                         "flow": "rotation"}},
    "fempic": {"app": "fempic",
               "params": {"nx": 2, "ny": 2, "nz": 6,
                          "plasma_den": 2000.0, "n0": 2000.0,
                          "n_steps": 5}},
    "twod": {"app": "twod",
             "params": {"nx": 4, "ny": 4, "ppc": 2, "n_steps": 5}},
    "cabana": {"app": "cabana",
               "params": {"nx": 8, "ny": 2, "nz": 2, "ppc": 4,
                          "n_steps": 5}},
    "landau": {"app": "landau",
               "params": {"nz": 24, "ppc": 30, "n_steps": 5}},
}


def cold_history(payload: dict) -> dict:
    """The oracle: run the job in-process with caching disabled, and
    push it through the same JSON encoding the service uses."""
    assert not objcache.is_enabled()
    spec = jobs.validate_job(dict(payload))
    sim, history = jobs.build_sim(spec)
    jobs.run_steps(spec, sim, history, 0, spec.n_steps)
    close = getattr(getattr(sim.ctx, "backend", None), "close", None)
    if close:
        close()
    return json.loads(json.dumps(history, default=_json_default))


@pytest.fixture(scope="module")
def service():
    handle = start_server_thread(port=0, n_workers=1)
    yield handle
    handle.stop()


@pytest.mark.parametrize("app", sorted(CASES))
def test_warm_resubmission_matches_cold_oracle(service, app):
    payload = CASES[app]
    oracle = cold_history(payload)
    with Client(service.host, service.port) as client:
        first = client.result(client.submit(dict(payload)),
                              timeout=300)
        second = client.result(client.submit(dict(payload)),
                               timeout=300)
    assert first["state"] == "done" and second["state"] == "done"
    assert first["result"]["history"] == oracle
    assert second["result"]["history"] == oracle
    # the warm rerun must actually have hit the worker's object cache
    # (cache counters are cumulative per worker; landau has no cached
    # construction, so its counters just stay flat)
    if app != "landau":
        assert second["result"]["cache"]["hits"] \
            > first["result"]["cache"]["hits"]


def test_single_worker_reuses_cache_across_apps(service):
    with Client(service.host, service.port) as client:
        stats = client.stats()
    assert stats["pool"]["respawns"] == 0
    assert stats["counters"]["failed"] == 0
