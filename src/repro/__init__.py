"""repro — a Python reproduction of OP-PIC (Lantra et al., ICPP 2024).

An embedded DSL for unstructured-mesh particle-in-cell simulations with a
source-to-source translator, multiple execution backends, a simulated
distributed-memory runtime, and the paper's two mini-applications
(Mini-FEM-PIC and CabanaPIC).

Quickstart::

    from repro import opp

    cells = opp.decl_set(n_cells, "cells")
    parts = opp.decl_particle_set(cells, 0, "particles")
    ...
"""
from . import core as opp  # noqa: F401 - the public DSL namespace
from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = ["opp", "__version__"] + list(_core_all)
