"""Command-line interface.

The paper's artifact runs applications as ``<app_binary> <config_file>``;
the equivalent here::

    python -m repro fempic [config.cfg] [--steps N] [--backend vec] ...
    python -m repro fempic --ranks 4 --transport proc --backend mp ...
    python -m repro cabana [config.cfg] [--ppc N] ...
    python -m repro mesh --nx 4 --ny 4 --nz 12 --out duct.dat

``--ranks N`` runs the distributed driver; ``--transport`` picks the
rank transport (``sim`` = in-process simulated ranks, ``proc`` = real
OS rank processes), and ``--backend`` then selects each rank's on-node
backend — the MPI+X matrix.

Config files use the OP-PIC key=value format (see
:mod:`repro.util.config`); command-line flags override file values.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]


def _add_dist_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ranks", type=int, default=None, metavar="N",
                   help="run distributed over N ranks")
    p.add_argument("--transport", default="sim",
                   choices=["sim", "proc"],
                   help="rank transport for --ranks: in-process "
                   "simulated ranks or real OS rank processes")
    p.add_argument("--rebalance", default="never",
                   choices=["never", "auto", "always"],
                   help="online load rebalancing with live mesh/"
                   "particle migration (auto = only when the EWMA cost "
                   "model says a repartition amortises)")
    p.add_argument("--rebalance-every", type=int, default=1, metavar="N",
                   help="check the rebalance policy every N steps")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="write a distributed snapshot every N steps")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="snapshot directory (default: ./ckpt_<app>)")
    p.add_argument("--recover", action="store_true",
                   help="resume from the newest snapshot in "
                   "--checkpoint-dir; under --transport proc also "
                   "relaunch dead ranks from it")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OP-PIC reproduction applications")
    sub = parser.add_subparsers(dest="command", required=True)

    fp = sub.add_parser("fempic", help="run Mini-FEM-PIC")
    fp.add_argument("config", nargs="?", help="key=value config file")
    fp.add_argument("--steps", type=int, default=None)
    fp.add_argument("--backend", default=None,
                    choices=["seq", "vec", "omp", "mp", "cuda", "hip",
                             "xe"])
    fp.add_argument("--nworkers", type=int, default=None, metavar="N",
                    help="worker processes for --backend mp")
    fp.add_argument("--move", default=None, choices=["mh", "dh"])
    fp.add_argument("--fuse-move", action="store_true", default=None,
                    help="fuse the charge deposit into the particle move")
    fp.add_argument("--program", default=None, choices=["off", "fuse"],
                    help="whole-step program optimizer: record each step "
                    "as a loop graph and execute it with fusion, gather "
                    "hoisting and temp elimination")
    fp.add_argument("--program-explain", action="store_true",
                    help="print the optimizer's plan (fused groups, "
                    "hoisted gathers, fallbacks) after the run")
    fp.add_argument("--mesh-file", default=None)
    fp.add_argument("--vtk", default=None, metavar="DIR",
                    help="write mesh+particle VTK files here at the end")
    _add_dist_flags(fp)
    fp.add_argument("--quiet", action="store_true")

    cb = sub.add_parser("cabana", help="run CabanaPIC (two-stream)")
    cb.add_argument("config", nargs="?", help="key=value config file")
    cb.add_argument("--steps", type=int, default=None)
    cb.add_argument("--ppc", type=int, default=None)
    cb.add_argument("--backend", default=None,
                    choices=["seq", "vec", "omp", "mp", "cuda", "hip",
                             "xe"])
    cb.add_argument("--nworkers", type=int, default=None, metavar="N",
                    help="worker processes for --backend mp")
    cb.add_argument("--pusher", default=None,
                    choices=["boris", "velocity_verlet", "vay",
                             "higuera_cary"])
    cb.add_argument("--fuse-move", action="store_true", default=None,
                    help="run Move_Deposit through the runtime-fused "
                    "move+deposit path")
    cb.add_argument("--program", default=None, choices=["off", "fuse"],
                    help="whole-step program optimizer: record each step "
                    "as a loop graph and execute it with fusion, gather "
                    "hoisting and temp elimination")
    cb.add_argument("--program-explain", action="store_true",
                    help="print the optimizer's plan (fused groups, "
                    "hoisted gathers, fallbacks) after the run")
    cb.add_argument("--validate", action="store_true",
                    help="also run the structured reference and compare")
    _add_dist_flags(cb)
    cb.add_argument("--quiet", action="store_true")

    ad = sub.add_parser("advec", help="run the advection mini-app")
    ad.add_argument("config", nargs="?", help="key=value config file")
    ad.add_argument("--steps", type=int, default=None)
    ad.add_argument("--flow", default=None,
                    choices=["uniform", "rotation"])
    ad.add_argument("--quiet", action="store_true")

    td = sub.add_parser("twod", help="run the 2-D sheet model")
    td.add_argument("config", nargs="?", help="key=value config file")
    td.add_argument("--steps", type=int, default=None)
    _add_dist_flags(td)
    td.add_argument("--quiet", action="store_true")

    vf = sub.add_parser(
        "verify", help="descriptor sanitizer / backend conformance")
    vf.add_argument("--app", default=None,
                    choices=["fempic", "cabana", "advec", "twod", "all"],
                    help="run this app's smoke problem under the "
                    "sanitizer backend and report descriptor violations")
    vf.add_argument("--steps", type=int, default=None,
                    help="override the app's smoke step count")
    vf.add_argument("--conformance", action="store_true",
                    help="run the differential backend-conformance sweep")
    vf.add_argument("--dist-conformance", action="store_true",
                    help="run the distributed-op conformance sweep "
                    "(random mini-worlds on 2-3 ranks vs the 1-rank "
                    "oracle)")
    vf.add_argument("--program", action="store_true",
                    help="run the program-optimizer conformance sweep "
                    "(op sequences replayed through the recorder with "
                    "fusion on vs the eager loop-by-loop seq oracle)")
    vf.add_argument("--transport", default="sim",
                    choices=["sim", "proc"],
                    help="rank transport for --dist-conformance")
    vf.add_argument("--cases", type=int, default=60, metavar="N",
                    help="number of generated conformance cases")
    vf.add_argument("--seed", type=int, default=0,
                    help="base seed; case i uses seed+i")
    vf.add_argument("--backends", nargs="+", default=None,
                    metavar="NAME",
                    help="backends to check against the seq oracle "
                    "(default: vec omp mp)")
    vf.add_argument("--strategy", default=None, metavar="NAME",
                    help="force this reduction strategy on every "
                    "backend under test during --conformance "
                    "(e.g. sparse_csr); the seq oracle is never forced")
    vf.add_argument("--no-shrink", action="store_true",
                    help="report the first failing case without "
                    "minimising it")
    vf.add_argument("--quiet", action="store_true")

    va = sub.add_parser(
        "validate", help="physics gates: measured rates vs theory")
    va.add_argument("--app", default="all",
                    choices=["landau", "twostream", "multispecies",
                             "all"],
                    help="which oracle app to gate (default: all)")
    va.add_argument("--backend", default="vec",
                    choices=["seq", "vec", "omp", "mp", "cuda", "hip",
                             "xe"])
    va.add_argument("--strategy", default="default",
                    help="reduction-strategy option set (default, "
                    "sparse_csr, locality_always)")
    va.add_argument("--transport", default=None,
                    choices=["sim", "proc"],
                    help="route the twostream gate through the "
                    "distributed driver over this transport")
    va.add_argument("--profile", default="ci", choices=["ci", "full"],
                    help="resolution/tolerance profile")
    va.add_argument("--json", action="store_true",
                    help="print machine-readable reports")
    va.add_argument("--quiet", action="store_true")

    sv = sub.add_parser(
        "serve", help="run the multi-tenant PIC job service")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=9321,
                    help="TCP port (0 = pick an ephemeral port)")
    sv.add_argument("--pool-ranks", type=int, default=2, metavar="N",
                    help="warm worker processes in the shared pool")
    sv.add_argument("--backend", default=None,
                    choices=["seq", "vec", "omp", "mp"],
                    help="default on-node backend for jobs that do not "
                    "request one")
    sv.add_argument("--smoke", action="store_true",
                    help="self-test: start the service, submit a tiny "
                    "job mix through the client (including a mid-job "
                    "worker kill), verify recovery, shut down")
    sv.add_argument("--quiet", action="store_true")

    ms = sub.add_parser("mesh", help="generate a duct mesh file")
    ms.add_argument("--nx", type=int, default=4)
    ms.add_argument("--ny", type=int, default=4)
    ms.add_argument("--nz", type=int, default=12)
    ms.add_argument("--lx", type=float, default=1.0)
    ms.add_argument("--ly", type=float, default=1.0)
    ms.add_argument("--lz", type=float, default=4.0)
    ms.add_argument("--out", required=True,
                    help="output path (.dat or .npz)")
    return parser


def _overlay(cfg, args, fields) -> object:
    from repro.util import apply_to_dataclass, load_config
    if getattr(args, "config", None):
        cfg = apply_to_dataclass(load_config(args.config), cfg)
    overrides = {dst: getattr(args, src)
                 for src, dst in fields.items()
                 if getattr(args, src, None) is not None}
    if getattr(args, "nworkers", None) is not None:
        backend = overrides.get("backend", cfg.backend)
        if backend != "mp":
            raise SystemExit(
                f"error: --nworkers applies to --backend mp, not {backend!r}")
        overrides["backend_options"] = dict(cfg.backend_options,
                                            nworkers=args.nworkers)
    return cfg.scaled(**overrides) if overrides else cfg


def _run_dist_app(app: str, cfg, args) -> int:
    """The single distributed entry point every app subcommand routes
    through when ``--ranks`` is given."""
    from repro.dist.driver import run_distributed
    from repro.dist.transport import RankFailure
    ckpt_dir = args.checkpoint_dir
    if ckpt_dir is None and (args.checkpoint_every or args.recover):
        ckpt_dir = f"ckpt_{app}"
    try:
        res = run_distributed(app, cfg, nranks=args.ranks,
                              transport=args.transport,
                              rebalance=args.rebalance,
                              rebalance_every=args.rebalance_every,
                              checkpoint_every=args.checkpoint_every,
                              checkpoint_dir=ckpt_dir,
                              recover=args.recover)
    except RankFailure as failure:
        print(f"distributed run FAILED: {failure}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"{app}: {res.nranks} ranks over {res.transport!r} "
              f"transport, backend={cfg.backend}")
        for key, series in res.history.items():
            if len(series):
                print(f"final {key}: {series[-1]}")
        print(f"comm: {int(res.stats.msg_count.sum())} msgs / "
              f"{res.stats.total_bytes} B, "
              f"{res.stats.collectives} collectives, "
              f"{res.stats.rma_ops} RMA ops")
        busy = res.busy_seconds_per_rank()
        print("busy seconds per rank: "
              + ", ".join(f"r{r}={b:.3f}" for r, b in enumerate(busy)))
        print(f"load imbalance (max/mean busy): "
              f"{res.rank_load_imbalance():.2f}")
        print(f"critical path {res.critical_path_seconds:.3f} s, "
              f"wall {res.wall_seconds:.3f} s")
        if res.elastic is not None:
            el = res.elastic
            print(f"elastic: mode={el['mode']} "
                  f"rebalances={el['rebalances']} skips={el['skips']} "
                  f"snapshots={el['snapshots']} "
                  f"cells_moved={el['cells_moved']} "
                  f"particles_moved={el['particles_moved']}"
                  + (f" restarts={res.restarts}" if res.restarts
                     else ""))
        print(res.perf.report())
    return 0


def _run_fempic(args) -> int:
    from repro.apps.fempic import FemPicConfig, FemPicSimulation
    cfg = _overlay(FemPicConfig(), args,
                   {"steps": "n_steps", "backend": "backend",
                    "move": "move_strategy", "mesh_file": "mesh_file",
                    "fuse_move": "fuse_move", "program": "program"})
    if args.ranks:
        if args.vtk:
            raise SystemExit("error: --vtk is not supported with --ranks")
        if args.program_explain:
            raise SystemExit(
                "error: --program-explain is not supported with --ranks")
        return _run_dist_app("fempic", cfg, args)
    sim = FemPicSimulation(cfg)
    sim.run()
    if args.program_explain and sim.program is not None:
        print(sim.program.explain())
    if not args.quiet:
        h = sim.history
        print(f"Mini-FEM-PIC: {sim.mesh.n_cells} cells, "
              f"{cfg.n_steps} steps, move={cfg.move_strategy}, "
              f"backend={cfg.backend}")
        print(f"final: {h['n_particles'][-1]} ions, field energy "
              f"{h['field_energy'][-1]:.6g}")
        print(sim.ctx.perf.report())
    if args.vtk:
        from repro.util.vtk import write_vtk_mesh, write_vtk_particles
        out = Path(args.vtk)
        out.mkdir(parents=True, exist_ok=True)
        write_vtk_mesh(out / "fempic_mesh.vtk", sim.mesh.points,
                       sim.mesh.cell2node,
                       cell_data={"electric_field": sim.ef.data},
                       point_data={"potential": sim.phi.data,
                                   "charge_density": sim.ncd.data})
        write_vtk_particles(out / "fempic_ions.vtk",
                            sim.pos.data[: sim.parts.size],
                            fields={"velocity":
                                    sim.vel.data[: sim.parts.size]})
        if not args.quiet:
            print(f"VTK written to {out}/")
    return 0


def _run_cabana(args) -> int:
    from repro.apps.cabana import (CabanaConfig, CabanaSimulation,
                                   StructuredCabanaReference)
    cfg = _overlay(CabanaConfig(), args,
                   {"steps": "n_steps", "ppc": "ppc",
                    "backend": "backend", "pusher": "pusher",
                    "fuse_move": "fuse_move", "program": "program"})
    if args.ranks:
        if args.validate:
            raise SystemExit(
                "error: --validate is not supported with --ranks")
        if args.program_explain:
            raise SystemExit(
                "error: --program-explain is not supported with --ranks")
        return _run_dist_app("cabana", cfg, args)
    sim = CabanaSimulation(cfg)
    sim.run()
    if args.program_explain and sim.program is not None:
        print(sim.program.explain())
    if not args.quiet:
        print(f"CabanaPIC: {cfg.n_cells} cells, {cfg.n_particles} "
              f"particles, {cfg.n_steps} steps, pusher={cfg.pusher}, "
              f"backend={cfg.backend}")
        print(f"final E-field energy {sim.history['e_energy'][-1]:.6e}")
        print(sim.ctx.perf.report())
    if args.validate:
        import numpy as np
        ref = StructuredCabanaReference(cfg)
        ref.run()
        err = (np.abs(np.array(sim.history["e_energy"])
                      - np.array(ref.history["e_energy"])).max()
               / max(ref.history["e_energy"]))
        print(f"validation vs structured original: max relative E-energy "
              f"error {err:.2e}")
        if err > 1e-12:
            print("VALIDATION FAILED", file=sys.stderr)
            return 1
    return 0


def _run_advec(args) -> int:
    import numpy as np

    from repro.apps.advec import AdvecConfig, AdvecSimulation
    cfg = _overlay(AdvecConfig(), args, {"steps": "n_steps",
                                         "flow": "flow"})
    sim = AdvecSimulation(cfg)
    start = sim.positions_xy().copy()
    sim.run()
    if not args.quiet:
        drift = np.abs(sim.positions_xy() - start).mean()
        move = sim.ctx.perf.get("Advect")
        print(f"advection: {cfg.n_particles} tracers, {cfg.n_steps} "
              f"steps, flow={cfg.flow}")
        print(f"mean displacement {drift:.4f}; {move.hops} hops "
              f"({move.hops / max(move.n_total, 1):.2f} per "
              "particle-step)")
    return 0


def _run_twod(args) -> int:
    from repro.apps.twod import TwoDConfig, TwoDSheetModel
    cfg = _overlay(TwoDConfig(), args, {"steps": "n_steps"})
    if args.ranks:
        return _run_dist_app("twod", cfg, args)
    sim = TwoDSheetModel(cfg)
    sim.run()
    if not args.quiet:
        e = sim.history["field_energy"]
        print(f"2-D sheet model: {cfg.n_particles} electrons on "
              f"{cfg.n_cells} triangles, ωp = {cfg.plasma_frequency:.3f}")
        print(f"field energy first/min/max: {e[0]:.3e} / {min(e):.3e} "
              f"/ {max(e):.3e}")
    return 0


def _verify_app(app: str, steps: Optional[int], quiet: bool) -> int:
    """Run one app's smoke problem under the sanitizer backend."""
    if app == "fempic":
        from repro.apps.fempic import FemPicConfig, FemPicSimulation
        cfg = FemPicConfig.smoke().scaled(backend="sanitizer")
        if steps:
            cfg = cfg.scaled(n_steps=steps)
        sim = FemPicSimulation(cfg)
    elif app == "cabana":
        from repro.apps.cabana import CabanaConfig, CabanaSimulation
        cfg = CabanaConfig.smoke().scaled(backend="sanitizer")
        if steps:
            cfg = cfg.scaled(n_steps=steps)
        sim = CabanaSimulation(cfg)
    elif app == "advec":
        from repro.apps.advec import AdvecConfig, AdvecSimulation
        cfg = AdvecConfig(nx=6, ny=6, ppc=2, n_steps=steps or 5,
                          backend="sanitizer")
        sim = AdvecSimulation(cfg)
    else:
        from repro.apps.twod import TwoDConfig, TwoDSheetModel
        cfg = TwoDConfig(nx=4, ny=4, ppc=2, n_steps=steps or 5,
                         backend="sanitizer")
        sim = TwoDSheetModel(cfg)
    sim.run()
    backend = sim.ctx.backend
    if not quiet or backend.violations:
        print(f"{app}: {backend.report()}")
    return 1 if backend.violations else 0


def _run_verify(args) -> int:
    if (not args.app and not args.conformance
            and not args.dist_conformance and not args.program):
        print("error: verify needs --app, --conformance, "
              "--dist-conformance and/or --program", file=sys.stderr)
        return 2
    status = 0
    if args.app:
        apps = (["fempic", "cabana", "advec", "twod"]
                if args.app == "all" else [args.app])
        for app in apps:
            status |= _verify_app(app, args.steps, args.quiet)
    if args.conformance:
        from repro.verify import ConformanceFailure, run_conformance
        progress = None if args.quiet else print
        try:
            report = run_conformance(
                n_cases=args.cases, seed=args.seed,
                backends=tuple(args.backends) if args.backends else
                ("vec", "omp", "mp"),
                progress=progress, shrink=not args.no_shrink,
                strategy=args.strategy)
        except ConformanceFailure as failure:
            print(f"conformance FAILED:\n{failure}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"conformance: {report['cases']} cases x "
                  f"{len(report['backends'])} backend(s) "
                  f"({report['executions']} executions) all match seq")
    if args.program:
        from repro.verify import ConformanceFailure, run_program_conformance
        progress = None if args.quiet else print
        try:
            report = run_program_conformance(
                n_cases=args.cases, seed=args.seed,
                progress=progress, shrink=not args.no_shrink)
        except ConformanceFailure as failure:
            print(f"program conformance FAILED:\n{failure}",
                  file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"program conformance: {report['cases']} cases "
                  f"({report['executions']} executions, "
                  f"{report['fused_groups']} fused groups, "
                  f"{report['fallbacks']} fallbacks) all bit-equal to "
                  "the eager seq oracle")
    if args.dist_conformance:
        from repro.verify import (DistConformanceFailure,
                                  run_dist_conformance)
        progress = None if args.quiet else print
        try:
            report = run_dist_conformance(
                n_cases=args.cases, seed=args.seed,
                transport=args.transport, progress=progress,
                shrink=not args.no_shrink)
        except DistConformanceFailure as failure:
            print(f"distributed conformance FAILED:\n{failure}",
                  file=sys.stderr)
            return 1
        if not args.quiet:
            counts = "/".join(f"{r}-rank"
                              for r in report["rank_counts"])
            print(f"distributed conformance: {report['cases']} cases "
                  f"({counts}) over {report['transport']!r} transport "
                  "all match the 1-rank oracle")
    return status


def _run_validate(args) -> int:
    import json

    from repro.validate import GATE_APPS, run_physics_gates
    apps = GATE_APPS if args.app == "all" else (args.app,)
    status = 0
    for app in apps:
        if args.transport is not None and app != "twostream":
            continue      # transports only apply to the dist-capable app
        report = run_physics_gates(
            app, backend=args.backend, transport=args.transport,
            strategy=args.strategy, profile=args.profile)
        if args.json:
            print(json.dumps(report.to_dict()))
        elif not args.quiet or not report.ok:
            print(report.summary())
        status |= 0 if report.ok else 1
    return status


def _serve_smoke(args) -> int:
    """End-to-end self-test of the job service on an ephemeral port:
    a tiny multi-tenant job mix, then an injected mid-job worker kill
    whose recovered result must be bit-equal to the uninterrupted run."""
    from repro.service import Client, start_server_thread
    say = (lambda *a: None) if args.quiet else print
    handle = start_server_thread(host=args.host, port=0,
                                 n_workers=max(2, args.pool_ranks),
                                 default_backend=args.backend)
    status = 0
    try:
        with Client(handle.host, handle.port) as client:
            client.ping()
            say(f"service up on {handle.host}:{handle.port} with "
                f"{max(2, args.pool_ranks)} workers; apps: "
                f"{sorted(client.schemas())}")
            tiny = [client.submit(
                {"app": "advec", "tenant": f"tenant{i % 2}",
                 "params": {"nx": 6, "ny": 6, "ppc": 2, "n_steps": 10}})
                for i in range(4)]
            tiny.append(client.submit(
                {"app": "landau", "tenant": "tenant2",
                 "params": {"nz": 24, "ppc": 30, "n_steps": 10}}))
            for job_id in tiny:
                res = client.result(job_id, timeout=120)
                say(f"  {job_id} [{res['app']}]: done "
                    f"({res['result']['steps']} steps)")
            fem = {"app": "fempic", "tenant": "tenant3",
                   "params": {"nx": 2, "ny": 2, "nz": 6,
                              "plasma_den": 2000.0, "n0": 2000.0,
                              "n_steps": 12},
                   "checkpoint_every": 3}
            baseline = client.result(client.submit(fem), timeout=300)
            injected = dict(fem, die_at_step=8)
            recovered = client.result(client.submit(injected),
                                      timeout=300)
            same = (recovered["result"]["history"]
                    == baseline["result"]["history"])
            say(f"  kill-recovery: rescues={recovered['rescues']} "
                f"placements={recovered['placements']} "
                f"history bit-equal={same}")
            if recovered["rescues"] < 1 or not same:
                print("serve --smoke FAILED: recovered fempic run "
                      "does not match the uninterrupted baseline",
                      file=sys.stderr)
                status = 1
            stats = client.stats()
            say(f"  stats: {stats['counters']}")
            client.shutdown()
    finally:
        handle.stop()
    if status == 0:
        say("serve --smoke OK")
    return status


def _run_serve(args) -> int:
    if args.smoke:
        return _serve_smoke(args)
    import asyncio

    from repro.service.server import ServiceServer

    async def _main() -> None:
        server = ServiceServer(host=args.host, port=args.port,
                               n_workers=args.pool_ranks,
                               default_backend=args.backend)
        await server.start()
        if not args.quiet:
            print(f"PIC service listening on {server.host}:"
                  f"{server.port} ({args.pool_ranks} warm workers"
                  + (f", default backend {args.backend}"
                     if args.backend else "") + ")")
            print("submit NDJSON jobs with repro.service.Client; "
                  "stop with the 'shutdown' op or Ctrl-C")
        try:
            await server.stopped.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _run_mesh(args) -> int:
    from repro.mesh import duct_mesh, save_mesh
    mesh = duct_mesh(args.nx, args.ny, args.nz, args.lx, args.ly, args.lz)
    path = save_mesh(mesh, args.out)
    print(f"wrote {mesh.n_cells} cells / {mesh.n_nodes} nodes to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fempic":
        return _run_fempic(args)
    if args.command == "cabana":
        return _run_cabana(args)
    if args.command == "advec":
        return _run_advec(args)
    if args.command == "twod":
        return _run_twod(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "validate":
        return _run_validate(args)
    if args.command == "serve":
        return _run_serve(args)
    return _run_mesh(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
