"""Fusion legality analysis over access descriptors.

Two adjacent loops over the same set may run element-fused (one pass,
common index) exactly when, for every datum both touch, per-element
execution order reproduces per-loop order.  The access modes make this
decidable without inspecting kernel bodies:

* **direct/direct** on the same dat is always legal: both loops address
  element ``i`` only, so interleaving per element preserves every
  RAW/WAR/WAW chain (the executor aliases the buffers).
* **any indirect write** (``WRITE``/``RW``/``INC`` through a map or p2c)
  against *any* other access of the same dat is illegal — element ``i``
  of the later loop may read/write mesh entries produced by element
  ``j != i`` of the earlier loop, which the fused single pass has not
  produced yet.  Sole exception: indirect ``INC`` on both sides —
  commutative accumulation into the same target is order-free.
* an **indirect read after a direct write/INC** is illegal for the same
  cross-element reason (stencil reads of freshly written neighbours).
* a **direct INC before a read** is illegal under fusion only because
  the reading loop must observe the fully accumulated value; the fused
  pass defers the accumulation writeback to the end of the group.
  (Reads *before* the INC are fine — buffers alias pre-increment data.)
* a **Global reduction before any read** of that Global is illegal: the
  reduced value only materializes at group writeback.

These rules are deliberately conservative: anything outside them falls
back to loop-by-loop execution with a recorded reason, never to wrong
answers.
"""
from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.args import Arg
from ..core.types import AccessMode

__all__ = ["AccessSummary", "summarize_args", "merge_summary",
           "fusion_conflict", "node_pair_conflict"]

_WRITES = (AccessMode.WRITE, AccessMode.RW, AccessMode.INC,
           AccessMode.MIN, AccessMode.MAX)


class AccessSummary:
    """Per-dat access flags accumulated over one or more loops."""

    __slots__ = ("name", "direct_read", "direct_write", "direct_inc",
                 "indirect_read", "indirect_write", "indirect_inc",
                 "indirect_other_write", "global_read", "global_reduce")

    def __init__(self, name: str):
        self.name = name
        self.direct_read = False        # READ/RW direct
        self.direct_write = False       # WRITE/RW direct
        self.direct_inc = False         # INC direct
        self.indirect_read = False      # READ/RW via map/p2c
        self.indirect_write = False     # WRITE/RW/INC/MIN/MAX via map/p2c
        self.indirect_inc = False       # INC via map/p2c
        self.indirect_other_write = False  # indirect write that is not INC
        self.global_read = False
        self.global_reduce = False

    @property
    def any_write(self) -> bool:
        return (self.direct_write or self.direct_inc or self.indirect_write
                or self.global_reduce)

    @property
    def any_read(self) -> bool:
        return self.global_read or self.direct_read or self.indirect_read

    def add(self, a: Arg) -> None:
        acc = a.access
        if a.is_global:
            if acc is AccessMode.READ:
                self.global_read = True
            else:
                self.global_reduce = True
            return
        if a.is_indirect:
            if acc in (AccessMode.READ, AccessMode.RW):
                self.indirect_read = True
            if acc in _WRITES:
                self.indirect_write = True
                if acc is AccessMode.INC:
                    self.indirect_inc = True
                else:
                    self.indirect_other_write = True
            return
        if acc in (AccessMode.READ, AccessMode.RW):
            self.direct_read = True
        if acc in (AccessMode.WRITE, AccessMode.RW):
            self.direct_write = True
        if acc in (AccessMode.INC, AccessMode.MIN, AccessMode.MAX):
            self.direct_inc = True


def summarize_args(args: Sequence[Arg]) -> Dict[int, AccessSummary]:
    """Access summary of one loop, keyed by ``id(dat)``."""
    out: Dict[int, AccessSummary] = {}
    for a in args:
        key = id(a.dat)
        s = out.get(key)
        if s is None:
            s = out[key] = AccessSummary(a.dat.name)
        s.add(a)
    return out


def merge_summary(into: Dict[int, AccessSummary],
                  new: Dict[int, AccessSummary]) -> None:
    """Fold ``new`` loop-level flags into a running group summary."""
    for key, s in new.items():
        g = into.get(key)
        if g is None:
            g = into[key] = AccessSummary(s.name)
        for flag in AccessSummary.__slots__[1:]:
            if getattr(s, flag):
                setattr(g, flag, True)


def _inc_only(s: AccessSummary) -> bool:
    """All of this side's accesses to the dat are indirect INC — the one
    indirect-write pattern that fuses (commutative, order-free scatters)."""
    return (s.indirect_inc and not s.indirect_other_write
            and not s.any_read and not s.direct_write and not s.direct_inc
            and not s.global_reduce)


def fusion_conflict(group: Dict[int, AccessSummary],
                    cand: Dict[int, AccessSummary]) -> Optional[str]:
    """Why the candidate loop cannot join the fused group (None = legal).

    ``group`` is the merged summary of everything already in the group;
    ``cand`` summarizes the loop being considered.  The check is
    directional: the group executes (per element) *before* the candidate.
    """
    for key, c in cand.items():
        g = group.get(key)
        if g is None:
            continue
        # -- indirect writes poison cross-element visibility.  An indirect
        #    write on either side against *any* other access of the same
        #    dat splits the group — including indirect WAR (a stencil read
        #    in the group, a scatter in the candidate), which a later pass
        #    could relax but which we keep conservatively illegal.  Sole
        #    exception: both sides exclusively indirect INC.
        if c.indirect_write and (g.any_write or g.any_read):
            if not (_inc_only(c) and _inc_only(g)):
                return (f"indirect write on {g.name!r} after earlier "
                        "access in group")
        if g.indirect_write and (c.any_write or c.any_read):
            if not (_inc_only(g) and _inc_only(c)):
                return (f"access to {g.name!r} after indirect write in "
                        "group")
        # -- cross-element RAW: stencil read of freshly written data --------
        if c.indirect_read and (g.direct_write or g.direct_inc):
            return (f"indirect read of {g.name!r} after direct write in "
                    "group (cross-element RAW)")
        # -- accumulations must complete before they are read ---------------
        if g.direct_inc and (c.direct_read or c.indirect_read):
            return (f"read of {g.name!r} after direct increment in group "
                    "(accumulation not yet written back)")
        if g.global_reduce and c.global_read:
            return f"read of global {g.name!r} after reduction in group"
        if g.global_reduce and c.global_reduce:
            # two reductions into one global would fuse fine for pure INC,
            # but MIN/MAX mixes depend on writeback order; split instead.
            return f"two reductions into global {g.name!r} in one group"
    return None


def node_pair_conflict(a_touched: frozenset, a_written: frozenset,
                       b_touched: frozenset, b_written: frozenset) -> bool:
    """Coarse commutativity test between two nodes (used by the
    move+deposit rewrite to hoist a move past intermediate loops):
    they commute when neither writes anything the other touches."""
    return bool((a_written & b_touched) or (b_written & a_touched))
