"""Whole-step program optimizer (lazy loop-graph IR).

Public surface:

* :func:`repro.program.record` — trace a span of DSL calls lazily;
* :class:`repro.program.Program` — the accumulated optimization record
  (``explain()``, ``fallback_reasons``, per-flush plans);
* the IR/analysis internals live in :mod:`~repro.program.graph`,
  :mod:`~repro.program.deps`, :mod:`~repro.program.optimizer` and
  :mod:`~repro.program.exec`.
"""
from .deps import fusion_conflict, summarize_args
from .graph import ExchangeNode, LoopNode, MoveNode
from .optimizer import Group, Plan, build_plan
from .record import Program, Tracer, record

__all__ = ["record", "Program", "Tracer", "build_plan", "Plan", "Group",
           "LoopNode", "MoveNode", "ExchangeNode", "fusion_conflict",
           "summarize_args"]
