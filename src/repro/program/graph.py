"""Loop-graph IR nodes for the whole-step program optimizer.

Each deferred runtime call becomes one node: a ``par_loop`` a
:class:`LoopNode`, a ``particle_move`` a :class:`MoveNode`, a halo push a
:class:`ExchangeNode`.  Nodes carry

* the backend-independent loop description itself (kernel + access
  descriptors — the same :class:`~repro.core.args.Arg` metadata every
  backend consumes),
* the declaring :class:`~repro.core.context.Context` (distributed steps
  interleave loops from several per-rank contexts),
* ``touched_ids`` — the ``id()`` set of every host-observable object the
  node reads or writes; the tracer flushes when host code touches any of
  them, and
* a structural ``signature`` — object identities plus access metadata,
  *excluding* sizes — under which optimization decisions (grouping,
  fused code, rewrites) are stable and therefore cacheable.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult

__all__ = ["LoopNode", "MoveNode", "ExchangeNode", "arg_signature"]


def arg_signature(a) -> Tuple:
    return (id(a.dat), a.kind, a.access.name,
            id(a.map) if a.map is not None else 0,
            a.map_idx if a.map_idx is not None else -1,
            id(a.p2c) if a.p2c is not None else 0,
            bool(getattr(a.dat, "transient", False)))


def _arg_touched(args, out: set) -> None:
    for a in args:
        out.add(id(a.dat))
        if a.map is not None:
            out.add(id(a.map))
        if a.p2c is not None:
            out.add(id(a.p2c))


class LoopNode:
    """One deferred ``par_loop`` declaration."""

    kind = "loop"

    def __init__(self, loop: ParLoop, ctx):
        self.loop = loop
        self.ctx = ctx
        touched = {id(loop.iterset)}
        _arg_touched(loop.args, touched)
        self.touched_ids = frozenset(touched)

    @property
    def name(self) -> str:
        return self.loop.name

    def signature(self) -> Tuple:
        loop = self.loop
        return ("loop", id(loop.kernel), loop.name, id(loop.iterset),
                loop.iterate_type.name, id(self.ctx),
                tuple(arg_signature(a) for a in loop.args))

    def __repr__(self) -> str:
        return f"<LoopNode {self.loop.name!r}>"


class MoveNode:
    """One deferred ``particle_move`` declaration.

    A move's observable footprint is the whole particle set: hole-filling
    after removals permutes *every* particle dat, so the set itself is in
    ``touched_ids`` (and, through the hooked ``ParticleSet.size``, so is
    every dat view on it).
    """

    kind = "move"

    def __init__(self, loop: MoveLoop, ctx):
        self.loop = loop
        self.ctx = ctx
        self.result: Optional[MoveResult] = None
        touched = {id(loop.pset), id(loop.p2c_map), id(loop.c2c_map)}
        for dat in loop.pset.dats:
            touched.add(id(dat))
        _arg_touched(loop.args, touched)
        if loop.deposit is not None:
            _arg_touched(loop.deposit.args, touched)
        self.touched_ids = frozenset(touched)

    @property
    def name(self) -> str:
        return self.loop.name

    def signature(self) -> Tuple:
        loop = self.loop
        dep = loop.deposit
        dep_sig = None
        if dep is not None:
            dep_sig = (id(dep.kernel), dep.when,
                       tuple(arg_signature(a) for a in dep.args))
        return ("move", id(loop.kernel), loop.name, id(loop.pset),
                id(loop.c2c_map), id(loop.p2c_map), loop.max_hops,
                id(self.ctx), tuple(arg_signature(a) for a in loop.args),
                dep_sig)

    def __repr__(self) -> str:
        return f"<MoveNode {self.loop.name!r}>"


class ExchangeNode:
    """One deferred halo push (``push_cell_halos``/``push_node_halos``).

    ``dats`` is the per-rank instance list of one logical field — exactly
    the argument of the eager functions.  Adjacent exchange nodes sharing
    (op, plan, comm) coalesce at flush into one multi-field frame per
    neighbour pair.
    """

    kind = "exchange"

    def __init__(self, op: str, dats: List, plan, comm):
        self.op = op                    # "cell_push" | "node_push"
        self.dats = list(dats)
        self.plan = plan
        self.comm = comm
        self.ctx = None
        self.touched_ids = frozenset(id(d) for d in self.dats)

    @property
    def name(self) -> str:
        # under an SPMD transport only the resident rank's entry is set
        field = next((d.name for d in self.dats if d is not None), "?")
        return f"{self.op}:{field}"

    def signature(self) -> Tuple:
        return ("exchange", self.op, id(self.plan), id(self.comm),
                tuple(id(d) for d in self.dats))

    def __repr__(self) -> str:
        return f"<ExchangeNode {self.name!r}>"
