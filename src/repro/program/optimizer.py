"""Whole-step optimization passes over the recorded loop graph.

:func:`build_plan` turns the pending node list into an execution
:class:`Plan`:

1. **move+deposit rewrite** — a separate deposit loop following a
   ``particle_move`` over the same set becomes the move's fused deposit
   (the ``particle_move(deposit_kernel=...)`` hand fusion, derived
   automatically), when every intermediate node commutes with the move
   and the deposit passes the shared
   :func:`~repro.core.move.deposit_fusion_conflict` legality check;
2. **producer→consumer loop fusion** — maximal runs of adjacent loops
   over the same set with no dependence conflict
   (:func:`~repro.program.deps.fusion_conflict`) become one generated
   body via :func:`~repro.translator.codegen.generate_fused`;
3. **temp elimination** — single-group ``transient`` dats written before
   use become fusion-local buffers (their writeback is skipped);
4. **exchange coalescing** — adjacent halo pushes over the same plan
   merge into one frame per neighbour pair.

Whenever a pass is inapplicable the plan degrades to loop-by-loop
execution for that group and records why (``skips`` /
``Group.reason``) — the same fall-back discipline as the ``mp``
backend's small-loop dispatch.
"""
from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.move import MoveDeposit, MoveLoop, deposit_fusion_conflict
from ..core.types import AccessMode, IterateType
from ..translator.codegen import KernelLanguageError, generate_fused
from .deps import (fusion_conflict, merge_summary, node_pair_conflict,
                   summarize_args)
from .graph import ExchangeNode, LoopNode, MoveNode

__all__ = ["Group", "Plan", "build_plan"]


class Group:
    """One schedulable unit of the plan: a run of fusable loops, a move,
    or a batch of coalescible halo exchanges."""

    __slots__ = ("kind", "nodes", "fused", "reason", "gen", "n_param_index",
                 "eliminated_ids", "eliminated_names", "hoisted",
                 "rewritten")

    def __init__(self, kind: str, nodes: List):
        self.kind = kind                # "loops" | "move" | "exchange"
        self.nodes = nodes
        self.fused = False
        self.reason: Optional[str] = None
        self.gen = None                 # GeneratedKernel for fused loops
        self.n_param_index = 0
        self.eliminated_ids: frozenset = frozenset()
        self.eliminated_names: List[str] = []
        self.hoisted = 0                # indirect gathers shared in-group
        self.rewritten = False          # move carries a rewritten deposit

    @property
    def name(self) -> str:
        return "+".join(n.name for n in self.nodes)

    def signature(self) -> Tuple:
        return tuple(n.signature() for n in self.nodes)


class Plan:
    """The optimized schedule for one flush of the pending node list."""

    __slots__ = ("groups", "rewrites", "skips", "signature", "mode")

    def __init__(self, groups, rewrites, skips, signature, mode):
        self.groups: List[Group] = groups
        self.rewrites: List[str] = rewrites
        self.skips: List[Tuple[str, str, str]] = skips
        self.signature = signature
        self.mode = mode


def _loop_written_ids(node: LoopNode) -> frozenset:
    return frozenset(id(a.dat) for a in node.loop.args
                     if a.access is not AccessMode.READ)


def _node_written_ids(node) -> frozenset:
    if isinstance(node, LoopNode):
        return _loop_written_ids(node)
    return node.touched_ids             # moves/exchanges: be conservative


def _move_written_ids(node: MoveNode) -> frozenset:
    """What a move writes: every particle dat (hole filling permutes the
    whole set), the p2c map, the set itself, plus any non-READ args."""
    loop = node.loop
    written = {id(loop.pset), id(loop.p2c_map)}
    for dat in loop.pset.dats:
        written.add(id(dat))
    for a in loop.args:
        if a.access is not AccessMode.READ:
            written.add(id(a.dat))
    return frozenset(written)


def _deposit_shared_dat_conflict(mv: MoveLoop, dloop) -> Optional[str]:
    """Why the deposit loop cannot fire inside the move's frontier walk.

    Direct (particle-row) sharing is safe: a lane's row is final when it
    settles and the ``when="done"`` deposit fires after that round's
    writeback.  Any dat the deposit addresses *indirectly* must be
    untouched by the move itself — a mid-walk deposit would expose
    partial accumulations to later move rounds (and vice versa)."""
    move_touch = {id(a.dat) for a in mv.args}
    for pos, a in enumerate(dloop.args):
        if a.is_global:
            continue
        if a.is_indirect and id(a.dat) in move_touch:
            return (f"move kernel touches {a.dat.name!r} which the deposit "
                    "addresses through the cell")
    return None


def _rewrite_move_deposits(nodes: List, rewrites: List[str],
                           skips: List[Tuple[str, str, str]]) -> List:
    """PR-4's hand fusion as a program rewrite: hoist a bare move past
    commuting nodes and absorb the next particle loop as its ``done``
    deposit.  Mutates matched :class:`MoveNode` objects in place so any
    outstanding :class:`~repro.core.move.LazyMoveResult` stays valid."""
    out = list(nodes)
    i = 0
    while i < len(out):
        node = out[i]
        if (not isinstance(node, MoveNode) or node.loop.deposit is not None
                or node.ctx is None
                or getattr(node.ctx, "backend_name", "") != "vec"):
            i += 1
            continue
        mv = node.loop
        m_written = _move_written_ids(node)
        j = i + 1
        while j < len(out):
            cand = out[j]
            if (isinstance(cand, LoopNode) and cand.ctx is node.ctx
                    and cand.loop.iterset is mv.pset
                    and cand.loop.iterate_type is IterateType.ALL):
                reason = deposit_fusion_conflict(cand.loop.args, mv.pset)
                if reason is None:
                    reason = _deposit_shared_dat_conflict(mv, cand.loop)
                if reason is None:
                    try:
                        cand.loop.kernel.ir()   # must be translatable
                    except Exception as exc:
                        reason = f"deposit kernel not translatable: {exc}"
                if reason is None:
                    node.loop = MoveLoop(
                        mv.kernel, mv.name, mv.pset, mv.c2c_map, mv.p2c_map,
                        mv.args, max_hops=mv.max_hops,
                        deposit=MoveDeposit(cand.loop.kernel,
                                            cand.loop.args, when="done"))
                    node.touched_ids = node.touched_ids | cand.touched_ids
                    node.rewritten = True
                    out.pop(j)
                    out.pop(i)
                    out.insert(j - 1, node)
                    rewrites.append(f"{mv.name}+{cand.loop.name} -> "
                                    "move deposit (when=done)")
                else:
                    skips.append((mv.name, cand.loop.name,
                                  f"deposit rewrite: {reason}"))
                break
            cand_written = _node_written_ids(cand)
            if node_pair_conflict(node.touched_ids, m_written,
                                  cand.touched_ids, cand_written):
                break                    # move cannot hoist past this node
            j += 1
        i += 1
    return out


def _loops_compatible(group: Group, cand: LoopNode) -> Optional[str]:
    head = group.nodes[0]
    if cand.ctx is not head.ctx:
        return "different execution contexts"
    if cand.loop.iterset is not head.loop.iterset:
        return (f"different iteration sets ({head.loop.iterset.name!r} vs "
                f"{cand.loop.iterset.name!r})")
    if cand.loop.iterate_type is not head.loop.iterate_type:
        return "different iterate types"
    if cand.loop.has_indirect_inc != head.loop.has_indirect_inc:
        return "different halo bounds (indirect-INC vs not)"
    return None


_IDENT = re.compile(r"\W+")


def _compile_group(group: Group, gen_cache: Dict) -> None:
    """Attempt fused codegen for a multi-loop group (cached by group
    signature); on failure the group stays loop-by-loop with a reason."""
    sig = group.signature()
    hit = gen_cache.get(sig)
    if hit is None:
        hit = _compile_group_uncached(group)
        gen_cache[sig] = hit
    status, payload, n_param_index = hit
    if status == "ok":
        group.fused = True
        group.gen = payload
        group.n_param_index = n_param_index
    else:
        group.fused = False
        group.reason = payload


def _compile_group_uncached(group: Group) -> Tuple:
    slots = [(node, a) for node in group.nodes for a in node.loop.args]
    n_param_index = -1
    for k, (_node, a) in enumerate(slots):
        if not (a.is_global and a.access is AccessMode.READ):
            n_param_index = k
            break
    if n_param_index < 0:
        return ("fail", "no batch-shaped argument to size the fused body",
                0)
    name = "Fused_" + "_".join(_IDENT.sub("_", n.name)
                               for n in group.nodes)
    kernels = [node.loop.kernel for node in group.nodes]
    try:
        gen = generate_fused(name, kernels, n_param_index)
    except (KernelLanguageError, SyntaxError, RuntimeError) as exc:
        return ("fail", f"fused codegen failed: {exc}", 0)
    return ("ok", gen, n_param_index)


def _mark_eliminated(group: Group, plan_dat_counts: Dict[int, int]) -> None:
    """Transient dats whose every plan access is direct, inside this one
    fused group, and written before read become fusion-local: their
    writeback is skipped."""
    if not group.fused:
        return
    state: Dict[int, dict] = {}
    for node in group.nodes:
        for a in node.loop.args:
            if a.is_global or not getattr(a.dat, "transient", False):
                continue
            key = id(a.dat)
            st = state.setdefault(key, {"count": 0, "all_direct": True,
                                        "first_write": None,
                                        "name": a.dat.name})
            st["count"] += 1
            if a.is_indirect:
                st["all_direct"] = False
            if st["first_write"] is None:
                st["first_write"] = (a.access is AccessMode.WRITE)
    dead = set()
    names = []
    for key, st in state.items():
        if (st["all_direct"] and st["first_write"]
                and st["count"] == plan_dat_counts.get(key, 0)):
            dead.add(key)
            names.append(st["name"])
    group.eliminated_ids = frozenset(dead)
    group.eliminated_names = sorted(names)


def _count_hoisted(group: Group) -> int:
    """Indirect READ gathers that repeat within the group — each repeat
    is one gather the fused executor serves from its cache."""
    seen = set()
    hoisted = 0
    for node in group.nodes:
        for a in node.loop.args:
            if a.is_global or not a.is_indirect \
                    or a.access is not AccessMode.READ:
                continue
            key = (id(a.dat), a.kind,
                   id(a.map) if a.map is not None else 0,
                   a.map_idx if a.map_idx is not None else -1,
                   id(a.p2c) if a.p2c is not None else 0)
            if key in seen:
                hoisted += 1
            else:
                seen.add(key)
    return hoisted


def build_plan(nodes: List, mode: str, gen_cache: Dict) -> Plan:
    """Schedule the pending nodes: rewrite, group, compile, annotate."""
    signature = tuple(n.signature() for n in nodes)
    rewrites: List[str] = []
    skips: List[Tuple[str, str, str]] = []
    if mode == "fuse":
        nodes = _rewrite_move_deposits(nodes, rewrites, skips)

    plan_dat_counts: Dict[int, int] = {}
    for node in nodes:
        if isinstance(node, LoopNode):
            for a in node.loop.args:
                if not a.is_global:
                    key = id(a.dat)
                    plan_dat_counts[key] = plan_dat_counts.get(key, 0) + 1
        else:
            for key in node.touched_ids:
                plan_dat_counts[key] = plan_dat_counts.get(key, 0) - 10**6

    groups: List[Group] = []
    cur: Optional[Group] = None
    cur_summary: Optional[Dict] = None

    def close():
        nonlocal cur, cur_summary
        cur = None
        cur_summary = None

    for node in nodes:
        if isinstance(node, MoveNode):
            g = Group("move", [node])
            g.rewritten = bool(getattr(node, "rewritten", False))
            g.fused = node.loop.deposit is not None
            groups.append(g)
            close()
            continue
        if isinstance(node, ExchangeNode):
            if (cur is not None and cur.kind == "exchange"
                    and mode == "fuse"
                    and cur.nodes[0].op == node.op
                    and cur.nodes[0].plan is node.plan
                    and cur.nodes[0].comm is node.comm):
                cur.nodes.append(node)
                cur.fused = True
                continue
            cur = Group("exchange", [node])
            cur_summary = None
            groups.append(cur)
            continue
        # -- LoopNode ------------------------------------------------------
        summary = summarize_args(node.loop.args)
        if cur is not None and cur.kind == "loops" and mode == "fuse":
            reason = _loops_compatible(cur, node)
            if reason is None:
                reason = fusion_conflict(cur_summary, summary)
            if reason is None:
                cur.nodes.append(node)
                merge_summary(cur_summary, summary)
                continue
            skips.append((cur.nodes[-1].name, node.name, reason))
        cur = Group("loops", [node])
        cur_summary = {}
        merge_summary(cur_summary, summary)
        groups.append(cur)

    for g in groups:
        if g.kind != "loops" or len(g.nodes) < 2:
            continue
        if mode != "fuse":
            g.reason = f"program mode {mode!r}"
            continue
        if getattr(g.nodes[0].ctx, "backend_name", "") != "vec":
            g.reason = (f"backend "
                        f"{getattr(g.nodes[0].ctx, 'backend_name', '?')!r} "
                        "executes loop-by-loop")
            continue
        _compile_group(g, gen_cache)
        if g.fused:
            _mark_eliminated(g, plan_dat_counts)
            g.hoisted = _count_hoisted(g)

    return Plan(groups, rewrites, skips, signature, mode)
