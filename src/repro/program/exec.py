"""Execution of an optimized :class:`~repro.program.optimizer.Plan`.

The fused-group driver replicates the vec backend's plain gather →
generated-kernel → scatter execution exactly — same buffer
initialisation, same writeback branches in the same (loop, arg) order —
with three additions only a multi-loop view enables:

* **buffer aliasing** for direct producer→consumer chains (`live`): the
  consumer loop reads the producer's output buffer, so the intermediate
  value never round-trips through the dat between loops;
* **gather hoisting** (`gather_cache`): identical indirect READ gathers
  across the group's loops are materialised once;
* **temp elimination**: writebacks of fusion-local ``transient`` dats
  are skipped.

Any group the optimizer could not fuse executes loop-by-loop through
the same :func:`~repro.core.loops.execute_parloop` /
:func:`~repro.core.move.execute_moveloop` the eager path uses, under
the node's own context.
"""
from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.args import ArgKind
from ..core.context import push_context
from ..core.loops import execute_parloop
from ..core.move import execute_moveloop
from ..core.types import AccessMode
from .optimizer import Group, Plan

__all__ = ["execute_plan", "execute_group"]


def execute_plan(plan: Plan) -> None:
    for group in plan.groups:
        execute_group(group)


def execute_group(group: Group) -> None:
    if group.kind == "move":
        node = group.nodes[0]
        with push_context(node.ctx):
            node.result = execute_moveloop(node.loop, node.ctx)
        return
    if group.kind == "exchange":
        _execute_exchanges(group)
        return
    if group.fused:
        _execute_fused(group)
        return
    for node in group.nodes:
        with push_context(node.ctx):
            execute_parloop(node.loop, node.ctx)


def _execute_exchanges(group: Group) -> None:
    from ..runtime import halo
    head = group.nodes[0]
    if len(group.nodes) == 1:
        fn = (halo.push_cell_halos if head.op == "cell_push"
              else halo.push_node_halos)
        fn(head.dats, head.plan, head.comm)
        return
    halo.push_halos_grouped(head.op, [n.dats for n in group.nodes],
                            head.plan, head.comm)


# -- the fused loop driver ------------------------------------------------------


def _read_gather_key(a) -> Tuple:
    return (id(a.dat), a.kind,
            id(a.map) if a.map is not None else 0,
            a.map_idx if a.map_idx is not None else -1,
            id(a.p2c) if a.p2c is not None else 0)


def _execute_fused(group: Group) -> None:
    ctx = group.nodes[0].ctx
    backend = ctx.backend
    loops = [node.loop for node in group.nodes]
    name = "Fused[" + "+".join(l.name for l in loops) + "]"

    bounds = {(l.start, l.end) for l in loops}
    if len(bounds) != 1:
        # signature-equal loops over one set share bounds by construction;
        # degrade safely if that invariant ever breaks at runtime
        group.fused = False
        group.reason = "iteration bounds diverged at execution"
        for node in group.nodes:
            with push_context(node.ctx):
                execute_parloop(node.loop, node.ctx)
        return
    start, end = bounds.pop()
    n = end - start
    iterset = loops[0].iterset
    indirect_inc = any(l.has_indirect_inc for l in loops)
    flops = sum(l.flops() for l in loops)
    nbytes = sum(l.bytes_moved() for l in loops)
    extras = {"fused_loops": len(loops),
              "eliminated_temps": len(group.eliminated_names),
              "strategy": getattr(backend, "strategy_name", "")}
    if n <= 0:
        ctx.perf.record_loop(name, n=0, seconds=0.0, flops=0.0, nbytes=0,
                             indirect_inc=indirect_inc, **extras)
        return

    t0 = time.perf_counter()
    full = start == 0 and end == iterset.size
    idx = np.arange(start, end, dtype=np.int64)

    params: List[np.ndarray] = []
    # (arg, buf, rows); rows is None for direct/global/unplanned scatters
    writeback: List[Tuple] = []
    live: Dict[int, np.ndarray] = {}          # id(dat) -> producer buffer
    gather_cache: Dict[Tuple, np.ndarray] = {}
    hoist_hits = 0
    check_unique = getattr(backend, "check_unique_writes", False)

    for loop in loops:
        for apos, a in enumerate(loop.args):
            if a.is_global:
                if a.access is AccessMode.READ:
                    params.append(a.dat.data.reshape(1, -1))
                else:
                    init = {AccessMode.INC: 0.0, AccessMode.MIN: np.inf,
                            AccessMode.MAX: -np.inf}[a.access]
                    buf = np.full((n, a.dat.dim), init,
                                  dtype=a.dat.data.dtype)
                    params.append(buf)
                    writeback.append((a, buf, None))
                continue
            key = id(a.dat)
            if a.kind == ArgKind.DIRECT:
                if a.access is AccessMode.READ:
                    buf = live.get(key)
                    if buf is None:
                        if full:
                            buf = a.dat.data
                        else:
                            buf = gather_cache.get(("direct", key))
                            if buf is None:
                                buf = a.dat.data[idx]
                                gather_cache[("direct", key)] = buf
                            else:
                                hoist_hits += 1
                    params.append(buf)
                    continue
                if a.access is AccessMode.RW:
                    buf = live.get(key)
                    if buf is None:
                        buf = backend.gather(a, idx)
                    live[key] = buf
                else:   # WRITE / INC / MIN / MAX start clean
                    buf = np.zeros((n, a.dat.dim), dtype=a.dat.dtype)
                    if a.access is AccessMode.WRITE:
                        live[key] = buf
                params.append(buf)
                writeback.append((a, buf, None))
                continue
            # -- indirect ------------------------------------------------------
            if a.access is AccessMode.READ:
                gkey = _read_gather_key(a)
                buf = gather_cache.get(gkey)
                if buf is None:
                    buf = backend.gather(a, idx)
                    gather_cache[gkey] = buf
                else:
                    hoist_hits += 1
                params.append(buf)
                continue
            rows = backend.plan.rows(loop, a, idx)
            if (check_unique
                    and a.access in (AccessMode.WRITE, AccessMode.RW)):
                r = rows if rows is not None else a.gather_indices(idx)
                r = r[r >= 0]
                if r.size and np.unique(r).size != r.size:
                    raise RuntimeError(
                        f"loop {loop.name!r}: nonunique-write on arg "
                        f"{apos} (dat {a.dat.name!r}): duplicate indirect "
                        f"{a.access.name} target rows race under vector "
                        "execution (declare OPP_INC or make the mapping "
                        "injective)")
            if a.access is AccessMode.RW:
                buf = (a.dat.data[rows] if rows is not None
                       else backend.gather(a, idx))
            else:
                buf = np.zeros((n, a.dat.dim), dtype=a.dat.dtype)
            params.append(buf)
            writeback.append((a, buf, rows))

    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        group.gen.fn(*params)

    max_coll = 0
    for a, buf, rows in writeback:
        if a.is_global:
            if a.access is AccessMode.INC:
                a.dat.data += buf.sum(axis=0)
            elif a.access is AccessMode.MIN:
                np.minimum(a.dat.data, buf.min(axis=0), out=a.dat.data)
            else:
                np.maximum(a.dat.data, buf.max(axis=0), out=a.dat.data)
            continue
        if a.kind == ArgKind.DIRECT:
            if id(a.dat) in group.eliminated_ids:
                continue            # fusion-local temp: never materialised
            if a.access is AccessMode.INC:
                if full:
                    np.add(a.dat.data, buf, out=a.dat.data)
                else:
                    a.dat.data[idx] += buf
            else:
                a.dat.data[idx] = buf
            continue
        if rows is not None:
            if a.access is AccessMode.INC:
                coll = backend.strategy.apply(a.dat.data, rows, buf)
            else:
                a.dat.data[rows] = buf
                coll = 0
        else:
            coll = backend.scatter(a, idx, buf, strategy=backend.strategy)
        max_coll = max(max_coll, coll)

    dt = time.perf_counter() - t0
    extras["hoisted_gathers"] = hoist_hits
    ctx.perf.record_loop(name, n=n, seconds=dt, flops=flops, nbytes=nbytes,
                         indirect_inc=indirect_inc, collisions=max_coll,
                         **extras)
