"""Recording API: trace a step's loops, optimize, execute on demand.

    from repro import program

    with program.record(mode="fuse") as prog:
        for _ in range(steps):
            sim.step()
    print(prog.explain())

While the trace is active, ``par_loop`` / ``particle_move`` /
halo-push calls *defer*: each becomes a loop-graph node instead of
executing.  The trace flushes — optimizes and runs everything pending,
in order — whenever host code observes an object a pending node touches
(a dat's ``.data``, a map's values, a particle set's size, a lazy move
result's attributes), at ``prog.flush()``, and at context-manager exit.
Laziness is therefore invisible to correct host code: every read sees
exactly the state the eager program would have produced.

One plan is built per flush *shape* (the signature of the pending node
list); fused kernels are compiled once per distinct group and cached on
the :class:`Program`, so steady-state steps pay set arithmetic only.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core import tracing
from ..core.move import LazyMoveResult
from .exec import execute_plan
from .graph import ExchangeNode, LoopNode, MoveNode
from .optimizer import Plan, build_plan

__all__ = ["Program", "Tracer", "record"]

_MODES = ("off", "fuse")


class Program:
    """Accumulated record of every optimized flush of a trace.

    ``gen_cache`` persists fused-kernel compilations across flushes and
    across :func:`record` invocations that share the Program.
    """

    def __init__(self, mode: str = "fuse"):
        if mode not in _MODES:
            raise ValueError(f"program mode must be one of {_MODES}, "
                             f"got {mode!r}")
        self.mode = mode
        self.gen_cache: Dict = {}
        #: plan-signature -> [Plan, flush count]
        self.executed: Dict[Tuple, List] = {}
        self.n_flushes = 0

    @classmethod
    def from_step(cls, fn, mode: str = "fuse") -> "Program":
        """Record one call of ``fn()`` (e.g. a bound ``sim.step``)."""
        prog = cls(mode)
        with record(mode=mode, program=prog):
            fn()
        return prog

    # -- bookkeeping -----------------------------------------------------------

    def note(self, plan: Plan) -> None:
        entry = self.executed.get(plan.signature)
        if entry is None:
            self.executed[plan.signature] = [plan, 1]
        else:
            entry[1] += 1
        self.n_flushes += 1

    @property
    def plans(self) -> List[Plan]:
        return [entry[0] for entry in self.executed.values()]

    @property
    def fallback_reasons(self) -> Dict[str, str]:
        """Group/pair name -> why it executed loop-by-loop."""
        out: Dict[str, str] = {}
        for plan in self.plans:
            for g in plan.groups:
                if g.kind == "loops" and len(g.nodes) > 1 and not g.fused:
                    out.setdefault(g.name, g.reason or "unknown")
            for left, right, reason in plan.skips:
                out.setdefault(f"{left}|{right}", reason)
        return out

    # -- observability (--program-explain) -------------------------------------

    def explain(self) -> str:
        lines = [f"program mode: {self.mode}",
                 f"flushes: {self.n_flushes} "
                 f"({len(self.executed)} distinct shapes)"]
        for shape_no, (plan, count) in enumerate(self.executed.values(),
                                                 start=1):
            lines.append(f"shape {shape_no} (x{count}):")
            for g in plan.groups:
                if g.kind == "move":
                    how = "fused deposit" if g.fused else "plain move"
                    if g.rewritten:
                        how += " [rewritten from separate deposit loop]"
                    lines.append(f"  move  {g.name}: {how}")
                elif g.kind == "exchange":
                    if len(g.nodes) > 1:
                        fields = ", ".join(n.dats[0].name if n.dats else "?"
                                           for n in g.nodes)
                        lines.append(f"  exch  {g.nodes[0].op}: coalesced "
                                     f"{len(g.nodes)} pushes ({fields})")
                    else:
                        lines.append(f"  exch  {g.name}")
                elif len(g.nodes) == 1:
                    lines.append(f"  loop  {g.name}")
                elif g.fused:
                    detail = f"fused {len(g.nodes)} loops"
                    if g.hoisted:
                        detail += f", hoisted {g.hoisted} gathers"
                    if g.eliminated_names:
                        detail += (", eliminated temps: "
                                   + ", ".join(g.eliminated_names))
                    lines.append(f"  fuse  {g.name}: {detail}")
                else:
                    lines.append(f"  group {g.name}: loop-by-loop "
                                 f"({g.reason})")
            for left, right, reason in plan.skips:
                lines.append(f"  skip  {left} | {right}: {reason}")
            for rw in plan.rewrites:
                lines.append(f"  rewrite {rw}")
        return "\n".join(lines)


class Tracer:
    """The active trace: pending nodes plus the flush machinery.

    Implements the contract :mod:`repro.core.tracing` expects
    (``touch`` / ``record`` / ``flush`` / ``defer_parloop`` /
    ``defer_move`` / ``defer_exchange``).
    """

    def __init__(self, mode: str = "fuse",
                 program: Optional[Program] = None):
        self.mode = mode
        self.program = program if program is not None else Program(mode)
        self.nodes: List = []
        self.pending_ids: Set[int] = set()
        #: reentrancy guard: execution inside a flush touches the very
        #: objects the nodes declare; those touches must not re-flush,
        #: and loops the executor itself runs must not re-defer
        self.flushing = False

    # -- deferral hooks --------------------------------------------------------

    def record(self, node) -> None:
        self.nodes.append(node)
        self.pending_ids |= node.touched_ids

    def defer_parloop(self, loop, ctx) -> bool:
        if self.flushing:
            return False
        self.record(LoopNode(loop, ctx))
        return True

    def defer_move(self, loop, ctx) -> Optional[LazyMoveResult]:
        if self.flushing:
            return None
        node = MoveNode(loop, ctx)
        self.record(node)

        def resolve():
            if node.result is None:
                self.flush()
            if node.result is None:
                raise RuntimeError(
                    f"move {loop.name!r} was traced but never executed")
            return node.result

        return LazyMoveResult(resolve)

    def defer_exchange(self, op: str, dats, plan, comm) -> bool:
        if self.flushing:
            return False
        self.record(ExchangeNode(op, dats, plan, comm))
        return True

    # -- flush -----------------------------------------------------------------

    def touch(self, obj) -> None:
        if self.flushing or not self.nodes:
            return
        if id(obj) in self.pending_ids:
            self.flush()

    def flush(self) -> None:
        if self.flushing or not self.nodes:
            return
        self.flushing = True
        try:
            nodes, self.nodes = self.nodes, []
            self.pending_ids = set()
            plan = build_plan(nodes, self.mode, self.program.gen_cache)
            execute_plan(plan)
            self.program.note(plan)
        finally:
            self.flushing = False


class record:
    """Context manager activating a program trace (see module docstring).

    ``mode="off"`` is a no-op passthrough so call sites can be wired
    unconditionally; ``program=`` threads one :class:`Program` (and its
    kernel cache) through several recording spans.
    """

    def __init__(self, mode: str = "fuse",
                 program: Optional[Program] = None):
        self.program = program if program is not None else Program(mode)
        self.mode = mode
        self._tracer: Optional[Tracer] = None

    def __enter__(self) -> Program:
        if self.mode != "off":
            self._tracer = Tracer(self.mode, self.program)
            tracing.install(self._tracer)
        return self.program

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer is None:
            return
        try:
            if exc_type is None:
                self._tracer.flush()
        finally:
            self._tracer = None
            tracing.uninstall()
