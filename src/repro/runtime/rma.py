"""Simulated MPI-RMA windows.

The direct-hop mover keeps only one copy of its structured overlay
(cell-map + rank-map) per shared-memory node, exposed to the node's ranks
through an MPI-RMA window; ranks then look bins up with one-sided Gets.
The paper highlights this as the mitigation for DH's bookkeeping memory.

:class:`RMAWindow` reproduces the semantics (epochs via fence, counted
one-sided ops, one backing copy per node) over in-process storage.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from .comm import SimComm

__all__ = ["RMAWindow"]


class RMAWindow:
    """A window over a shared array, one backing copy per node.

    Parameters
    ----------
    data:
        The array to expose (stored once per node group).
    comm:
        Communicator whose stats record the one-sided traffic.
    ranks_per_node:
        Ranks sharing one copy (paper: all ranks of a shared-memory node).
    """

    def __init__(self, data: np.ndarray, comm: SimComm,
                 ranks_per_node: Optional[int] = None):
        self.comm = comm
        self.ranks_per_node = ranks_per_node or comm.nranks
        self.n_nodes = -(-comm.nranks // self.ranks_per_node)
        self._elem_nbytes = np.asarray(data).nbytes
        # one real backing copy per node (identical content; the point is
        # the accounted memory footprint and the access semantics).  An
        # SPMD rank process hosts exactly one rank, so it materialises
        # only its own node's copy; the simulated communicator hosts all
        # ranks and backs every node.
        my_rank = getattr(comm, "my_rank", None)
        if my_rank is None:
            self._copies = {node: np.array(data)
                            for node in range(self.n_nodes)}
        else:
            self._copies = {self.node_of(my_rank): np.array(data)}
        self._epoch_open = False

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    @property
    def nbytes_total(self) -> int:
        """Total bookkeeping memory across the machine (modelled: one
        copy per shared-memory node, wherever the copies physically
        live)."""
        return self.n_nodes * self._elem_nbytes

    def fence(self) -> None:
        """Open/close an RMA epoch (collective)."""
        self.comm.stats.collectives += 1
        self._epoch_open = not self._epoch_open

    def get(self, rank: int, indices) -> np.ndarray:
        """One-sided read of window elements by a rank."""
        indices = np.asarray(indices)
        copy = self._copies[self.node_of(rank)]
        out = copy[indices]
        self.comm.stats.rma_ops += 1
        self.comm.stats.rma_bytes += out.nbytes
        return out

    def put(self, rank: int, indices, values) -> None:
        """One-sided write (updates every resident node copy — windows
        hold replicated read-mostly data here)."""
        indices = np.asarray(indices)
        values = np.asarray(values)
        for copy in self._copies.values():
            copy[indices] = values
        self.comm.stats.rma_ops += 1
        self.comm.stats.rma_bytes += values.nbytes

    def accumulate(self, rank: int, indices, values) -> None:
        """One-sided accumulate (MPI_Accumulate with MPI_SUM)."""
        indices = np.asarray(indices)
        values = np.asarray(values)
        for copy in self._copies.values():
            np.add.at(copy, indices, values)
        self.comm.stats.rma_ops += 1
        self.comm.stats.rma_bytes += values.nbytes

    def read_full(self, rank: int) -> np.ndarray:
        """Local load of the node's copy (no traffic — shared memory)."""
        return self._copies[self.node_of(rank)]
