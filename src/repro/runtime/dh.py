"""Direct-hop (DH) particle relocation (paper §3.2.2, Figure 7(b)).

Instead of walking cell-to-cell from the old position (multi-hop), DH
jumps each particle straight to a cell *near* its final position using a
structured overlay (cell-map), and — in distributed runs — straight to the
*owning rank* using the overlay's rank-map, with an RMA-based global move
(any rank may send to any rank; an all-to-all count exchange sizes the
receives).  A short multi-hop finishes the relocation.

DH trades bookkeeping memory (the overlay, one copy per node via RMA) for
fewer hops and fewer neighbour-to-neighbour migration rounds; the paper
measures it ~20% faster than MH.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.dats import Dat
from ..core.maps import Map
from ..core.sets import ParticleSet
from ..mesh.overlay import StructuredOverlay
from .comm import SimComm
from .exchange import pack_particles, unpack_particles
from .halo import HaloPlan, RankMesh
from .rma import RMAWindow

__all__ = ["direct_hop_assign", "DirectHopGlobalMover"]

_TAG_DH_PAYLOAD = 20
_TAG_DH_CELLS = 21


def direct_hop_assign(overlay: StructuredOverlay, pset: ParticleSet,
                      pos_dat: Dat, p2c_map: Map) -> int:
    """Single-rank DH: point every particle's cell map at the overlay's
    guess for its *new* position.  Returns how many guesses changed.

    The subsequent ``opp_particle_move`` then needs only a short walk.
    """
    if pset.size == 0:
        return 0
    guess = overlay.lookup_cell(pos_dat.data[: pset.size])
    old = p2c_map.p2c.copy()
    alive = old >= 0
    p2c_map.p2c[alive] = guess[alive]
    changed = int((old[alive] != guess[alive]).sum())
    pset.order.note_relocated(changed)
    return changed


class DirectHopGlobalMover:
    """Distributed DH: rank-map lookups through an RMA window plus the
    global move (pack → all-to-all counts → unpack), leaving every
    particle on its destination rank with a near-final cell guess.
    """

    def __init__(self, overlay: StructuredOverlay, comm: SimComm,
                 plan: HaloPlan, meshes: Sequence[RankMesh],
                 ranks_per_node: Optional[int] = None):
        if overlay.rank_map is None:
            raise ValueError("distributed DH needs an overlay with a "
                             "rank-map (overlay.with_rank_map)")
        self.overlay = overlay
        self.comm = comm
        self.plan = plan
        self.meshes = meshes
        # one (cell-map, rank-map) copy per shared-memory node via RMA
        self.cell_window = RMAWindow(overlay.cell_map, comm, ranks_per_node)
        self.rank_window = RMAWindow(overlay.rank_map, comm, ranks_per_node)
        # local-cell lookup per rank: global cell id -> local id
        self._g2l = []
        for rm in meshes:
            g2l = {}
            for loc, g in enumerate(rm.cells_global):
                g2l[int(g)] = loc
            self._g2l.append(g2l)

    def _local_cells(self, rank: int, global_cells: np.ndarray) -> np.ndarray:
        g2l = self._g2l[rank]
        return np.fromiter((g2l.get(int(g), -1) for g in global_cells),
                           dtype=np.int64, count=len(global_cells))

    def global_move(self, psets: Sequence[ParticleSet],
                    pos_dats: Sequence[Dat],
                    p2c_maps: Sequence[Map],
                    exchange_dats: Sequence[Sequence[Dat]],
                    ) -> List[Optional[np.ndarray]]:
        """Move every particle to the rank the overlay says owns its new
        position and set its cell guess; returns per-rank received indices.
        """
        nranks = self.comm.nranks
        counts = np.zeros((nranks, nranks), dtype=np.int64)
        packed = {}

        self.cell_window.fence()
        self.rank_window.fence()
        for r in self.comm.local_ranks:
            pset = psets[r]
            if pset.size == 0:
                continue
            pos = pos_dats[r].data[: pset.size]
            alive = p2c_maps[r].p2c >= 0
            bins = self.overlay.bin_of(pos)
            dest_rank = self.rank_window.get(r, bins)
            dest_cell_global = self.cell_window.get(r, bins)

            stay = alive & (dest_rank == r)
            go = alive & (dest_rank != r)
            # local guesses (global cell is owned here, so local id exists)
            if stay.any():
                idx = np.flatnonzero(stay)
                p2c_maps[r].p2c[idx] = self._local_cells(
                    r, dest_cell_global[idx])
                # direct map write: bump the order tracker so cached
                # segment offsets / sparse operators refresh
                pset.order.note_relocated(int(idx.size))
            if go.any():
                rows = np.flatnonzero(go)
                for d in np.unique(dest_rank[rows]):
                    sel = rows[dest_rank[rows] == d]
                    counts[r, int(d)] = sel.size
                    packed[(r, int(d))] = (
                        pack_particles(exchange_dats[r], sel),
                        dest_cell_global[sel], sel)
        self.cell_window.fence()
        self.rank_window.fence()

        # hole-fill the senders
        for r in self.comm.local_ranks:
            sent_rows = [rows for (src, _d), (_b, _c, rows)
                         in packed.items() if src == r]
            if sent_rows:
                psets[r].remove_particles(np.concatenate(sent_rows))

        recv_counts = self.comm.alltoall_counts(counts)
        for (r, d), (buf, cells, _rows) in packed.items():
            self.comm.send(r, d, buf, tag=_TAG_DH_PAYLOAD)
            self.comm.send(r, d, cells, tag=_TAG_DH_CELLS)

        received: List[Optional[np.ndarray]] = [None] * nranks
        for d in self.comm.local_ranks:
            if recv_counts[d].sum() == 0:
                continue
            start = psets[d].size
            for s in range(nranks):
                if recv_counts[d, s] == 0:
                    continue
                buf = self.comm.recv(d, s, tag=_TAG_DH_PAYLOAD)
                cells = self.comm.recv(d, s, tag=_TAG_DH_CELLS)
                local = self._local_cells(d, cells)
                sl = psets[d].add_particles(buf.shape[0], cell_indices=local)
                unpack_particles(exchange_dats[d], sl, buf)
            received[d] = np.arange(start, psets[d].size, dtype=np.int64)
        return received

    @property
    def overlay_nbytes(self) -> int:
        """Total DH bookkeeping memory (the paper's memory trade-off)."""
        return self.cell_window.nbytes_total + self.rank_window.nbytes_total
