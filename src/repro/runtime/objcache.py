"""Process-level cache of deterministic construction products.

Warm service workers (:mod:`repro.service.pool`) run many simulation
jobs in one long-lived process; most of a tiny job's latency is spent
rebuilding objects that are pure functions of the configuration — duct
and brick meshes, FEM stiffness matrices, lumped volume vectors.  This
module memoises those products process-wide so the second job with the
same geometry skips the rebuild entirely.

Disabled by default: one-shot runs (CLI, tests, benchmarks) keep their
exact allocation behaviour unless a worker opts in with :func:`enable`.
When disabled, :func:`get_or_build` is a transparent pass-through.

Correctness contract: cached values are returned **by reference**, so
they must be treated as immutable — every consumer copies data out
(``decl_dat`` copies its initialiser; the FEM solves build new
operators).  Warm-vs-cold bit-equality of job histories is enforced by
``tests/service/test_determinism.py``.
"""
from __future__ import annotations

from typing import Callable, Dict, Hashable

__all__ = ["enable", "disable", "is_enabled", "get_or_build", "stats",
           "clear"]

_enabled = False
_store: Dict[Hashable, object] = {}
_hits = 0
_misses = 0


def enable() -> None:
    """Turn on process-wide memoisation (the warm-pool worker calls
    this once at boot)."""
    global _enabled
    _enabled = True


def disable(clear_store: bool = True) -> None:
    global _enabled
    _enabled = False
    if clear_store:
        clear()


def is_enabled() -> bool:
    return _enabled


def clear() -> None:
    global _hits, _misses
    _store.clear()
    _hits = 0
    _misses = 0


def get_or_build(key: Hashable, builder: Callable[[], object]):
    """Return the cached value for ``key``, building it on first use.

    ``key`` must capture *every* input of ``builder`` (the callers key
    on the full geometry tuple).  A no-op call of ``builder()`` when the
    cache is disabled.
    """
    global _hits, _misses
    if not _enabled:
        return builder()
    try:
        value = _store[key]
    except KeyError:
        _misses += 1
        value = _store[key] = builder()
        return value
    _hits += 1
    return value


def stats() -> dict:
    """Hit/miss counters (the service reports these per worker so the
    bench can prove warm runs actually reused cached construction)."""
    return {"enabled": _enabled, "entries": len(_store),
            "hits": _hits, "misses": _misses}
