"""Mesh partitioners.

The paper uses a custom partitioning "along the principal direction of
motion of particles" (as in PUMIPic) to minimise migration traffic, with
ParMETIS as the general option.  We provide:

* ``principal_direction`` — slab decomposition along a chosen axis sorted
  by cell-centroid coordinate (the paper's custom scheme);
* ``rcb`` — recursive coordinate bisection (geometric);
* ``graph`` — recursive Kernighan–Lin graph bisection via networkx (the
  METIS substitute);
* ``block`` — contiguous index blocks (the naive baseline for the
  partitioner ablation);
* ``diffusive`` — incremental *weighted* slab decomposition for online
  rebalancing: only the slab boundaries shift between calls, so the
  migration volume of a repartition stays proportional to the load
  drift, not the mesh size.

All return ``cell_owner``: the owning rank of every global cell.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["partition", "principal_direction", "rcb", "graph_partition",
           "spectral", "block", "diffusive", "edge_cut",
           "migration_volume"]


def block(n_cells: int, nranks: int) -> np.ndarray:
    """Contiguous equal blocks by cell index."""
    return np.minimum((np.arange(n_cells) * nranks) // max(n_cells, 1),
                      nranks - 1).astype(np.int64)


def principal_direction(centroids: np.ndarray, nranks: int,
                        axis: int = 2) -> np.ndarray:
    """Equal-count slabs along the axis particles predominantly travel."""
    n = centroids.shape[0]
    order = np.argsort(centroids[:, axis], kind="stable")
    owner = np.empty(n, dtype=np.int64)
    owner[order] = (np.arange(n) * nranks) // n
    return owner


def rcb(centroids: np.ndarray, nranks: int) -> np.ndarray:
    """Recursive coordinate bisection: split the longest extent in half
    (by cell count), recurse with proportional rank shares."""
    n = centroids.shape[0]
    owner = np.zeros(n, dtype=np.int64)

    def recurse(idx: np.ndarray, ranks_lo: int, ranks_hi: int) -> None:
        nr = ranks_hi - ranks_lo
        if nr <= 1 or idx.size == 0:
            owner[idx] = ranks_lo
            return
        pts = centroids[idx]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = idx[np.argsort(pts[:, axis], kind="stable")]
        nr_lo = nr // 2
        split = (idx.size * nr_lo) // nr
        recurse(order[:split], ranks_lo, ranks_lo + nr_lo)
        recurse(order[split:], ranks_lo + nr_lo, ranks_hi)

    recurse(np.arange(n), 0, nranks)
    return owner


def graph_partition(c2c: np.ndarray, nranks: int,
                    seed: int = 0) -> np.ndarray:
    """Recursive Kernighan–Lin bisection over the cell adjacency graph
    (our METIS stand-in, via networkx)."""
    import networkx as nx

    n = c2c.shape[0]
    g = nx.Graph()
    g.add_nodes_from(range(n))
    src = np.repeat(np.arange(n), c2c.shape[1])
    dst = c2c.ravel()
    ok = dst >= 0
    g.add_edges_from(zip(src[ok].tolist(), dst[ok].tolist()))

    owner = np.zeros(n, dtype=np.int64)

    def recurse(nodes, ranks_lo: int, ranks_hi: int) -> None:
        nr = ranks_hi - ranks_lo
        if nr <= 1:
            owner[list(nodes)] = ranks_lo
            return
        sub = g.subgraph(nodes)
        nr_lo = nr // 2
        # KL bisection is balanced 50/50; for odd rank counts we still
        # split evenly then let recursion absorb the imbalance.
        a, b = nx.algorithms.community.kernighan_lin_bisection(
            sub, seed=seed, max_iter=10)
        recurse(a, ranks_lo, ranks_lo + nr_lo)
        recurse(b, ranks_lo + nr_lo, ranks_hi)

    recurse(set(range(n)), 0, nranks)
    return owner


def spectral(c2c: np.ndarray, nranks: int) -> np.ndarray:
    """Recursive spectral bisection: split at the median of the Fiedler
    vector of the cell-adjacency Laplacian (a second METIS-class
    stand-in, alongside Kernighan–Lin)."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    n = c2c.shape[0]
    src = np.repeat(np.arange(n), c2c.shape[1])
    dst = c2c.ravel()
    ok = dst >= 0
    adj = sp.coo_matrix((np.ones(ok.sum()), (src[ok], dst[ok])),
                        shape=(n, n)).tocsr()
    adj = ((adj + adj.T) > 0).astype(np.float64)

    owner = np.zeros(n, dtype=np.int64)

    def fiedler_split(idx: np.ndarray) -> np.ndarray:
        sub = adj[idx][:, idx]
        deg = np.asarray(sub.sum(axis=1)).ravel()
        lap = sp.diags(deg) - sub
        if idx.size <= 2:
            return np.arange(idx.size) < idx.size // 2
        try:
            # smallest two eigenpairs; the second is the Fiedler vector
            _, vecs = spla.eigsh(lap.tocsc(), k=2, sigma=-1e-8,
                                 which="LM")
            f = vecs[:, 1]
        except Exception:
            f = np.arange(idx.size, dtype=np.float64)  # fallback: index
        return f <= np.median(f)

    def recurse(idx: np.ndarray, ranks_lo: int, ranks_hi: int) -> None:
        nr = ranks_hi - ranks_lo
        if nr <= 1 or idx.size == 0:
            owner[idx] = ranks_lo
            return
        lo_mask = fiedler_split(idx)
        nr_lo = nr // 2
        # rebalance the split to the rank proportions
        want_lo = (idx.size * nr_lo) // nr
        order = np.argsort(~lo_mask, kind="stable")
        recurse(idx[order[:want_lo]], ranks_lo, ranks_lo + nr_lo)
        recurse(idx[order[want_lo:]], ranks_lo + nr_lo, ranks_hi)

    recurse(np.arange(n), 0, nranks)
    return owner


def diffusive(centroids: np.ndarray, nranks: int,
              weights: Optional[np.ndarray] = None, axis: int = 2,
              keys: Optional[np.ndarray] = None) -> np.ndarray:
    """Weighted slab decomposition with atomic layer groups.

    Cells are ordered along ``axis`` and grouped into *layers* — runs of
    equal ``keys`` (default: the exact centroid coordinate).  Layers are
    then dealt to ranks in order, cutting where the cumulative weight
    crosses ``k·W/nranks``.  A layer is never split, so a boundary only
    ever shifts by whole layers between calls — the incremental
    ("diffusive") behaviour online rebalancing needs: cells far from a
    shifting boundary keep their owner.  Every rank receives at least
    one layer.
    """
    n = centroids.shape[0]
    if keys is None:
        keys = centroids[:, axis]
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    # layer starts: positions where the sorted key changes
    starts = np.flatnonzero(np.concatenate([[True], sk[1:] != sk[:-1]]))
    n_layers = starts.size
    if n_layers < nranks:
        raise ValueError(f"diffusive needs at least one layer per rank: "
                         f"{n_layers} layers < {nranks} ranks")
    if weights is None:
        w = np.ones(n)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError("weights must give one value per cell")
        if (w < 0).any():
            raise ValueError("cell weights must be non-negative")
    # a small per-cell floor keeps zero-weight regions evenly spread
    # instead of lumping them all onto the last rank
    total = float(w.sum())
    w = w + (total if total > 0 else float(n)) * 1e-3 / n
    layer_w = np.add.reduceat(w[order], starts)
    cum = np.cumsum(layer_w)
    grand = cum[-1]

    owner_of_layer = np.empty(n_layers, dtype=np.int64)
    start = 0
    for k in range(nranks):
        if k == nranks - 1:
            end = n_layers
        else:
            target = grand * (k + 1) / nranks
            end = int(np.searchsorted(cum, target, side="left")) + 1
            # leave at least one layer for every remaining rank, and
            # keep at least one for this rank
            end = min(end, n_layers - (nranks - 1 - k))
            end = max(end, start + 1)
        owner_of_layer[start:end] = k
        start = end

    ends = np.concatenate([starts[1:], [n]])
    owner = np.empty(n, dtype=np.int64)
    for li in range(n_layers):
        owner[order[starts[li]:ends[li]]] = owner_of_layer[li]
    return owner


def partition(method: str, nranks: int, *,
              centroids: Optional[np.ndarray] = None,
              c2c: Optional[np.ndarray] = None,
              n_cells: Optional[int] = None,
              axis: int = 2,
              weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Dispatch by method name; see module docstring."""
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if method == "diffusive":
        if centroids is None:
            raise ValueError("diffusive needs centroids")
        return diffusive(centroids, nranks, weights=weights, axis=axis)
    if method == "block":
        if n_cells is None:
            n_cells = len(centroids) if centroids is not None else len(c2c)
        return block(n_cells, nranks)
    if method == "principal_direction":
        if centroids is None:
            raise ValueError("principal_direction needs centroids")
        return principal_direction(centroids, nranks, axis=axis)
    if method == "rcb":
        if centroids is None:
            raise ValueError("rcb needs centroids")
        return rcb(centroids, nranks)
    if method == "graph":
        if c2c is None:
            raise ValueError("graph partitioning needs the c2c adjacency")
        return graph_partition(c2c, nranks)
    if method == "spectral":
        if c2c is None:
            raise ValueError("spectral partitioning needs the c2c "
                             "adjacency")
        return spectral(c2c, nranks)
    raise ValueError(f"unknown partition method {method!r}")


def edge_cut(c2c: np.ndarray, owner: np.ndarray) -> int:
    """Number of mesh faces crossing partition boundaries (quality metric)."""
    src = np.repeat(np.arange(c2c.shape[0]), c2c.shape[1])
    dst = c2c.ravel()
    ok = dst >= 0
    cut = owner[src[ok]] != owner[dst[ok]]
    return int(cut.sum()) // 2


def migration_volume(owner_before: np.ndarray, owner_after: np.ndarray,
                     cell_weights: Optional[np.ndarray] = None) -> float:
    """Total (weighted) cell load a repartition moves between ranks.

    The companion metric to :func:`edge_cut`: where edge-cut scores a
    partition's *steady-state* halo traffic, migration volume scores the
    one-off cost of *switching* to it — the sum of the weights of every
    cell whose owner changes.  With ``cell_weights=None`` each cell
    counts 1 (the metric is then simply the number of cells that move).
    """
    before = np.asarray(owner_before)
    after = np.asarray(owner_after)
    if before.shape != after.shape:
        raise ValueError("owner arrays must have the same shape")
    moved = before != after
    if cell_weights is None:
        return float(moved.sum())
    w = np.asarray(cell_weights, dtype=np.float64)
    if w.shape != before.shape:
        raise ValueError("cell_weights must give one weight per cell")
    return float(w[moved].sum())
