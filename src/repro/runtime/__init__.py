"""Distributed-memory substrate: simulated MPI, partitioning, halos,
particle migration, RMA windows and the direct-hop global mover."""
from . import objcache
from .comm import CommStats, SimComm
from .dh import DirectHopGlobalMover, direct_hop_assign
from .exchange import migrate, mpi_particle_move, pack_particles
from .halo import (HaloPlan, RankMesh, build_rank_meshes, push_cell_halos,
                   push_node_halos, reduce_cell_halos, reduce_node_halos)
from .partition import diffusive, edge_cut, migration_volume, partition
from .rma import RMAWindow

__all__ = ["SimComm", "CommStats", "partition", "edge_cut", "diffusive",
           "migration_volume",
           "build_rank_meshes", "RankMesh", "HaloPlan", "push_cell_halos",
           "push_node_halos", "reduce_cell_halos", "reduce_node_halos", "migrate",
           "mpi_particle_move", "pack_particles", "RMAWindow",
           "direct_hop_assign", "DirectHopGlobalMover", "objcache"]
