"""Simulated MPI: in-process ranks with counted communication.

Every distributed algorithm of OP-PIC (halo exchange, particle packing and
migration, RMA-based global move, reductions) runs here unchanged over N
in-process ranks; only the wire is replaced by direct buffer copies.  The
:class:`SimComm` records message counts and bytes per rank pair, which the
performance model turns into communication time for the weak-scaling and
utilization reproductions.

:class:`SimComm` is one implementation of the rank-transport interface
(see :mod:`repro.dist.transport`); ``repro.dist.proc`` provides the other
one — real OS rank processes over sockets.  The locality API
(:attr:`SimComm.my_rank` / :meth:`SimComm.local_ranks` /
:meth:`SimComm.is_local`) lets the same algorithm code drive all ranks
from one program (simulation) or exactly one rank per process (SPMD).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["SimComm", "CommStats"]


class CommStats:
    """Message/byte counters, indexable by (src, dst).

    One ledger serves both execution styles: the simulated communicator
    counts every rank's traffic in a single instance, while each SPMD
    rank process counts only the rows it sent — :meth:`merge` folds the
    per-rank ledgers back into the program-level view, and the result is
    identical to the simulated ledger for the same algorithm.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.msg_count = np.zeros((nranks, nranks), dtype=np.int64)
        self.msg_bytes = np.zeros((nranks, nranks), dtype=np.int64)
        self.collectives = 0
        self.rma_ops = 0
        self.rma_bytes = 0

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.msg_count[src, dst] += 1
        self.msg_bytes[src, dst] += nbytes

    @property
    def total_messages(self) -> int:
        return int(self.msg_count.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.msg_bytes.sum())

    def bytes_sent_by(self, rank: int) -> int:
        return int(self.msg_bytes[rank].sum())

    def reset(self) -> None:
        self.msg_count[:] = 0
        self.msg_bytes[:] = 0
        self.collectives = 0
        self.rma_ops = 0
        self.rma_bytes = 0

    def merge(self, other: "CommStats") -> "CommStats":
        """Fold another rank's ledger into this one (in place).

        Point-to-point and RMA traffic is disjoint between SPMD ranks
        (each rank records only what it initiated), so those counters
        add.  Collectives are *operations*, not per-participant events —
        every rank of a lockstep SPMD program counts each collective
        once, and the program-level ledger also counts it once — so the
        merged value is the maximum, not the sum.
        """
        if other.nranks != self.nranks:
            raise ValueError(f"cannot merge stats for {other.nranks} ranks "
                             f"into stats for {self.nranks}")
        self.msg_count += other.msg_count
        self.msg_bytes += other.msg_bytes
        self.collectives = max(self.collectives, other.collectives)
        self.rma_ops += other.rma_ops
        self.rma_bytes += other.rma_bytes
        return self

    def to_dict(self) -> dict:
        """JSON/pickle-friendly snapshot (for shipping rank ledgers to
        the launcher)."""
        return {"nranks": self.nranks,
                "msg_count": self.msg_count.tolist(),
                "msg_bytes": self.msg_bytes.tolist(),
                "collectives": int(self.collectives),
                "rma_ops": int(self.rma_ops),
                "rma_bytes": int(self.rma_bytes)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CommStats":
        stats = cls(int(payload["nranks"]))
        stats.msg_count[:] = np.asarray(payload["msg_count"],
                                        dtype=np.int64)
        stats.msg_bytes[:] = np.asarray(payload["msg_bytes"],
                                        dtype=np.int64)
        stats.collectives = int(payload["collectives"])
        stats.rma_ops = int(payload["rma_ops"])
        stats.rma_bytes = int(payload["rma_bytes"])
        return stats


class SimComm:
    """An in-process communicator over ``nranks`` simulated ranks.

    Point-to-point transfers move real numpy buffers between per-rank
    mailboxes; collectives operate on per-rank value lists.  All traffic is
    counted in :attr:`stats`.
    """

    #: the simulated communicator hosts *all* ranks in one process; SPMD
    #: transports set this to their single resident rank instead
    my_rank: Optional[int] = None

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = int(nranks)
        self.stats = CommStats(self.nranks)
        # mailbox[dst][(src, tag)] = payload
        self._mailbox: List[Dict] = [dict() for _ in range(self.nranks)]

    # -- locality ----------------------------------------------------------------
    #
    # Algorithm code (halo pushes, migration, the DH mover, the apps)
    # iterates ``local_ranks`` and guards sends/recvs with ``is_local`` so
    # the identical code runs under both execution styles: in the
    # simulation every rank is local, in an SPMD rank process exactly one.

    @property
    def local_ranks(self) -> range:
        """Ranks whose data lives in this process (all of them here)."""
        return range(self.nranks)

    def is_local(self, rank: int) -> bool:
        return 0 <= rank < self.nranks

    # -- point-to-point ----------------------------------------------------------

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: int = 0) -> None:
        """Post a message; like MPI, (src, dst, tag) identifies it."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (src, tag)
        if key in self._mailbox[dst]:
            raise RuntimeError(f"unreceived message already pending for "
                               f"dst={dst} from src={src} tag={tag}")
        payload = np.ascontiguousarray(payload)
        self._mailbox[dst][key] = payload
        self.stats.record(src, dst, payload.nbytes)

    def recv(self, dst: int, src: int, tag: int = 0) -> np.ndarray:
        self._check_rank(src)
        self._check_rank(dst)
        try:
            return self._mailbox[dst].pop((src, tag))
        except KeyError:
            raise RuntimeError(f"no message for dst={dst} from src={src} "
                               f"tag={tag}") from None

    def pending(self, dst: int) -> List:
        return sorted(self._mailbox[dst].keys())

    # -- collectives -------------------------------------------------------------

    def allreduce(self, per_rank_values: Sequence, op: str = "sum"):
        """Reduce one value per rank, returning the reduced scalar/array.

        ``per_rank_values`` must have exactly one entry per rank (the
        caller is the "program" driving all ranks through the collective).
        """
        if len(per_rank_values) != self.nranks:
            raise ValueError(f"allreduce needs {self.nranks} values, got "
                             f"{len(per_rank_values)}")
        self.stats.collectives += 1
        arr = [np.asarray(v) for v in per_rank_values]
        if op == "sum":
            return sum(arr[1:], arr[0].copy())
        if op == "max":
            out = arr[0].copy()
            for a in arr[1:]:
                out = np.maximum(out, a)
            return out
        if op == "min":
            out = arr[0].copy()
            for a in arr[1:]:
                out = np.minimum(out, a)
            return out
        raise ValueError(f"unknown allreduce op {op!r}")

    def alltoall_counts(self, counts: np.ndarray) -> np.ndarray:
        """``counts[src, dst]`` → per-destination receive counts
        (``MPI_Alltoall`` on message sizes, used before particle moves)."""
        counts = np.asarray(counts)
        if counts.shape != (self.nranks, self.nranks):
            raise ValueError("counts must be (nranks, nranks)")
        self.stats.collectives += 1
        return counts.T.copy()

    def barrier(self) -> None:
        self.stats.collectives += 1

    def swap_stats(self, stats: CommStats) -> CommStats:
        """Redirect traffic accounting (e.g. to separate solver-library
        traffic from PIC halo/migration traffic); returns the old stats."""
        old = self.stats
        self.stats = stats
        return old

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.nranks:
            raise IndexError(f"rank {r} out of range (nranks={self.nranks})")

    def __repr__(self) -> str:
        return f"<SimComm nranks={self.nranks}>"
