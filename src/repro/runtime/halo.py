"""Halo construction and exchange (owner-compute model).

Following OP2/OP-PIC: the mesh is partitioned by cells; each rank holds
its owned cells plus one layer of halo (ghost) cells, and the nodes its
local cells reference (a node is owned by the lowest rank among its
adjacent cells' owners).  Two exchange patterns cover all loops:

* **push** (owner → ghost): after a field solve, updated values on owned
  elements refresh the neighbours' ghosts (for indirect READs);
* **reduce** (ghost → owner): after a particle-deposit loop, increments
  accumulated into ghost rows are sent to and added at the owner, then
  ghosts are zeroed — exactly the node-halo flow of Figure 2(a).

All plans are built once (static mesh), as in the paper.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core import tracing
from .comm import SimComm

__all__ = ["RankMesh", "HaloPlan", "build_rank_meshes",
           "push_cell_halos", "push_node_halos", "push_halos_grouped",
           "reduce_cell_halos", "reduce_node_halos"]


@dataclass
class RankMesh:
    """One rank's local view of the partitioned mesh."""

    rank: int
    #: global ids of local cells, owned first then halo
    cells_global: np.ndarray
    n_owned_cells: int
    #: owner rank of every local cell
    cell_owner_local: np.ndarray
    #: local cell-to-cell map (−1 where the neighbour is not local)
    local_c2c: np.ndarray
    #: True for halo cells — the particle mover's stop mask
    foreign_cell_mask: np.ndarray
    #: global ids of local nodes, owned first then ghost
    nodes_global: np.ndarray = field(default=None)
    n_owned_nodes: int = 0
    #: local cell-to-node map over local node ids
    local_c2n: np.ndarray = field(default=None)

    @property
    def n_local_cells(self) -> int:
        return len(self.cells_global)

    @property
    def n_halo_cells(self) -> int:
        return self.n_local_cells - self.n_owned_cells

    @property
    def n_local_nodes(self) -> int:
        return 0 if self.nodes_global is None else len(self.nodes_global)


@dataclass
class HaloPlan:
    """Per-rank-pair gather/scatter index lists for halo traffic.

    ``cell_push[(s, r)] = (src_local_in_s, dst_local_in_r)`` etc.  The
    node lists serve both directions: push uses them as written, reduce
    runs them backwards.
    """

    nranks: int
    cell_push: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] \
        = field(default_factory=dict)
    node_push: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] \
        = field(default_factory=dict)
    #: global cell id → (owner rank, owner-local index); for migration
    cell_home: np.ndarray = field(default=None)

    def neighbours_of(self, rank: int) -> List[int]:
        out = set()
        for (s, r) in list(self.cell_push) + list(self.node_push):
            if s == rank:
                out.add(r)
            if r == rank:
                out.add(s)
        return sorted(out)


def build_rank_meshes(c2c: np.ndarray, cell_owner: np.ndarray,
                      nranks: int, c2n: np.ndarray = None,
                      halo_mode: str = "face",
                      ) -> Tuple[List[RankMesh], HaloPlan]:
    """Partition a global mesh into per-rank local meshes plus a halo plan.

    This performs what OP-PIC's ``opp_partition`` does from a single
    set's rank assignment: derive every other set's distribution, local
    numberings, and halo exchange lists.

    ``halo_mode``: ``"face"`` imports the one-deep face-neighbour layer
    (sufficient for particle moves and ghost reads through the adjacency
    map); ``"vertex"`` imports every foreign cell sharing a *node* with
    an owned cell (requires ``c2n``) — the exec halo needed for OP2-style
    redundant computation, where a loop over owned+halo cells completes
    all contributions to owned nodes locally, with no reduction.
    """
    if halo_mode not in ("face", "vertex"):
        raise ValueError(f"halo_mode must be 'face' or 'vertex', "
                         f"got {halo_mode!r}")
    if halo_mode == "vertex" and c2n is None:
        raise ValueError("vertex halos need the cell-to-node map")
    n_cells = c2c.shape[0]
    cell_owner = np.asarray(cell_owner, dtype=np.int64)
    if cell_owner.shape != (n_cells,):
        raise ValueError("cell_owner must assign every cell")
    if cell_owner.min() < 0 or cell_owner.max() >= nranks:
        raise ValueError("cell_owner contains out-of-range ranks")

    node_owner = None
    if c2n is not None:
        n_nodes = int(c2n.max()) + 1
        node_owner = np.full(n_nodes, nranks, dtype=np.int64)
        np.minimum.at(node_owner,
                      c2n.ravel(),
                      np.repeat(cell_owner, c2n.shape[1]))

    # owner-local index of every cell (position within its owner's owned list)
    owner_local = np.empty(n_cells, dtype=np.int64)
    owned_lists = []
    for r in range(nranks):
        owned = np.flatnonzero(cell_owner == r)
        owner_local[owned] = np.arange(owned.size)
        owned_lists.append(owned)
    cell_home = np.stack([cell_owner, owner_local], axis=1)

    meshes: List[RankMesh] = []
    cell_g2l_all = []
    node_g2l_all = []
    # for vertex halos: node -> adjacent cells (built once)
    node_cells = None
    if halo_mode == "vertex":
        n_nodes_v = int(c2n.max()) + 1
        order = np.argsort(c2n.ravel(), kind="stable")
        flat_cells = np.repeat(np.arange(n_cells), c2n.shape[1])[order]
        sorted_nodes = c2n.ravel()[order]
        starts = np.searchsorted(sorted_nodes, np.arange(n_nodes_v))
        ends = np.searchsorted(sorted_nodes, np.arange(n_nodes_v),
                               side="right")
        node_cells = (flat_cells, starts, ends)

    for r in range(nranks):
        owned = owned_lists[r]
        if halo_mode == "vertex":
            flat_cells, starts, ends = node_cells
            my_nodes = np.unique(c2n[owned].ravel())
            touching = np.concatenate(
                [flat_cells[starts[v]:ends[v]] for v in my_nodes]) \
                if my_nodes.size else np.empty(0, dtype=np.int64)
            halo = np.unique(touching[cell_owner[touching] != r])
        else:
            nbrs = c2c[owned].ravel()
            nbrs = nbrs[nbrs >= 0]
            halo = np.unique(nbrs[cell_owner[nbrs] != r])
        cells_global = np.concatenate([owned, halo])
        g2l = np.full(n_cells, -1, dtype=np.int64)
        g2l[cells_global] = np.arange(cells_global.size)
        local_c2c = np.where(c2c[cells_global] >= 0,
                             g2l[c2c[cells_global]], -1)
        foreign = np.zeros(cells_global.size, dtype=bool)
        foreign[owned.size:] = True

        rm = RankMesh(rank=r, cells_global=cells_global,
                      n_owned_cells=owned.size,
                      cell_owner_local=cell_owner[cells_global],
                      local_c2c=local_c2c,
                      foreign_cell_mask=foreign)

        if c2n is not None:
            ref_nodes = np.unique(c2n[cells_global].ravel())
            owned_nodes = ref_nodes[node_owner[ref_nodes] == r]
            ghost_nodes = ref_nodes[node_owner[ref_nodes] != r]
            nodes_global = np.concatenate([owned_nodes, ghost_nodes])
            ng2l = np.full(n_nodes, -1, dtype=np.int64)
            ng2l[nodes_global] = np.arange(nodes_global.size)
            rm.nodes_global = nodes_global
            rm.n_owned_nodes = owned_nodes.size
            rm.local_c2n = ng2l[c2n[cells_global]]
            node_g2l_all.append(ng2l)
        cell_g2l_all.append(g2l)
        meshes.append(rm)

    plan = HaloPlan(nranks=nranks, cell_home=cell_home)

    # cell push lists: ghost cells of r owned by s
    for r, rm in enumerate(meshes):
        halo_global = rm.cells_global[rm.n_owned_cells:]
        halo_owner = cell_owner[halo_global]
        for s in np.unique(halo_owner):
            sel = halo_global[halo_owner == s]
            src = cell_g2l_all[s][sel]
            dst = cell_g2l_all[r][sel]
            plan.cell_push[(int(s), r)] = (src, dst)

    # node push lists: ghost nodes of r owned by s
    if c2n is not None:
        for r, rm in enumerate(meshes):
            ghost_global = rm.nodes_global[rm.n_owned_nodes:]
            ghost_owner = node_owner[ghost_global]
            for s in np.unique(ghost_owner):
                sel = ghost_global[ghost_owner == s]
                src = node_g2l_all[s][sel]
                dst = node_g2l_all[r][sel]
                if (src < 0).any():
                    raise RuntimeError(
                        "halo plan inconsistency: node owner does not hold "
                        "a node it owns — partition is disconnected at "
                        f"rank pair ({s},{r})")
                plan.node_push[(int(s), r)] = (src, dst)

    return meshes, plan


# -- exchange operations -------------------------------------------------------


def _defer(op: str, dats: Sequence, plan: HaloPlan, comm: SimComm) -> bool:
    """Hand the push to an active program trace (it returns to us through
    :func:`push_halos_grouped` / the eager functions at flush time)."""
    if not tracing.active:
        return False
    tracer = tracing.current()
    return tracer is not None and tracer.defer_exchange(op, dats, plan,
                                                        comm)


def push_cell_halos(dats: Sequence, plan: HaloPlan, comm: SimComm) -> None:
    """Owner → ghost refresh of one cell dat per rank (``dats[r]``)."""
    if _defer("cell_push", dats, plan, comm):
        return
    _push(dats, plan.cell_push, comm, tag=1)


def push_node_halos(dats: Sequence, plan: HaloPlan, comm: SimComm) -> None:
    """Owner → ghost refresh of one node dat per rank."""
    if _defer("node_push", dats, plan, comm):
        return
    _push(dats, plan.node_push, comm, tag=2)


def push_halos_grouped(op: str, dat_lists: Sequence[Sequence],
                       plan: HaloPlan, comm: SimComm) -> None:
    """Coalesced owner → ghost refresh of several fields over one plan.

    The program optimizer batches adjacent pushes of the same kind into
    one call here: per neighbour pair the per-field frames concatenate
    column-wise into a single fatter message (fewer frames, same payload
    bytes for float64 fields).  Values travel as float64, matching the
    particle migration packer; integer fields are exact below 2**53.
    """
    lists = plan.cell_push if op == "cell_push" else plan.node_push
    tag = 1 if op == "cell_push" else 2
    for (s, r), (src, _dst) in lists.items():
        if comm.is_local(s):
            frame = np.concatenate(
                [np.asarray(dats[s].data[src], dtype=np.float64)
                 for dats in dat_lists], axis=1)
            comm.send(s, r, frame, tag=tag)
    for (s, r), (_src, dst) in lists.items():
        if comm.is_local(r):
            buf = comm.recv(r, s, tag=tag)
            col = 0
            for dats in dat_lists:
                d = dats[r]
                width = d.dim
                d.data[dst] = buf[:, col:col + width].astype(d.dtype,
                                                             copy=False)
                col += width


def reduce_cell_halos(dats: Sequence, plan: HaloPlan, comm: SimComm) -> None:
    """Ghost → owner accumulation for cell dats (then ghosts zeroed).

    Needed by electromagnetic codes where the fused move+deposit loop
    increments current into halo cells a particle crossed before pausing
    for migration.
    """
    for (s, r), (src, dst) in plan.cell_push.items():
        if comm.is_local(r):
            buf = dats[r].data[dst].copy()
            comm.send(r, s, buf, tag=4)
            dats[r].data[dst] = 0.0
    for (s, r), (src, dst) in plan.cell_push.items():
        if comm.is_local(s):
            buf = comm.recv(s, r, tag=4)
            dats[s].data[src] += buf


def reduce_node_halos(dats: Sequence, plan: HaloPlan, comm: SimComm) -> None:
    """Ghost → owner accumulation (then ghosts zeroed).

    The completion step of a particle-deposit loop: contributions written
    into rank r's node ghosts travel to the owner and are added there.
    """
    for (s, r), (src, dst) in plan.node_push.items():
        # ghosts live on r; owner is s — run the list backwards
        if comm.is_local(r):
            buf = dats[r].data[dst].copy()
            comm.send(r, s, buf, tag=3)
            dats[r].data[dst] = 0.0
    for (s, r), (src, dst) in plan.node_push.items():
        if comm.is_local(s):
            buf = comm.recv(s, r, tag=3)
            dats[s].data[src] += buf


def _push(dats: Sequence, lists: Dict, comm: SimComm, tag: int) -> None:
    # ``dats`` is rank-indexed; under an SPMD transport only the resident
    # rank's entry is populated, so every access is locality-guarded.
    # Iteration follows the plan's (deterministic) insertion order on all
    # ranks, which keeps receive-side application order — and therefore
    # floating-point results — identical to the simulated execution.
    for (s, r), (src, dst) in lists.items():
        if comm.is_local(s):
            comm.send(s, r, dats[s].data[src].copy(), tag=tag)
    for (s, r), (src, dst) in lists.items():
        if comm.is_local(r):
            dats[r].data[dst] = comm.recv(r, s, tag=tag)
