"""Particle migration between ranks (paper §3.2.2, multi-hop case).

When a particle's walk enters a halo cell, the owning rank must take over.
The flow implemented here is the paper's:

1. each rank runs its move loop with the halo cells marked *foreign*;
   particles stopping there are flagged for communication;
2. flagged particles' dat rows are **packed** into one buffer per
   destination rank (fewer, larger MPI messages);
3. packing leaves **holes** in the particle dats, filled by shifting data
   from the end of each dat (``ParticleSet.remove_particles``) — in the
   reference implementation this overlaps with communication;
4. receivers **unpack** to the end of their dats and *resume the move*
   for just the received particles (``OPP_ITERATE_INJECTED``-style);
5. repeat until no rank has particles in flight (an allreduce decides).
"""
from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from ..core.context import Context, push_context
from ..core.dats import Dat
from ..core.maps import Map
from ..core.move import MoveLoop, MoveResult
from ..core.sets import ParticleSet
from .comm import SimComm
from .halo import HaloPlan, RankMesh

__all__ = ["pack_particles", "migrate", "mpi_particle_move"]

_TAG_PAYLOAD = 10
_TAG_CELLS = 11


def pack_particles(dats: Sequence[Dat], rows: np.ndarray) -> np.ndarray:
    """Pack the given particle rows of all dats into one (n, Σdim) buffer."""
    if not len(dats):
        raise ValueError("nothing to pack: empty dat list")
    return np.concatenate([np.asarray(d.data[rows], dtype=np.float64)
                           for d in dats], axis=1)


def unpack_particles(dats: Sequence[Dat], rows: slice,
                     buffer: np.ndarray) -> None:
    col = 0
    for d in dats:
        d.data[rows] = buffer[:, col:col + d.dim].astype(d.dtype, copy=False)
        col += d.dim


def migrate(comm: SimComm, plan: HaloPlan, meshes: Sequence[RankMesh],
            psets: Sequence[ParticleSet], dats: Sequence[Sequence[Dat]],
            results: Sequence[Optional[MoveResult]],
            ) -> List[Optional[np.ndarray]]:
    """One round of pack → hole-fill → exchange → unpack.

    ``dats[r]`` lists rank r's particle dats in a consistent order across
    ranks.  Returns, per rank, the indices of newly received particles
    (``None`` when a rank received nothing).
    """
    nranks = comm.nranks
    counts = np.zeros((nranks, nranks), dtype=np.int64)
    packed = {}

    for r in comm.local_ranks:
        res = results[r]
        if res is None or res.n_foreign == 0:
            continue
        global_cells = meshes[r].cells_global[res.foreign_cells]
        dest_ranks = plan.cell_home[global_cells, 0]
        dest_cells = plan.cell_home[global_cells, 1]
        for d in np.unique(dest_ranks):
            sel = dest_ranks == d
            rows = res.foreign_particles[sel]
            counts[r, d] = rows.size
            packed[(r, int(d))] = (pack_particles(dats[r], rows),
                                   dest_cells[sel])

    # hole filling: deferred removals + everything packed out
    for r in comm.local_ranks:
        res = results[r]
        if res is None:
            continue
        doomed = np.concatenate([res.foreign_particles,
                                 res.removed_indices])
        if doomed.size:
            psets[r].remove_particles(doomed)

    recv_counts = comm.alltoall_counts(counts)
    for (r, d), (buf, cells) in packed.items():
        comm.send(r, d, buf, tag=_TAG_PAYLOAD)
        comm.send(r, d, cells, tag=_TAG_CELLS)

    received: List[Optional[np.ndarray]] = [None] * nranks
    for d in comm.local_ranks:
        total = int(recv_counts[d].sum())
        if total == 0:
            continue
        start = psets[d].size
        for s in range(nranks):
            if recv_counts[d, s] == 0:
                continue
            buf = comm.recv(d, s, tag=_TAG_PAYLOAD)
            cells = comm.recv(d, s, tag=_TAG_CELLS)
            sl = psets[d].add_particles(buf.shape[0], cell_indices=cells)
            unpack_particles(dats[d], sl, buf)
        received[d] = np.arange(start, psets[d].size, dtype=np.int64)
    return received


def mpi_particle_move(comm: SimComm, plan: HaloPlan,
                      meshes: Sequence[RankMesh],
                      contexts: Sequence[Context],
                      kernel, name: str,
                      psets: Sequence[ParticleSet],
                      c2c_maps: Sequence[Map],
                      p2c_maps: Sequence[Map],
                      args_per_rank: Sequence[Sequence],
                      exchange_dats: Sequence[Sequence[Dat]],
                      max_hops: int = 1000,
                      max_rounds: int = 64) -> List[MoveResult]:
    """The full distributed ``opp_particle_move``.

    Runs every rank's move loop (halo cells as stop markers), migrates
    particles that crossed rank boundaries, and resumes their walk at the
    destination until no particle is in flight anywhere.  Per-rank perf is
    recorded into each rank's context.
    """
    nranks = comm.nranks
    totals = [MoveResult() for _ in range(nranks)]
    pending: List[Optional[np.ndarray]] = [None] * nranks
    first = True

    for _ in range(max_rounds):
        results: List[Optional[MoveResult]] = [None] * nranks
        for r in comm.local_ranks:
            if not first and pending[r] is None:
                continue
            loop = MoveLoop(kernel, name, psets[r], c2c_maps[r],
                            p2c_maps[r], args_per_rank[r],
                            max_hops=max_hops, only_indices=pending[r])
            loop.foreign_cell_mask = meshes[r].foreign_cell_mask
            loop.defer_removal = True
            t0 = time.perf_counter()
            with push_context(contexts[r]):
                res = contexts[r].backend.execute_move(loop)
            dt = time.perf_counter() - t0
            fpe = loop.kernel.flops_per_elem or 0.0
            contexts[r].perf.record_loop(
                name, n=psets[r].size, seconds=dt,
                flops=fpe * res.total_hops,
                nbytes=loop.bytes_per_hop() * res.total_hops,
                indirect_inc=any(a.is_indirect and
                                 a.access.name == "INC"
                                 for a in loop.args),
                hops=res.total_hops, is_move=True,
                collisions=res.max_collisions,
                branches=loop.kernel.branch_count())
            results[r] = res
            totals[r].total_hops += res.total_hops
            totals[r].n_removed += res.n_removed
        first = False

        in_flight = comm.allreduce(
            [0 if res is None else res.n_foreign for res in results], "sum")
        pending = migrate(comm, plan, meshes, psets, exchange_dats, results)
        if int(in_flight) == 0:
            return totals
    raise RuntimeError(f"distributed move {name!r} did not drain after "
                       f"{max_rounds} migration rounds")
