"""OP-PIC-style key=value configuration files.

The reference apps are driven by plain-text config files
(``<app_binary> <config_file>``); this parser accepts the same shape::

    # comment
    num_steps = 250
    plasma_den = 1.0e18
    use_dh = true
    mesh   = box_48000.dat

Values are coerced to int, float, bool or str (in that order of
preference).  ``load_config`` can overlay the parsed values onto a
dataclass config (``FemPicConfig`` / ``CabanaConfig``), ignoring keys the
dataclass does not define unless ``strict`` is set.
"""
from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Union

__all__ = ["parse_config_text", "load_config", "apply_to_dataclass"]

_BOOLS = {"true": True, "yes": True, "on": True,
          "false": False, "no": False, "off": False}


def _coerce(raw: str):
    raw = raw.strip()
    low = raw.lower()
    if low in _BOOLS:
        return _BOOLS[low]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def parse_config_text(text: str) -> Dict[str, object]:
    """Parse key=value lines; '#' starts a comment; blank lines ignored."""
    out: Dict[str, object] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        if "=" not in body:
            raise ValueError(f"config line {lineno}: expected key = value, "
                             f"got {line!r}")
        key, _, value = body.partition("=")
        key = key.strip()
        if not key:
            raise ValueError(f"config line {lineno}: empty key")
        out[key] = _coerce(value)
    return out


def load_config(path: Union[str, Path]) -> Dict[str, object]:
    return parse_config_text(Path(path).read_text())


def apply_to_dataclass(values: Dict[str, object], cfg,
                       strict: bool = False):
    """Overlay parsed values onto a dataclass config, returning a copy."""
    names = {f.name for f in dataclasses.fields(cfg)}
    known = {k: v for k, v in values.items() if k in names}
    unknown = set(values) - names
    if strict and unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    return dataclasses.replace(cfg, **known)
