"""Legacy-VTK output for visualization.

Writes ASCII legacy ``.vtk`` files (readable by ParaView/VisIt — the
tools typically used with the paper's applications):

* :func:`write_vtk_mesh` — the tetrahedral mesh with cell and point data
  (e.g. electric field per cell, potential per node);
* :func:`write_vtk_particles` — the particle cloud as VTK vertices with
  per-particle attributes (velocity, weights).
"""
from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["write_vtk_mesh", "write_vtk_particles"]

_VTK_TET = 10
_VTK_VERTEX = 1


def _header(title: str) -> list:
    return ["# vtk DataFile Version 3.0", title[:255], "ASCII",
            "DATASET UNSTRUCTURED_GRID"]


def _points_block(points: np.ndarray) -> list:
    lines = [f"POINTS {len(points)} double"]
    lines += [f"{p[0]:.9g} {p[1]:.9g} {p[2]:.9g}" for p in points]
    return lines


def _data_blocks(kind: str, n: int,
                 fields: Optional[Dict[str, np.ndarray]]) -> list:
    if not fields:
        return []
    lines = [f"{kind} {n}"]
    for name, arr in fields.items():
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[0] != n:
            raise ValueError(f"field {name!r} has {arr.shape[0]} rows, "
                             f"expected {n}")
        if arr.shape[1] == 3:
            lines.append(f"VECTORS {name} double")
            lines += [f"{v[0]:.9g} {v[1]:.9g} {v[2]:.9g}" for v in arr]
        else:
            for c in range(arr.shape[1]):
                suffix = f"_{c}" if arr.shape[1] > 1 else ""
                lines.append(f"SCALARS {name}{suffix} double 1")
                lines.append("LOOKUP_TABLE default")
                lines += [f"{v:.9g}" for v in arr[:, c]]
    return lines


def write_vtk_mesh(path: Union[str, Path], points: np.ndarray,
                   cells: np.ndarray,
                   cell_data: Optional[Dict[str, np.ndarray]] = None,
                   point_data: Optional[Dict[str, np.ndarray]] = None,
                   title: str = "repro mesh") -> Path:
    """Write a tetrahedral mesh with optional cell/point fields."""
    points = np.asarray(points, dtype=np.float64)
    cells = np.asarray(cells, dtype=np.int64)
    if cells.ndim != 2 or cells.shape[1] != 4:
        raise ValueError("cells must be (ncells, 4) tetrahedra")
    lines = _header(title) + _points_block(points)
    n = cells.shape[0]
    lines.append(f"CELLS {n} {n * 5}")
    lines += ["4 " + " ".join(str(int(v)) for v in c) for c in cells]
    lines.append(f"CELL_TYPES {n}")
    lines += [str(_VTK_TET)] * n
    lines += _data_blocks("CELL_DATA", n, cell_data)
    lines += _data_blocks("POINT_DATA", len(points), point_data)
    path = Path(path)
    path.write_text("\n".join(lines) + "\n")
    return path


def write_vtk_particles(path: Union[str, Path], positions: np.ndarray,
                        fields: Optional[Dict[str, np.ndarray]] = None,
                        title: str = "repro particles") -> Path:
    """Write a particle cloud as VTK vertex cells with attributes."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    n = positions.shape[0]
    lines = _header(title) + _points_block(positions)
    lines.append(f"CELLS {n} {n * 2}")
    lines += [f"1 {i}" for i in range(n)]
    lines.append(f"CELL_TYPES {n}")
    lines += [str(_VTK_VERTEX)] * n
    lines += _data_blocks("POINT_DATA", n, fields)
    path = Path(path)
    path.write_text("\n".join(lines) + "\n")
    return path
