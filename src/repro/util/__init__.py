"""Utilities: config-file parsing and seeded RNG helpers."""
from .config import apply_to_dataclass, load_config, parse_config_text
from .rng import rank_rng

__all__ = ["parse_config_text", "load_config", "apply_to_dataclass",
           "rank_rng"]
