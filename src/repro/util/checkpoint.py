"""Checkpoint / restart for OP-PIC simulations.

Long-running HPC PIC codes checkpoint their full state; here a checkpoint
captures every dat, the particle-to-cell map, the particle set size and
the RNG state of a simulation object, and restores them bit-exactly so a
restarted run continues the original trajectory.

Works with any object that exposes its DSL handles as attributes (all
four single-node apps do) *or* as mapping entries (the distributed twod
app's per-rank dicts); the dats and maps are discovered automatically.
The payload/restore helpers are shared with the distributed per-rank
snapshots of :mod:`repro.elastic.recover`.
"""
from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from typing import Union

import numpy as np

from ..core.dats import Dat
from ..core.maps import Map
from ..core.sets import ParticleSet, Set

__all__ = ["save_checkpoint", "load_checkpoint", "state_payload",
           "restore_state", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = 1
_FORMAT = CHECKPOINT_FORMAT


def _handles(sim):
    """Discover the object's sets, dats and particle maps (the object's
    DSL handles may be attributes or mapping entries)."""
    items = sim.items() if isinstance(sim, Mapping) else vars(sim).items()
    sets, dats, pmaps = {}, {}, {}
    for name, obj in items:
        if isinstance(obj, Dat):
            dats[name] = obj
        elif isinstance(obj, Map) and obj.is_particle_map:
            pmaps[name] = obj
        elif isinstance(obj, Set):
            sets[name] = obj
    if not dats:
        raise ValueError("object exposes no DSL dats; nothing to "
                         "checkpoint")
    return sets, dats, pmaps


def state_payload(sim) -> dict:
    """The restartable state of one object's DSL handles as a flat
    name → array dict (``set__``/``dat__``/``pmap__`` keys)."""
    sets, dats, pmaps = _handles(sim)
    payload = {}
    for name, s in sets.items():
        payload[f"set__{name}"] = np.array([s.size, s.owned_size])
    for name, d in dats.items():
        payload[f"dat__{name}"] = d.data.copy()
    for name, m in pmaps.items():
        payload[f"pmap__{name}"] = m.p2c.copy()
    return payload


def restore_state(sim, data, source: str = "checkpoint") -> None:
    """Restore an object's DSL handles from a :func:`state_payload`-style
    mapping (``data`` may be an open npz file or a plain dict)."""
    sets, dats, pmaps = _handles(sim)
    files = data.files if hasattr(data, "files") else data.keys()
    # restore particle-set sizes first so dat views cover the rows
    for name, s in sets.items():
        key = f"set__{name}"
        if key not in files:
            raise ValueError(f"{source}: checkpoint lacks set {name!r} — "
                             "configuration mismatch")
        size, owned = (int(v) for v in data[key])
        if isinstance(s, ParticleSet):
            s.ensure_capacity(size)
            s.size = size
            s.injected_start = size
            s.order.invalidate()
        elif s.size != size:
            raise ValueError(f"{source}: mesh set {name!r} has {s.size} "
                             f"elements, checkpoint has {size}")
    for name, d in dats.items():
        arr = data[f"dat__{name}"]
        d.data[:] = arr
    for name, m in pmaps.items():
        m.p2c[:] = data[f"pmap__{name}"]


def save_checkpoint(sim, path: Union[str, Path]) -> Path:
    """Write the full restartable state of ``sim`` to ``path`` (.npz)."""
    path = Path(path)
    payload = {"__format__": np.array([_FORMAT]),
               "__step__": np.array([getattr(sim, "step_count", 0)])}
    payload.update(state_payload(sim))
    rng = getattr(sim, "rng", None)
    if rng is not None:
        import pickle
        payload["__rng__"] = np.frombuffer(
            pickle.dumps(rng.bit_generator.state), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(sim, path: Union[str, Path]) -> int:
    """Restore ``sim`` (a freshly constructed simulation with the same
    configuration) from a checkpoint; returns the restored step count."""
    path = Path(path)
    with np.load(path) as data:
        if int(data["__format__"][0]) != _FORMAT:
            raise ValueError(f"{path}: unsupported checkpoint format "
                             f"{int(data['__format__'][0])} (expected "
                             f"{_FORMAT})")
        restore_state(sim, data, source=str(path))
        if "__rng__" in data.files and getattr(sim, "rng", None) is not None:
            import pickle
            sim.rng.bit_generator.state = pickle.loads(
                data["__rng__"].tobytes())
        step = int(data["__step__"][0])
    if hasattr(sim, "step_count"):
        sim.step_count = step
    return step
