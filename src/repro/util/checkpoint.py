"""Checkpoint / restart for OP-PIC simulations.

Long-running HPC PIC codes checkpoint their full state; here a checkpoint
captures every dat, the particle-to-cell map, the particle set size and
the RNG state of a simulation object, and restores them bit-exactly so a
restarted run continues the original trajectory.

Works with any object that exposes its DSL handles as attributes (both
``FemPicSimulation`` and ``CabanaSimulation`` do); the dats and maps are
discovered automatically.
"""
from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.dats import Dat
from ..core.maps import Map
from ..core.sets import ParticleSet, Set

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT = 1


def _handles(sim):
    """Discover the simulation's sets, dats and particle maps."""
    sets, dats, pmaps = {}, {}, {}
    for name in vars(sim):
        obj = getattr(sim, name)
        if isinstance(obj, Dat):
            dats[name] = obj
        elif isinstance(obj, Map) and obj.is_particle_map:
            pmaps[name] = obj
        elif isinstance(obj, Set):
            sets[name] = obj
    if not dats:
        raise ValueError("object exposes no DSL dats; nothing to "
                         "checkpoint")
    return sets, dats, pmaps


def save_checkpoint(sim, path: Union[str, Path]) -> Path:
    """Write the full restartable state of ``sim`` to ``path`` (.npz)."""
    path = Path(path)
    sets, dats, pmaps = _handles(sim)
    payload = {"__format__": np.array([_FORMAT]),
               "__step__": np.array([getattr(sim, "step_count", 0)])}
    for name, s in sets.items():
        payload[f"set__{name}"] = np.array([s.size, s.owned_size])
    for name, d in dats.items():
        payload[f"dat__{name}"] = d.data.copy()
    for name, m in pmaps.items():
        payload[f"pmap__{name}"] = m.p2c.copy()
    rng = getattr(sim, "rng", None)
    if rng is not None:
        import pickle
        payload["__rng__"] = np.frombuffer(
            pickle.dumps(rng.bit_generator.state), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(sim, path: Union[str, Path]) -> int:
    """Restore ``sim`` (a freshly constructed simulation with the same
    configuration) from a checkpoint; returns the restored step count."""
    path = Path(path)
    sets, dats, pmaps = _handles(sim)
    with np.load(path) as data:
        if int(data["__format__"][0]) != _FORMAT:
            raise ValueError(f"{path}: unsupported checkpoint format")
        # restore particle-set sizes first so dat views cover the rows
        for name, s in sets.items():
            key = f"set__{name}"
            if key not in data.files:
                raise ValueError(f"{path}: checkpoint lacks set {name!r} — "
                                 "configuration mismatch")
            size, owned = (int(v) for v in data[key])
            if isinstance(s, ParticleSet):
                s.ensure_capacity(size)
                s.size = size
                s.injected_start = size
            elif s.size != size:
                raise ValueError(f"{path}: mesh set {name!r} has {s.size} "
                                 f"elements, checkpoint has {size}")
        for name, d in dats.items():
            arr = data[f"dat__{name}"]
            d.data[:] = arr
        for name, m in pmaps.items():
            m.p2c[:] = data[f"pmap__{name}"]
        if "__rng__" in data.files and getattr(sim, "rng", None) is not None:
            import pickle
            sim.rng.bit_generator.state = pickle.loads(
                data["__rng__"].tobytes())
        step = int(data["__step__"][0])
    if hasattr(sim, "step_count"):
        sim.step_count = step
    return step
