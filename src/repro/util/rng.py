"""Deterministic per-rank random streams.

Distributed runs need independent but reproducible streams per rank;
``np.random.SeedSequence.spawn`` provides exactly that without the
classic ``seed + rank`` correlation pitfalls.
"""
from __future__ import annotations

import numpy as np

__all__ = ["rank_rng"]


def rank_rng(seed: int, rank: int, nranks: int) -> np.random.Generator:
    """Generator for ``rank`` of ``nranks`` derived from one master seed."""
    if not 0 <= rank < nranks:
        raise IndexError(f"rank {rank} out of range for {nranks} ranks")
    children = np.random.SeedSequence(seed).spawn(nranks)
    return np.random.default_rng(children[rank])
