"""2-D triangular meshes.

The NEPTUNE programme the paper serves also maintains 1-D and 2-D
particle models (its ExCALIBUR reports, cited in §2); this module is the
2-D substrate: a square domain triangulated into right triangles, with
the same opposite-vertex adjacency convention the 3-D walk uses —
``c2c[c, i]`` is the neighbour across the edge opposite vertex ``i``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["TriMesh", "square_tri_mesh", "build_tri_c2c"]

# edge i of a triangle is opposite vertex i
_TRI_EDGES = np.array([[1, 2], [0, 2], [0, 1]])


def build_tri_c2c(cell2node: np.ndarray) -> np.ndarray:
    """Edge-adjacency with the opposite-vertex convention (−1 = wall)."""
    ncells = cell2node.shape[0]
    c2c = np.full((ncells, 3), -1, dtype=np.int64)
    edge_owner: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for c in range(ncells):
        nodes = cell2node[c]
        for i in range(3):
            key = tuple(sorted(nodes[_TRI_EDGES[i]]))
            other = edge_owner.pop(key, None)
            if other is None:
                edge_owner[key] = (c, i)
            else:
                oc, oi = other
                c2c[c, i] = oc
                c2c[oc, oi] = c
    return c2c


def tri_areas(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    v = points[cells]
    e1 = v[:, 1] - v[:, 0]
    e2 = v[:, 2] - v[:, 0]
    return 0.5 * (e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0])


def tri_barycentric_transforms(points: np.ndarray,
                               cells: np.ndarray) -> np.ndarray:
    """Per-cell ``[v0 (2), A (4 row-major)]`` with λ₁,₂ = A (x − v0)."""
    v = points[cells]
    v0 = v[:, 0]
    edges = np.stack([v[:, 1] - v0, v[:, 2] - v0], axis=-1)
    a = np.linalg.inv(edges)
    out = np.empty((cells.shape[0], 6))
    out[:, :2] = v0
    out[:, 2:] = a.reshape(-1, 4)
    return out


def tri_p1_gradients(points: np.ndarray,
                     cells: np.ndarray) -> np.ndarray:
    """Constant P1 gradients ``(ncells, 3, 2)``; ∇λ₀ = −Σ∇λ₁,₂."""
    xf = tri_barycentric_transforms(points, cells)
    a = xf[:, 2:].reshape(-1, 2, 2)
    grads = np.empty((cells.shape[0], 3, 2))
    grads[:, 1:, :] = a
    grads[:, 0, :] = -a.sum(axis=1)
    return grads


@dataclass
class TriMesh:
    """A triangulated 2-D domain with derived geometry."""

    points: np.ndarray       # (nnodes, 2)
    cell2node: np.ndarray    # (ncells, 3)
    tags: dict = field(default_factory=dict)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        self.cell2node = np.asarray(self.cell2node, dtype=np.int64)
        areas = tri_areas(self.points, self.cell2node)
        if (areas <= 0).any():
            raise ValueError("triangulation contains inverted or "
                             "degenerate triangles")
        self.areas = areas
        self.c2c = build_tri_c2c(self.cell2node)
        self.xforms = tri_barycentric_transforms(self.points,
                                                 self.cell2node)
        self.grads = tri_p1_gradients(self.points, self.cell2node)
        self.centroids = self.points[self.cell2node].mean(axis=1)

    @property
    def n_cells(self) -> int:
        return self.cell2node.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.points.shape[0]

    def barycentric(self, cells: np.ndarray,
                    pts: np.ndarray) -> np.ndarray:
        xf = self.xforms[cells]
        d = pts - xf[:, :2]
        a = xf[:, 2:].reshape(-1, 2, 2)
        lam12 = np.einsum("nij,nj->ni", a, d)
        lam0 = 1.0 - lam12.sum(axis=1, keepdims=True)
        return np.concatenate([lam0, lam12], axis=1)

    def locate(self, pts: np.ndarray, guesses=None,
               max_hops: int = 10_000) -> np.ndarray:
        """Barycentric walk (host-side; −1 when the point is outside)."""
        pts = np.atleast_2d(pts)
        n = pts.shape[0]
        cells = (np.zeros(n, dtype=np.int64) if guesses is None
                 else np.asarray(guesses, dtype=np.int64).copy())
        out = np.full(n, -1, dtype=np.int64)
        active = np.arange(n)
        for _ in range(max_hops):
            if active.size == 0:
                break
            lam = self.barycentric(cells[active], pts[active])
            inside = (lam >= -1e-12).all(axis=1)
            out[active[inside]] = cells[active[inside]]
            rem = active[~inside]
            if rem.size == 0:
                break
            worst = lam[~inside].argmin(axis=1)
            nxt = self.c2c[cells[rem], worst]
            off = nxt < 0
            out[rem[off]] = -1
            keep = rem[~off]
            cells[keep] = nxt[~off]
            active = keep
        return out


def square_tri_mesh(nx: int, ny: int, lx: float = 1.0,
                    ly: float = 1.0) -> TriMesh:
    """Triangulate an ``nx × ny`` square grid (2 triangles per square).

    Tags: ``boundary_nodes`` (all four walls — the grounded electrodes of
    the 2-D sheet model) and ``extent``.
    """
    if min(nx, ny) < 1:
        raise ValueError("need at least one square per dimension")
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    gy, gx = np.meshgrid(ys, xs, indexing="ij")
    points = np.stack([gx.ravel(), gy.ravel()], axis=1)

    def nid(i, j):
        return j * (nx + 1) + i

    cells = []
    for j in range(ny):
        for i in range(nx):
            n00, n10 = nid(i, j), nid(i + 1, j)
            n01, n11 = nid(i, j + 1), nid(i + 1, j + 1)
            cells.append([n00, n10, n11])
            cells.append([n00, n11, n01])
    mesh = TriMesh(points=points, cell2node=np.asarray(cells))

    on_wall = (np.isclose(points[:, 0], 0.0)
               | np.isclose(points[:, 0], lx)
               | np.isclose(points[:, 1], 0.0)
               | np.isclose(points[:, 1], ly))
    mesh.tags["boundary_nodes"] = np.flatnonzero(on_wall)
    mesh.tags["extent"] = (lx, ly)
    return mesh
