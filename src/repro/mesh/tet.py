"""Tetrahedral duct mesh generator for Mini-FEM-PIC.

The paper's Mini-FEM-PIC runs on a tetrahedral mesh "forming a duct":
faces on one end are inlet faces injecting ions, the outer wall is held at
a higher potential to confine them, and particles leaving any boundary
face are removed.  The mesh files of the artifact are not available
offline, so we generate an equivalent duct: an ``nx × ny × nz`` box grid,
each box split into six tetrahedra with the Kuhn (Freudenthal)
triangulation, which is consistent across box faces (so every interior
face is shared by exactly two tets).
"""
from __future__ import annotations

import itertools

import numpy as np

from .unstructured import UnstructuredMesh, boundary_faces

__all__ = ["duct_mesh", "KUHN_TETS"]

# The six Kuhn simplices of the unit cube: vertex paths 000 -> 111 adding
# one axis at a time, one simplex per axis permutation.
KUHN_TETS = []
for perm in itertools.permutations(range(3)):
    corners = [np.zeros(3, dtype=np.int64)]
    for axis in perm:
        nxt = corners[-1].copy()
        nxt[axis] = 1
        corners.append(nxt)
    KUHN_TETS.append(np.array(corners))


def _corner_index(ix, iy, iz, nx, ny):
    return (iz * (ny + 1) + iy) * (nx + 1) + ix


def duct_mesh(nx: int, ny: int, nz: int,
              lx: float = 1.0, ly: float = 1.0, lz: float = 4.0,
              ) -> UnstructuredMesh:
    """Build the duct: ``6 * nx * ny * nz`` tets along the z axis.

    Tags set on the returned mesh:

    ``inlet_faces``
        boundary faces lying in the z=0 plane as ``[cell, opp_vertex,
        n0, n1, n2]`` rows — particles are injected here;
    ``inlet_cells``
        the owning cell of each inlet face;
    ``inlet_nodes`` / ``wall_nodes`` / ``outlet_nodes``
        node index arrays for the Dirichlet boundary conditions of the
        field solve (inlet grounded, outer wall at the confining
        potential).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("duct needs at least one box per dimension")
    # nodes
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    zs = np.linspace(0.0, lz, nz + 1)
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
    points = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)

    # cells: 6 tets per box
    cells = []
    for iz in range(nz):
        for iy in range(ny):
            for ix in range(nx):
                base = np.array([ix, iy, iz])
                for tet in KUHN_TETS:
                    idx = [_corner_index(*(base + c), nx, ny) for c in tet]
                    cells.append(idx)
    cells = np.asarray(cells, dtype=np.int64)

    # fix orientation: make all volumes positive
    v = points[cells]
    vol6 = np.einsum("ij,ij->i",
                     v[:, 1] - v[:, 0],
                     np.cross(v[:, 2] - v[:, 0], v[:, 3] - v[:, 0]))
    flip = vol6 < 0
    cells[flip] = cells[flip][:, [0, 2, 1, 3]]

    mesh = UnstructuredMesh(points=points, cell2node=cells)

    bf = boundary_faces(cells, mesh.c2c)
    face_nodes = bf[:, 2:]
    z_of = points[:, 2]
    inlet_mask = np.all(np.isclose(z_of[face_nodes], 0.0), axis=1)
    mesh.tags["inlet_faces"] = bf[inlet_mask]
    mesh.tags["inlet_cells"] = bf[inlet_mask, 0]
    mesh.tags["boundary_faces"] = bf

    on_inlet = np.isclose(z_of, 0.0)
    on_outlet = np.isclose(z_of, lz)
    on_wall = (np.isclose(points[:, 0], 0.0) | np.isclose(points[:, 0], lx)
               | np.isclose(points[:, 1], 0.0) | np.isclose(points[:, 1], ly))
    # tags are disjoint: inlet wins over wall, wall wins over outlet
    mesh.tags["inlet_nodes"] = np.flatnonzero(on_inlet)
    mesh.tags["wall_nodes"] = np.flatnonzero(on_wall & ~on_inlet)
    mesh.tags["outlet_nodes"] = np.flatnonzero(on_outlet & ~on_inlet
                                               & ~on_wall)
    mesh.tags["extent"] = (lx, ly, lz)
    return mesh
