"""Structured overlay grids for the direct-hop (DH) particle move.

Paper §3.2.2: for DH, OP-PIC overlays two structured meshes on the
unstructured mesh — a **cell-map** from each structured bin to the
unstructured cell containing the bin centre, and a **rank-map** from each
bin to the MPI rank owning that cell.  A moving particle jumps straight to
the bin's cell (one structured lookup) and then multi-hops the last
stretch.  The overlay costs memory, which the paper mitigates by keeping
one copy per shared-memory node via MPI-RMA (see
:mod:`repro.runtime.rma`).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StructuredOverlay"]


class StructuredOverlay:
    """A uniform grid over the bounding box of an unstructured mesh.

    Parameters
    ----------
    lo, hi:
        Bounding-box corners, each length-3.
    dims:
        Number of bins per axis.
    cell_map:
        Bin → unstructured-cell index, shape ``prod(dims)``.
    rank_map:
        Bin → owning rank, same shape (``None`` on single-rank runs).
    """

    def __init__(self, lo, hi, dims, cell_map: np.ndarray,
                 rank_map: Optional[np.ndarray] = None):
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        self.dims = np.asarray(dims, dtype=np.int64)
        if (self.dims < 1).any():
            raise ValueError("overlay dims must be >= 1 per axis")
        self.cell_map = np.asarray(cell_map, dtype=np.int64)
        if self.cell_map.shape != (int(np.prod(self.dims)),):
            raise ValueError("cell_map must have prod(dims) entries")
        self.rank_map = (np.asarray(rank_map, dtype=np.int64)
                         if rank_map is not None else None)
        self.spacing = (self.hi - self.lo) / self.dims

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, mesh, bins_per_axis=16) -> "StructuredOverlay":
        """Build a cell-map overlay from an :class:`UnstructuredMesh` by
        locating each bin centre (unlocatable bins copy their nearest
        located neighbour's cell, so lookups never miss)."""
        dims = np.broadcast_to(np.asarray(bins_per_axis, dtype=np.int64),
                               (3,)).copy()
        lo = mesh.points.min(axis=0)
        hi = mesh.points.max(axis=0)
        # tiny pad so points exactly on the upper boundary bin correctly
        pad = 1e-9 * np.maximum(hi - lo, 1.0)
        lo = lo - pad
        hi = hi + pad
        spacing = (hi - lo) / dims
        kk, jj, ii = np.meshgrid(np.arange(dims[2]), np.arange(dims[1]),
                                 np.arange(dims[0]), indexing="ij")
        centres = (lo + (np.stack([ii.ravel(), jj.ravel(), kk.ravel()],
                                  axis=1) + 0.5) * spacing)
        # nearest-centroid guess accelerates the walk
        guess = np.argmin(
            ((centres[:, None, :] - mesh.centroids[None, :, :]) ** 2)
            .sum(axis=2), axis=1) if mesh.n_cells <= 4096 else None
        cell_map = mesh.locate(centres, guesses=guess)
        missing = np.flatnonzero(cell_map < 0)
        if missing.size:
            found = np.flatnonzero(cell_map >= 0)
            if found.size == 0:
                raise RuntimeError("overlay could not locate any bin centre")
            for m in missing:
                nearest = found[np.argmin(
                    ((centres[found] - centres[m]) ** 2).sum(axis=1))]
                cell_map[m] = cell_map[nearest]
        return cls(lo, hi, dims, cell_map)

    # -- lookups -----------------------------------------------------------------

    def bin_of(self, pts: np.ndarray) -> np.ndarray:
        """Flattened bin index of each point (points clipped to the box)."""
        pts = np.atleast_2d(pts)
        ijk = ((pts - self.lo) / self.spacing).astype(np.int64)
        ijk = np.clip(ijk, 0, self.dims - 1)
        return (ijk[:, 2] * self.dims[1] + ijk[:, 1]) * self.dims[0] \
            + ijk[:, 0]

    def lookup_cell(self, pts: np.ndarray) -> np.ndarray:
        """Direct-hop target cell for each point."""
        return self.cell_map[self.bin_of(pts)]

    def lookup_rank(self, pts: np.ndarray) -> np.ndarray:
        if self.rank_map is None:
            raise ValueError("overlay has no rank map (single-rank run)")
        return self.rank_map[self.bin_of(pts)]

    @property
    def nbytes(self) -> int:
        """Bookkeeping memory footprint (the DH trade-off the paper notes)."""
        total = self.cell_map.nbytes
        if self.rank_map is not None:
            total += self.rank_map.nbytes
        return total

    def with_rank_map(self, cell_owner: np.ndarray) -> "StructuredOverlay":
        """Derive the rank-map given the owning rank of every cell."""
        rank_map = np.asarray(cell_owner, dtype=np.int64)[self.cell_map]
        return StructuredOverlay(self.lo, self.hi, self.dims,
                                 self.cell_map, rank_map)
