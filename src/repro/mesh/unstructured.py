"""Generic unstructured-mesh container and connectivity builders.

OP-PIC applications declare meshes as raw sets + maps; this module is the
substrate that produces those raw arrays (the role of the mesh files in
the paper's artifact).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from . import geometry

__all__ = ["UnstructuredMesh", "build_tet_c2c", "boundary_faces"]

# face f of a tet is opposite vertex f: nodes of face f = all vertices but f
_TET_FACES = np.array([[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]])


def build_tet_c2c(cell2node: np.ndarray) -> np.ndarray:
    """Cell-to-cell adjacency for a tet mesh, ``(ncells, 4)``.

    ``c2c[c, i]`` is the cell sharing the face *opposite vertex i* of cell
    ``c`` (or -1 on the boundary) — the ordering the multi-hop walk relies
    on: the next probable cell lies across the face opposite the most
    negative barycentric coordinate.
    """
    ncells = cell2node.shape[0]
    c2c = np.full((ncells, 4), -1, dtype=np.int64)
    face_owner: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
    for c in range(ncells):
        nodes = cell2node[c]
        for i in range(4):
            key = tuple(sorted(nodes[_TET_FACES[i]]))
            other = face_owner.pop(key, None)
            if other is None:
                face_owner[key] = (c, i)
            else:
                oc, oi = other
                c2c[c, i] = oc
                c2c[oc, oi] = c
    return c2c


def boundary_faces(cell2node: np.ndarray,
                   c2c: np.ndarray) -> np.ndarray:
    """All boundary faces as ``(nfaces, 5)`` rows ``[cell, opp_vertex, n0, n1, n2]``."""
    rows = []
    for c in range(cell2node.shape[0]):
        for i in range(4):
            if c2c[c, i] == -1:
                rows.append([c, i, *cell2node[c][_TET_FACES[i]]])
    return (np.asarray(rows, dtype=np.int64)
            if rows else np.empty((0, 5), dtype=np.int64))


@dataclass
class UnstructuredMesh:
    """A tetrahedral unstructured mesh with derived geometry.

    Attributes are the raw arrays handed to ``decl_set``/``decl_map``/
    ``decl_dat`` by the applications.
    """

    points: np.ndarray          # (nnodes, 3)
    cell2node: np.ndarray       # (ncells, 4)
    c2c: np.ndarray = field(default=None)            # (ncells, 4)
    #: application tags (e.g. inlet cell ids, wall node ids)
    tags: dict = field(default_factory=dict)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        self.cell2node = np.asarray(self.cell2node, dtype=np.int64)
        if self.c2c is None:
            self.c2c = build_tet_c2c(self.cell2node)
        vols = geometry.tet_volumes(self.points, self.cell2node)
        if (vols <= 0).any():
            raise ValueError("mesh contains inverted or degenerate "
                             "tetrahedra; fix the generator's orientation")
        self.volumes = vols
        self.centroids = geometry.tet_centroids(self.points, self.cell2node)
        self.xforms = geometry.tet_barycentric_transforms(self.points,
                                                          self.cell2node)
        self.grads, _ = geometry.p1_gradients(self.points, self.cell2node)

    @property
    def n_cells(self) -> int:
        return self.cell2node.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.points.shape[0]

    def locate(self, pts: np.ndarray,
               guesses: Optional[np.ndarray] = None,
               max_hops: int = 10_000) -> np.ndarray:
        """Robust point location by barycentric walking (host-side utility
        for initialisation and tests; the DSL move kernel does the same
        walk through generated code)."""
        pts = np.atleast_2d(pts)
        n = pts.shape[0]
        cells = (np.zeros(n, dtype=np.int64) if guesses is None
                 else np.asarray(guesses, dtype=np.int64).copy())
        out = np.full(n, -1, dtype=np.int64)
        active = np.arange(n)
        for _ in range(max_hops):
            if active.size == 0:
                break
            lam = geometry.barycentric_coords(self.xforms[cells[active]],
                                              pts[active])
            inside = (lam >= -1e-12).all(axis=1)
            out[active[inside]] = cells[active[inside]]
            rem = active[~inside]
            if rem.size == 0:
                break
            worst = lam[~inside].argmin(axis=1)
            nxt = self.c2c[cells[rem], worst]
            off = nxt < 0
            out[rem[off]] = -1
            keep = rem[~off]
            cells[keep] = nxt[~off]
            active = keep
        return out
