"""Mesh file I/O.

The paper's artifact distributes Mini-FEM-PIC meshes as HDF5 or ASCII
``.dat`` files (``mesh_files`` directory); CabanaPIC generates its mesh
from configuration at runtime.  This module provides the equivalent
formats:

* a human-readable ASCII ``.dat`` (sectioned: nodes, cells, named tags),
* a compressed binary ``.npz`` (the HDF5 stand-in — numpy is the only
  binary container available offline).

Both round-trip :class:`~repro.mesh.unstructured.UnstructuredMesh`
including its application tags, so the duct can be generated once and
re-read by every run, exactly like the artifact's workflow.
"""
from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .unstructured import UnstructuredMesh

__all__ = ["write_mesh_dat", "read_mesh_dat", "write_mesh_npz",
           "read_mesh_npz", "save_mesh", "load_mesh"]

_MAGIC = "# repro unstructured tet mesh v1"


def write_mesh_dat(mesh: UnstructuredMesh, path: Union[str, Path]) -> Path:
    """Write the ASCII ``.dat`` format (sectioned, self-describing)."""
    path = Path(path)
    lines = [_MAGIC, f"nodes {mesh.n_nodes}"]
    for p in mesh.points:
        lines.append(f"{p[0]:.17g} {p[1]:.17g} {p[2]:.17g}")
    lines.append(f"cells {mesh.n_cells}")
    for c in mesh.cell2node:
        lines.append(" ".join(str(int(v)) for v in c))
    for name, value in sorted(mesh.tags.items()):
        arr = np.asarray(value)
        if arr.dtype.kind == "f":
            flat = " ".join(f"{v:.17g}" for v in arr.ravel())
            kind = "f"
        else:
            flat = " ".join(str(int(v)) for v in arr.ravel())
            kind = "i"
        shape = ",".join(str(s) for s in arr.shape)
        lines.append(f"tag {name} {kind} {shape}")
        lines.append(flat if flat else "")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_mesh_dat(path: Union[str, Path]) -> UnstructuredMesh:
    """Read the ASCII ``.dat`` format back into a mesh (geometry arrays
    such as volumes and barycentric transforms are re-derived)."""
    text = Path(path).read_text().splitlines()
    if not text or text[0].strip() != _MAGIC:
        raise ValueError(f"{path}: not a repro mesh .dat file")
    i = 1

    def expect(keyword: str):
        nonlocal i
        parts = text[i].split()
        if parts[0] != keyword:
            raise ValueError(f"{path}:{i + 1}: expected {keyword!r} "
                             f"section, got {text[i]!r}")
        i += 1
        return parts[1:]

    (n_nodes,) = expect("nodes")
    n_nodes = int(n_nodes)
    points = np.array([[float(v) for v in text[i + r].split()]
                       for r in range(n_nodes)])
    i += n_nodes
    (n_cells,) = expect("cells")
    n_cells = int(n_cells)
    cells = np.array([[int(v) for v in text[i + r].split()]
                      for r in range(n_cells)], dtype=np.int64)
    i += n_cells

    tags = {}
    while i < len(text):
        if not text[i].strip():
            i += 1
            continue
        name_kind_shape = expect("tag")
        name, kind, shape_s = name_kind_shape
        shape = tuple(int(s) for s in shape_s.split(",") if s)
        raw = text[i].split()
        i += 1
        if kind == "f":
            arr = np.array([float(v) for v in raw])
        else:
            arr = np.array([int(v) for v in raw], dtype=np.int64)
        tags[name] = arr.reshape(shape)
    mesh = UnstructuredMesh(points=points, cell2node=cells)
    # tuple-valued tags (e.g. extent) were stored as float arrays
    if "extent" in tags:
        tags["extent"] = tuple(tags["extent"].tolist())
    mesh.tags.update(tags)
    return mesh


def write_mesh_npz(mesh: UnstructuredMesh, path: Union[str, Path]) -> Path:
    """Write the binary format (the HDF5 stand-in)."""
    path = Path(path)
    payload = {"points": mesh.points, "cell2node": mesh.cell2node}
    for name, value in mesh.tags.items():
        payload[f"tag_{name}"] = np.asarray(value)
    np.savez_compressed(path, **payload)
    return path


def read_mesh_npz(path: Union[str, Path]) -> UnstructuredMesh:
    with np.load(path) as data:
        mesh = UnstructuredMesh(points=data["points"],
                                cell2node=data["cell2node"])
        for key in data.files:
            if key.startswith("tag_"):
                name = key[4:]
                value = data[key]
                mesh.tags[name] = (tuple(value.tolist())
                                   if name == "extent" else value)
    return mesh


def save_mesh(mesh: UnstructuredMesh, path: Union[str, Path]) -> Path:
    """Dispatch on suffix: ``.dat`` (ASCII) or ``.npz`` (binary)."""
    path = Path(path)
    if path.suffix == ".dat":
        return write_mesh_dat(mesh, path)
    if path.suffix == ".npz":
        return write_mesh_npz(mesh, path)
    raise ValueError(f"unknown mesh format {path.suffix!r} "
                     "(use .dat or .npz)")


def load_mesh(path: Union[str, Path]) -> UnstructuredMesh:
    path = Path(path)
    if path.suffix == ".dat":
        return read_mesh_dat(path)
    if path.suffix == ".npz":
        return read_mesh_npz(path)
    raise ValueError(f"unknown mesh format {path.suffix!r} "
                     "(use .dat or .npz)")
