"""Geometric primitives for unstructured tetrahedral meshes.

Provides the quantities Mini-FEM-PIC precomputes per cell: volumes,
centroids, and the affine barycentric transform used both for point
location during the particle move (walk towards the most negative
barycentric coordinate) and for charge weighting to nodes.

For a tetrahedron with vertices ``v0..v3`` the barycentric coordinates of
a point ``x`` are affine: ``λ_i(x) = λ_i(v0) + g_i · (x - v0)`` with
``λ_{1..3} = A (x - v0)`` and ``λ_0 = 1 - λ_1 - λ_2 - λ_3`` where ``A`` is
the inverse edge matrix.  We store ``(v0, A)`` as 12 doubles per cell —
the analogue of the mini-app's "cell determinants" dat.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["tet_volumes", "tet_centroids", "tet_barycentric_transforms",
           "barycentric_coords", "points_in_tets", "p1_gradients"]


def tet_volumes(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Signed volume of each tetrahedron ``(ncells,)``.

    ``points``: (nnodes, 3); ``cells``: (ncells, 4) node indices.
    """
    v = points[cells]
    e1 = v[:, 1] - v[:, 0]
    e2 = v[:, 2] - v[:, 0]
    e3 = v[:, 3] - v[:, 0]
    return np.einsum("ij,ij->i", e1, np.cross(e2, e3)) / 6.0


def tet_centroids(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    return points[cells].mean(axis=1)


def tet_barycentric_transforms(points: np.ndarray,
                               cells: np.ndarray) -> np.ndarray:
    """Per-cell affine transform ``(ncells, 12)``: ``[v0 (3), A (9 row-major)]``.

    ``λ_{1..3}(x) = A @ (x - v0)`` — the 12 doubles a move kernel needs to
    locate a particle within (or relative to) the cell.
    """
    v = points[cells]
    v0 = v[:, 0]
    edges = np.stack([v[:, 1] - v0, v[:, 2] - v0, v[:, 3] - v0], axis=-1)
    # edges[i] has columns (v1-v0, v2-v0, v3-v0); λ_{1..3} = edges^{-1} (x-v0)
    a = np.linalg.inv(edges)
    out = np.empty((cells.shape[0], 12))
    out[:, :3] = v0
    out[:, 3:] = a.reshape(-1, 9)
    return out


def barycentric_coords(xform: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Barycentric coordinates ``(n, 4)`` of points w.r.t. their cells.

    ``xform``: (n, 12) per-point cell transforms; ``pts``: (n, 3).
    """
    d = pts - xform[:, :3]
    a = xform[:, 3:].reshape(-1, 3, 3)
    lam123 = np.einsum("nij,nj->ni", a, d)
    lam0 = 1.0 - lam123.sum(axis=1, keepdims=True)
    return np.concatenate([lam0, lam123], axis=1)


def points_in_tets(xform: np.ndarray, pts: np.ndarray,
                   tol: float = 1e-12) -> np.ndarray:
    """Boolean mask: point i inside (or on the boundary of) its cell."""
    lam = barycentric_coords(xform, pts)
    return (lam >= -tol).all(axis=1)


def p1_gradients(points: np.ndarray,
                 cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Constant P1 shape-function gradients per cell.

    Returns ``(grads, volumes)`` with ``grads`` of shape (ncells, 4, 3):
    ``grads[c, i]`` is ``∇λ_i`` in cell ``c`` (``∇λ_0 = -Σ∇λ_{1..3}``).
    These are the "shape derivative" dats of Mini-FEM-PIC: the electric
    field in a cell is ``E = -Σ_i φ_i ∇λ_i`` and the stiffness matrix is
    assembled from ``∇λ_i · ∇λ_j``.
    """
    xf = tet_barycentric_transforms(points, cells)
    a = xf[:, 3:].reshape(-1, 3, 3)
    grads = np.empty((cells.shape[0], 4, 3))
    grads[:, 1:, :] = a
    grads[:, 0, :] = -a.sum(axis=1)
    return grads, np.abs(tet_volumes(points, cells))
