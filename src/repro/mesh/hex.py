"""Periodic cuboid (hex) mesh for CabanaPIC.

CabanaPIC generates its mesh from ``nx × ny × nz`` configuration at
runtime (no mesh file) with periodic boundaries.  The OP-PIC port keeps
the cells as an unstructured set whose "structure" lives entirely in
explicit cell-to-cell stencil maps; this module builds those maps.

Stencil map layout (arity 10), all wraps periodic::

    0: +x   1: +y   2: +z   3: +y+z   4: +x+z   5: +x+y   6: +x+y+z
    7: -x   8: -y   9: -z

Slots 0-6 feed the field interpolator (gathering edge/face values around
the cell); slots 7-9 feed the Yee curl in ``advance_e``; 0-2 feed
``advance_b``.  A separate arity-6 face-neighbour map (``face_c2c``)
drives the particle move: ``0:-x 1:+x 2:-y 3:+y 4:-z 5:+z``.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HexMesh", "STENCIL", "FACES"]

STENCIL = {"XP": 0, "YP": 1, "ZP": 2, "YPZP": 3, "XPZP": 4, "XPYP": 5,
           "XPYPZP": 6, "XM": 7, "YM": 8, "ZM": 9}
FACES = {"XM": 0, "XP": 1, "YM": 2, "YP": 3, "ZM": 4, "ZP": 5}


@dataclass
class HexMesh:
    """A periodic brick of ``nx*ny*nz`` cuboid cells."""

    nx: int
    ny: int
    nz: int
    lx: float = 1.0
    ly: float = 1.0
    lz: float = 1.0
    tags: dict = field(default_factory=dict)

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("hex mesh needs at least one cell per dimension")
        self.n_cells = self.nx * self.ny * self.nz
        self.dx = self.lx / self.nx
        self.dy = self.ly / self.ny
        self.dz = self.lz / self.nz
        self.stencil_c2c = self._build_stencil()
        self.face_c2c = self._build_faces()
        self.centroids = self._centroids()

    # -- index arithmetic -------------------------------------------------------

    def cell_id(self, i, j, k) -> np.ndarray:
        """Cell index from (periodic) integer coordinates; x fastest."""
        i = np.mod(i, self.nx)
        j = np.mod(j, self.ny)
        k = np.mod(k, self.nz)
        return (k * self.ny + j) * self.nx + i

    def cell_ijk(self, c):
        c = np.asarray(c)
        i = c % self.nx
        j = (c // self.nx) % self.ny
        k = c // (self.nx * self.ny)
        return i, j, k

    def _build_stencil(self) -> np.ndarray:
        c = np.arange(self.n_cells, dtype=np.int64)
        i, j, k = self.cell_ijk(c)
        cols = [
            self.cell_id(i + 1, j, k),          # XP
            self.cell_id(i, j + 1, k),          # YP
            self.cell_id(i, j, k + 1),          # ZP
            self.cell_id(i, j + 1, k + 1),      # YPZP
            self.cell_id(i + 1, j, k + 1),      # XPZP
            self.cell_id(i + 1, j + 1, k),      # XPYP
            self.cell_id(i + 1, j + 1, k + 1),  # XPYPZP
            self.cell_id(i - 1, j, k),          # XM
            self.cell_id(i, j - 1, k),          # YM
            self.cell_id(i, j, k - 1),          # ZM
        ]
        return np.stack(cols, axis=1)

    def _build_faces(self) -> np.ndarray:
        c = np.arange(self.n_cells, dtype=np.int64)
        i, j, k = self.cell_ijk(c)
        cols = [
            self.cell_id(i - 1, j, k), self.cell_id(i + 1, j, k),
            self.cell_id(i, j - 1, k), self.cell_id(i, j + 1, k),
            self.cell_id(i, j, k - 1), self.cell_id(i, j, k + 1),
        ]
        return np.stack(cols, axis=1)

    def _centroids(self) -> np.ndarray:
        c = np.arange(self.n_cells, dtype=np.int64)
        i, j, k = self.cell_ijk(c)
        return np.stack([(i + 0.5) * self.dx,
                         (j + 0.5) * self.dy,
                         (k + 0.5) * self.dz], axis=1)

    @property
    def cell_volume(self) -> float:
        return self.dx * self.dy * self.dz
