"""Mesh substrate: generators, geometry and the direct-hop overlay."""
from .geometry import (barycentric_coords, p1_gradients, points_in_tets,
                       tet_barycentric_transforms, tet_centroids, tet_volumes)
from .hex import FACES, STENCIL, HexMesh
from .io import load_mesh, read_mesh_dat, read_mesh_npz, save_mesh, \
    write_mesh_dat, write_mesh_npz
from .overlay import StructuredOverlay
from .tet import duct_mesh
from .tri import TriMesh, square_tri_mesh
from .unstructured import UnstructuredMesh, boundary_faces, build_tet_c2c

__all__ = ["UnstructuredMesh", "HexMesh", "TriMesh", "StructuredOverlay",
           "duct_mesh", "square_tri_mesh",
           "save_mesh", "load_mesh", "write_mesh_dat", "read_mesh_dat",
           "write_mesh_npz", "read_mesh_npz",
           "build_tet_c2c", "boundary_faces", "tet_volumes", "tet_centroids",
           "tet_barycentric_transforms", "barycentric_coords",
           "points_in_tets", "p1_gradients", "STENCIL", "FACES"]
