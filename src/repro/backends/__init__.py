"""Execution backends and the backend registry.

Available targets (OP-PIC generates one code path per target; here each is
a backend class driving the same generated kernels differently):

========= =============================================================
``seq``    elemental reference execution (the semantic oracle)
``vec``    generated NumPy vector code, configurable reduction strategy
``omp``    simulated OpenMP: chunked threads + scatter arrays
``mp``     true shared-memory multiprocessing: worker pool + shm dats
``cuda``   simulated NVIDIA GPU: vector code + safe atomics
``hip``    simulated AMD GPU: vector code + unsafe atomics / seg. red.
``xe``     simulated Intel GPU (Data Center Max): the future-work target
========= =============================================================
"""
from __future__ import annotations

from .base import Backend
from .device import DeviceBackend
from .mp import MpBackend
from .omp import OmpBackend
from .seq import SeqBackend
from .vec import VecBackend

__all__ = ["Backend", "SeqBackend", "VecBackend", "OmpBackend",
           "MpBackend", "DeviceBackend", "make_backend",
           "available_backends", "register_backend"]

def _make_sanitizer(**kw):
    # deferred import: repro.verify imports from repro.backends
    from ..verify.sanitize import SanitizerBackend
    return SanitizerBackend(**kw)


_REGISTRY = {
    "seq": lambda **kw: SeqBackend(**kw),
    "vec": lambda **kw: VecBackend(**kw),
    "omp": lambda **kw: OmpBackend(**kw),
    "mp": lambda **kw: MpBackend(**kw),
    "cuda": lambda **kw: DeviceBackend(kind="cuda", **kw),
    "hip": lambda **kw: DeviceBackend(kind="hip", **kw),
    # the paper's future work: "extend the code-generation to produce
    # parallelizations for other architectures, such as Intel GPUs"
    "xe": lambda **kw: DeviceBackend(kind="xe", **kw),
    # shadow execution with access-descriptor checking (repro.verify)
    "sanitizer": _make_sanitizer,
}


def available_backends():
    return sorted(_REGISTRY)


def make_backend(name: str, **options) -> Backend:
    """Instantiate a backend by target name (``seq``/``vec``/``omp``/
    ``cuda``/``hip``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}; available: "
                         f"{available_backends()}") from None
    return factory(**options)


def register_backend(name: str, factory) -> None:
    """Register a new execution target (paper §3.4: "the system is also
    easily extensible where a new parallelization, or optimization could
    be added as a new template which can then be reused").

    ``factory(**options)`` must return a :class:`Backend`.
    """
    if not callable(factory):
        raise TypeError("backend factory must be callable")
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = factory
