"""Sequential reference backend.

Executes elemental kernels one element at a time, exactly as the science
source is written.  This is the semantic oracle every other backend is
tested against (OP-PIC's ``seq`` target plays the same role).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.args import ArgKind
from ..core.loops import ParLoop
from ..core.move import MoveContext, MoveLoop, MoveResult
from ..core.types import MoveStatus
from .base import Backend

__all__ = ["SeqBackend"]


class SeqBackend(Backend):
    name = "seq"

    #: the oracle itself needs no special conformance configuration
    conformance_options: dict = {}

    def execute(self, loop: ParLoop) -> Optional[dict]:
        kernel = loop.kernel.fn
        args = loop.args
        # Pre-resolve array and map references out of the hot loop.
        views = []
        for a in args:
            if a.is_global:
                views.append(("gbl", a.dat.data, None, None))
            elif a.kind == ArgKind.DIRECT:
                views.append(("direct", a.dat.data, None, None))
            elif a.kind == ArgKind.INDIRECT:
                views.append(("map", a.dat.data, a.map.values, a.map_idx))
            elif a.kind == ArgKind.P2C:
                views.append(("p2c", a.dat.data, a.p2c.p2c, None))
            else:  # DOUBLE
                views.append(("double", a.dat.data,
                              (a.p2c.p2c, a.map.values), a.map_idx))
        for i in range(loop.start, loop.end):
            params = []
            for kind, data, mapping, midx in views:
                if kind == "gbl":
                    params.append(data)
                elif kind == "direct":
                    params.append(data[i])
                elif kind == "map":
                    params.append(data[mapping[i, midx]])
                elif kind == "p2c":
                    params.append(data[mapping[i]])
                else:
                    p2c, mesh = mapping
                    params.append(data[mesh[p2c[i], midx]])
            kernel(*params)
        return None

    def execute_move(self, loop: MoveLoop) -> MoveResult:
        kernel = loop.kernel.fn
        p2c = loop.p2c_map.p2c
        c2c = loop.c2c_map.values
        foreign = loop.foreign_cell_mask
        result = MoveResult()
        move = MoveContext()

        removed = []
        foreign_p = []
        foreign_c = []
        total_hops = 0
        relocated = 0      # particles that left their starting cell

        dep = loop.deposit
        dep_kernel = None
        dep_views = []
        dep_params = []
        if dep is not None:
            dep_kernel = dep.kernel.fn
            for pos, a in enumerate(dep.args):
                if a.is_global:
                    dep_views.append((pos, "gbl", a.dat.data, None, None))
                elif a.kind == ArgKind.DIRECT:
                    dep_views.append((pos, "direct", a.dat.data, None, None))
                elif a.kind == ArgKind.P2C:
                    dep_views.append((pos, "cell", a.dat.data, None, None))
                elif a.kind == ArgKind.DOUBLE:
                    dep_views.append((pos, "cellmap", a.dat.data,
                                      a.map.values, a.map_idx))
                else:
                    raise ValueError("fused deposit kernels address data "
                                     "directly, via the current cell, or "
                                     "doubly-indirectly")
            dep_params = [None] * len(dep.args)

        def run_deposit(p: int, cell: int) -> None:
            for pos, kind, data, mesh, midx in dep_views:
                if kind == "gbl":
                    dep_params[pos] = data
                elif kind == "direct":
                    dep_params[pos] = data[p]
                elif kind == "cell":
                    dep_params[pos] = data[cell]
                else:
                    dep_params[pos] = data[mesh[cell, midx]]
            dep_kernel(*dep_params)

        cell_views = []  # (arg_position, dat_data, map_values, map_idx) per hop
        fixed = []       # (arg_position, value) computed once per particle
        for pos, a in enumerate(loop.args):
            if a.is_global:
                fixed.append((pos, a.dat.data))
            elif a.kind == ArgKind.DIRECT:
                cell_views.append((pos, "direct", a.dat.data, None, None))
            elif a.kind == ArgKind.P2C:
                cell_views.append((pos, "cell", a.dat.data, None, None))
            elif a.kind == ArgKind.DOUBLE:
                cell_views.append((pos, "cellmap", a.dat.data,
                                   a.map.values, a.map_idx))
            else:
                raise ValueError("move kernels address data directly, via "
                                 "the current cell, or doubly-indirectly")

        nparams = len(loop.args) + 1
        params = [None] * nparams

        for p in loop.iter_indices():
            cell = p2c[p]
            if cell < 0:
                continue
            hop = 0
            while True:
                if foreign is not None and foreign[cell]:
                    foreign_p.append(p)
                    foreign_c.append(cell)
                    p2c[p] = cell
                    break
                move.reset(int(cell), c2c[cell], hop)
                params[0] = move
                for pos, kind, data, mesh, midx in cell_views:
                    if kind == "direct":
                        params[pos + 1] = data[p]
                    elif kind == "cell":
                        params[pos + 1] = data[cell]
                    else:
                        params[pos + 1] = data[mesh[cell, midx]]
                for pos, value in fixed:
                    params[pos + 1] = value
                kernel(*params)
                hop += 1
                total_hops += 1
                if hop == 1 and move.status != MoveStatus.MOVE_DONE:
                    relocated += 1      # left its starting cell (or domain)
                if dep_kernel is not None and dep.when == "hop":
                    run_deposit(p, int(cell))
                if move.status == MoveStatus.MOVE_DONE:
                    if dep_kernel is not None and dep.when == "done":
                        run_deposit(p, int(cell))
                    p2c[p] = cell
                    break
                if move.status == MoveStatus.NEED_REMOVE:
                    removed.append(p)
                    p2c[p] = -1
                    break
                cell = move.next_cell
                if hop >= loop.max_hops:
                    raise RuntimeError(
                        f"particle {p} exceeded {loop.max_hops} hops in move "
                        f"loop {loop.name!r}; mesh walk is not converging")

        loop.pset.order.note_relocated(relocated)
        result.total_hops = total_hops
        result.foreign_particles = np.asarray(foreign_p, dtype=np.int64)
        result.foreign_cells = np.asarray(foreign_c, dtype=np.int64)
        result.n_removed = len(removed)
        if removed and not loop.defer_removal:
            loop.pset.remove_particles(np.asarray(removed, dtype=np.int64))
        elif removed:
            result.removed_indices = np.asarray(removed, dtype=np.int64)
        return result
