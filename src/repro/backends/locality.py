"""The particle-locality autotuner.

Cell-sorting particles makes indirect particle→cell gathers contiguous
and lets ``OPP_INC`` deposits run as pre-sorted segmented reductions —
but a full sort is O(n log n) and a move un-sorts the set again.  The
autotuner amortises that trade from *measured* costs: it keeps
exponentially-weighted per-particle cost estimates of

* one sort (``sort_pp``),
* a particle loop on the sorted fast path (``fast_pp``),
* the same work on the unsorted path (``slow_pp``),

plus an estimate of how many particle loops run between sorts
(``loops_between_sorts``, i.e. how long a sort's benefit lives before a
move dirties the order).  A sort is worth it when

    (slow_pp - fast_pp) · n · loops_between_sorts  >  sort_pp · n

Until both sides have been measured the tuner sorts optimistically —
that is also what primes the estimates.  Modes: ``never`` (locality
engine off — the default, keeping every existing code path bit-stable),
``always`` (sort whenever the order is invalid) and ``auto``.
"""
from __future__ import annotations

from typing import Optional

__all__ = ["LocalityAutotuner"]

_MODES = ("never", "auto", "always")


def _ewma(old: Optional[float], new: float, alpha: float) -> float:
    return new if old is None else alpha * new + (1.0 - alpha) * old


class LocalityAutotuner:
    """Decides when re-sorting a particle set pays for itself."""

    def __init__(self, mode: str = "never", alpha: float = 0.5,
                 min_particles: int = 64):
        if mode not in _MODES:
            raise ValueError(f"unknown locality mode {mode!r}; "
                             f"available: {_MODES}")
        self.mode = mode
        self.alpha = float(alpha)
        #: below this size the bookkeeping outweighs any win
        self.min_particles = int(min_particles)
        self.sort_pp: Optional[float] = None
        self.fast_pp: Optional[float] = None
        self.slow_pp: Optional[float] = None
        self.loops_between_sorts = 1.0
        self._loops_since_sort = 0
        self.n_sorts = 0
        self.n_skips = 0

    @property
    def enabled(self) -> bool:
        return self.mode != "never"

    # -- measurements ---------------------------------------------------------

    def note_sort(self, n: int, seconds: float) -> None:
        if n > 0:
            self.sort_pp = _ewma(self.sort_pp, seconds / n, self.alpha)
        if self.n_sorts > 0:
            self.loops_between_sorts = _ewma(
                self.loops_between_sorts,
                float(max(self._loops_since_sort, 1)), self.alpha)
        self._loops_since_sort = 0
        self.n_sorts += 1

    def note_loop(self, n: int, seconds: float, fast: bool) -> None:
        if n <= 0:
            return
        pp = seconds / n
        if fast:
            self.fast_pp = _ewma(self.fast_pp, pp, self.alpha)
        else:
            self.slow_pp = _ewma(self.slow_pp, pp, self.alpha)
        self._loops_since_sort += 1

    # -- the policy -----------------------------------------------------------

    def should_sort(self, n: int) -> bool:
        if not self.enabled or n < self.min_particles:
            return False
        if self.mode == "always":
            return True
        if self.sort_pp is None or self.slow_pp is None:
            return True      # optimistic bootstrap: sort once and measure
        fast_pp = self.fast_pp if self.fast_pp is not None else 0.0
        gain = max(self.slow_pp - fast_pp, 0.0) * n \
            * max(self.loops_between_sorts, 1.0)
        cost = self.sort_pp * n
        if gain > cost:
            return True
        self.n_skips += 1
        return False

    def __repr__(self) -> str:
        fmt = (lambda v: "?" if v is None else f"{v:.3g}")
        return (f"<LocalityAutotuner {self.mode} sort_pp={fmt(self.sort_pp)} "
                f"fast_pp={fmt(self.fast_pp)} slow_pp={fmt(self.slow_pp)} "
                f"sorts={self.n_sorts} skips={self.n_skips}>")
