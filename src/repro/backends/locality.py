"""The particle-locality autotuner.

Cell-sorting particles makes indirect particle→cell gathers contiguous
and lets ``OPP_INC`` deposits run as pre-sorted segmented reductions —
but a full sort is O(n log n) and a move un-sorts the set again.  The
autotuner amortises that trade from *measured* costs: it keeps
exponentially-weighted per-particle cost estimates of

* one sort (``sort_pp``),
* a particle loop on the sorted fast path (``fast_pp``),
* the same work on the unsorted path (``slow_pp``),

plus an estimate of how many particle loops run between sorts
(``loops_between_sorts``, i.e. how long a sort's benefit lives before a
move dirties the order).  A sort is worth it when

    (slow_pp - fast_pp) · n · loops_between_sorts  >  sort_pp · n

Until both sides have been measured the tuner sorts optimistically —
that is also what primes the estimates.  Modes: ``never`` (locality
engine off — the default, keeping every existing code path bit-stable),
``always`` (sort whenever the order is invalid) and ``auto``.

The same measured-cost machinery also arbitrates *per-loop strategy*
choices for the Matrix-PIC sparse operator (``sparse`` modes
never/auto/always): the tuner keeps an EWMA per-particle cost keyed on
``(loop, kind, strategy)`` and :meth:`pick_strategy` returns the
cheapest measured candidate, trying every unmeasured candidate first so
the estimates prime themselves, then re-exploring periodically so a
stale winner cannot lock in forever.
"""
from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = ["LocalityAutotuner"]

_MODES = ("never", "auto", "always")


def _ewma(old: Optional[float], new: float, alpha: float) -> float:
    return new if old is None else alpha * new + (1.0 - alpha) * old


class LocalityAutotuner:
    """Decides when re-sorting a particle set pays for itself."""

    def __init__(self, mode: str = "never", alpha: float = 0.5,
                 min_particles: int = 64, sparse: str = "never",
                 explore_every: int = 64):
        if mode not in _MODES:
            raise ValueError(f"unknown locality mode {mode!r}; "
                             f"available: {_MODES}")
        if sparse not in _MODES:
            raise ValueError(f"unknown sparse mode {sparse!r}; "
                             f"available: {_MODES}")
        self.mode = mode
        self.sparse = sparse
        self.alpha = float(alpha)
        #: below this size the bookkeeping outweighs any win
        self.min_particles = int(min_particles)
        #: every this many exploit picks of one (loop, kind), re-measure a
        #: non-winning candidate so drifting costs get noticed
        self.explore_every = int(explore_every)
        self.sort_pp: Optional[float] = None
        self.fast_pp: Optional[float] = None
        self.slow_pp: Optional[float] = None
        self.loops_between_sorts = 1.0
        self._loops_since_sort = 0
        self.n_sorts = 0
        self.n_skips = 0
        #: (loop, kind, strategy) -> EWMA per-particle seconds
        self.strategy_costs: Dict[Tuple[str, str, str], float] = {}
        #: (loop, kind) -> picks since creation (drives exploration)
        self._picks: Dict[Tuple[str, str], int] = {}

    @property
    def enabled(self) -> bool:
        return self.mode != "never"

    # -- measurements ---------------------------------------------------------

    def note_sort(self, n: int, seconds: float) -> None:
        if n > 0:
            self.sort_pp = _ewma(self.sort_pp, seconds / n, self.alpha)
        if self.n_sorts > 0:
            self.loops_between_sorts = _ewma(
                self.loops_between_sorts,
                float(max(self._loops_since_sort, 1)), self.alpha)
        self._loops_since_sort = 0
        self.n_sorts += 1

    def note_loop(self, n: int, seconds: float, fast: bool) -> None:
        if n <= 0:
            return
        pp = seconds / n
        if fast:
            self.fast_pp = _ewma(self.fast_pp, pp, self.alpha)
        else:
            self.slow_pp = _ewma(self.slow_pp, pp, self.alpha)
        self._loops_since_sort += 1

    # -- the policy -----------------------------------------------------------

    def should_sort(self, n: int) -> bool:
        if not self.enabled or n < self.min_particles:
            return False
        if self.mode == "always":
            return True
        if self.sort_pp is None or self.slow_pp is None:
            return True      # optimistic bootstrap: sort once and measure
        fast_pp = self.fast_pp if self.fast_pp is not None else 0.0
        gain = max(self.slow_pp - fast_pp, 0.0) * n \
            * max(self.loops_between_sorts, 1.0)
        cost = self.sort_pp * n
        if gain > cost:
            return True
        self.n_skips += 1
        return False

    # -- per-loop strategy dispatch (Matrix-PIC vs segmented vs atomics) ------

    def note_strategy_cost(self, loop: str, kind: str, strategy: str,
                           n: int, seconds: float) -> None:
        """Feed one measured execution of ``strategy`` on a loop's
        gather/deposit (``kind``) over ``n`` particles into the EWMA."""
        if n <= 0:
            return
        key = (loop, kind, strategy)
        self.strategy_costs[key] = _ewma(
            self.strategy_costs.get(key), seconds / n, self.alpha)

    def pick_strategy(self, loop: str, kind: str,
                      candidates: Sequence[str], n: int) -> str:
        """Choose among ``candidates`` (first entry = the configured
        default) for one ``(loop, kind)`` site from live measurements.

        ``sparse="always"`` forces ``sparse_csr`` whenever it is a
        candidate; ``"never"`` strips it.  Under ``"auto"`` the policy is
        explore-then-exploit: any candidate without a measurement runs
        next (priming the EWMA), after which the cheapest measured
        per-particle cost wins, with a periodic re-measure of the
        runner-up every ``explore_every`` picks.
        """
        candidates = list(candidates)
        if not candidates:
            raise ValueError("pick_strategy needs at least one candidate")
        if self.sparse == "always":
            if "sparse_csr" in candidates:
                return "sparse_csr"
            return candidates[0]
        if self.sparse == "never" or n < self.min_particles:
            picked = [c for c in candidates if c != "sparse_csr"]
            return picked[0] if picked else candidates[0]
        pick_key = (loop, kind)
        count = self._picks.get(pick_key, 0)
        self._picks[pick_key] = count + 1
        measured = {c: self.strategy_costs.get((loop, kind, c))
                    for c in candidates}
        for c in candidates:            # explore: prime unmeasured arms
            if measured[c] is None:
                return c
        ranked = sorted(candidates, key=lambda c: measured[c])
        if self.explore_every > 0 and len(ranked) > 1 \
                and count % self.explore_every == self.explore_every - 1:
            return ranked[1]            # refresh the runner-up's estimate
        return ranked[0]

    def __repr__(self) -> str:
        fmt = (lambda v: "?" if v is None else f"{v:.3g}")
        return (f"<LocalityAutotuner {self.mode} sort_pp={fmt(self.sort_pp)} "
                f"fast_pp={fmt(self.fast_pp)} slow_pp={fmt(self.slow_pp)} "
                f"sorts={self.n_sorts} skips={self.n_skips}>")
