"""Matrix-PIC sparse-operator engine.

The two hottest indirect patterns of every PIC step — the field *gather*
(cell/node → particle) and the charge/current *deposit* (particle →
cell/node) — are linear maps, so both lower to products with one sparse
interpolation operator ``P`` of shape ``(n_particles, n_targets)``
(Matrix-PIC, arxiv 2601.08277; POLAR-PIC, arxiv 2604.19337):

* gather:  ``u_p = P @ E``          (CSR SpMM, vendor-tuned)
* deposit: ``q_t = P.T @ q_p``      (CSC accumulation, no atomics)

Row ``i`` of ``P`` holds the shape weights of particle ``i`` against its
target elements: for the DSL's single-point addressing kinds (``P2C`` and
``DOUBLE``) that is one unit entry per row at column ``p2c[i]`` (or
``mesh_map[p2c[i], idx]``); the full Matrix-PIC formulation with an
arity-``k`` vertex stencil and per-particle shape weights is the
``map_idx=None`` + ``weight_fn`` form used by the FEM tests.

The operator is *maintained*, not rebuilt: :class:`CsrOperator` keeps a
snapshot of the particle-to-cell column it was assembled from and, guided
by :class:`~repro.core.particles.ParticleOrder`'s dirty counters, patches
only the rows whose cell changed (moves), the rows a hole-fill teleported,
or the tail rows an injection appended — each in place, because the row
pitch is fixed so ``indptr`` never changes shape.  Only when the order
tracker reports wholesale disorder (``dirty_fraction`` above
``full_rebuild_threshold``) does it fall back to assembling from scratch;
both paths produce bit-identical CSR arrays.  When the particle set is
verifiably cell-sorted, the transpose ``P.T`` is assembled directly from
the :class:`~repro.backends.plan.PlanCache` segment offsets (the
``reduceat`` boundaries *are* its ``indptr``) instead of running a
CSR→CSC conversion.

Numerics: SpMM reassociates floating-point segment sums exactly like the
``segmented_presorted`` strategy does — same sums, different addition
order, ``allclose`` to the sequential oracle.  Integer deposits never
enter the matrix path: they stay on exact ``np.add.at`` so integer data
remains bit-equal to ``seq`` (see ``docs/performance_model.md``).

``scipy`` is an optional dependency of this module alone: every entry
point degrades explicitly (``have_scipy()`` / ``SparseUnavailable``)
so environments without it keep every other strategy working.
"""
from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["CsrOperator", "SparseUnavailable", "have_scipy",
           "sparse_deposit"]


def _scipy_sparse():
    try:
        import scipy.sparse as sp
        return sp
    except ImportError:  # pragma: no cover - scipy baked into the image
        return None


def have_scipy() -> bool:
    """True when :mod:`scipy.sparse` is importable."""
    return _scipy_sparse() is not None


class SparseUnavailable(RuntimeError):
    """The ``sparse_csr`` strategy was requested without scipy."""


def _require_scipy():
    sp = _scipy_sparse()
    if sp is None:
        raise SparseUnavailable(
            "the sparse_csr strategy needs scipy.sparse; install scipy or "
            "pick another reduction strategy")
    return sp


def sparse_deposit(target: np.ndarray, rows: np.ndarray,
                   values: np.ndarray) -> int:
    """One-shot ``target[rows] += values`` through a throwaway operator.

    Builds ``P`` in O(1) extra work — with one entry per row, ``indptr``
    is ``arange`` and ``indices`` *is* ``rows`` — and runs the deposit as
    ``P.T @ values`` (a compiled CSC column sweep, no ufunc inner-loop
    dispatch per element like ``np.add.at``).  Used for unplanned scatters
    (static mesh maps, mp worker chunks) where no maintained operator
    exists; returns the max collision multiplicity like every strategy.
    """
    sp = _require_scipy()
    rows = np.asarray(rows)
    values = np.asarray(values)
    if rows.size == 0:
        return 0
    if rows.ndim != 1:
        raise ValueError("sparse_deposit expects a flat row vector")
    if np.issubdtype(target.dtype, np.integer) \
            or np.issubdtype(values.dtype, np.integer):
        # exact path: integer sums must stay bit-equal to seq, and float
        # intermediates would silently round above 2**53
        alive = rows >= 0
        if not alive.all():
            rows, values = rows[alive], values[alive]
        np.add.at(target, rows, values)
        return _max_multiplicity(rows)
    alive = rows >= 0
    if not alive.all():
        rows, values = rows[alive], values[alive]
        if rows.size == 0:
            return 0
    n = rows.size
    vals2d = values if values.ndim == 2 else values.reshape(n, -1)
    P = sp.csr_matrix(
        (np.ones(n, dtype=target.dtype), rows,
         np.arange(n + 1, dtype=np.int64)),
        shape=(n, target.shape[0]))
    # P.T is a zero-copy CSC view; @ dispatches to compiled csc_matvecs
    target += np.asarray(P.T @ vals2d).reshape(target.shape[0], -1)
    return _max_multiplicity(rows)


def _max_multiplicity(rows: np.ndarray) -> int:
    if rows.size == 0:
        return 0
    return int(np.bincount(rows).max())


class CsrOperator:
    """Incrementally-maintained CSR interpolation operator ``P``.

    Parameters
    ----------
    p2c_map:
        The particle-to-cell map; its ``from_set`` (a particle set with a
        :class:`~repro.core.particles.ParticleOrder`) provides the rows.
    map_, map_idx:
        Optional mesh map composed on top of ``p2c`` (the ``DOUBLE``
        addressing kind).  ``map_idx=None`` with a map selects *all*
        arity columns — the multi-point interpolation stencil.
    weight_fn:
        ``weight_fn(rows, cells) -> (len(rows), row_nnz)`` shape weights
        for the selected rows (defaults to unit weights).  Must be a pure
        function of ``(row, cell)`` so incremental patches reproduce a
        from-scratch assembly bit-for-bit.
    """

    #: above this dirty fraction the diff-and-patch bookkeeping loses to
    #: a straight rebuild, and the order tracker's counter says so before
    #: any O(n) comparison runs
    full_rebuild_threshold = 0.5

    def __init__(self, p2c_map, map_=None, map_idx: Optional[int] = None,
                 weight_fn: Optional[Callable] = None):
        _require_scipy()
        if not p2c_map.is_particle_map:
            raise TypeError("CsrOperator needs a particle-to-cell map")
        if map_ is None and map_idx is not None:
            raise ValueError("map_idx without a mesh map")
        self.p2c_map = p2c_map
        self.pset = p2c_map.from_set
        self.map = map_
        self.map_idx = map_idx
        self.weight_fn = weight_fn
        self.row_nnz = (map_.arity if map_ is not None and map_idx is None
                        else 1)
        self.n_targets = (map_.to_set.size if map_ is not None
                          else p2c_map.to_set.size)
        self._n = 0                    # live rows at last refresh
        self._snapshot: Optional[np.ndarray] = None   # p2c at last refresh
        self._indices: Optional[np.ndarray] = None    # capacity * row_nnz
        self._data: Optional[np.ndarray] = None
        self._state = None             # ParticleOrder.state at last refresh
        self._dirty_last = 0           # order.dirty at last refresh
        self._P = None
        self._PT = None
        self._max_mult: Optional[int] = None
        self.stats = {"full_rebuilds": 0, "incremental_updates": 0,
                      "rows_patched": 0, "refresh_hits": 0,
                      "pt_from_segments": 0, "pt_transposed": 0}

    # -- assembly -------------------------------------------------------------

    def _row_entries(self, rows: np.ndarray, cells: np.ndarray):
        """(indices, data) blocks for the given rows/cells; dead cells
        (< 0) become zero-weight entries on column 0."""
        k = self.row_nnz
        alive = cells >= 0
        safe = np.where(alive, cells, 0)
        if self.map is None:
            cols = safe.reshape(-1, 1)
        elif self.map_idx is not None:
            cols = self.map.values[safe, self.map_idx].reshape(-1, 1)
        else:
            cols = self.map.values[safe, :]
        if self.weight_fn is None:
            data = np.ones((rows.size, k), dtype=np.float64)
        else:
            data = np.asarray(self.weight_fn(rows, cells),
                              dtype=np.float64).reshape(rows.size, k)
        if not alive.all():
            dead = ~alive
            cols = cols.copy() if self.map is None else cols
            cols[dead] = 0
            data[dead] = 0.0
        return cols, data

    def _ensure_capacity(self, n: int) -> None:
        need = n * self.row_nnz
        if self._indices is None or self._indices.size < need:
            cap = max(need, 2 * (self._indices.size if self._indices
                                 is not None else 0))
            new_idx = np.zeros(cap, dtype=np.int64)
            new_dat = np.zeros(cap, dtype=np.float64)
            if self._indices is not None and self._n:
                live = self._n * self.row_nnz
                new_idx[:live] = self._indices[:live]
                new_dat[:live] = self._data[:live]
            self._indices, self._data = new_idx, new_dat

    def _patch_rows(self, rows: np.ndarray, cells: np.ndarray) -> None:
        cols, data = self._row_entries(rows, cells)
        k = self.row_nnz
        if k == 1:
            self._indices[rows] = cols[:, 0]
            self._data[rows] = data[:, 0]
        else:
            flat = (rows[:, None] * k + np.arange(k)[None, :]).ravel()
            self._indices[flat] = cols.ravel()
            self._data[flat] = data.ravel()

    def _rebuild_full(self, p2c: np.ndarray) -> None:
        n = p2c.size
        self._ensure_capacity(n)
        self._patch_rows(np.arange(n, dtype=np.int64), p2c)
        self._n = n
        self._snapshot = p2c.copy()
        self.stats["full_rebuilds"] += 1

    def _update_incremental(self, p2c: np.ndarray) -> None:
        n = p2c.size
        old = self._n
        common = min(n, old)
        changed = np.flatnonzero(p2c[:common] != self._snapshot[:common])
        if n > old:                      # injection appended tail rows
            self._ensure_capacity(n)
            tail = np.arange(old, n, dtype=np.int64)
            self._patch_rows(tail, p2c[old:])
            self.stats["rows_patched"] += tail.size
        if changed.size:
            self._patch_rows(changed, p2c[changed])
            self.stats["rows_patched"] += int(changed.size)
        self._n = n
        if self._snapshot.size < n:
            self._snapshot = p2c.copy()
        else:
            self._snapshot = self._snapshot[:n]
            self._snapshot[changed] = p2c[changed]
            if n > old:
                self._snapshot[old:n] = p2c[old:]
        self.stats["incremental_updates"] += 1

    def refresh(self, plan=None) -> str:
        """Bring the operator up to date with the particle set.

        Returns which path ran: ``"hit"`` (order state unchanged since the
        last refresh — nothing to do), ``"incremental"`` (only dirty row
        blocks patched) or ``"full"``.  ``plan`` is an optional
        :class:`~repro.backends.plan.PlanCache` whose cached segment
        offsets assemble ``P.T`` directly when the set is cell-sorted.
        """
        order = self.pset.order
        state = order.state
        if state == self._state and self._P is not None:
            self.stats["refresh_hits"] += 1
            return "hit"
        p2c = self.p2c_map.p2c
        # dirt accrued since *this operator's* last refresh — the order
        # tracker's counter only resets on sorts, and a sort (or an
        # invalidation) permutes arbitrarily many rows, so a negative
        # delta also forces the from-scratch path
        delta = order.dirty - self._dirty_last
        n = p2c.size
        if self._snapshot is None or delta < 0 \
                or (n and delta / n > self.full_rebuild_threshold):
            self._rebuild_full(p2c)
            how = "full"
        else:
            self._update_incremental(p2c)
            how = "incremental"
        self._state = state
        self._dirty_last = order.dirty
        self._build_P()
        self._PT = None
        self._max_mult = None
        self._plan = plan
        return how

    def _build_P(self) -> None:
        sp = _scipy_sparse()
        n, k = self._n, self.row_nnz
        indptr = np.arange(0, n * k + 1, k, dtype=np.int64)
        self._P = sp.csr_matrix(
            (self._data[:n * k], self._indices[:n * k], indptr),
            shape=(n, self.n_targets))

    # -- products -------------------------------------------------------------

    @property
    def P(self):
        if self._P is None:
            self.refresh()
        return self._P

    @property
    def PT(self):
        """``P.T`` in CSR form (the deposit operator), cached per state."""
        if self._PT is None:
            sp = _scipy_sparse()
            plan = getattr(self, "_plan", None)
            if plan is not None and self.map is None \
                    and self.weight_fn is None \
                    and self.pset.order.is_valid():
                # cell-sorted: the plan's prefix-sum segment offsets are
                # exactly PT's indptr and columns are just 0..n-1
                _counts, offsets, _ne, _starts = plan.segments(self.pset)
                n = self._n
                self._PT = sp.csr_matrix(
                    (self._data[:n], np.arange(n, dtype=np.int64),
                     offsets.astype(np.int64)),
                    shape=(self.n_targets, n))
                self.stats["pt_from_segments"] += 1
            else:
                self._PT = self.P.T.tocsr()
                self.stats["pt_transposed"] += 1
        return self._PT

    @property
    def max_multiplicity(self) -> int:
        """Deepest particle pile-up on one target row (the collision
        count every reduction strategy reports)."""
        if self._max_mult is None:
            indptr = self.PT.indptr
            self._max_mult = (int(np.diff(indptr).max())
                              if indptr.size > 1 else 0)
        return self._max_mult

    def gather(self, field: np.ndarray) -> np.ndarray:
        """``P @ field`` — the cell/node → particle interpolation."""
        f2d = field if field.ndim == 2 else field.reshape(-1, 1)
        return np.asarray(self.P @ f2d)

    def deposit(self, target: np.ndarray, values: np.ndarray) -> int:
        """``target += P.T @ values`` — the particle → cell/node deposit;
        returns the max collision multiplicity."""
        vals2d = values if values.ndim == 2 else values.reshape(-1, 1)
        target += np.asarray(self.PT @ vals2d).reshape(target.shape[0], -1)
        return self.max_multiplicity

    def __repr__(self) -> str:
        via = "" if self.map is None else \
            f" via {self.map.name}[{'*' if self.map_idx is None else self.map_idx}]"
        return (f"<CsrOperator {self._n}x{self.n_targets}{via} "
                f"nnz/row={self.row_nnz} rebuilds="
                f"{self.stats['full_rebuilds']} incremental="
                f"{self.stats['incremental_updates']}>")
