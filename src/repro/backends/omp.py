"""Simulated OpenMP (shared-memory CPU) backend.

OP-PIC's OpenMP target parallelises loop iterations across threads and
resolves indirect increments with thread-private scatter arrays
(Figure 2(b)).  Here the iteration space is processed in ``nthreads``
chunks over real per-chunk private arrays — the algorithm, memory traffic
and final reduction are the real ones; only the concurrent scheduling is
sequentialised (Python cannot run true threads over the same ufuncs
without the GIL dominating the measurement).
"""
from __future__ import annotations

from typing import Optional

from ..core.loops import ParLoop
from .vec import VecBackend

__all__ = ["OmpBackend"]


class OmpBackend(VecBackend):
    name = "omp"

    #: odd thread count so conformance chunk boundaries rarely align
    #: with anything structural in the generated mini-meshes
    conformance_options = {"nthreads": 3}

    def __init__(self, nthreads: int = 4, strategy: str = "scatter_arrays",
                 **strategy_options):
        if strategy == "scatter_arrays":
            strategy_options.setdefault("nthreads", nthreads)
        super().__init__(strategy=strategy, **strategy_options)
        self.nthreads = int(nthreads)

    def execute(self, loop: ParLoop) -> Optional[dict]:
        extras = super().execute(loop) or {}
        extras["nthreads"] = self.nthreads
        return extras
