"""True shared-memory multiprocess backend (``mp``).

Every other CPU backend in this reproduction *simulates* its scheduling
(the ``omp`` backend runs thread chunks sequentially because Python
threads serialise on the GIL).  This backend executes OP-PIC's OpenMP
strategy for real:

* a **persistent worker pool** (``multiprocessing`` processes, forked
  lazily on first use) executes contiguous chunks of each loop's
  iteration space concurrently;
* dats and maps are migrated into ``multiprocessing.shared_memory``
  segments (:meth:`~repro.core.dats.Dat.adopt_raw`), so workers read
  mesh/particle data **zero-copy** and write direct (unique-row)
  results in place;
* indirect ``OPP_INC`` scatters go into **per-worker private scatter
  arrays** — shared segments owned by one worker each — and the master
  merges them after the chunk barrier, exactly the thread-private
  scatter-array reduction of paper Figure 2(b);
* particle moves run **frontier-partitioned**: each worker multi-hops
  its slice of the particle set to completion (writing its own rows of
  the particle-to-cell map), and the master reconciles removals and
  rank-migrations through the existing hole-filling path;
* loops that cannot be parallelised safely or profitably (tiny
  iteration spaces, unresolvable kernels, indirect ``WRITE``/``RW``)
  degrade to the :class:`~repro.backends.vec.VecBackend` path, as does
  the whole backend when shared memory or process spawning is
  unavailable or ``nworkers == 1`` — results stay ``np.allclose``
  -identical to ``seq`` either way.

Work is described to workers by value (slice bounds, segment names,
access modes) and by reference (kernels cross the process boundary as
``(module, qualname)`` import references; each worker re-generates the
vectorised code once and caches it).
"""
from __future__ import annotations

import atexit
import os
import queue
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.args import ArgKind
from ..core.kernel import CONST, kernel_ref
from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult
from ..core.types import AccessMode
from .vec import VecBackend

__all__ = ["MpBackend"]

#: chunk sizes are rounded up to a multiple of this (cache-line-friendly
#: blocks, mirroring the OP2 plan's block granularity)
_BLOCK = 64


def _shared_memory():
    """The SharedMemory class, or None when the platform lacks it."""
    try:
        from multiprocessing import shared_memory
        return shared_memory.SharedMemory
    except (ImportError, OSError):  # pragma: no cover - exotic platforms
        return None


# =========================================================================
# Worker side
# =========================================================================
#
# Everything below runs inside the pool processes.  A worker owns a cache
# of attached shared-memory segments and of generated kernels; tasks are
# plain dicts (picklable scalars, strings and small arrays only).


class _Unresolvable(Exception):
    """Kernel cannot be rebuilt in the worker — master must fall back."""


def _attach(attached: dict, spec: Tuple[str, tuple, str]) -> np.ndarray:
    """Attach (cached) a shared segment and view it as an ndarray."""
    name, shape, dtype = spec
    ent = attached.get(name)
    if ent is None:
        SharedMemory = _shared_memory()
        shm = SharedMemory(name=name)
        ent = attached[name] = (shm, np.ndarray(shape, dtype=np.dtype(dtype),
                                                buffer=shm.buf))
    return ent[1]


def _worker_kernel(ref: Tuple[str, str]):
    """Resolve + translate a kernel reference (cached via as_kernel)."""
    from ..core.kernel import kernel_from_ref
    try:
        kern = kernel_from_ref(ref[0], ref[1])
    except Exception as exc:
        raise _Unresolvable(f"{ref[0]}:{ref[1]}: {exc}") from exc
    return kern.generated("vec")


def _apply_consts(snapshot: dict) -> None:
    CONST._values.clear()
    CONST._values.update(snapshot)


def _arg_rows(attached: dict, d: dict, idx: np.ndarray,
              cells: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """Target rows for one argument chunk (None = direct slice access)."""
    kind = d["kind"]
    if kind == ArgKind.DIRECT:
        return None if cells is None else idx
    if kind == ArgKind.INDIRECT:
        mv = _attach(attached, d["map"])[: d["map_live"]]
        return mv[idx, d["map_idx"]]
    if cells is None:
        p2c = _attach(attached, d["p2c"])[: d["p2c_live"], 0]
        cells = p2c[idx]
    if kind == ArgKind.P2C:
        return cells
    mv = _attach(attached, d["map"])[: d["map_live"]]
    return mv[cells, d["map_idx"]]  # DOUBLE


def _zero_scatters(attached: dict, scatters: List) -> List[np.ndarray]:
    views = []
    for spec in scatters:
        view = _attach(attached, spec)
        view[:] = 0
        views.append(view)
    return views


def _worker_inc(d: dict, target: np.ndarray, rows: np.ndarray,
                buf: np.ndarray) -> None:
    """One indirect-INC accumulation inside a worker.

    When the master forced the ``sparse_csr`` strategy the chunk's
    scatter lowers to the Matrix-PIC one-shot product (``P.T @ buf``);
    the per-chunk operator is throwaway because workers hold no state
    between tasks.  Integer data stays on exact ``np.add.at`` inside
    ``sparse_deposit`` itself.
    """
    if d.get("sparse_inc"):
        from .sparse_ops import sparse_deposit
        sparse_deposit(target, rows, buf)
    else:
        np.add.at(target, rows, buf)


def _run_parloop_chunk(msg: dict, attached: dict) -> dict:
    gen = _worker_kernel(msg["kernel"])
    _apply_consts(msg["const"])
    lo, hi = msg["lo"], msg["hi"]
    n = hi - lo
    idx = np.arange(lo, hi, dtype=np.int64)
    scatters = _zero_scatters(attached, msg["scatters"])

    params: List[np.ndarray] = []
    writeback = []
    for d in msg["args"]:
        if d["role"] == "gbl":
            if d["access"] == "READ":
                params.append(d["data"].reshape(1, -1))
                continue
            init = {"INC": 0.0, "MIN": np.inf, "MAX": -np.inf}[d["access"]]
            buf = np.full((n, d["dim"]), init, dtype=d["data"].dtype)
            params.append(buf)
            writeback.append((d, buf, None))
            continue
        data = _attach(attached, d["dat"])[: d["live"]]
        rows = _arg_rows(attached, d, idx)
        if d["kind"] == ArgKind.DIRECT and d["access"] == "READ":
            params.append(data[lo:hi])      # zero-copy shared view
            continue
        if d["access"] in ("READ", "RW"):
            buf = data[rows] if rows is not None else data[lo:hi].copy()
        else:                               # WRITE / INC: clean buffer
            buf = np.zeros((n, d["dim"]), dtype=data.dtype)
        params.append(buf)
        if d["access"] != "READ":
            writeback.append((d, buf, rows))

    t0 = perf_counter()
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        gen.fn(*params)
    kernel_seconds = perf_counter() - t0

    max_coll = 0
    globals_out: Dict[int, np.ndarray] = {}
    for d, buf, rows in writeback:
        if d["role"] == "gbl":
            red = {"INC": buf.sum(axis=0), "MIN": buf.min(axis=0),
                   "MAX": buf.max(axis=0)}[d["access"]]
            globals_out[d["pos"]] = red
            continue
        data = _attach(attached, d["dat"])[: d["live"]]
        if d["kind"] == ArgKind.DIRECT:
            if d["access"] == "INC":
                data[lo:hi] += buf
            else:
                data[lo:hi] = buf
            continue
        if d.get("shared_inc"):
            # segment decomposition: this worker's particles cover whole
            # cells, so its p2c target rows are disjoint from every other
            # worker's — increment the shared dat directly, no merge
            _worker_inc(d, data, rows, buf)
        else:
            # indirect INC → this worker's private scatter array
            scatter = scatters[d["scatter_group"]][: d["live"]]
            _worker_inc(d, scatter, rows, buf)
        if rows.size:
            max_coll = max(max_coll, int(np.bincount(rows).max()))
    return {"globals": globals_out, "collisions": max_coll,
            "kernel_seconds": kernel_seconds}


def _run_move_deposit(dep: dict, gen, attached: dict, scatters: List,
                      dpart: np.ndarray, dcells: np.ndarray) -> int:
    """One fused-deposit round inside a worker's move chunk."""
    params: List[np.ndarray] = []
    writeback = []
    for d in dep["args"]:
        if d["role"] == "gbl":
            params.append(d["data"].reshape(1, -1))
            continue
        data = _attach(attached, d["dat"])[: d["live"]]
        rows = _arg_rows(attached, d, dpart, dcells)
        if rows is None:
            rows = dpart
        if d["access"] in ("READ", "RW"):
            buf = data[rows]
        else:
            buf = np.zeros((dpart.size, d["dim"]), dtype=data.dtype)
        params.append(buf)
        if d["access"] != "READ":
            writeback.append((d, buf, rows))
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        gen.fn(*params)
    max_coll = 0
    for d, buf, rows in writeback:
        data = _attach(attached, d["dat"])[: d["live"]]
        if d["access"] == "INC":
            if d["kind"] == ArgKind.DIRECT:
                data[rows] += buf       # particle rows are unique
            else:
                scatter = scatters[d["scatter_group"]][: d["live"]]
                _worker_inc(d, scatter, rows, buf)
                if rows.size:
                    max_coll = max(max_coll, int(np.bincount(rows).max()))
        else:
            data[rows] = buf
    return max_coll


def _run_move_chunk(msg: dict, attached: dict) -> dict:
    gen = _worker_kernel(msg["kernel"])
    if not gen.is_move:
        raise _Unresolvable(f"{msg['kernel']}: not a move kernel")
    _apply_consts(msg["const"])
    from ..translator.codegen import VecMoveContext

    scatters = _zero_scatters(attached, msg["scatters"])
    p2c = _attach(attached, msg["p2c"])[: msg["p2c_live"], 0]
    c2c = _attach(attached, msg["c2c"])[: msg["c2c_live"]]
    foreign = msg["foreign"]

    idx = np.arange(msg["lo"], msg["hi"], dtype=np.int64)
    alive = p2c[idx] >= 0
    active = idx[alive]
    cells = p2c[active].copy()

    dep = msg.get("deposit")
    dep_gen = _worker_kernel(dep["kernel"]) if dep is not None else None

    removed_parts: List[np.ndarray] = []
    foreign_parts: List[np.ndarray] = []
    foreign_cells: List[np.ndarray] = []
    total_hops = 0
    max_coll = 0
    hop = 0
    relocated = 0
    kernel_seconds = 0.0

    while active.size:
        if hop >= msg["max_hops"]:
            raise RuntimeError(
                f"{active.size} particles exceeded {msg['max_hops']} hops "
                f"in mp move chunk [{msg['lo']}, {msg['hi']})")
        if foreign is not None:
            fmask = foreign[cells]
            if fmask.any():
                stopped = active[fmask]
                p2c[stopped] = cells[fmask]
                foreign_parts.append(stopped)
                foreign_cells.append(cells[fmask])
                active = active[~fmask]
                cells = cells[~fmask]
                if active.size == 0:
                    break

        params: List[np.ndarray] = []
        writeback = []
        for d in msg["args"]:
            if d["role"] == "gbl":
                params.append(d["data"].reshape(1, -1))
                continue
            data = _attach(attached, d["dat"])[: d["live"]]
            rows = _arg_rows(attached, d, active, cells)
            if rows is None:
                rows = active
            if d["access"] in ("READ", "RW"):
                buf = data[rows]
            else:
                buf = np.zeros((active.size, d["dim"]), dtype=data.dtype)
            params.append(buf)
            if d["access"] != "READ":
                writeback.append((d, buf, rows))

        mctx = VecMoveContext(cells, c2c[cells], hop)
        t0 = perf_counter()
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            gen.fn(mctx, *params)
        kernel_seconds += perf_counter() - t0
        total_hops += active.size

        for d, buf, rows in writeback:
            data = _attach(attached, d["dat"])[: d["live"]]
            if d["access"] == "INC":
                if d["kind"] == ArgKind.DIRECT:
                    data[rows] += buf       # particle rows are unique
                else:
                    scatter = scatters[d["scatter_group"]][: d["live"]]
                    _worker_inc(d, scatter, rows, buf)
                    if rows.size:
                        max_coll = max(max_coll,
                                       int(np.bincount(rows).max()))
            else:
                data[rows] = buf

        status = mctx.status
        done = status == 0
        gone = status == 2
        moving = status == 1
        if hop == 0:
            relocated = (int(np.count_nonzero(moving))
                         + int(np.count_nonzero(gone)))
        if dep_gen is not None:
            if dep["when"] == "hop":
                dpart, dcells = active, cells
            else:                       # "done": settled this round
                dpart, dcells = active[done], cells[done]
            if dpart.size:
                coll = _run_move_deposit(dep, dep_gen, attached, scatters,
                                         dpart, dcells)
                max_coll = max(max_coll, coll)
        p2c[active[done]] = cells[done]
        if gone.any():
            dead = active[gone]
            p2c[dead] = -1
            removed_parts.append(dead)
        active = active[moving]
        cells = mctx.next_cell[moving]
        hop += 1

    def _cat(parts):
        return (np.concatenate(parts) if parts
                else np.empty(0, dtype=np.int64))

    return {"removed": _cat(removed_parts),
            "foreign_particles": _cat(foreign_parts),
            "foreign_cells": _cat(foreign_cells),
            "hops": total_hops, "collisions": max_coll,
            "relocated": relocated,
            "kernel_seconds": kernel_seconds}


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Pool process entry point: execute tasks until poisoned."""
    attached: dict = {}
    while True:
        msg = task_q.get()
        if msg is None:
            break
        out = {"worker": worker_id}
        try:
            t0 = perf_counter()
            if msg["kind"] == "parloop":
                out.update(_run_parloop_chunk(msg, attached))
            else:
                out.update(_run_move_chunk(msg, attached))
            out["seconds"] = perf_counter() - t0
        except _Unresolvable as exc:
            out["unresolvable"] = str(exc)
        except BaseException:
            out["error"] = traceback.format_exc()
        result_q.put(out)
    for shm, _view in attached.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover
            pass


# =========================================================================
# Master side
# =========================================================================


class _Arena:
    """Shared-memory home for dat/map backing buffers + scatter scratch.

    ``share`` adopts an object's backing array into a shared segment
    (copy-in happens once; afterwards master writes and worker reads hit
    the same pages).  When the object re-allocates (particle capacity
    grow), the stale segment is dropped and a fresh one adopted.
    """

    def __init__(self):
        # id(obj) -> (shm, arr, weakref-to-owner)
        self._owned: Dict[int, tuple] = {}
        self._scatter: Dict[tuple, tuple] = {}   # (id(dat), w) -> (shm, arr)
        self.SharedMemory = _shared_memory()

    def share(self, obj) -> Tuple[str, tuple, str]:
        """Adopt ``obj._raw`` into a shared segment; returns its spec."""
        import weakref
        raw = obj.raw
        ent = self._owned.get(id(obj))
        if ent is None or ent[1] is not raw:
            if ent is not None:
                self._drop(ent)
            shm = self.SharedMemory(create=True, size=max(raw.nbytes, 1))
            arr = np.ndarray(raw.shape, dtype=raw.dtype, buffer=shm.buf)
            obj.adopt_raw(arr)
            ent = self._owned[id(obj)] = (shm, arr, weakref.ref(obj))
        shm, arr = ent[0], ent[1]
        return (shm.name, arr.shape, arr.dtype.str)

    def scatter(self, dat, worker: int) -> Tuple[str, tuple, str]:
        """Private scatter segment for (dat, worker), grown on demand."""
        shape = dat.raw.shape
        dtype = dat.raw.dtype
        key = (id(dat), worker)
        ent = self._scatter.get(key)
        # CPython reuses object ids, so a key hit may be a *different*
        # dat than the one that created the segment: any component-shape
        # or dtype mismatch must recreate, not reuse
        if ent is None or ent[1].shape[0] < shape[0] \
                or ent[1].shape[1:] != shape[1:] \
                or ent[1].dtype != dtype:
            if ent is not None:
                self._drop(ent)
            nbytes = int(np.prod(shape)) * dtype.itemsize
            shm = self.SharedMemory(create=True, size=max(nbytes, 1))
            arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
            ent = self._scatter[key] = (shm, arr)
        shm, arr = ent
        return (shm.name, arr.shape, arr.dtype.str)

    def scatter_view(self, dat, worker: int) -> np.ndarray:
        return self._scatter[(id(dat), worker)][1]

    @staticmethod
    def _drop(ent) -> None:
        shm = ent[0]
        try:
            shm.close()
            shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass

    def close(self) -> None:
        # Give adopted buffers back to private memory before the segments
        # die — dats keep working, they just stop being shared.
        for shm, arr, owner_ref in list(self._owned.values()):
            owner = owner_ref()
            if owner is not None and owner.raw is arr:
                owner.adopt_raw(np.array(arr))
            self._drop((shm, arr))
        for ent in self._scatter.values():
            self._drop(ent)
        self._owned.clear()
        self._scatter.clear()


class _Pool:
    """Persistent worker processes with per-worker task queues."""

    def __init__(self, nworkers: int, start_method: Optional[str] = None):
        import multiprocessing as mp
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else None)
        # Start the resource tracker *before* forking so every worker
        # shares the master's tracker: attach-time registrations
        # (bpo-38119 on <= 3.12) then dedupe against the master's own,
        # and the single unlink at arena close leaves the tracker clean.
        try:
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API shifted
            pass
        self.ctx = mp.get_context(start_method)
        self.nworkers = nworkers
        self.task_qs = [self.ctx.Queue() for _ in range(nworkers)]
        self.result_q = self.ctx.Queue()
        self.procs = []
        for i in range(nworkers):
            p = self.ctx.Process(target=_worker_main,
                                 args=(i, self.task_qs[i], self.result_q),
                                 daemon=True, name=f"opp-mp-worker-{i}")
            p.start()
            self.procs.append(p)

    def submit(self, worker: int, msg: dict) -> None:
        self.task_qs[worker].put(msg)

    def collect(self, n: int) -> List[dict]:
        out = []
        while len(out) < n:
            try:
                out.append(self.result_q.get(timeout=1.0))
            except queue.Empty:
                if not all(p.is_alive() for p in self.procs):
                    raise RuntimeError(
                        "mp backend: a worker process died unexpectedly")
        return out

    def close(self) -> None:
        for q in self.task_qs:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for p in self.procs:
            p.join(timeout=2.0)
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=1.0)
        self.procs = []


class MpBackend(VecBackend):
    """Shared-memory multiprocess executor (OP-PIC's OpenMP strategy,
    scheduled for real across OS processes)."""

    name = "mp"

    #: small pool + tiny chunks so conformance mini-meshes actually
    #: cross the parallel-dispatch threshold
    conformance_options = {"nworkers": 2, "min_chunk": 16}

    def __init__(self, nworkers: Optional[int] = None,
                 strategy: str = "atomics", min_chunk: int = 512,
                 small_chunk: int = 24,
                 start_method: Optional[str] = None, **strategy_options):
        super().__init__(strategy=strategy, **strategy_options)
        if nworkers is None:
            nworkers = min(4, os.cpu_count() or 1)
        self.nworkers = max(int(nworkers), 1)
        self.min_chunk = max(int(min_chunk), 1)
        #: chunk floor for *small direct* loops (no indirect-INC args):
        #: dispatch overhead is just the task round-trip, so loops far
        #: below ``min_chunk`` still parallelise instead of degrading
        self.small_chunk = max(int(small_chunk), 1)
        self.start_method = start_method
        self._pool: Optional[_Pool] = None
        self._arena: Optional[_Arena] = None
        self._disabled = False
        #: loops the workers reported as unresolvable — skip re-dispatch
        self._unresolvable: set = set()
        #: counters exposed for tests / diagnostics
        self.stats = {"parallel_loops": 0, "fallback_loops": 0,
                      "parallel_moves": 0, "fallback_moves": 0,
                      "small_parallel_loops": 0, "segment_loops": 0}
        #: loop name -> why it last degraded to the vec path
        self.fallback_reasons: Dict[str, str] = {}

    # -- pool / arena lifecycle ------------------------------------------------

    def _ensure_pool(self) -> bool:
        if self._disabled or self.nworkers < 2:
            return False
        if self._pool is not None:
            if all(p.is_alive() for p in self._pool.procs):
                return True
            self._pool = None  # pragma: no cover - crashed pool
        if _shared_memory() is None:
            self._disabled = True
            return False
        try:
            self._arena = self._arena or _Arena()
            self._pool = _Pool(self.nworkers, self.start_method)
        except (OSError, ValueError, ImportError,
                DeprecationWarning):  # pragma: no cover - degraded platform
            self._disabled = True
            self._pool = None
            return False
        atexit.register(self.close)
        return True

    def close(self) -> None:
        """Shut the pool down and return adopted buffers to private
        memory (idempotent; also runs via atexit)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        atexit.unregister(self.close)

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -- chunking --------------------------------------------------------------

    def _chunks(self, start: int, end: int,
                small_ok: bool = False) -> List[Tuple[int, int]]:
        n = end - start
        min_chunk = self.min_chunk
        if small_ok and n < 2 * min_chunk:
            min_chunk = min(min_chunk, self.small_chunk)
        nchunks = min(self.nworkers, max(n // min_chunk, 1))
        if nchunks < 2:
            return []
        per = -(-n // nchunks)                       # ceil
        if per >= _BLOCK:
            per = -(-per // _BLOCK) * _BLOCK         # block-align
        bounds = []
        lo = start
        while lo < end:
            hi = min(lo + per, end)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _segment_chunks(self, loop: ParLoop) -> Optional[List[Tuple[int,
                                                                    int]]]:
        """Chunk a cell-sorted particle loop on cell-segment boundaries.

        Each worker then owns *whole cells*: its particle→cell ``OPP_INC``
        target rows are disjoint from every other worker's, so those
        increments go straight into the shared dat (no private scatter
        arrays, no merge pass).
        """
        pset = loop.iterset
        if not (pset.is_particle_set and pset.p2c_map is not None
                and loop.start == 0 and loop.end == pset.size):
            return None
        if not pset.order.is_valid():
            return None
        n = pset.size
        nchunks = min(self.nworkers, max(n // self.min_chunk, 1))
        if nchunks < 2:
            return None
        _counts, offsets, _nonempty, _starts = self.plan.segments(pset)
        ideal = np.linspace(0, n, nchunks + 1)[1:-1]
        cuts = offsets[np.searchsorted(offsets, ideal)]
        bounds_at = np.unique(np.concatenate(([0], cuts, [n])))
        if bounds_at.size < 3:          # snapped down to a single chunk
            return None
        return list(zip(bounds_at[:-1].tolist(), bounds_at[1:].tolist()))

    # -- opp_par_loop ----------------------------------------------------------

    def execute(self, loop: ParLoop) -> Optional[dict]:
        plan, reason = self._plan_parloop(loop)
        if plan is None:
            return self._fallback_parloop(loop, reason)
        try:
            return self._execute_parloop(loop, *plan)
        except _UnresolvableOnWorkers:
            self._unresolvable.add(kernel_ref(loop.kernel.fn))
            return self._fallback_parloop(loop, "kernel-unresolvable")

    def _fallback_parloop(self, loop: ParLoop, reason: str) -> dict:
        self.stats["fallback_loops"] += 1
        self.fallback_reasons[loop.name] = reason
        extras = super().execute(loop) or {}
        extras.setdefault("mp_fallback", True)
        extras.setdefault("mp_fallback_reason", reason)
        return extras

    def _plan_parloop(self, loop: ParLoop):
        if loop.n_iter == 0:
            return None, "empty"
        ref = kernel_ref(loop.kernel.fn)
        if ref is None:
            return None, "kernel-unref"
        if ref in self._unresolvable:
            return None, "kernel-unresolvable"
        if not loop.kernel.generated("vec").vectorized:
            return None, "not-vectorized"
        has_indirect_inc = False
        for a in loop.args:
            if a.is_indirect and a.access in (AccessMode.WRITE,
                                              AccessMode.RW):
                return None, "indirect-write"   # cross-worker races
            if a.is_indirect and a.access is AccessMode.INC:
                has_indirect_inc = True
        decomp = "block"
        small = False
        chunks = self._segment_chunks(loop)
        if chunks:
            decomp = "segment"
        else:
            # loops without indirect-INC scatters are cheap to dispatch:
            # let small direct mesh loops parallelise instead of degrading
            small = (not has_indirect_inc
                     and loop.n_iter < 2 * self.min_chunk)
            chunks = self._chunks(loop.start, loop.end, small_ok=small)
        if not chunks:
            return None, f"tiny(n={loop.n_iter})"
        if not self._ensure_pool():
            return None, "no-pool"
        return (ref, chunks, decomp, small), None

    def _execute_parloop(self, loop: ParLoop, ref, chunks,
                         decomp: str = "block", small: bool = False) -> dict:
        arena = self._arena
        const = CONST.snapshot()
        nchunks = len(chunks)

        # scatter groups: one private array per (INC-target dat, worker)
        groups: List = []                 # group idx -> dat
        group_of: Dict[int, int] = {}     # id(dat) -> group idx
        descs = []
        for pos, a in enumerate(loop.args):
            if a.is_global:
                descs.append({"role": "gbl", "pos": pos,
                              "access": a.access.name,
                              "dim": a.dat.dim,
                              "data": np.array(a.dat.data)})
                continue
            d = {"role": "dat", "kind": a.kind, "access": a.access.name,
                 "dim": a.dat.dim, "dat": arena.share(a.dat),
                 "live": a.dat.set.size}
            if a.map is not None:
                d["map"] = arena.share(a.map)
                d["map_idx"] = a.map_idx
                d["map_live"] = a.map.from_set.size
            if a.p2c is not None:
                d["p2c"] = arena.share(a.p2c)
                d["p2c_live"] = a.p2c.from_set.size
            if a.is_indirect and a.access is AccessMode.INC:
                if decomp == "segment" and a.kind == ArgKind.P2C:
                    # segment chunks own whole cells → p2c target rows
                    # are worker-disjoint; increment the shared dat
                    d["shared_inc"] = True
                else:
                    g = group_of.get(id(a.dat))
                    if g is None:
                        g = group_of[id(a.dat)] = len(groups)
                        groups.append(a.dat)
                    d["scatter_group"] = g
                if self.strategy_name == "sparse_csr":
                    d["sparse_inc"] = True
            descs.append(d)

        for w, (lo, hi) in enumerate(chunks):
            self._pool.submit(w, {
                "kind": "parloop", "kernel": ref, "const": const,
                "lo": lo, "hi": hi, "args": descs,
                "scatters": [arena.scatter(dat, w) for dat in groups],
            })
        results = self._collect(nchunks)

        # merge: private scatter arrays, then global reductions
        for g, dat in enumerate(groups):
            target = dat.data
            for w in range(nchunks):
                target += arena.scatter_view(dat, w)[: target.shape[0]]
        for pos, a in enumerate(loop.args):
            if not a.is_global or a.access is AccessMode.READ:
                continue
            parts = [r["globals"][pos] for r in results
                     if pos in r["globals"]]
            if not parts:
                continue
            stack = np.stack(parts)
            if a.access is AccessMode.INC:
                a.dat.data += stack.sum(axis=0)
            elif a.access is AccessMode.MIN:
                np.minimum(a.dat.data, stack.min(axis=0), out=a.dat.data)
            else:
                np.maximum(a.dat.data, stack.max(axis=0), out=a.dat.data)

        self.stats["parallel_loops"] += 1
        if small:
            self.stats["small_parallel_loops"] += 1
        if decomp == "segment":
            self.stats["segment_loops"] += 1
        worker_seconds = [0.0] * nchunks
        for r in results:
            worker_seconds[r["worker"]] = r["seconds"]
        return {"collisions": max(r["collisions"] for r in results),
                "strategy": ("shared_segments" if decomp == "segment"
                             else "scatter_arrays"),
                "decomposition": decomp,
                "nworkers": nchunks,
                "worker_seconds": worker_seconds}

    # -- opp_particle_move -----------------------------------------------------

    def execute_move(self, loop: MoveLoop) -> MoveResult:
        plan, reason = self._plan_move(loop)
        if plan is None:
            return self._fallback_move(loop, reason)
        try:
            return self._execute_move(loop, *plan)
        except _UnresolvableOnWorkers:
            self._unresolvable.add(kernel_ref(loop.kernel.fn))
            return self._fallback_move(loop, "kernel-unresolvable")

    def _fallback_move(self, loop: MoveLoop, reason: str) -> MoveResult:
        self.stats["fallback_moves"] += 1
        self.fallback_reasons[loop.name] = reason
        result = super().execute_move(loop)
        result.extras.setdefault("mp_fallback", True)
        result.extras.setdefault("mp_fallback_reason", reason)
        return result

    def _plan_move(self, loop: MoveLoop):
        if loop.only_indices is not None:
            return None, "resume-subset"
        if loop.pset.size == 0:
            return None, "empty"
        ref = kernel_ref(loop.kernel.fn)
        if ref is None:
            return None, "kernel-unref"
        if ref in self._unresolvable:
            return None, "kernel-unresolvable"
        gen = loop.kernel.generated("vec")
        if not gen.vectorized:
            return None, "not-vectorized"
        if not gen.is_move:
            return None, "non-move-kernel"
        for a in loop.args:
            if a.is_indirect and a.access in (AccessMode.WRITE,
                                              AccessMode.RW):
                return None, "indirect-write"
            if a.is_global and a.access is not AccessMode.READ:
                return None, "global-reduction"
        dep = loop.deposit
        dep_ref = None
        if dep is not None:
            dep_ref = kernel_ref(dep.kernel.fn)
            if dep_ref is None or dep_ref in self._unresolvable \
                    or not dep.kernel.generated("vec").vectorized:
                return None, "deposit-kernel"
        chunks = self._chunks(0, loop.pset.size)
        if not chunks:
            return None, f"tiny(n={loop.pset.size})"
        if not self._ensure_pool():
            return None, "no-pool"
        return (ref, chunks, dep_ref), None

    def _execute_move(self, loop: MoveLoop, ref, chunks,
                      dep_ref=None) -> MoveResult:
        arena = self._arena
        const = CONST.snapshot()
        nchunks = len(chunks)

        groups: List = []
        group_of: Dict[int, int] = {}

        def mk_desc(a) -> dict:
            if a.is_global:
                return {"role": "gbl", "access": "READ",
                        "dim": a.dat.dim, "data": np.array(a.dat.data)}
            d = {"role": "dat", "kind": a.kind, "access": a.access.name,
                 "dim": a.dat.dim, "dat": arena.share(a.dat),
                 "live": a.dat.set.size}
            if a.map is not None:
                d["map"] = arena.share(a.map)
                d["map_idx"] = a.map_idx
                d["map_live"] = a.map.from_set.size
            if a.p2c is not None:
                d["p2c"] = arena.share(a.p2c)
                d["p2c_live"] = a.p2c.from_set.size
            if a.is_indirect and a.access is AccessMode.INC:
                g = group_of.get(id(a.dat))
                if g is None:
                    g = group_of[id(a.dat)] = len(groups)
                    groups.append(a.dat)
                d["scatter_group"] = g
                if self.strategy_name == "sparse_csr":
                    d["sparse_inc"] = True
            return d

        descs = [mk_desc(a) for a in loop.args]
        dep_msg = None
        if dep_ref is not None:
            # deposit INC targets share the same per-worker scatter
            # arrays (group numbering continues across both arg lists)
            dep_msg = {"kernel": dep_ref, "when": loop.deposit.when,
                       "args": [mk_desc(a) for a in loop.deposit.args]}

        p2c_spec = arena.share(loop.p2c_map)
        c2c_spec = arena.share(loop.c2c_map)
        foreign = loop.foreign_cell_mask
        for w, (lo, hi) in enumerate(chunks):
            self._pool.submit(w, {
                "kind": "move", "kernel": ref, "const": const,
                "lo": lo, "hi": hi, "args": descs,
                "deposit": dep_msg,
                "p2c": p2c_spec, "p2c_live": loop.pset.size,
                "c2c": c2c_spec, "c2c_live": loop.c2c_map.from_set.size,
                "foreign": (None if foreign is None else np.array(foreign)),
                "max_hops": loop.max_hops,
                "scatters": [arena.scatter(dat, w) for dat in groups],
            })
        results = self._collect(nchunks)

        for g, dat in enumerate(groups):
            target = dat.data
            for w in range(nchunks):
                target += arena.scatter_view(dat, w)[: target.shape[0]]

        result = MoveResult()
        result.total_hops = sum(r["hops"] for r in results)
        result.max_collisions = max(r["collisions"] for r in results)

        def _cat(key):
            parts = [r[key] for r in results if r[key].size]
            return (np.concatenate(parts) if parts
                    else np.empty(0, dtype=np.int64))

        result.foreign_particles = _cat("foreign_particles")
        result.foreign_cells = _cat("foreign_cells")
        loop.pset.order.note_relocated(
            sum(r["relocated"] for r in results))
        removed = _cat("removed")
        result.n_removed = int(removed.size)
        if removed.size and not loop.defer_removal:
            loop.pset.remove_particles(removed)
        else:
            result.removed_indices = removed

        self.stats["parallel_moves"] += 1
        worker_seconds = [0.0] * nchunks
        for r in results:
            worker_seconds[r["worker"]] = r["seconds"]
        result.extras = {"worker_seconds": worker_seconds,
                         "nworkers": nchunks,
                         "strategy": "scatter_arrays"}
        return result

    # -- result collection -----------------------------------------------------

    def _collect(self, nchunks: int) -> List[dict]:
        results = self._pool.collect(nchunks)
        unresolved = [r for r in results if "unresolvable" in r]
        errors = [r for r in results if "error" in r]
        if errors:
            raise RuntimeError("mp worker failed:\n" + errors[0]["error"])
        if unresolved:
            # resolution fails before any memory is touched, so falling
            # back and re-running on the vec path is safe
            raise _UnresolvableOnWorkers(unresolved[0]["unresolvable"])
        return results

    def __repr__(self) -> str:
        state = "disabled" if self._disabled else \
            ("idle" if self._pool is None else "running")
        return f"<MpBackend nworkers={self.nworkers} {state}>"


class _UnresolvableOnWorkers(Exception):
    """All workers failed to import the kernel — run the loop locally."""
