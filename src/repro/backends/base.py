"""Backend interface.

A backend executes :class:`~repro.core.loops.ParLoop` and
:class:`~repro.core.move.MoveLoop` descriptions.  Backends differ in *how*
they run the same declaration — elemental reference execution, generated
vector code, thread-chunked execution with scatter arrays (the OpenMP
strategy), or a simulated GPU device with atomics / segmented reductions —
exactly the per-target specialisations OP-PIC's code generator emits.
"""
from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..core.args import Arg, ArgKind
from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult
from ..core.types import AccessMode

__all__ = ["Backend"]


class Backend(abc.ABC):
    """Abstract execution backend."""

    #: registry name, set by subclasses
    name = "abstract"

    #: constructor options the conformance harness uses for this backend
    #: (small pools / chunk sizes so the parallel machinery engages on
    #: mini-meshes); subclasses override as needed
    conformance_options: dict = {}

    @abc.abstractmethod
    def execute(self, loop: ParLoop) -> Optional[dict]:
        """Run a parallel loop; may return extra perf counters."""

    @abc.abstractmethod
    def execute_move(self, loop: MoveLoop) -> MoveResult:
        """Run a particle-move loop; returns the migration summary."""

    # -- shared helpers --------------------------------------------------------

    @staticmethod
    def gather(arg: Arg, idx: np.ndarray,
               cells: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather an argument's rows for the given iteration indices.

        Returns a *copy* for indirect arguments (that is what a gather is)
        and a view for direct ones.
        """
        if arg.is_global:
            return arg.dat.data
        if arg.kind == ArgKind.DIRECT:
            return arg.dat.data[idx]
        rows = arg.gather_indices(idx, cells)
        return arg.dat.data[rows]

    @staticmethod
    def scatter(arg: Arg, idx: np.ndarray, values: np.ndarray,
                cells: Optional[np.ndarray] = None,
                strategy=None) -> int:
        """Write back kernel results for one argument batch.

        ``strategy`` is a race-handling strategy from
        :mod:`repro.backends.reduction` used for indirect ``INC``; direct
        writes need no strategy (particle rows are unique).  Returns the
        maximum collision count observed (0 when not applicable), feeding
        the atomic-serialization model.
        """
        if arg.is_global or not arg.access.writes:
            return 0
        if arg.kind == ArgKind.DIRECT:
            arg.dat.data[idx] = values
            return 0
        rows = arg.gather_indices(idx, cells)
        if arg.access is AccessMode.INC:
            from .reduction import AtomicAdd
            strat = strategy or AtomicAdd()
            return strat.apply(arg.dat.data, rows, values)
        if arg.access in (AccessMode.WRITE, AccessMode.RW):
            # Safe only when rows are unique (e.g. particle-indirect writes
            # after sorting); unordered duplicates would race.  numpy's
            # fancy-store keeps last-writer-wins which matches the
            # "unsafe" semantics; we assert uniqueness in debug runs.
            arg.dat.data[rows] = values
            return 0
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
