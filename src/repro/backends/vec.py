"""Vectorised backend: runs translator-generated batch kernels.

The driver implements the gather → generated-kernel → scatter execution
plan.  Race handling for indirect increments is pluggable
(:mod:`repro.backends.reduction`), which is exactly how the OpenMP and
GPU backends below specialise this driver.

Particle moves run as a *frontier* loop: every still-moving particle
advances one hop per round through the generated (predicated) move kernel;
finished / removed / migrating particles drop out of the frontier.  This
is the SIMT formulation of OP-PIC's multi-hop move.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.args import Arg, ArgKind
from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult
from ..core.types import AccessMode, MoveStatus
from .base import Backend
from .plan import PlanCache
from .reduction import ReductionStrategy, make_strategy
from .seq import SeqBackend

__all__ = ["VecBackend"]


class VecBackend(Backend):
    """Generated-code backend with a configurable reduction strategy."""

    name = "vec"

    def __init__(self, strategy: str = "atomics",
                 check_unique_writes: bool = False, **strategy_options):
        self.strategy_name = strategy
        self.strategy: ReductionStrategy = make_strategy(strategy,
                                                         **strategy_options)
        #: debug mode: make the duplicate-row assertion of
        #: :meth:`Backend.scatter` real — indirect WRITE/RW through a
        #: non-injective mapping is last-writer-wins and backend-ordering
        #: dependent, so fail loudly instead of racing silently
        self.check_unique_writes = bool(check_unique_writes)
        #: OP2-style plan cache: static mesh-map indirection schedules
        self.plan = PlanCache()
        self._seq = SeqBackend()

    # -- opp_par_loop -----------------------------------------------------------

    def execute(self, loop: ParLoop) -> Optional[dict]:
        if loop.n_iter == 0:
            return None
        gen = loop.kernel.generated("vec")
        if not gen.vectorized:
            self._seq.execute(loop)
            return {"fallback": True}

        full = loop.start == 0 and loop.end == loop.iterset.size
        idx = loop.iter_indices()
        params: List[np.ndarray] = []
        writeback: List[Tuple[Arg, np.ndarray, Optional[np.ndarray]]] = []
        n = idx.size

        for apos, a in enumerate(loop.args):
            if a.is_global:
                if a.access is AccessMode.READ:
                    params.append(a.dat.data.reshape(1, -1))
                else:
                    init = {AccessMode.INC: 0.0, AccessMode.MIN: np.inf,
                            AccessMode.MAX: -np.inf}[a.access]
                    buf = np.full((n, a.dat.dim), init,
                                  dtype=a.dat.data.dtype)
                    params.append(buf)
                    writeback.append((a, buf, None))
                continue
            if a.kind == ArgKind.DIRECT and a.access is AccessMode.READ \
                    and full:
                params.append(a.dat.data)
                continue
            rows = self.plan.rows(loop, a, idx)   # planned (static) or None
            if (self.check_unique_writes and a.is_indirect
                    and a.access in (AccessMode.WRITE, AccessMode.RW)):
                r = rows if rows is not None else a.gather_indices(idx)
                r = r[r >= 0]
                if r.size and np.unique(r).size != r.size:
                    raise RuntimeError(
                        f"loop {loop.name!r}: nonunique-write on arg "
                        f"{apos} (dat {a.dat.name!r}): duplicate indirect "
                        f"{a.access.name} target rows race under vector "
                        "execution (declare OPP_INC or make the mapping "
                        "injective)")
            if a.access in (AccessMode.READ, AccessMode.RW):
                buf = (a.dat.data[rows] if rows is not None
                       else self.gather(a, idx))
            else:  # WRITE / INC start from a clean buffer
                buf = np.zeros((n, a.dat.dim), dtype=a.dat.dtype)
            params.append(buf)
            if a.access.writes:
                writeback.append((a, buf, rows))

        # predication evaluates both branch sides; masked-off lanes may
        # produce invalid intermediates that the np.where discards — the
        # same thing a SIMT machine does — so FP warnings are suppressed
        with np.errstate(invalid="ignore", divide="ignore",
                         over="ignore"):
            gen.fn(*params)

        max_coll = 0
        for a, buf, rows in writeback:
            if a.is_global:
                if a.access is AccessMode.INC:
                    a.dat.data += buf.sum(axis=0)
                elif a.access is AccessMode.MIN:
                    np.minimum(a.dat.data, buf.min(axis=0), out=a.dat.data)
                else:
                    np.maximum(a.dat.data, buf.max(axis=0), out=a.dat.data)
                continue
            if a.kind == ArgKind.DIRECT:
                if a.access is AccessMode.INC:
                    if full:
                        np.add(a.dat.data, buf, out=a.dat.data)
                    else:
                        a.dat.data[idx] += buf
                else:
                    a.dat.data[idx] = buf
                continue
            if rows is not None:
                if a.access is AccessMode.INC:
                    coll = self.strategy.apply(a.dat.data, rows, buf)
                else:   # WRITE / RW via a static map
                    a.dat.data[rows] = buf
                    coll = 0
            else:
                coll = self.scatter(a, idx, buf, strategy=self.strategy)
            max_coll = max(max_coll, coll)
        return {"collisions": max_coll, "strategy": self.strategy_name}

    # -- opp_particle_move --------------------------------------------------------

    def execute_move(self, loop: MoveLoop) -> MoveResult:
        gen = loop.kernel.generated("vec")
        if not gen.vectorized:
            return self._seq.execute_move(loop)

        from ..translator.codegen import VecMoveContext

        p2c = loop.p2c_map.p2c
        c2c = loop.c2c_map.values
        foreign = loop.foreign_cell_mask

        idx = loop.iter_indices()
        alive = p2c[idx] >= 0
        active = idx[alive]
        cells = p2c[active].copy()

        result = MoveResult()
        removed_parts: List[np.ndarray] = []
        foreign_parts: List[np.ndarray] = []
        foreign_cells: List[np.ndarray] = []
        total_hops = 0
        max_coll = 0
        hop = 0

        while active.size:
            if hop >= loop.max_hops:
                raise RuntimeError(
                    f"{active.size} particles exceeded {loop.max_hops} hops "
                    f"in move loop {loop.name!r}")
            if foreign is not None:
                fmask = foreign[cells]
                if fmask.any():
                    stopped = active[fmask]
                    p2c[stopped] = cells[fmask]
                    foreign_parts.append(stopped)
                    foreign_cells.append(cells[fmask])
                    active = active[~fmask]
                    cells = cells[~fmask]
                    if active.size == 0:
                        break

            params: List[np.ndarray] = []
            writeback: List[Tuple[Arg, np.ndarray, np.ndarray]] = []
            for a in loop.args:
                if a.is_global:
                    params.append(a.dat.data.reshape(1, -1))
                    continue
                rows = a.gather_indices(active, cells)
                if a.access in (AccessMode.READ, AccessMode.RW):
                    buf = a.dat.data[rows]
                else:
                    buf = np.zeros((active.size, a.dat.dim), dtype=a.dat.dtype)
                params.append(buf)
                if a.access.writes:
                    writeback.append((a, buf, rows))

            mctx = VecMoveContext(cells, c2c[cells], hop)
            with np.errstate(invalid="ignore", divide="ignore",
                             over="ignore"):
                gen.fn(mctx, *params)
            total_hops += active.size

            for a, buf, rows in writeback:
                if a.access is AccessMode.INC:
                    if a.kind == ArgKind.DIRECT:
                        a.dat.data[rows] += buf   # particle rows are unique
                    else:
                        coll = self.strategy.apply(a.dat.data, rows, buf)
                        max_coll = max(max_coll, coll)
                else:
                    a.dat.data[rows] = buf

            status = mctx.status
            done = status == int(MoveStatus.MOVE_DONE)
            gone = status == int(MoveStatus.NEED_REMOVE)
            moving = status == int(MoveStatus.NEED_MOVE)

            p2c[active[done]] = cells[done]
            if gone.any():
                dead = active[gone]
                p2c[dead] = -1
                removed_parts.append(dead)
            active = active[moving]
            cells = mctx.next_cell[moving]
            hop += 1

        result.total_hops = total_hops
        result.max_collisions = max_coll
        result.foreign_particles = (np.concatenate(foreign_parts)
                                    if foreign_parts
                                    else np.empty(0, dtype=np.int64))
        result.foreign_cells = (np.concatenate(foreign_cells)
                                if foreign_cells
                                else np.empty(0, dtype=np.int64))
        removed = (np.concatenate(removed_parts) if removed_parts
                   else np.empty(0, dtype=np.int64))
        result.n_removed = int(removed.size)
        if removed.size and not loop.defer_removal:
            loop.pset.remove_particles(removed)
        else:
            result.removed_indices = removed
        return result
