"""Vectorised backend: runs translator-generated batch kernels.

The driver implements the gather → generated-kernel → scatter execution
plan.  Race handling for indirect increments is pluggable
(:mod:`repro.backends.reduction`), which is exactly how the OpenMP and
GPU backends below specialise this driver.

Particle moves run as a *frontier* loop: every still-moving particle
advances one hop per round through the generated (predicated) move kernel;
finished / removed / migrating particles drop out of the frontier.  This
is the SIMT formulation of OP-PIC's multi-hop move.
"""
from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..core.args import Arg, ArgKind
from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult
from ..core.types import AccessMode, MoveStatus
from .base import Backend
from .locality import LocalityAutotuner
from .plan import PlanCache
from .reduction import (ReductionStrategy, SegmentedPresorted,
                        make_strategy)
from .seq import SeqBackend
from .sparse_ops import have_scipy

__all__ = ["VecBackend"]


class VecBackend(Backend):
    """Generated-code backend with a configurable reduction strategy."""

    name = "vec"

    def __init__(self, strategy: str = "atomics",
                 check_unique_writes: bool = False,
                 locality: str = "never", sparse: str = "never",
                 **strategy_options):
        self.strategy_name = strategy
        self.strategy: ReductionStrategy = make_strategy(strategy,
                                                         **strategy_options)
        #: debug mode: make the duplicate-row assertion of
        #: :meth:`Backend.scatter` real — indirect WRITE/RW through a
        #: non-injective mapping is last-writer-wins and backend-ordering
        #: dependent, so fail loudly instead of racing silently
        self.check_unique_writes = bool(check_unique_writes)
        #: OP2-style plan cache: static mesh-map indirection schedules
        #: plus the maintained Matrix-PIC operators
        self.plan = PlanCache()
        #: the particle-locality engine; opt-in (``locality="auto"`` /
        #: ``"always"``) because sorting permutes particle storage order.
        #: ``sparse`` arbitrates the Matrix-PIC operator per loop the same
        #: way (never = off and bit-stable, always = force, auto = EWMA)
        self.locality = LocalityAutotuner(mode=locality, sparse=sparse)
        self._seq = SeqBackend()

    # -- the Matrix-PIC sparse-operator path --------------------------------------

    def _arg_operator(self, a: Arg):
        """The maintained CSR operator addressing this P2C/DOUBLE arg."""
        if a.kind == ArgKind.DOUBLE:
            return self.plan.sparse_operator(a.p2c, map_=a.map,
                                             map_idx=a.map_idx)
        return self.plan.sparse_operator(a.p2c)

    def _sparse_select(self, loop, fastseg, n: int):
        """Per-loop strategy election for the sparse-operator engine.

        Returns ``None`` when the Matrix-PIC path cannot apply (sparse
        mode off and strategy not forced, non-particle loop, windowed
        iteration, no scipy, no eligible float64 P2C/DOUBLE traffic);
        otherwise a dict naming the chosen gather/deposit arm —
        ``"sparse_csr"`` vs the baseline — plus the dead-row indices the
        deposit must zero before the product (the operator gives dead
        rows zero weight, but ``0 · non-finite`` would still poison the
        sum) and whether to feed timings back into the autotuner.
        """
        forced = self.strategy_name == "sparse_csr"
        if not forced and self.locality.sparse == "never":
            return None
        pset = loop.iterset
        if not pset.is_particle_set or pset.p2c_map is None:
            return None
        if not (loop.start == 0 and loop.end == pset.size):
            return None       # operator rows cover the whole set
        if not have_scipy():
            return None
        has_g = has_d = False
        for a in loop.args:
            if a.is_global or a.kind not in (ArgKind.P2C, ArgKind.DOUBLE) \
                    or a.dat.dtype != np.float64:
                continue
            has_g |= a.access is AccessMode.READ
            has_d |= a.access is AccessMode.INC
        if not (has_g or has_d):
            return None
        dead = np.flatnonzero(pset.p2c_map.p2c < 0)
        sel = {"gather": None, "deposit": None,
               "dead_rows": dead if dead.size else None, "timing": False}
        if forced:
            # dead rows gather data[-1] on the indexed path (the seq
            # oracle's wrap) but 0.0 through P — keep them off the
            # sparse gather so dead-lane direct writes stay comparable
            sel["gather"] = ("sparse_csr" if has_g and not dead.size
                             else "indexed" if has_g else None)
            sel["deposit"] = "sparse_csr" if has_d else None
            return sel
        sel["timing"] = self.locality.sparse == "auto"
        if has_g:
            sel["gather"] = "indexed" if dead.size else \
                self.locality.pick_strategy(loop.name, "gather",
                                            ["indexed", "sparse_csr"], n)
        if has_d:
            base = ("segmented_presorted" if fastseg is not None
                    else self.strategy_name)
            sel["deposit"] = self.locality.pick_strategy(
                loop.name, "deposit", [base, "sparse_csr"], n)
        return sel

    # -- the sort-aware fast path -------------------------------------------------

    def _locality_segments(self, loop):
        """Cached per-cell segment offsets when the sorted fast path
        applies to this loop, else None.  May trigger an autotuned
        re-sort (recorded as a ``SortParticles`` pseudo-loop)."""
        if not self.locality.enabled:
            return None
        pset = loop.iterset
        if not pset.is_particle_set or pset.p2c_map is None:
            return None
        if not (loop.start == 0 and loop.end == pset.size):
            return None       # injected-only / windowed loops
        if not any(a.kind in (ArgKind.P2C, ArgKind.DOUBLE)
                   for a in loop.args):
            return None       # nothing addressed through the cell
        order = pset.order
        if not order.is_valid():
            if not self.locality.should_sort(pset.size):
                return None
            from ..core.particles import sort_particles_by_cell
            t0 = perf_counter()
            sort_particles_by_cell(pset)
            dt = perf_counter() - t0
            self.locality.note_sort(pset.size, dt)
            self._record_sort(pset, dt)
            if not order.is_valid():
                return None   # e.g. dead (-1) rows sorted to the front
        return self.plan.segments(pset)

    @staticmethod
    def _record_sort(pset, seconds: float) -> None:
        from ..core.context import get_context
        get_context().perf.record_loop("SortParticles", n=pset.size,
                                       seconds=seconds, indirect_inc=False,
                                       locality_sort=True)

    # -- opp_par_loop -----------------------------------------------------------

    def execute(self, loop: ParLoop) -> Optional[dict]:
        if loop.n_iter == 0:
            return None
        gen = loop.kernel.generated("vec")
        if not gen.vectorized:
            self._seq.execute(loop)
            return {"fallback": True}

        fastseg = self._locality_segments(loop)
        track = self.locality.enabled and loop.iterset.is_particle_set
        t_start = perf_counter() if track else 0.0

        full = loop.start == 0 and loop.end == loop.iterset.size
        idx = loop.iter_indices()
        params: List[np.ndarray] = []
        writeback: List[Tuple[Arg, np.ndarray, Optional[np.ndarray]]] = []
        n = idx.size
        sparse_sel = self._sparse_select(loop, fastseg, n)
        t_gather = t_deposit = 0.0

        for apos, a in enumerate(loop.args):
            if a.is_global:
                if a.access is AccessMode.READ:
                    params.append(a.dat.data.reshape(1, -1))
                else:
                    init = {AccessMode.INC: 0.0, AccessMode.MIN: np.inf,
                            AccessMode.MAX: -np.inf}[a.access]
                    buf = np.full((n, a.dat.dim), init,
                                  dtype=a.dat.data.dtype)
                    params.append(buf)
                    writeback.append((a, buf, None))
                continue
            if a.kind == ArgKind.DIRECT and a.access is AccessMode.READ \
                    and full:
                params.append(a.dat.data)
                continue
            if a.access is AccessMode.READ \
                    and a.kind in (ArgKind.P2C, ArgKind.DOUBLE) \
                    and (fastseg is not None or sparse_sel is not None):
                t0 = perf_counter() if sparse_sel is not None else 0.0
                if sparse_sel is not None \
                        and sparse_sel["gather"] == "sparse_csr" \
                        and a.dat.dtype == np.float64:
                    # Matrix-PIC gather: one CSR SpMM replaces the index
                    # build + fancy gather (unit weights, so the product
                    # is bit-identical to data[rows])
                    buf = self._arg_operator(a).gather(a.dat.data)
                elif fastseg is not None:
                    # sorted fast path: the per-particle indirect gather
                    # is a per-cell broadcast of contiguous segments
                    # (bit-identical values to data[rows], no index array
                    # ever built)
                    counts = fastseg[0]
                    if a.kind == ArgKind.P2C:
                        buf = np.repeat(a.dat.data, counts, axis=0)
                    else:
                        cell_rows = a.map.values[:, a.map_idx]
                        buf = np.repeat(a.dat.data[cell_rows], counts,
                                        axis=0)
                else:
                    buf = self.gather(a, idx)
                if sparse_sel is not None:
                    t_gather += perf_counter() - t0
                params.append(buf)
                continue
            rows = self.plan.rows(loop, a, idx)   # planned (static) or None
            if (self.check_unique_writes and a.is_indirect
                    and a.access in (AccessMode.WRITE, AccessMode.RW)):
                r = rows if rows is not None else a.gather_indices(idx)
                r = r[r >= 0]
                if r.size and np.unique(r).size != r.size:
                    raise RuntimeError(
                        f"loop {loop.name!r}: nonunique-write on arg "
                        f"{apos} (dat {a.dat.name!r}): duplicate indirect "
                        f"{a.access.name} target rows race under vector "
                        "execution (declare OPP_INC or make the mapping "
                        "injective)")
            if a.access in (AccessMode.READ, AccessMode.RW):
                buf = (a.dat.data[rows] if rows is not None
                       else self.gather(a, idx))
            else:  # WRITE / INC start from a clean buffer
                buf = np.zeros((n, a.dat.dim), dtype=a.dat.dtype)
            params.append(buf)
            if a.access.writes:
                writeback.append((a, buf, rows))

        # predication evaluates both branch sides; masked-off lanes may
        # produce invalid intermediates that the np.where discards — the
        # same thing a SIMT machine does — so FP warnings are suppressed
        with np.errstate(invalid="ignore", divide="ignore",
                         over="ignore"):
            gen.fn(*params)

        max_coll = 0
        strategy_used = self.strategy_name
        for a, buf, rows in writeback:
            if a.is_global:
                if a.access is AccessMode.INC:
                    a.dat.data += buf.sum(axis=0)
                elif a.access is AccessMode.MIN:
                    np.minimum(a.dat.data, buf.min(axis=0), out=a.dat.data)
                else:
                    np.maximum(a.dat.data, buf.max(axis=0), out=a.dat.data)
                continue
            if a.kind == ArgKind.DIRECT:
                if a.access is AccessMode.INC:
                    if full:
                        np.add(a.dat.data, buf, out=a.dat.data)
                    else:
                        a.dat.data[idx] += buf
                else:
                    a.dat.data[idx] = buf
                continue
            if a.access is AccessMode.INC \
                    and a.kind in (ArgKind.P2C, ArgKind.DOUBLE) \
                    and (fastseg is not None or sparse_sel is not None):
                t0 = perf_counter() if sparse_sel is not None else 0.0
                if sparse_sel is not None \
                        and sparse_sel["deposit"] == "sparse_csr" \
                        and a.dat.dtype == np.float64:
                    # Matrix-PIC deposit: target += P.T @ buf — one
                    # compiled CSC accumulation, no atomics, no per-loop
                    # sort; same sums as segmented_presorted up to
                    # floating-point reassociation
                    if sparse_sel["dead_rows"] is not None:
                        buf[sparse_sel["dead_rows"]] = 0.0
                    coll = self._arg_operator(a).deposit(a.dat.data, buf)
                    strategy_used = "sparse_csr"
                elif fastseg is not None:
                    # sorted fast path: per-cell segment sums via the
                    # cached reduceat boundaries — no per-loop argsort,
                    # no atomics
                    counts, _offsets, nonempty, starts = fastseg
                    if a.kind == ArgKind.P2C:
                        seg_rows = nonempty
                    else:
                        seg_rows = a.map.values[nonempty, a.map_idx]
                    coll = SegmentedPresorted.apply_segments(
                        a.dat.data, seg_rows, starts, buf, total=n)
                    strategy_used = "segmented_presorted"
                else:
                    coll = self.scatter(a, idx, buf, strategy=self.strategy)
                if sparse_sel is not None:
                    t_deposit += perf_counter() - t0
                max_coll = max(max_coll, coll)
                continue
            if rows is not None:
                if a.access is AccessMode.INC:
                    coll = self.strategy.apply(a.dat.data, rows, buf)
                else:   # WRITE / RW via a static map
                    a.dat.data[rows] = buf
                    coll = 0
            else:
                coll = self.scatter(a, idx, buf, strategy=self.strategy)
            max_coll = max(max_coll, coll)
        if track:
            self.locality.note_loop(n, perf_counter() - t_start,
                                    fast=fastseg is not None)
        if sparse_sel is not None and sparse_sel["timing"]:
            if sparse_sel["gather"] is not None and t_gather > 0.0:
                self.locality.note_strategy_cost(
                    loop.name, "gather", sparse_sel["gather"], n, t_gather)
            if sparse_sel["deposit"] is not None and t_deposit > 0.0:
                self.locality.note_strategy_cost(
                    loop.name, "deposit", sparse_sel["deposit"], n,
                    t_deposit)
        extras = {"collisions": max_coll, "strategy": strategy_used}
        if fastseg is not None:
            extras["locality_fast_path"] = True
        if sparse_sel is not None and (sparse_sel["gather"] == "sparse_csr"
                                       or sparse_sel["deposit"]
                                       == "sparse_csr"):
            extras["sparse_operator"] = True
        return extras

    # -- opp_particle_move --------------------------------------------------------

    def execute_move(self, loop: MoveLoop) -> MoveResult:
        gen = loop.kernel.generated("vec")
        if not gen.vectorized:
            return self._seq.execute_move(loop)
        dep = loop.deposit
        dep_gen = None
        if dep is not None:
            dep_gen = dep.kernel.generated("vec")
            if not dep_gen.vectorized:
                return self._seq.execute_move(loop)

        from ..translator.codegen import VecMoveContext

        p2c = loop.p2c_map.p2c
        c2c = loop.c2c_map.values
        foreign = loop.foreign_cell_mask

        idx = loop.iter_indices()
        alive = p2c[idx] >= 0
        active = idx[alive]
        cells = p2c[active].copy()

        result = MoveResult()
        removed_parts: List[np.ndarray] = []
        foreign_parts: List[np.ndarray] = []
        foreign_cells: List[np.ndarray] = []
        total_hops = 0
        max_coll = 0
        relocated = 0
        hop = 0

        while active.size:
            if hop >= loop.max_hops:
                raise RuntimeError(
                    f"{active.size} particles exceeded {loop.max_hops} hops "
                    f"in move loop {loop.name!r}")
            if foreign is not None:
                fmask = foreign[cells]
                if fmask.any():
                    stopped = active[fmask]
                    p2c[stopped] = cells[fmask]
                    foreign_parts.append(stopped)
                    foreign_cells.append(cells[fmask])
                    active = active[~fmask]
                    cells = cells[~fmask]
                    if active.size == 0:
                        break

            params: List[np.ndarray] = []
            writeback: List[Tuple[Arg, np.ndarray, np.ndarray]] = []
            for a in loop.args:
                if a.is_global:
                    params.append(a.dat.data.reshape(1, -1))
                    continue
                rows = a.gather_indices(active, cells)
                if a.access in (AccessMode.READ, AccessMode.RW):
                    buf = a.dat.data[rows]
                else:
                    buf = np.zeros((active.size, a.dat.dim), dtype=a.dat.dtype)
                params.append(buf)
                if a.access.writes:
                    writeback.append((a, buf, rows))

            mctx = VecMoveContext(cells, c2c[cells], hop)
            with np.errstate(invalid="ignore", divide="ignore",
                             over="ignore"):
                gen.fn(mctx, *params)
            total_hops += active.size

            for a, buf, rows in writeback:
                if a.access is AccessMode.INC:
                    if a.kind == ArgKind.DIRECT:
                        a.dat.data[rows] += buf   # particle rows are unique
                    else:
                        coll = self.strategy.apply(a.dat.data, rows, buf)
                        max_coll = max(max_coll, coll)
                else:
                    a.dat.data[rows] = buf

            status = mctx.status
            done = status == int(MoveStatus.MOVE_DONE)
            gone = status == int(MoveStatus.NEED_REMOVE)
            moving = status == int(MoveStatus.NEED_MOVE)
            if hop == 0:
                # particles still walking (or leaving) after the first hop
                # end up outside their original cell segment
                relocated = int(np.count_nonzero(moving)) \
                    + int(np.count_nonzero(gone))

            if dep_gen is not None:
                if dep.when == "hop":
                    dpart, dcells = active, cells
                else:                     # "done": settled this round
                    dpart, dcells = active[done], cells[done]
                if dpart.size:
                    coll = self._run_move_deposit(dep, dep_gen, dpart,
                                                  dcells)
                    max_coll = max(max_coll, coll)

            p2c[active[done]] = cells[done]
            if gone.any():
                dead = active[gone]
                p2c[dead] = -1
                removed_parts.append(dead)
            active = active[moving]
            cells = mctx.next_cell[moving]
            hop += 1

        loop.pset.order.note_relocated(relocated)
        result.total_hops = total_hops
        result.max_collisions = max_coll
        result.foreign_particles = (np.concatenate(foreign_parts)
                                    if foreign_parts
                                    else np.empty(0, dtype=np.int64))
        result.foreign_cells = (np.concatenate(foreign_cells)
                                if foreign_cells
                                else np.empty(0, dtype=np.int64))
        removed = (np.concatenate(removed_parts) if removed_parts
                   else np.empty(0, dtype=np.int64))
        result.n_removed = int(removed.size)
        if removed.size and not loop.defer_removal:
            loop.pset.remove_particles(removed)
        else:
            result.removed_indices = removed
        return result

    def _run_move_deposit(self, dep, gen, part_idx: np.ndarray,
                          cells: np.ndarray) -> int:
        """One fused-deposit round over the given frontier lanes."""
        params: List[np.ndarray] = []
        writeback: List[Tuple[Arg, np.ndarray, np.ndarray]] = []
        for a in dep.args:
            if a.is_global:
                params.append(a.dat.data.reshape(1, -1))
                continue
            rows = a.gather_indices(part_idx, cells)
            if a.access in (AccessMode.READ, AccessMode.RW):
                buf = a.dat.data[rows]
            else:
                buf = np.zeros((part_idx.size, a.dat.dim),
                               dtype=a.dat.dtype)
            params.append(buf)
            if a.access.writes:
                writeback.append((a, buf, rows))
        with np.errstate(invalid="ignore", divide="ignore",
                         over="ignore"):
            gen.fn(*params)
        max_coll = 0
        for a, buf, rows in writeback:
            if a.access is AccessMode.INC:
                if a.kind == ArgKind.DIRECT:
                    a.dat.data[rows] += buf   # particle rows are unique
                else:
                    coll = self.strategy.apply(a.dat.data, rows, buf)
                    max_coll = max(max_coll, coll)
            else:
                a.dat.data[rows] = buf
        return max_coll
