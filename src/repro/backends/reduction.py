"""Data-race handling strategies for indirect increments (paper §3.3).

The double-indirect increment (particles depositing charge/current onto
mesh elements) is the key bottleneck of the solver and each architecture
wants a different resolution:

* :class:`ScatterArrays` — thread-private arrays, reduced at loop end
  (OP-PIC's choice for OpenMP on CPUs, Figure 2(b));
* :class:`AtomicAdd` — safe compare-and-swap atomics (fast on NVIDIA);
* :class:`UnsafeAtomicAdd` — AMD's read-modify-write atomics, modelled as
  a per-target-column bincount accumulation (no CAS retries);
* :class:`SegmentedReduction` — the three-step
  ``store_values_and_keys`` → ``sort_by_key`` → ``reduce_by_key``
  pipeline of Figure 3;
* :class:`Coloring` — conflict-free colour rounds (requires a sort,
  mentioned as a CPU alternative).

All strategies compute bit-identical sums up to floating-point reassociation
and return the maximum observed collision multiplicity (how many lanes hit
the same element), which drives the atomic-serialization time model.
"""
from __future__ import annotations

import abc

import numpy as np

__all__ = ["ReductionStrategy", "AtomicAdd", "UnsafeAtomicAdd",
           "SegmentedReduction", "SegmentedPresorted", "ScatterArrays",
           "Coloring", "SparseCsr", "make_strategy"]


def _max_collisions(rows: np.ndarray) -> int:
    if rows.size == 0:
        return 0
    return int(np.bincount(rows).max())


class ReductionStrategy(abc.ABC):
    """Apply ``target[rows] += values`` race-free; report max collisions."""

    name = "abstract"

    @abc.abstractmethod
    def apply(self, target: np.ndarray, rows: np.ndarray,
              values: np.ndarray) -> int:
        ...

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class AtomicAdd(ReductionStrategy):
    """Safe (CAS-style) atomic increments — ``np.add.at`` is the exact
    sequential-consistency analogue: every duplicate index lands."""

    name = "atomics"

    def apply(self, target, rows, values):
        np.add.at(target, rows, values)
        return _max_collisions(rows)


class UnsafeAtomicAdd(ReductionStrategy):
    """Relaxed read-modify-write atomics.

    Hardware RMW atomics avoid CAS retry storms; algorithmically we realise
    the same sum with a per-component ``bincount`` accumulation, which like
    the hardware path performs one pass with no retries.
    """

    name = "unsafe_atomics"

    def apply(self, target, rows, values):
        n_rows = target.shape[0]
        for c in range(target.shape[1]):
            target[:, c] += np.bincount(rows, weights=values[:, c],
                                        minlength=n_rows)[:n_rows]
        return _max_collisions(rows)


class SegmentedReduction(ReductionStrategy):
    """Figure 3's three-step segmented reduction.

    (1) store values alongside their target keys, (2) sort by key,
    (3) reduce contiguous key segments, then one conflict-free scatter.
    """

    name = "segmented_reduction"

    def apply(self, target, rows, values):
        if rows.size == 0:
            return 0
        # (1) store_values_and_keys
        keys = np.asarray(rows)
        vals = np.asarray(values)
        # (2) sort_by_key
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        vals_sorted = vals[order]
        # (3) reduce_by_key: segment boundaries where the key changes
        boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        segment_keys = keys_sorted[starts]
        segment_sums = np.add.reduceat(vals_sorted, starts, axis=0)
        target[segment_keys] += segment_sums
        return _max_collisions(rows)


class SegmentedPresorted(ReductionStrategy):
    """Segmented reduction for *already cell-sorted* particles.

    When the particle set is cell-sorted (tracked by
    :class:`~repro.core.particles.ParticleOrder`), every target's
    contributions arrive in contiguous runs, so the per-loop stable
    argsort of :class:`SegmentedReduction` is pure overhead: segment
    boundaries are either handed in (the plan's cached ``reduceat``
    offsets) or recovered from the run structure in O(n), then one
    ``np.add.reduceat`` plus one scatter finishes the job.

    Correct for arbitrary ``rows`` too (distinct runs of the same key
    resolve through ``np.add.at``), just without the speedup.
    """

    name = "segmented_presorted"

    def apply(self, target, rows, values, starts=None):
        if rows.size == 0:
            return 0
        vals = np.asarray(values)
        if starts is None:
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(rows)) + 1))
        return self.apply_segments(target, rows[starts], starts, vals,
                                   total=rows.size)

    @staticmethod
    def apply_segments(target, seg_rows, starts, values,
                       total=None) -> int:
        """Reduce run segments of ``values`` (bounded by ``starts``) and
        add them onto ``target[seg_rows]``; returns max collisions."""
        if seg_rows.size == 0:
            return 0
        if total is None:
            total = values.shape[0]
        seg_sums = np.add.reduceat(values, starts, axis=0)
        np.add.at(target, seg_rows, seg_sums)
        lens = np.diff(np.append(starts, total))
        return int(np.bincount(seg_rows, weights=lens).max())


class SparseCsr(ReductionStrategy):
    """Matrix-PIC deposit: lower the scatter to ``P.T @ values``.

    A one-nnz-per-row CSR operator ``P`` (rows = loop iterations,
    cols = target elements) assembles in O(1) extra work — ``indptr`` is
    ``arange`` and ``indices`` *is* the row vector — and the increment
    runs as one compiled sparse-times-dense product instead of the
    per-element ufunc dispatch of ``np.add.at``.  Hot particle loops
    bypass this stateless form entirely: the vec/mp drivers keep an
    incrementally-maintained :class:`~repro.backends.sparse_ops.CsrOperator`
    per (particle set, map) behind the plan cache.

    Float sums reassociate exactly like ``segmented_presorted`` (allclose
    to ``seq``); integer data takes the exact ``np.add.at`` path and stays
    bit-equal.  Requires :mod:`scipy.sparse` — construction fails with
    :class:`~repro.backends.sparse_ops.SparseUnavailable` otherwise.
    """

    name = "sparse_csr"

    def __init__(self):
        from .sparse_ops import _require_scipy
        _require_scipy()

    def apply(self, target, rows, values):
        from .sparse_ops import sparse_deposit
        return sparse_deposit(target, rows, np.asarray(values))


class ScatterArrays(ReductionStrategy):
    """Thread-private scatter arrays (Figure 2(b)) for CPU threading.

    The iteration space is divided among ``nthreads`` workers; each worker
    accumulates into its private copy of the target and the copies are
    reduced afterwards.  Execution here is sequential per chunk but the
    algorithm (including the final reduce and its memory cost) is the real
    one.
    """

    name = "scatter_arrays"

    def __init__(self, nthreads: int = 4):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.nthreads = int(nthreads)

    def apply(self, target, rows, values):
        n = rows.size
        if n == 0:
            return 0
        chunks = np.array_split(np.arange(n), self.nthreads)
        privates = np.zeros((self.nthreads,) + target.shape,
                            dtype=target.dtype)
        for t, chunk in enumerate(chunks):
            if chunk.size:
                np.add.at(privates[t], rows[chunk], values[chunk])
        target += privates.sum(axis=0)
        return _max_collisions(rows)


class Coloring(ReductionStrategy):
    """Conflict-free colour rounds.

    Iterations hitting the same target element are assigned distinct
    colours (their rank within the element's hit-list); each colour round
    scatters with unique indices so a plain fancy-store add is safe.
    """

    name = "coloring"

    def apply(self, target, rows, values):
        if rows.size == 0:
            return 0
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        # colour = position within its equal-key run
        first_of_run = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_rows)) + 1))
        run_id = np.zeros(rows.size, dtype=np.int64)
        run_id[first_of_run] = 1
        run_id = np.cumsum(run_id) - 1
        colour_sorted = np.arange(rows.size) - first_of_run[run_id]
        ncolours = int(colour_sorted.max()) + 1
        for c in range(ncolours):
            sel = order[colour_sorted == c]
            target[rows[sel]] += values[sel]
        return ncolours


_STRATEGIES = {
    "atomics": AtomicAdd,
    "unsafe_atomics": UnsafeAtomicAdd,
    "segmented_reduction": SegmentedReduction,
    "segmented_presorted": SegmentedPresorted,
    "scatter_arrays": ScatterArrays,
    "coloring": Coloring,
    "sparse_csr": SparseCsr,
}


def make_strategy(name: str, **kwargs) -> ReductionStrategy:
    """Instantiate a race-handling strategy by registry name."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(f"unknown reduction strategy {name!r}; available: "
                         f"{sorted(_STRATEGIES)}") from None
    return cls(**kwargs)
