"""Loop execution plans (the OP2 "plan" concept).

OP2/OP-PIC build a *plan* the first time a loop executes — precomputed
indirection schedules reused by every subsequent execution, valid because
the mesh (and therefore every mesh map) is static for the whole
simulation.  Here a plan caches, per indirect mesh-map argument, the
contiguous row-index array the gather/scatter needs, so steady-state
executions of a mesh loop skip the per-call index arithmetic.

Particle-mapped arguments (``p2c`` / double indirection) are *not*
planned: the particle-to-cell map changes every move.  The exception is
a *cell-sorted* particle set (tracked by
:class:`~repro.core.particles.ParticleOrder`): its per-cell segment
offsets — the ``np.add.reduceat`` boundaries of the sort-aware fast
path — are cached here, keyed on the order's mutation state, so every
loop between two re-sorts reuses one ``bincount``/``cumsum``.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.args import Arg, ArgKind
from ..core.loops import ParLoop

__all__ = ["PlanCache", "loop_arg_rows"]


def loop_arg_rows(loop, arg: Arg) -> Optional[np.ndarray]:
    """Target-set rows touched by ``arg`` over a loop's iteration domain.

    Shared by the descriptor sanitizer's static race analysis and by
    backends wanting an up-front footprint.  Works for ``ParLoop`` and
    ``MoveLoop`` alike (both expose ``iter_indices``); rows of dead
    particles (``p2c < 0``) come back as ``-1`` so callers can mask
    them.  Globals have no rows — returns ``None``.
    """
    if arg.is_global:
        return None
    idx = loop.iter_indices()
    if arg.kind == ArgKind.DIRECT:
        return idx
    if arg.kind == ArgKind.INDIRECT:
        return arg.map.values[idx, arg.map_idx]
    cells = arg.p2c.p2c[idx]
    if arg.kind == ArgKind.P2C:
        return cells
    rows = np.full(idx.shape, -1, dtype=np.int64)   # DOUBLE
    alive = cells >= 0
    rows[alive] = arg.map.values[cells[alive], arg.map_idx]
    return rows


class PlanCache:
    """Per-backend cache of gather plans for static mesh loops."""

    def __init__(self):
        self._rows: Dict[Tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        #: id(pset) -> (order.state, (counts, offsets, nonempty, starts))
        self._segments: Dict[int, Tuple] = {}
        self.segment_hits = 0
        self.segment_misses = 0
        #: (id(p2c_map), id(map) or None, map_idx) -> CsrOperator
        self._sparse_ops: Dict[Tuple, object] = {}

    @staticmethod
    def _key(loop: ParLoop, arg: Arg) -> Optional[Tuple]:
        if arg.kind != ArgKind.INDIRECT:
            return None          # dynamic (particle) or direct addressing
        if loop.iterset.is_particle_set:
            return None          # particle counts change between calls
        return (id(arg.map), arg.map_idx, loop.start, loop.end)

    def rows(self, loop: ParLoop, arg: Arg,
             idx: np.ndarray) -> Optional[np.ndarray]:
        """Cached (contiguous) target rows for a plannable argument, or
        ``None`` when the argument cannot be planned."""
        key = self._key(loop, arg)
        if key is None:
            return None
        rows = self._rows.get(key)
        if rows is None:
            self.misses += 1
            rows = np.ascontiguousarray(arg.gather_indices(idx))
            self._rows[key] = rows
        else:
            self.hits += 1
        return rows

    def segments(self, pset) -> Tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        """Per-cell segment layout of a cell-sorted particle set.

        Returns ``(counts, offsets, nonempty, starts)``: particles per
        cell, the prefix-sum particle offset of every cell (length
        ``ncells + 1``), the indices of non-empty cells, and the particle
        index each non-empty cell's segment begins at (the ``reduceat``
        boundaries).  Cached per order-mutation state — the caller must
        have established ``pset.order.is_valid()``.
        """
        state = pset.order.state
        ent = self._segments.get(id(pset))
        if ent is not None and ent[0] == state:
            self.segment_hits += 1
            return ent[1]
        self.segment_misses += 1
        p2c = pset.p2c_map.p2c
        counts = np.bincount(p2c, minlength=pset.cells_set.size)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        nonempty = np.flatnonzero(counts)
        starts = offsets[nonempty]
        seg = (counts, offsets, nonempty, starts)
        self._segments[id(pset)] = (state, seg)
        return seg

    def sparse_operator(self, p2c_map, map_=None, map_idx=None):
        """The maintained Matrix-PIC operator for a (p2c, mesh-map) pair.

        Created on first request and *refreshed* (incrementally, off the
        order tracker's dirty counters) on every access, so callers always
        see an operator consistent with the live particle state.  The
        plan itself is handed down so a cell-sorted set assembles ``P.T``
        straight from the cached segment offsets.
        """
        from .sparse_ops import CsrOperator
        key = (id(p2c_map), id(map_) if map_ is not None else None, map_idx)
        op = self._sparse_ops.get(key)
        if op is None:
            op = CsrOperator(p2c_map, map_=map_, map_idx=map_idx)
            self._sparse_ops[key] = op
        op.refresh(plan=self)
        return op

    def clear(self) -> None:
        self._rows.clear()
        self.hits = 0
        self.misses = 0
        self._segments.clear()
        self.segment_hits = 0
        self.segment_misses = 0
        self._sparse_ops.clear()

    def __len__(self) -> int:
        return len(self._rows)
