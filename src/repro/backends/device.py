"""Simulated GPU device backend (CUDA / HIP targets).

Runs the same generated vector kernels as :class:`VecBackend` — predication
via masks is already the SIMT execution model — but parameterised the way a
GPU target differs from a CPU one:

* race handling defaults to **atomics** on the CUDA target and
  **unsafe atomics** on the HIP target (paper §3.3: NVIDIA hardware
  atomics are fast; on AMD, CAS atomics serialise badly and RMW "unsafe"
  atomics or segmented reductions are preferred);
* per-loop collision counts (max lanes hitting one element) and kernel
  branch counts are reported so the :mod:`repro.perf.machine` device model
  can apply atomic-serialization and warp-divergence penalties — the two
  effects the paper identifies as the GPU bottlenecks.
"""
from __future__ import annotations

from typing import Optional

from ..core.loops import ParLoop
from ..core.move import MoveLoop, MoveResult
from .vec import VecBackend

__all__ = ["DeviceBackend"]

_DEFAULT_STRATEGY = {"cuda": "atomics", "hip": "unsafe_atomics",
                     "xe": "atomics"}


def _branch_count(kernel) -> float:
    """Divergent-branch weight (see Kernel.branch_count)."""
    return kernel.branch_count()


class DeviceBackend(VecBackend):
    name = "device"

    def __init__(self, kind: str = "cuda", strategy: Optional[str] = None,
                 **strategy_options):
        if kind not in ("cuda", "hip", "xe"):
            raise ValueError(f"device kind must be 'cuda', 'hip' or 'xe' "
                             f"(Intel, the paper's future-work target), "
                             f"got {kind!r}")
        super().__init__(strategy=strategy or _DEFAULT_STRATEGY[kind],
                         **strategy_options)
        self.kind = kind
        self.name = kind

    def execute(self, loop: ParLoop) -> Optional[dict]:
        extras = super().execute(loop) or {}
        extras["device"] = self.kind
        extras["branches"] = _branch_count(loop.kernel)
        return extras

    def execute_move(self, loop: MoveLoop) -> MoveResult:
        return super().execute_move(loop)
