"""The elastic controller: drives a distributed app's step loop with
online rebalancing, periodic snapshots and (for tests) fault injection
wired in.

Per-step order matters for recovery semantics:

1. ``app.step()``;
2. snapshot (if due) — so a subsequent crash rolls back at most
   ``checkpoint_every`` steps;
3. fault injection (if armed, proc transport only) — placed *after* the
   snapshot so the kill-at-checkpoint-step test exercises the freshest
   snapshot;
4. policy check — gather per-rank busy seconds and particle counts with
   one-hot allreduces (every rank observes bit-identical vectors, so
   the policy decision is identical on every rank and nobody deadlocks
   in the collective migration that follows), then rebalance if the
   policy says the migration amortises.

The partition target comes from ``app._elastic_partition(weights)`` with
per-cell particle counts as weights — each app chooses its slab axis and
layer keys there so rebalancing cannot split layers that determinism
depends on (e.g. fempic's injection layer).
"""
from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .migrate import _get, rebalance
from .monitor import ImbalanceMonitor
from .policy import RebalancePolicy
from .recover import write_snapshot

__all__ = ["ElasticController"]


class ElasticController:
    """Runs an app's step loop with the elastic runtime attached."""

    def __init__(self, app, *, mode: str = "never", check_every: int = 1,
                 alpha: float = 0.5, threshold: float = 1.2,
                 min_particles: int = 64,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir=None, keep_snapshots: int = 2,
                 kill_rank: Optional[int] = None,
                 kill_step: Optional[int] = None):
        self.app = app
        self.comm = app.comm
        self.policy = RebalancePolicy(mode, alpha=alpha,
                                      threshold=threshold,
                                      min_particles=min_particles)
        self.monitor = ImbalanceMonitor(self.comm.nranks, alpha=alpha)
        self.check_every = max(int(check_every), 1)
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.keep_snapshots = keep_snapshots
        self.kill_rank = kill_rank
        self.kill_step = kill_step
        self.n_rebalances = 0
        self.n_snapshots = 0
        self.reports = []

    # -- state round-trip through snapshots -----------------------------------

    def state_dict(self) -> dict:
        return {"policy": self.policy.to_dict(),
                "monitor": self.monitor.to_dict(),
                "n_rebalances": self.n_rebalances}

    def load_state(self, payload: Optional[dict]) -> None:
        if not payload:
            return
        self.policy = RebalancePolicy.from_dict(payload["policy"])
        self.monitor = ImbalanceMonitor.from_dict(payload["monitor"])
        self.n_rebalances = int(payload["n_rebalances"])

    # -- the loop -------------------------------------------------------------

    def run(self, n_steps: int, start_step: int = 0):
        for step in range(start_step, n_steps):
            self.app.step()
            self._after_step(step + 1)
        return self.app.history

    def _after_step(self, completed: int) -> None:
        if (self.checkpoint_every and self.checkpoint_dir is not None
                and completed % self.checkpoint_every == 0):
            write_snapshot(self.app, completed, self.checkpoint_dir,
                           elastic_state=self.state_dict(),
                           keep=self.keep_snapshots)
            self.n_snapshots += 1
        if (self.kill_step is not None and completed == self.kill_step
                and getattr(self.comm, "my_rank", None) == self.kill_rank):
            # simulate a hard rank failure: no cleanup, no goodbye
            os._exit(1)
        if self.policy.enabled and completed % self.check_every == 0:
            self._check()

    # -- one policy check -----------------------------------------------------

    def _gather(self, local_vals, dtype=np.float64) -> np.ndarray:
        """Allreduce-sum of one-hot per-rank vectors: every rank ends
        up with the same full per-rank vector."""
        nranks = self.comm.nranks
        per_rank = []
        for r in range(nranks):
            v = np.zeros(nranks, dtype=dtype)
            if self.comm.is_local(r):
                v[r] = local_vals[r]
            per_rank.append(v)
        return np.asarray(self.comm.allreduce(per_rank, "sum"))

    def _particle_weights(self) -> np.ndarray:
        """Global per-cell particle counts (the repartition weights)."""
        comm, app = self.comm, self.app
        n_cells = len(app.cell_owner)
        per_rank = []
        for r in range(comm.nranks):
            v = np.zeros(n_cells, dtype=np.float64)
            if comm.is_local(r):
                rk = app.ranks[r]
                parts = _get(rk, "parts")
                p2c = _get(rk, "p2c")
                gcell = app.meshes[r].cells_global[p2c.p2c[: parts.size]]
                np.add.at(v, gcell, 1.0)
            per_rank.append(v)
        return np.asarray(comm.allreduce(per_rank, "sum"))

    def _check(self) -> None:
        app = self.app
        busy = self._gather(app.busy_seconds_per_rank())
        counts = {r: float(_get(app.ranks[r], "parts").size)
                  for r in self.comm.local_ranks}
        parts = self._gather([counts.get(r, 0.0)
                              for r in range(self.comm.nranks)])
        self.monitor.observe(busy, parts.astype(np.int64))
        self.policy.note_check()
        if not self.policy.should_rebalance(self.monitor):
            return
        weights = self._particle_weights()
        new_owner = app._elastic_partition(weights)
        report = rebalance(app, new_owner)
        if (report.n_cells_moved or report.n_particles_moved
                or report.n_nodes_moved):
            self.policy.note_migration(report.seconds_max)
            self.monitor.reset_interval()
            self.n_rebalances += 1
            self.reports.append(report)

    def stats(self) -> dict:
        """Replicated-deterministic summary for the driver payload."""
        return {"mode": self.policy.mode,
                "rebalances": self.n_rebalances,
                "skips": self.policy.n_skips,
                "snapshots": self.n_snapshots,
                "migrate_seconds": self.policy.migrate_seconds,
                "cells_moved": int(sum(r.n_cells_moved
                                       for r in self.reports)),
                "particles_moved": int(sum(r.n_particles_moved
                                           for r in self.reports))}
