"""Elastic runtime: online load rebalancing and rank-failure recovery.

Three cooperating pieces turn the static distributed runtime of
PRs 3-4 into an elastic one:

* :mod:`monitor` / :mod:`policy` — measure per-rank busy seconds and
  particle counts each step and decide, from EWMA cost estimates (the
  same discipline as the locality autotuner), when a repartition's
  projected gain amortises its migration cost;
* :mod:`migrate` — the live migration protocol: given a new
  ``cell_owner``, exchange owned mesh rows, per-rank globals and
  particles over the existing transport ops, rebuild halo plans in
  place and renumber ``p2c`` — the assembled global state is preserved
  bit-for-bit (data moves, no arithmetic);
* :mod:`recover` — per-rank distributed snapshots plus a consistent
  global manifest, and the restore paths (same-rank-count: bit-exact;
  fewer ranks: assemble-and-repartition) the driver's supervisor uses
  after a :class:`~repro.dist.transport.RankFailure`.

:class:`~repro.elastic.control.ElasticController` drives an app's step
loop with all three wired in.
"""
from .control import ElasticController
from .migrate import MigrationReport, rebalance
from .monitor import ImbalanceMonitor
from .policy import REBALANCE_MODES, RebalancePolicy
from .recover import (latest_snapshot, restore_snapshot, snapshot_step_dir,
                      write_snapshot)

__all__ = ["ImbalanceMonitor", "RebalancePolicy", "REBALANCE_MODES",
           "rebalance", "MigrationReport", "ElasticController",
           "write_snapshot", "restore_snapshot", "latest_snapshot",
           "snapshot_step_dir"]
