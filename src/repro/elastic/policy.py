"""The rebalance trigger policy.

Mirrors the cost-model discipline of
:class:`~repro.backends.locality.LocalityAutotuner`: keep EWMA estimates
of what a migration costs (measured wall seconds of past migrations,
allreduce-maxed so every rank sees the same number) and of how long a
repartition's benefit lives (the observed interval between rebalances),
and trigger only when

    excess_seconds · intervals_between_rebalances  >  migrate_seconds

where ``excess_seconds`` is the monitor's projected per-interval saving
(slowest rank's busy time above the mean).  Until a migration has been
measured the policy triggers optimistically — that is also what primes
the cost estimate.  Modes: ``never`` (elastic runtime off — the
default, keeping every existing code path bit-stable), ``always``
(repartition at every check where the imbalance exceeds the threshold)
and ``auto``.
"""
from __future__ import annotations

from typing import Optional

from .monitor import ImbalanceMonitor, _ewma

__all__ = ["RebalancePolicy", "REBALANCE_MODES"]

REBALANCE_MODES = ("never", "auto", "always")


class RebalancePolicy:
    """Decides when a live repartition pays for itself."""

    def __init__(self, mode: str = "never", alpha: float = 0.5,
                 threshold: float = 1.2, min_particles: int = 64):
        if mode not in REBALANCE_MODES:
            raise ValueError(f"unknown rebalance mode {mode!r}; "
                             f"available: {REBALANCE_MODES}")
        self.mode = mode
        self.alpha = float(alpha)
        #: below this max/mean imbalance a repartition cannot win
        self.threshold = float(threshold)
        #: below this global particle count the bookkeeping dominates
        self.min_particles = int(min_particles)
        #: EWMA wall seconds of one migration
        self.migrate_seconds: Optional[float] = None
        #: EWMA checks between consecutive rebalances (benefit lifetime)
        self.intervals_between = 1.0
        self._checks_since_rebalance = 0
        self.n_rebalances = 0
        self.n_skips = 0

    @property
    def enabled(self) -> bool:
        return self.mode != "never"

    # -- measurements ---------------------------------------------------------

    def note_check(self) -> None:
        self._checks_since_rebalance += 1

    def note_migration(self, seconds: float) -> None:
        """Record a completed migration's (rank-agreed) wall seconds."""
        self.migrate_seconds = _ewma(self.migrate_seconds, float(seconds),
                                     self.alpha)
        if self.n_rebalances > 0:
            self.intervals_between = _ewma(
                self.intervals_between,
                float(max(self._checks_since_rebalance, 1)), self.alpha)
        self._checks_since_rebalance = 0
        self.n_rebalances += 1

    # -- the decision ---------------------------------------------------------

    def should_rebalance(self, monitor: ImbalanceMonitor) -> bool:
        if not self.enabled:
            return False
        if monitor.imbalance is None:
            return False          # no complete interval measured yet
        total_particles = (0 if monitor.particles is None
                           else int(monitor.particles.sum()))
        if total_particles < self.min_particles:
            return False
        if monitor.imbalance <= self.threshold:
            return False
        if self.mode == "always":
            return True
        if self.migrate_seconds is None:
            return True           # optimistic bootstrap: migrate and measure
        gain = monitor.excess_seconds * max(self.intervals_between, 1.0)
        if gain > self.migrate_seconds:
            return True
        self.n_skips += 1
        return False

    # -- (de)serialisation for checkpoints ------------------------------------

    def to_dict(self) -> dict:
        return {"mode": self.mode, "alpha": self.alpha,
                "threshold": self.threshold,
                "min_particles": self.min_particles,
                "migrate_seconds": self.migrate_seconds,
                "intervals_between": self.intervals_between,
                "checks_since_rebalance": self._checks_since_rebalance,
                "n_rebalances": self.n_rebalances,
                "n_skips": self.n_skips}

    @classmethod
    def from_dict(cls, payload: dict) -> "RebalancePolicy":
        pol = cls(payload["mode"], payload["alpha"], payload["threshold"],
                  payload["min_particles"])
        pol.migrate_seconds = payload["migrate_seconds"]
        pol.intervals_between = payload["intervals_between"]
        pol._checks_since_rebalance = payload["checks_since_rebalance"]
        pol.n_rebalances = payload["n_rebalances"]
        pol.n_skips = payload["n_skips"]
        return pol

    def __repr__(self) -> str:
        fmt = (lambda v: "?" if v is None else f"{v:.3g}")
        return (f"<RebalancePolicy {self.mode} "
                f"migrate_s={fmt(self.migrate_seconds)} "
                f"rebalances={self.n_rebalances} skips={self.n_skips}>")
