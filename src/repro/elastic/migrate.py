"""Live migration: move a running distributed app to a new partition.

Given a new ``cell_owner`` (from any :mod:`repro.runtime.partition`
method — typically the incremental ``diffusive`` one), the engine

1. rebuilds the rank meshes and halo plan for the new ownership (every
   rank derives them deterministically, as at construction);
2. asks the app to re-declare its per-rank DSL objects against the new
   local meshes (``_rebuild_rank`` — static dats are re-derived from
   the global mesh, the backend context is *reused* so worker pools and
   accumulated perf counters survive);
3. exchanges the owned rows of every *dynamic* mesh dat between old and
   new owners over the transport's p2p ops (send-all-then-recv-all per
   dat, exactly the halo-push discipline), carries per-rank global
   accumulators over, and migrates the particles (packed rows keyed by
   global cell id, appended retained-first then in source-rank order);
4. swaps the new meshes/plan/ranks into the app and lets it rebuild
   any derived machinery (``_post_rebalance`` — e.g. the DH mover's
   RMA windows).

The protocol is pure data movement — no arithmetic touches dat values —
so the *assembled global state* (owned rows scattered to global ids,
particles keyed by id) after a migration is bit-equal to the state
before it, which is exactly what the dist-conformance harness's
``rebalance`` op verifies against the never-migrated oracle.

The app contract (duck-typed; see ``DistributedFemPic`` for the
reference implementation):

* attributes ``comm``, ``meshes``, ``plan``, ``ranks``, ``cell_owner``;
* ``_build_partition(new_owner) -> (meshes, plan)``;
* ``_rebuild_rank(r, rank_mesh, old_rank) -> rank`` (fresh empty
  particle set, static dats initialised, context reused);
* ``_migration_spec() -> dict`` with keys ``cell``/``node``/``part``
  (dat attribute names), optional ``globals`` (per-rank accumulators to
  carry) and — when node dats are present — ``c2n`` (the global
  cell-to-node map, for deriving node ownership);
* optional ``_post_rebalance()``.
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..runtime.exchange import pack_particles, unpack_particles
from ..runtime.halo import push_cell_halos, push_node_halos

__all__ = ["rebalance", "rebuild_partition", "MigrationReport",
           "node_owners"]

#: message tags (distinct from halo 1-4, particle-move 10/11 and the
#: apps' gather/scatter 40/41/60/61 so a migration can interleave with
#: none of them pending)
_TAG_CELL_DAT = 70
_TAG_NODE_DAT = 71
_TAG_PART_PAYLOAD = 72
_TAG_PART_CELLS = 73


def _get(rank, name: str):
    """Rank declarations are attribute objects (fempic/cabana) or dicts
    (twod); resolve a handle name against either."""
    return rank[name] if isinstance(rank, dict) else getattr(rank, name)


def node_owners(c2n: np.ndarray, cell_owner: np.ndarray,
                nranks: int) -> np.ndarray:
    """A node is owned by the lowest rank among its adjacent cells'
    owners — the same rule :func:`repro.runtime.halo.build_rank_meshes`
    applies, repeated here so old/new node ownership can be derived
    from old/new cell ownership alone."""
    n_nodes = int(c2n.max()) + 1
    owner = np.full(n_nodes, nranks, dtype=np.int64)
    np.minimum.at(owner, c2n.ravel(),
                  np.repeat(np.asarray(cell_owner, dtype=np.int64),
                            c2n.shape[1]))
    return owner


@dataclass
class MigrationReport:
    """What one live migration did (identical on every rank)."""

    n_cells_moved: int = 0
    n_nodes_moved: int = 0
    n_particles_moved: int = 0
    #: this process's wall seconds
    seconds: float = 0.0
    #: slowest rank's wall seconds (allreduce-maxed; feed this to the
    #: policy so every rank's cost estimate stays bit-identical)
    seconds_max: float = 0.0


def _exchange_owned_rows(comm, names, old_ranks, new_ranks,
                         old_ids, new_ids, old_owner, new_owner,
                         n_global: int, tag: int) -> int:
    """Move each dat's owned rows from old owners to new owners.

    ``old_ids[r]`` / ``new_ids[r]`` give rank r's local element order
    (owned-first global ids).  Rows whose owner is unchanged are copied
    locally; the rest travel as one message per (src, dst, dat).
    Returns the number of moved elements.
    """
    nranks = comm.nranks
    gids = np.arange(n_global, dtype=np.int64)
    # local index of every element within its owner (old and new);
    # the id lists are owned-only and owners partition the elements,
    # so every slot is written exactly once
    old_local = np.empty(n_global, dtype=np.int64)
    new_local = np.empty(n_global, dtype=np.int64)
    for r in range(nranks):
        old_local[old_ids[r]] = np.arange(len(old_ids[r]))
        new_local[new_ids[r]] = np.arange(len(new_ids[r]))

    pairs: Dict[Tuple[int, int], np.ndarray] = {}
    moved = 0
    for s in range(nranks):
        sel = old_owner == s
        for r in range(nranks):
            rows = gids[sel & (new_owner == r)]
            if rows.size == 0:
                continue
            pairs[(s, r)] = rows
            if s != r:
                moved += rows.size

    for name in names:
        for (s, r), rows in pairs.items():
            if s == r:
                if comm.is_local(s):
                    src = _get(old_ranks[s], name)
                    dst = _get(new_ranks[s], name)
                    dst.data[new_local[rows]] = src.data[old_local[rows]]
                continue
            if comm.is_local(s):
                src = _get(old_ranks[s], name)
                comm.send(s, r, src.data[old_local[rows]].copy(), tag=tag)
        for (s, r), rows in pairs.items():
            if s == r or not comm.is_local(r):
                continue
            dst = _get(new_ranks[r], name)
            dst.data[new_local[rows]] = comm.recv(r, s, tag=tag)
    return moved


def _migrate_particles(comm, names, old_ranks, new_ranks, old_meshes,
                       new_meshes, new_owner) -> int:
    """Repack every particle onto its cell's new owner.

    The receive order is deterministic on every transport: each rank
    first re-appends its retained particles (original order), then
    appends arrivals in source-rank order, each batch preserving the
    sender's order — so both transports produce identical particle
    layouts and the run stays reproducible.
    """
    nranks = comm.nranks
    counts = np.zeros((nranks, nranks), dtype=np.int64)
    outgoing = {}
    staying = {}

    for s in comm.local_ranks:
        old = old_ranks[s]
        parts = _get(old, "parts")
        p2c = _get(old, "p2c")
        n = parts.size
        gcell = old_meshes[s].cells_global[p2c.p2c[:n]]
        dest = new_owner[gcell]
        staying[s] = (np.flatnonzero(dest == s), gcell)
        dats = [_get(old, nm) for nm in names]
        for d in np.unique(dest):
            d = int(d)
            if d == s:
                continue
            rows = np.flatnonzero(dest == d)
            counts[s, d] = rows.size
            outgoing[(s, d)] = (pack_particles(dats, rows),
                                gcell[rows].copy())

    recv_counts = comm.alltoall_counts(counts)
    for (s, d), (buf, cells) in outgoing.items():
        comm.send(s, d, buf, tag=_TAG_PART_PAYLOAD)
        comm.send(s, d, cells, tag=_TAG_PART_CELLS)

    n_moved = int(counts.sum())
    for r in comm.local_ranks:
        new = new_ranks[r]
        new_parts = _get(new, "parts")
        g2l = np.full(len(new_owner), -1, dtype=np.int64)
        cg = new_meshes[r].cells_global
        g2l[cg] = np.arange(cg.size)
        stay_rows, gcell = staying[r]
        old = old_ranks[r]
        sl = new_parts.add_particles(stay_rows.size,
                                     cell_indices=g2l[gcell[stay_rows]])
        for nm in names:
            _get(new, nm).data[sl] = _get(old, nm).data[stay_rows]
        new_dats = [_get(new, nm) for nm in names]
        for s in range(nranks):
            cnt = int(recv_counts[r, s])
            if cnt == 0:
                continue
            buf = comm.recv(r, s, tag=_TAG_PART_PAYLOAD)
            cells = comm.recv(r, s, tag=_TAG_PART_CELLS)
            sl = new_parts.add_particles(cnt, cell_indices=g2l[cells])
            unpack_particles(new_dats, sl, buf)
        new_parts.end_injection()
    return n_moved


def _clear_plan_caches(comm, ranks) -> None:
    # rebuilt sets/maps can reuse CPython ids of the dead ones — drop
    # any backend plan caches keyed on object identity
    for r in comm.local_ranks:
        ctx = _get(ranks[r], "ctx")
        cache = getattr(getattr(ctx, "backend", None), "plan", None)
        if cache is not None and hasattr(cache, "_rows"):
            cache.__init__()


def rebuild_partition(app, new_owner: np.ndarray) -> None:
    """Swap the app onto a new partition *without* moving any data —
    for callers (snapshot restore) that are about to overwrite every
    dat anyway."""
    comm = app.comm
    new_owner = np.asarray(new_owner, dtype=np.int64)
    new_meshes, new_plan = app._build_partition(new_owner)
    new_ranks = [app._rebuild_rank(r, new_meshes[r], app.ranks[r])
                 if comm.is_local(r) else None
                 for r in range(comm.nranks)]
    app.meshes, app.plan = new_meshes, new_plan
    app.ranks, app.cell_owner = new_ranks, new_owner
    _clear_plan_caches(comm, new_ranks)
    post = getattr(app, "_post_rebalance", None)
    if post is not None:
        post()


def rebalance(app, new_owner: np.ndarray) -> MigrationReport:
    """Migrate ``app`` live to ``new_owner``; returns what moved."""
    comm = app.comm
    nranks = comm.nranks
    new_owner = np.asarray(new_owner, dtype=np.int64)
    old_owner = np.asarray(app.cell_owner, dtype=np.int64)
    if new_owner.shape != old_owner.shape:
        raise ValueError("new cell_owner must cover every global cell")
    if np.array_equal(new_owner, old_owner):
        return MigrationReport()

    t0 = time.perf_counter()
    spec = app._migration_spec()
    old_meshes, old_ranks = app.meshes, app.ranks
    new_meshes, new_plan = app._build_partition(new_owner)
    new_ranks = [app._rebuild_rank(r, new_meshes[r], old_ranks[r])
                 if comm.is_local(r) else None for r in range(nranks)]

    report = MigrationReport()
    n_cells = old_owner.size
    report.n_cells_moved = _exchange_owned_rows(
        comm, spec.get("cell", ()), old_ranks, new_ranks,
        [m.cells_global[: m.n_owned_cells] for m in old_meshes],
        [m.cells_global[: m.n_owned_cells] for m in new_meshes],
        old_owner, new_owner, n_cells, _TAG_CELL_DAT)

    node_names = spec.get("node", ())
    if node_names:
        c2n = spec["c2n"]
        old_nowner = node_owners(c2n, old_owner, nranks)
        new_nowner = node_owners(c2n, new_owner, nranks)
        report.n_nodes_moved = _exchange_owned_rows(
            comm, node_names, old_ranks, new_ranks,
            [m.nodes_global[: m.n_owned_nodes] for m in old_meshes],
            [m.nodes_global[: m.n_owned_nodes] for m in new_meshes],
            old_nowner, new_nowner, old_nowner.size, _TAG_NODE_DAT)

    for name in spec.get("globals", ()):
        for r in comm.local_ranks:
            _get(new_ranks[r], name).data[:] = \
                _get(old_ranks[r], name).data

    report.n_particles_moved = _migrate_particles(
        comm, spec.get("part", ()), old_ranks, new_ranks,
        old_meshes, new_meshes, new_owner)

    # refresh ghosts of the migrated dats so halo reads after the swap
    # see exactly the owner values they would on a never-migrated run
    per_rank = (lambda nm: [_get(rk, nm) if rk is not None else None
                            for rk in new_ranks])
    app.meshes, app.plan = new_meshes, new_plan
    app.ranks, app.cell_owner = new_ranks, new_owner
    for nm in spec.get("cell", ()):
        push_cell_halos(per_rank(nm), new_plan, comm)
    for nm in node_names:
        push_node_halos(per_rank(nm), new_plan, comm)

    _clear_plan_caches(comm, new_ranks)

    post = getattr(app, "_post_rebalance", None)
    if post is not None:
        post()

    report.seconds = time.perf_counter() - t0
    report.seconds_max = float(comm.allreduce(
        [report.seconds] * nranks, "max"))
    return report
