"""Load-imbalance measurement for the elastic runtime.

The monitor consumes, at every policy check, the per-rank busy-seconds
vector (from each rank's :class:`~repro.perf.timers.PerfRecorder`) and
the per-rank particle counts.  Both vectors are gathered with one
allreduce each (every rank contributes a one-hot vector), so every rank
observes bit-identical values and the downstream policy decisions stay
deterministic across ranks — the same requirement the halo plans have.

Busy seconds are cumulative, so the monitor differences them between
checks and smooths the resulting per-interval imbalance with an EWMA;
a single slow step (a page fault, a GC pause) should not trigger a
repartition on its own.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ImbalanceMonitor"]


def _ewma(old: Optional[float], new: float, alpha: float) -> float:
    return new if old is None else alpha * new + (1.0 - alpha) * old


class ImbalanceMonitor:
    """Tracks per-rank load and its max/mean imbalance over time."""

    def __init__(self, nranks: int, alpha: float = 0.5):
        self.nranks = int(nranks)
        self.alpha = float(alpha)
        #: busy-seconds vector at the previous check (cumulative)
        self._prev_busy: Optional[np.ndarray] = None
        #: busy seconds spent per rank in the last interval
        self.interval_busy: Optional[np.ndarray] = None
        #: EWMA of max/mean interval busy seconds (1.0 = balanced)
        self.imbalance: Optional[float] = None
        #: raw imbalance of the last interval
        self.last_imbalance: Optional[float] = None
        #: particle counts per rank at the last check
        self.particles: Optional[np.ndarray] = None
        self.n_checks = 0

    # -- observations ---------------------------------------------------------

    def observe(self, busy_per_rank, particles_per_rank) -> None:
        """Record one check: cumulative busy seconds + particle counts."""
        busy = np.asarray(busy_per_rank, dtype=np.float64)
        if busy.shape != (self.nranks,):
            raise ValueError("busy vector must have one entry per rank")
        self.particles = np.asarray(particles_per_rank, dtype=np.int64)
        if self._prev_busy is not None:
            delta = busy - self._prev_busy
            self.interval_busy = delta
            mean = float(delta.mean())
            raw = float(delta.max()) / mean if mean > 0 else 1.0
            self.last_imbalance = raw
            self.imbalance = _ewma(self.imbalance, raw, self.alpha)
        self._prev_busy = busy
        self.n_checks += 1

    def reset_interval(self, busy_per_rank=None) -> None:
        """Restart interval differencing (after a migration shuffled the
        load, the pre-migration interval is no longer representative)."""
        if busy_per_rank is not None:
            self._prev_busy = np.asarray(busy_per_rank, dtype=np.float64)
        self.imbalance = None
        self.last_imbalance = None

    # -- derived quantities ---------------------------------------------------

    @property
    def mean_interval_seconds(self) -> float:
        """Mean per-rank busy seconds of the last interval."""
        if self.interval_busy is None:
            return 0.0
        return float(self.interval_busy.mean())

    @property
    def excess_seconds(self) -> float:
        """Projected per-interval saving of perfect balance: the busy
        time of the slowest rank above the mean (the critical-path
        reduction a repartition could at best achieve)."""
        if self.interval_busy is None:
            return 0.0
        return float(self.interval_busy.max() - self.interval_busy.mean())

    # -- (de)serialisation for checkpoints ------------------------------------

    def to_dict(self) -> dict:
        return {
            "nranks": self.nranks, "alpha": self.alpha,
            "prev_busy": None if self._prev_busy is None
            else self._prev_busy.tolist(),
            "interval_busy": None if self.interval_busy is None
            else self.interval_busy.tolist(),
            "imbalance": self.imbalance,
            "last_imbalance": self.last_imbalance,
            "particles": None if self.particles is None
            else self.particles.tolist(),
            "n_checks": self.n_checks,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ImbalanceMonitor":
        mon = cls(payload["nranks"], payload["alpha"])
        if payload["prev_busy"] is not None:
            mon._prev_busy = np.asarray(payload["prev_busy"])
        if payload["interval_busy"] is not None:
            mon.interval_busy = np.asarray(payload["interval_busy"])
        mon.imbalance = payload["imbalance"]
        mon.last_imbalance = payload["last_imbalance"]
        if payload["particles"] is not None:
            mon.particles = np.asarray(payload["particles"],
                                       dtype=np.int64)
        mon.n_checks = payload["n_checks"]
        return mon

    def __repr__(self) -> str:
        fmt = (lambda v: "?" if v is None else f"{v:.3g}")
        return (f"<ImbalanceMonitor ranks={self.nranks} "
                f"imbalance={fmt(self.imbalance)} checks={self.n_checks}>")
