"""Distributed snapshots and rank-failure recovery.

Snapshot layout under a checkpoint directory::

    ckpt/
      step_000040/
        rank00000.npz     per-rank DSL state (dats, p2c, set sizes, extras)
        rank00001.npz
        global.npz        cell_owner + replicated history
        manifest.json     written *last*, atomically — its presence marks
                          the snapshot consistent

Every rank writes its own ``rank*.npz``; a barrier separates the rank
files from rank 0 writing ``global.npz`` and the manifest, so a crash at
any instant leaves either a previous complete snapshot or a manifest-less
(hence ignored) partial one.  The manifest carries the elastic
controller's policy/monitor state so a recovered run keeps its learned
cost model.

Two restore paths:

* **same rank count** — rebuild the saved partition (no data movement),
  then overwrite every rank's state from its own file: bit-exact, a
  recovered run reproduces the uninterrupted run's history to the bit;
* **fewer ranks** — assemble the global dynamic state from *all* old
  rank files (owned rows scattered by global id, particles concatenated
  in old-rank order) and scatter it onto the new, smaller partition:
  physically consistent, not bit-identical (sums reassociate).
"""
from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..util.checkpoint import restore_state, state_payload
from .migrate import _get, rebuild_partition

__all__ = ["write_snapshot", "restore_snapshot", "latest_snapshot",
           "snapshot_step_dir", "SNAPSHOT_FORMAT"]

SNAPSHOT_FORMAT = 1
_MANIFEST = "manifest.json"


def snapshot_step_dir(ckpt_dir: Union[str, Path], step: int) -> Path:
    return Path(ckpt_dir) / f"step_{step:06d}"


def _rank_file(snap_dir: Path, rank: int) -> Path:
    return snap_dir / f"rank{rank:05d}.npz"


def write_snapshot(app, step: int, ckpt_dir: Union[str, Path],
                   elastic_state: Optional[dict] = None,
                   keep: int = 2) -> Path:
    """Write one consistent snapshot of a distributed app at ``step``."""
    comm = app.comm
    snap = snapshot_step_dir(ckpt_dir, step)
    snap.mkdir(parents=True, exist_ok=True)
    for r in comm.local_ranks:
        payload = state_payload(app.ranks[r])
        extras = getattr(app, "_snapshot_extras", None)
        if extras is not None:
            for name, arr in extras(r).items():
                payload[f"extra__{name}"] = np.asarray(arr)
        np.savez_compressed(_rank_file(snap, r), **payload)
    comm.barrier()         # every rank file exists before the manifest
    if comm.is_local(0):
        gpayload = {"cell_owner": np.asarray(app.cell_owner,
                                             dtype=np.int64)}
        for key, vals in app.history.items():
            gpayload[f"hist__{key}"] = np.asarray(vals)
        np.savez_compressed(snap / "global.npz", **gpayload)
        manifest = {"format": SNAPSHOT_FORMAT, "step": int(step),
                    "nranks": int(comm.nranks),
                    "app": type(app).__name__,
                    "elastic": elastic_state}
        tmp = snap / (_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=1))
        os.replace(tmp, snap / _MANIFEST)       # atomic commit point
        _prune(Path(ckpt_dir), keep)
    comm.barrier()         # no rank races ahead of the commit point
    return snap


def _prune(ckpt_dir: Path, keep: int) -> None:
    """Drop all but the newest ``keep`` *consistent* snapshots (dirs
    without a manifest are in-flight and left alone)."""
    done = sorted(d for d in ckpt_dir.glob("step_*")
                  if (d / _MANIFEST).is_file())
    for d in done[:-keep] if keep > 0 else []:
        shutil.rmtree(d, ignore_errors=True)


def _read_manifest(snap_dir: Path) -> Optional[dict]:
    try:
        manifest = json.loads((snap_dir / _MANIFEST).read_text())
    except (OSError, ValueError):
        return None
    if manifest.get("format") != SNAPSHOT_FORMAT:
        return None
    return manifest


def latest_snapshot(ckpt_dir: Union[str, Path]
                    ) -> Optional[Tuple[int, Path]]:
    """The newest consistent snapshot under ``ckpt_dir``, or ``None``."""
    best = None
    for d in Path(ckpt_dir).glob("step_*"):
        manifest = _read_manifest(d)
        if manifest is None:
            continue
        step = int(manifest["step"])
        if best is None or step > best[0]:
            best = (step, d)
    return best


def restore_snapshot(app, snap_dir: Union[str, Path]
                     ) -> Tuple[int, Optional[dict]]:
    """Restore a freshly constructed app from a snapshot.

    Returns ``(step, elastic_state)``; the app's history is replaced by
    the saved one and its particle/mesh state by the snapshot's.
    """
    snap_dir = Path(snap_dir)
    manifest = _read_manifest(snap_dir)
    if manifest is None:
        raise ValueError(f"{snap_dir}: no consistent snapshot manifest")
    old_nranks = int(manifest["nranks"])
    comm = app.comm
    if comm.nranks > old_nranks:
        raise ValueError(
            f"cannot restore a {old_nranks}-rank snapshot onto "
            f"{comm.nranks} ranks (growing is not supported)")
    with np.load(snap_dir / "global.npz") as g:
        saved_owner = g["cell_owner"]
        history = {k[len("hist__"):]: g[k].tolist()
                   for k in g.files if k.startswith("hist__")}

    if comm.nranks == old_nranks:
        if not np.array_equal(saved_owner, app.cell_owner):
            rebuild_partition(app, saved_owner)
        for r in comm.local_ranks:
            with np.load(_rank_file(snap_dir, r)) as data:
                restore_state(app.ranks[r], data, source=str(snap_dir))
                _restore_extras(app, r, data)
    else:
        _restore_resized(app, snap_dir, saved_owner, old_nranks)

    app.history = history
    return int(manifest["step"]), manifest.get("elastic")


def _restore_extras(app, r: int, data) -> None:
    extras = {k[len("extra__"):]: data[k]
              for k in data.files if k.startswith("extra__")}
    hook = getattr(app, "_restore_extras", None)
    if extras and hook is not None:
        hook(r, extras)


def _restore_resized(app, snap_dir: Path, saved_owner: np.ndarray,
                     old_nranks: int) -> None:
    """Scatter an ``old_nranks`` snapshot onto the app's (smaller)
    current partition: assemble the dynamic global state from all old
    rank files, then distribute it by the app's own cell ownership."""
    comm = app.comm
    spec = app._migration_spec()
    old_meshes, _ = app._build_partition(saved_owner, nranks=old_nranks)
    files = [np.load(_rank_file(snap_dir, rr))
             for rr in range(old_nranks)]
    try:
        gcell_dats = _assemble_rows(
            files, spec.get("cell", ()), saved_owner.size,
            [m.cells_global[: m.n_owned_cells] for m in old_meshes],
            [m.n_owned_cells for m in old_meshes])
        for r in comm.local_ranks:
            cg = app.meshes[r].cells_global
            for name, g in gcell_dats.items():
                _get(app.ranks[r], name).data[:] = g[cg]
        node_names = spec.get("node", ())
        if node_names:
            from .migrate import node_owners
            n_nodes = int(node_owners(spec["c2n"], saved_owner,
                                      old_nranks).size)
            gnode_dats = _assemble_rows(
                files, node_names, n_nodes,
                [m.nodes_global[: m.n_owned_nodes] for m in old_meshes],
                [m.n_owned_nodes for m in old_meshes])
            for r in comm.local_ranks:
                ng = app.meshes[r].nodes_global
                for name, g in gnode_dats.items():
                    _get(app.ranks[r], name).data[:] = g[ng]
        for name in spec.get("globals", ()):
            # fold the dead ranks' partial accumulators in round-robin
            # so allreduce-sum totals are preserved
            for r in comm.local_ranks:
                acc = sum(files[rr][f"dat__{name}"]
                          for rr in range(old_nranks)
                          if rr % comm.nranks == r)
                _get(app.ranks[r], name).data[:] = acc
        _scatter_particles(app, files, spec.get("part", ()), old_meshes)
        for rr in range(old_nranks):
            if comm.is_local(rr):
                _restore_extras(app, rr, files[rr])
    finally:
        for f in files:
            f.close()


def _assemble_rows(files, names, n_global: int, owned_ids, owned_counts):
    """Owned rows of every old rank scattered to global element ids."""
    out = {}
    for name in names:
        g = None
        for rr, f in enumerate(files):
            arr = f[f"dat__{name}"]
            if g is None:
                g = np.zeros((n_global,) + arr.shape[1:], dtype=arr.dtype)
            n = owned_counts[rr]
            g[owned_ids[rr]] = arr[:n]
        out[name] = g
    return out


def _scatter_particles(app, files, names, old_meshes) -> None:
    """Concatenate every old rank's particles (old-rank order) and
    re-append them onto the current partition's owners."""
    comm = app.comm
    all_rows = {name: [] for name in names}
    all_gcells = []
    for rr, f in enumerate(files):
        n = int(f["set__parts"][0])
        p2c = f["pmap__p2c"][:n]
        all_gcells.append(old_meshes[rr].cells_global[p2c])
        for name in names:
            all_rows[name].append(f[f"dat__{name}"][:n])
    gcells = (np.concatenate(all_gcells) if all_gcells
              else np.empty(0, dtype=np.int64))
    dest = np.asarray(app.cell_owner)[gcells]
    for r in comm.local_ranks:
        rk = app.ranks[r]
        parts = _get(rk, "parts")
        parts.size = 0                      # drop construction seeding
        parts.injected_start = 0
        parts.order.invalidate()
        rows = np.flatnonzero(dest == r)
        cg = app.meshes[r].cells_global
        g2l = np.full(len(app.cell_owner), -1, dtype=np.int64)
        g2l[cg] = np.arange(cg.size)
        sl = parts.add_particles(rows.size, cell_indices=g2l[gcells[rows]])
        for name in names:
            _get(rk, name).data[sl] = np.concatenate(all_rows[name])[rows]
        parts.end_injection()
