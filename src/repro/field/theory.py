"""Plasma-physics theory helpers for validation.

Used by the physics tests: the cold two-stream instability growth rate
(checked against CabanaPIC's measured field-energy growth) and basic
plasma quantities in the normalized unit system (c = eps0 = 1).
"""
from __future__ import annotations

import math

import numpy as np

__all__ = ["plasma_frequency", "two_stream_growth_rate",
           "fastest_growing_mode", "fit_exponential_rate",
           "landau_root", "landau_damping_rate", "landau_frequency"]


def plasma_frequency(density: float, charge: float = 1.0,
                     mass: float = 1.0, eps0: float = 1.0) -> float:
    """ω_p = sqrt(n q² / (ε₀ m))."""
    if density < 0 or mass <= 0 or eps0 <= 0:
        raise ValueError("density >= 0 and mass, eps0 > 0 required")
    return math.sqrt(density * charge * charge / (eps0 * mass))


def two_stream_growth_rate(k: float, v0: float, wp: float) -> float:
    """Cold symmetric two-stream growth rate γ(k) for beams ±v0.

    Dispersion: 1 = wp²/2 [1/(ω-kv0)² + 1/(ω+kv0)²]; the unstable root
    (for k v0 < √2 wp, per beam plasma frequency wp/√2 each) has

        ω² = k²v0² + wp²/2 − wp/2·sqrt(wp² + 8 k²v0²) < 0

    and γ = Im ω = sqrt(−ω²).  Returns 0 where stable.
    """
    kv = k * v0
    w2 = kv * kv + 0.5 * wp * wp \
        - 0.5 * wp * math.sqrt(wp * wp + 8.0 * kv * kv)
    return math.sqrt(-w2) if w2 < 0 else 0.0


def fastest_growing_mode(v0: float, wp: float) -> float:
    """k of the fastest growing mode: k v0 = √(3/8)·wp, γ_max = wp/√8."""
    return math.sqrt(3.0 / 8.0) * wp / v0


def _plasma_z(zeta: complex) -> complex:
    """Plasma dispersion function Z(ζ) = i√π·w(ζ) (Fried–Conte)."""
    from scipy.special import wofz
    return 1j * math.sqrt(math.pi) * wofz(zeta)


def landau_root(k: float, vth: float = 1.0, wp: float = 1.0) -> complex:
    """Complex root ω of the kinetic electron-Langmuir dispersion

        ε(k, ω) = 1 + 1/(k²λD²) · [1 + ζ Z(ζ)] = 0,   ζ = ω/(√2 k vth)

    for a Maxwellian with thermal speed ``vth`` (λD = vth/wp).  Solved by
    Newton iteration on ζ using Z'(ζ) = −2(1 + ζZ(ζ)), seeded from the
    Bohm–Gross frequency and the asymptotic damping estimate.  Im ω < 0
    is the Landau damping rate; requires ``scipy`` (raises ImportError
    otherwise — use the asymptotic helpers below to degrade).
    """
    if k <= 0 or vth <= 0 or wp <= 0:
        raise ValueError("k, vth and wp must be positive")
    kld = k * vth / wp                       # k·λD
    inv_k2ld2 = 1.0 / (kld * kld)
    # Bohm–Gross + asymptotic γ as the Newton seed
    w0 = complex(wp * math.sqrt(1.0 + 3.0 * kld * kld),
                 -_landau_gamma_asymptotic(kld, wp))
    scale = math.sqrt(2.0) * k * vth
    zeta = w0 / scale
    for _ in range(60):
        z = _plasma_z(zeta)
        eps = 1.0 + inv_k2ld2 * (1.0 + zeta * z)
        deps = inv_k2ld2 * (z + zeta * (-2.0) * (1.0 + zeta * z))
        step = eps / deps
        zeta = zeta - step
        if abs(step) < 1e-14 * max(1.0, abs(zeta)):
            break
    return zeta * scale


def _landau_gamma_asymptotic(kld: float, wp: float) -> float:
    """Small-kλD asymptotic damping rate (used as seed and as the
    scipy-free fallback): γ ≈ √(π/8)·ωp/(kλD)³·exp(−1/(2k²λD²) − 3/2)."""
    return (math.sqrt(math.pi / 8.0) * wp / kld ** 3
            * math.exp(-0.5 / (kld * kld) - 1.5))


def landau_damping_rate(k: float, vth: float = 1.0,
                        wp: float = 1.0) -> float:
    """Landau damping rate γ > 0 of the Langmuir mode at wavenumber
    ``k`` (field *amplitude* decays as e^{−γt}; energy at 2γ).  Uses the
    exact kinetic root when scipy is available, the textbook asymptotic
    form otherwise."""
    try:
        return -landau_root(k, vth, wp).imag
    except ImportError:          # pragma: no cover - scipy always in CI
        return _landau_gamma_asymptotic(k * vth / wp, wp)


def landau_frequency(k: float, vth: float = 1.0, wp: float = 1.0) -> float:
    """Real oscillation frequency of the Langmuir mode at ``k``
    (kinetic root; Bohm–Gross without scipy)."""
    try:
        return landau_root(k, vth, wp).real
    except ImportError:          # pragma: no cover - scipy always in CI
        kld = k * vth / wp
        return wp * math.sqrt(1.0 + 3.0 * kld * kld)


def fit_exponential_rate(t: np.ndarray, energy: np.ndarray) -> float:
    """Least-squares slope of log(energy) — measured 2γ for field energy
    (energy ∝ |E|² grows at twice the amplitude rate)."""
    t = np.asarray(t, dtype=np.float64)
    e = np.asarray(energy, dtype=np.float64)
    if t.shape != e.shape or t.size < 2:
        raise ValueError("need matching arrays of at least two samples")
    if (e <= 0).any():
        raise ValueError("energies must be positive to fit a log slope")
    a = np.stack([t, np.ones_like(t)], axis=1)
    slope, _ = np.linalg.lstsq(a, np.log(e), rcond=None)[0]
    return float(slope)
