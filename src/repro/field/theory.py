"""Plasma-physics theory helpers for validation.

Used by the physics tests: the cold two-stream instability growth rate
(checked against CabanaPIC's measured field-energy growth) and basic
plasma quantities in the normalized unit system (c = eps0 = 1).
"""
from __future__ import annotations

import math

import numpy as np

__all__ = ["plasma_frequency", "two_stream_growth_rate",
           "fastest_growing_mode", "fit_exponential_rate"]


def plasma_frequency(density: float, charge: float = 1.0,
                     mass: float = 1.0, eps0: float = 1.0) -> float:
    """ω_p = sqrt(n q² / (ε₀ m))."""
    if density < 0 or mass <= 0 or eps0 <= 0:
        raise ValueError("density >= 0 and mass, eps0 > 0 required")
    return math.sqrt(density * charge * charge / (eps0 * mass))


def two_stream_growth_rate(k: float, v0: float, wp: float) -> float:
    """Cold symmetric two-stream growth rate γ(k) for beams ±v0.

    Dispersion: 1 = wp²/2 [1/(ω-kv0)² + 1/(ω+kv0)²]; the unstable root
    (for k v0 < √2 wp, per beam plasma frequency wp/√2 each) has

        ω² = k²v0² + wp²/2 − wp/2·sqrt(wp² + 8 k²v0²) < 0

    and γ = Im ω = sqrt(−ω²).  Returns 0 where stable.
    """
    kv = k * v0
    w2 = kv * kv + 0.5 * wp * wp \
        - 0.5 * wp * math.sqrt(wp * wp + 8.0 * kv * kv)
    return math.sqrt(-w2) if w2 < 0 else 0.0


def fastest_growing_mode(v0: float, wp: float) -> float:
    """k of the fastest growing mode: k v0 = √(3/8)·wp, γ_max = wp/√8."""
    return math.sqrt(3.0 / 8.0) * wp / v0


def fit_exponential_rate(t: np.ndarray, energy: np.ndarray) -> float:
    """Least-squares slope of log(energy) — measured 2γ for field energy
    (energy ∝ |E|² grows at twice the amplitude rate)."""
    t = np.asarray(t, dtype=np.float64)
    e = np.asarray(energy, dtype=np.float64)
    if t.shape != e.shape or t.size < 2:
        raise ValueError("need matching arrays of at least two samples")
    if (e <= 0).any():
        raise ValueError("energies must be positive to fit a log slope")
    a = np.stack([t, np.ones_like(t)], axis=1)
    slope, _ = np.linalg.lstsq(a, np.log(e), rcond=None)[0]
    return float(slope)
