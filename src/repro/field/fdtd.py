"""Standalone vacuum FDTD checks for the CabanaPIC field kernels.

The leap-frog AdvanceB/AdvanceE pair must conserve total electromagnetic
energy in vacuum (no current) and propagate a plane wave at c = 1 with
the Yee scheme's numerical dispersion.  These drivers run the same DSL
kernels on a field-only problem so the field solve can be validated
independently of particles.
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.cabana import CabanaConfig, CabanaSimulation

__all__ = ["vacuum_cavity_energy_series", "seed_standing_wave"]


def seed_standing_wave(sim: CabanaSimulation, mode: int = 1,
                       amplitude: float = 1e-3) -> None:
    """Seed Ex with a standing wave along z (kz·z cosine on the grid)."""
    cfg = sim.cfg
    kz = 2.0 * np.pi * mode / cfg.lz
    c = np.arange(cfg.n_cells)
    k = c // (cfg.nx * cfg.ny)
    z = (k + 0.5) * cfg.dz
    sim.e.data[:, 0] = amplitude * np.cos(kz * z)


def vacuum_cavity_energy_series(nz: int = 32, steps: int = 64,
                                backend: str = "vec",
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Run the field kernels with zero particles; returns per-step
    (E-energy, B-energy) arrays.  Total energy should be conserved to
    high precision (leap-frog is symplectic in vacuum)."""
    cfg = CabanaConfig(nx=2, ny=2, nz=nz, ppc=0, n_steps=steps,
                       backend=backend)
    sim = CabanaSimulation(cfg)
    seed_standing_wave(sim)
    for _ in range(steps):
        from repro.core.api import push_context
        with push_context(sim.ctx):
            sim.advance_b()
            sim.advance_e()
            sim.advance_b()
            sim.energies()
        sim.history["e_energy"].append(float(sim.e_energy.value))
        sim.history["b_energy"].append(float(sim.b_energy.value))
    return (np.asarray(sim.history["e_energy"]),
            np.asarray(sim.history["b_energy"]))
