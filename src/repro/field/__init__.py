"""Field-solve substrate: FDTD checks and plasma theory references."""
from .collisions import (MCCIonization, MCCollisions,
                         elastic_scatter_kernel, ionize_kernel)
from .diagnostics import VelocityMoments
from .fdtd import seed_standing_wave, vacuum_cavity_energy_series
from .theory import (fastest_growing_mode, fit_exponential_rate,
                     landau_damping_rate, landau_frequency, landau_root,
                     plasma_frequency, two_stream_growth_rate)

__all__ = ["MCCollisions", "MCCIonization", "elastic_scatter_kernel",
           "ionize_kernel", "VelocityMoments",
           "seed_standing_wave", "vacuum_cavity_energy_series",
           "plasma_frequency", "two_stream_growth_rate",
           "fastest_growing_mode", "fit_exponential_rate",
           "landau_root", "landau_damping_rate", "landau_frequency"]
