"""Velocity-moment diagnostics.

Reductions every production PIC code carries: per-cell number density,
mean velocity and kinetic-energy density, plus global kinetic energy —
all expressed as DSL loops (the moments are particle→cell deposits, the
same indirect-increment pattern as charge deposition, so they run on
every backend and inherit its race handling).
"""
from __future__ import annotations


import numpy as np

from ..core.api import (CONST, OPP_INC, OPP_ITERATE_ALL, OPP_READ,
                        arg_dat, arg_gbl, decl_const, decl_dat,
                        decl_global, par_loop)
from ..core.dats import Dat
from ..core.maps import Map
from ..core.sets import ParticleSet, Set

__all__ = ["deposit_moments_kernel", "kinetic_energy_kernel",
           "VelocityMoments"]


def deposit_moments_kernel(vel, count, mom, ke):
    """Per-cell moment deposits: count, momentum vector, kinetic energy."""
    count[0] += 1.0
    mom[0] += vel[0]
    mom[1] += vel[1]
    mom[2] += vel[2]
    ke[0] += 0.5 * CONST.moment_mass * (vel[0] * vel[0]
                                        + vel[1] * vel[1]
                                        + vel[2] * vel[2])


def kinetic_energy_kernel(vel, total):
    total[0] += 0.5 * CONST.moment_mass * (vel[0] * vel[0]
                                           + vel[1] * vel[1]
                                           + vel[2] * vel[2])


class VelocityMoments:
    """Moment fields over a cell set, filled from a particle set.

    Parameters
    ----------
    pset, vel, p2c:
        The particle set, its dim-3 velocity dat and its cell map.
    cell_volumes:
        Per-cell volumes (array of length ``n_cells``) used to convert
        counts to densities; a scalar is accepted for uniform meshes.
    mass, weight:
        Physical mass and macro-particle weight.
    """

    def __init__(self, pset: ParticleSet, vel: Dat, p2c: Map,
                 cell_volumes, mass: float = 1.0, weight: float = 1.0):
        if vel.set is not pset or vel.dim != 3:
            raise ValueError("moments need the particle set's dim-3 "
                             "velocity dat")
        cells: Set = pset.cells_set
        self.pset = pset
        self.vel = vel
        self.p2c = p2c
        self.mass = float(mass)
        self.weight = float(weight)
        vols = np.broadcast_to(np.asarray(cell_volumes, dtype=np.float64),
                               (cells.size,))
        if (vols <= 0).any():
            raise ValueError("cell volumes must be positive")
        self._volumes = vols.copy()

        self.count = decl_dat(cells, 1, np.float64, None, "moment_count")
        self.momentum = decl_dat(cells, 3, np.float64, None,
                                 "moment_momentum")
        self.ke = decl_dat(cells, 1, np.float64, None, "moment_ke")
        self.total_ke = decl_global(1, np.float64, name="total_ke")

    def compute(self) -> None:
        """Fill the per-cell moment dats and the global kinetic energy."""
        decl_const("moment_mass", self.mass)
        self.count.fill(0.0)
        self.momentum.fill(0.0)
        self.ke.fill(0.0)
        self.total_ke.data[0] = 0.0
        par_loop(deposit_moments_kernel, "DepositMoments", self.pset,
                 OPP_ITERATE_ALL,
                 arg_dat(self.vel, OPP_READ),
                 arg_dat(self.count, self.p2c, OPP_INC),
                 arg_dat(self.momentum, self.p2c, OPP_INC),
                 arg_dat(self.ke, self.p2c, OPP_INC))
        par_loop(kinetic_energy_kernel, "KineticEnergy", self.pset,
                 OPP_ITERATE_ALL,
                 arg_dat(self.vel, OPP_READ),
                 arg_gbl(self.total_ke, OPP_INC))

    # -- derived fields ------------------------------------------------------

    @property
    def number_density(self) -> np.ndarray:
        """Physical particles per unit volume, per cell."""
        return (self.count.data[:, 0] * self.weight) / self._volumes

    @property
    def mean_velocity(self) -> np.ndarray:
        """Per-cell mean velocity (0 where a cell is empty)."""
        c = self.count.data[:, 0]
        out = np.zeros_like(self.momentum.data)
        ok = c > 0
        out[ok] = self.momentum.data[ok] / c[ok, None]
        return out

    @property
    def kinetic_energy_density(self) -> np.ndarray:
        return (self.ke.data[:, 0] * self.weight) / self._volumes

    @property
    def temperature(self) -> np.ndarray:
        """Per-cell kT from the thermal spread, 3·kT/2 = ⟨m v'²/2⟩."""
        c = self.count.data[:, 0]
        out = np.zeros_like(c)
        ok = c > 0
        mean_ke = np.zeros_like(c)
        mean_ke[ok] = self.ke.data[ok, 0] / c[ok]
        drift_ke = 0.5 * self.mass * (self.mean_velocity ** 2).sum(axis=1)
        out[ok] = (2.0 / 3.0) * (mean_ke[ok] - drift_ke[ok])
        return out
