"""Monte-Carlo collisions with a neutral background (MCC).

Paper §2: state-of-the-art PIC implementations interleave "additional
routines, including particle collisions, ionizations and particle
injections" with the core loop.  This module provides the collision
routine in the DSL style used throughout: randomness is drawn host-side
into a scratch particle dat (like the injection distributions), and a
translated elemental kernel applies the physics.

Model: null-collision MCC against a cold, infinitely heavy neutral
background with constant collision frequency ν — each step a particle
scatters with probability ``1 - exp(-ν Δt)`` into an isotropic direction,
preserving its speed (elastic, heavy-target limit).
"""
from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.api import (CONST, OPP_ITERATE_ALL, OPP_READ, OPP_RW, arg_dat,
                        decl_const, decl_dat, par_loop)
from ..core.dats import Dat
from ..core.sets import ParticleSet

__all__ = ["elastic_scatter_kernel", "MCCollisions", "ionize_kernel",
           "MCCIonization"]


def elastic_scatter_kernel(rand, vel):
    """Isotropic elastic scattering, speed preserving.

    ``rand`` carries (collision draw, cosθ draw, φ draw) prepared
    host-side; a particle whose first draw falls under the collision
    probability leaves with the same speed in a uniformly random
    direction.
    """
    if rand[0] < CONST.coll_prob:
        speed = sqrt(vel[0] * vel[0] + vel[1] * vel[1]  # noqa: F821
                     + vel[2] * vel[2])
        ct = 2.0 * rand[1] - 1.0
        st = sqrt(1.0 - ct * ct)                        # noqa: F821
        phi = CONST.two_pi * rand[2]
        vel[0] = speed * st * cos(phi)                  # noqa: F821
        vel[1] = speed * st * sin(phi)                  # noqa: F821
        vel[2] = speed * ct


class MCCollisions:
    """Collision operator attached to a particle set's velocity dat.

    Parameters
    ----------
    pset:
        The particle set.
    vel:
        Its dim-3 velocity dat.
    frequency:
        Collision frequency ν (collisions per unit time per particle).
    dt:
        Time-step length.
    seed:
        RNG seed for the host-side draws.
    """

    def __init__(self, pset: ParticleSet, vel: Dat, frequency: float,
                 dt: float, seed: int = 0,
                 rng: Optional[np.random.Generator] = None):
        if vel.set is not pset or vel.dim != 3:
            raise ValueError("collisions need the particle set's dim-3 "
                             "velocity dat")
        if frequency < 0 or dt <= 0:
            raise ValueError("need frequency >= 0 and dt > 0")
        self.pset = pset
        self.vel = vel
        self.probability = 1.0 - math.exp(-frequency * dt)
        self.rng = rng or np.random.default_rng(seed)
        self.rand = decl_dat(pset, 3, np.float64, None, "collision_draws")
        decl_const("coll_prob", self.probability)
        decl_const("two_pi", 2.0 * math.pi)
        self.total_collisions = 0

    def apply(self) -> int:
        """One collision step; returns the number of particles scattered."""
        n = self.pset.size
        if n == 0:
            return 0
        # constants may have been redeclared by another operator instance
        decl_const("coll_prob", self.probability)
        draws = self.rng.random((n, 3))
        self.rand.data[:n] = draws
        par_loop(elastic_scatter_kernel, "CollideParticles", self.pset,
                 OPP_ITERATE_ALL,
                 arg_dat(self.rand, OPP_READ),
                 arg_dat(self.vel, OPP_RW))
        scattered = int((draws[:, 0] < self.probability).sum())
        self.total_collisions += scattered
        return scattered


def ionize_kernel(rand, vel, flag):
    """Mark an ionization event and pay its energy cost.

    A particle whose kinetic energy exceeds the threshold ionizes a
    background neutral with the configured probability: its speed is
    rescaled so the ionization energy is removed, and the flag dat marks
    where the host must spawn the secondary.
    """
    flag[0] = 0.0
    ke = 0.5 * CONST.mcc_mass * (vel[0] * vel[0] + vel[1] * vel[1]
                                 + vel[2] * vel[2])
    if ke > CONST.ion_threshold and rand[0] < CONST.ion_prob:
        scale = sqrt((ke - CONST.ion_cost) / ke)      # noqa: F821
        vel[0] = vel[0] * scale
        vel[1] = vel[1] * scale
        vel[2] = vel[2] * scale
        flag[0] = 1.0


class MCCIonization:
    """Electron-impact ionization of the neutral background.

    Each step, energetic particles (KE above ``threshold``) ionize with
    probability ``1 - exp(-ν Δt)``; the parent loses ``energy_cost`` of
    kinetic energy and a slow secondary is *injected* in the parent's
    cell (the paper's "ionizations … may be interleaved" routine —
    this is the DSL-side particle-creation path).

    Parameters
    ----------
    pset, vel, p2c:
        The particle set, its dim-3 velocity dat and its cell map.
    extra_dats:
        Other particle dats to copy from parent to secondary
        (e.g. positions, weights).
    """

    def __init__(self, pset: ParticleSet, vel: Dat, p2c,
                 frequency: float, dt: float, threshold: float,
                 energy_cost: float, mass: float = 1.0, seed: int = 0,
                 extra_dats=()):
        if vel.set is not pset or vel.dim != 3:
            raise ValueError("ionization needs the particle set's dim-3 "
                             "velocity dat")
        if not 0.0 < energy_cost <= threshold:
            raise ValueError("need 0 < energy_cost <= threshold")
        if frequency < 0 or dt <= 0:
            raise ValueError("need frequency >= 0 and dt > 0")
        self.pset = pset
        self.vel = vel
        self.p2c = p2c
        self.mass = float(mass)
        self.threshold = float(threshold)
        self.energy_cost = float(energy_cost)
        self.probability = 1.0 - math.exp(-frequency * dt)
        self.rng = np.random.default_rng(seed)
        self.extra_dats = list(extra_dats)
        self.rand = decl_dat(pset, 1, np.float64, None, "ionize_draws")
        self.flag = decl_dat(pset, 1, np.float64, None, "ionize_flags")
        self.total_events = 0

    def apply(self) -> int:
        """One ionization step; returns the number of secondaries born."""
        n = self.pset.size
        if n == 0:
            return 0
        decl_const("ion_prob", self.probability)
        decl_const("ion_threshold", self.threshold)
        decl_const("ion_cost", self.energy_cost)
        decl_const("mcc_mass", self.mass)
        self.rand.data[:n, 0] = self.rng.random(n)
        par_loop(ionize_kernel, "IonizeParticles", self.pset,
                 OPP_ITERATE_ALL,
                 arg_dat(self.rand, OPP_READ),
                 arg_dat(self.vel, OPP_RW),
                 arg_dat(self.flag, OPP_RW))

        parents = np.flatnonzero(self.flag.data[:n, 0] > 0.5)
        if parents.size == 0:
            return 0
        cells = self.p2c.p2c[parents].copy()
        parent_extras = [d.data[parents].copy() for d in self.extra_dats]

        self.pset.begin_injection()
        sl = self.pset.add_particles(parents.size, cell_indices=cells)
        # slow isotropic secondaries (born near rest)
        thermal = self.rng.normal(
            0.0, math.sqrt(0.01 * self.energy_cost / self.mass),
            size=(parents.size, 3))
        self.vel.data[sl] = thermal
        for dat, values in zip(self.extra_dats, parent_extras):
            dat.data[sl] = values
        self.flag.data[sl] = 0.0
        self.pset.end_injection()
        self.total_events += parents.size
        return int(parents.size)


# elemental (seq-backend) execution needs the math names in module scope;
# the translator rebinds them to numpy ufuncs for the vector targets.
from math import cos, sin, sqrt  # noqa: E402
