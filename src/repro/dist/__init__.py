"""Real-process distributed runtime (MPI+X execution).

The simulated communicator (:class:`repro.runtime.comm.SimComm`) runs
every rank inside one process; this package provides the second
implementation of the same rank-transport interface —
:class:`~repro.dist.proc.ProcTransport` — where each rank is a real OS
process exchanging length-prefixed frames over
:mod:`multiprocessing.connection` pipes, with per-operation timeouts,
dead-rank detection and structured :class:`~repro.dist.transport.
RankFailure` errors instead of hangs.

Because each rank process may use any on-node backend (``seq``, ``vec``,
``omp``, ``mp``) for its loops, running N rank processes reproduces the
paper's MPI+X configurations (distributed memory across ranks, shared
memory within each).
"""
from .driver import DistResult, run_distributed
from .proc import ProcCluster, ProcTransport
from .transport import RankFailure, Transport, create_transport

__all__ = ["Transport", "RankFailure", "create_transport",
           "ProcTransport", "ProcCluster",
           "run_distributed", "DistResult"]
