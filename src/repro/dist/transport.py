"""The rank-transport interface.

Everything the distributed runtime (halo exchange, particle migration,
the DH global move, the gathered field solves) needs from a communicator
is collected in :class:`Transport`.  Two implementations exist:

``sim``
    :class:`repro.runtime.comm.SimComm` — all ranks live in one process
    and one program drives them; "messages" are buffer copies between
    per-rank mailboxes.  ``my_rank is None`` and every rank is local.

``proc``
    :class:`repro.dist.proc.ProcTransport` — each rank is a real OS
    process (SPMD).  ``my_rank`` is the single resident rank,
    ``local_ranks`` has one entry, and point-to-point/collective calls
    move frames through a parent-process router.

Algorithm code never branches on the transport kind: it iterates
``local_ranks`` and guards sends/recvs with ``is_local``, which makes
the same loop a full simulation under ``sim`` and one SPMD rank's share
under ``proc``.

:class:`RankFailure` is the structured error every fault path resolves
to — a dead peer, an expired per-operation deadline, or an oversized
frame surface as an exception naming the rank and failure kind, never as
a hang.
"""
from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..runtime.comm import CommStats, SimComm

__all__ = ["Transport", "RankFailure", "create_transport",
           "TRANSPORT_KINDS"]

TRANSPORT_KINDS = ("sim", "proc")


class RankFailure(RuntimeError):
    """A distributed operation failed in a structured, attributable way.

    Parameters
    ----------
    rank:
        The rank the failure is attributed to (the dead peer, the rank
        whose deadline expired, the sender of the oversized frame).
    kind:
        One of ``"rank-dead"``, ``"timeout"``, ``"oversized-frame"``,
        ``"protocol"``, ``"launch"``.
    detail:
        Human-readable context.
    """

    def __init__(self, rank: int, kind: str, detail: str = ""):
        self.rank = int(rank)
        self.kind = str(kind)
        self.detail = str(detail)
        msg = f"rank {rank}: {kind}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)

    def __reduce__(self):
        # keep rank/kind across pickling (ERROR frames ship these back)
        return (self.__class__, (self.rank, self.kind, self.detail))


@runtime_checkable
class Transport(Protocol):
    """Structural interface shared by ``SimComm`` and ``ProcTransport``.

    Implementations must also expose ``nranks`` and a :class:`CommStats`
    ledger as ``stats`` (swappable via :meth:`swap_stats` so solver
    traffic can be accounted separately).
    """

    nranks: int
    stats: CommStats
    #: resident rank for SPMD transports, ``None`` when this process
    #: hosts the whole simulation
    my_rank: Optional[int]

    @property
    def local_ranks(self) -> Sequence[int]:
        """Ranks whose sets/dats live in this process."""
        ...

    def is_local(self, rank: int) -> bool:
        ...

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: int = 0) -> None:
        ...

    def recv(self, dst: int, src: int, tag: int = 0) -> np.ndarray:
        ...

    def allreduce(self, per_rank_values: Sequence, op: str = "sum"):
        """Reduce one value per rank.  The list always has ``nranks``
        entries; an SPMD rank contributes only its own slot (the others
        may be zeros/placeholders) and the reduction is applied in rank
        order so floating-point results match the simulation bitwise."""
        ...

    def alltoall_counts(self, counts: np.ndarray) -> np.ndarray:
        ...

    def barrier(self) -> None:
        ...

    def swap_stats(self, stats: CommStats) -> CommStats:
        ...


def create_transport(kind: str, nranks: int, **options):
    """Build an in-process transport by name.

    ``sim`` returns a ready :class:`SimComm`.  ``proc`` cannot be built
    free-standing — rank processes and their router come from
    :class:`repro.dist.proc.ProcCluster` (or, at the application level,
    :func:`repro.dist.driver.run_distributed`) — so asking for it here
    raises with that pointer rather than half-working.
    """
    if kind == "sim":
        if options:
            raise TypeError(f"sim transport takes no options, got "
                            f"{sorted(options)}")
        return SimComm(nranks)
    if kind == "proc":
        raise ValueError(
            "proc transports live inside rank processes; launch them "
            "with repro.dist.ProcCluster or repro.dist.run_distributed")
    raise ValueError(f"unknown transport {kind!r}; expected one of "
                     f"{TRANSPORT_KINDS}")
