"""Real OS rank processes over ``multiprocessing.connection``.

Topology: a parent-process **router** holds one duplex pipe per rank.
Rank processes never talk to each other directly — every frame goes
through the router, which forwards point-to-point traffic, completes
collectives (reducing contributions in rank order, so floating-point
results match :class:`~repro.runtime.comm.SimComm` bitwise), and turns a
dying rank into ``RANK_DOWN`` broadcasts instead of a silent hang.

Wire format: each message is one length-prefixed frame —

=======  ======================================================
header   ``!4sBBiiiq`` = magic ``OPPC``, version, kind, src,
         dst, tag, body length
body     ``N`` + dtype/shape + raw bytes for numpy payloads,
         ``P`` + pickle for control payloads
=======  ======================================================

Fault model (every path ends in a structured
:class:`~repro.dist.transport.RankFailure`, never a deadlock):

* peer process exits before completing → router broadcasts
  ``RANK_DOWN``; blocked ``recv``/collectives raise ``rank-dead``;
* no frame within ``op_timeout`` seconds → ``timeout``;
* frame body over ``max_frame_bytes`` → ``oversized-frame``, enforced
  on the sender before any bytes move and again by the router.

The router writes to children from dedicated writer threads with
unbounded queues, so its read loop never blocks on a full pipe — the
cyclic-buffer deadlock (child blocked sending while router blocked
sending to it) cannot form.
"""
from __future__ import annotations

import os
import pickle
import queue
import struct
import threading
import time
import traceback
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp
from multiprocessing import connection as mpc

import numpy as np

from ..runtime.comm import SimComm
from .transport import RankFailure

__all__ = ["ProcTransport", "ProcCluster", "FrameError",
           "encode_frame", "decode_frame", "reap_procs",
           "DEFAULT_OP_TIMEOUT", "DEFAULT_MAX_FRAME"]

_MAGIC = b"OPPC"
_VERSION = 1
_HEADER = struct.Struct("!4sBBiiiq")

# frame kinds
K_HELLO = 0        # child -> router: rank is up
K_P2P = 1          # payload for another rank (forwarded verbatim)
K_COLL = 2         # child -> router: collective contribution
K_COLL_RESULT = 3  # router -> child: completed collective
K_RESULT = 4       # child -> router: rank finished, body = result
K_ERROR = 5        # child -> router: rank raised, body = exception
K_RANK_DOWN = 6    # router -> child: src rank died / was expelled

DEFAULT_OP_TIMEOUT = 30.0
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class FrameError(ValueError):
    """A frame violated the wire protocol (bad magic/version/length)."""


def reap_procs(procs, join_timeout: float = 5.0) -> None:
    """Deterministically reap rank/worker processes.

    Join every process against one shared deadline, escalate stragglers
    through ``terminate`` then ``kill``, and finally ``close`` each
    :class:`multiprocessing.Process` so its OS resources (the process
    object's sentinel fd and zombie entry) are released immediately
    instead of at garbage-collection time.  Shared by
    :class:`ProcCluster` and the service warm pool
    (:mod:`repro.service.pool`), whose repeated pool recycling would
    otherwise leak idle rank processes.
    """
    deadline = time.monotonic() + join_timeout
    for p in procs:
        p.join(timeout=max(0.1, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=2.0)
        if p.is_alive():  # pragma: no cover - last resort
            p.kill()
            p.join(timeout=2.0)
        p.close()


# -- frame codec -------------------------------------------------------------------


def _encode_body(obj) -> bytes:
    """Numpy arrays travel as dtype+shape+raw bytes (no pickle on the
    hot path); anything else — control dicts, exceptions — is pickled."""
    if isinstance(obj, np.ndarray):
        shape = obj.shape  # ascontiguousarray promotes 0-d to 1-d
        a = np.ascontiguousarray(obj)
        meta = pickle.dumps((a.dtype.str, shape))
        return b"N" + struct.pack("!I", len(meta)) + meta + a.tobytes()
    return b"P" + pickle.dumps(obj)


def _decode_body(body: bytes):
    if not body:
        raise FrameError("empty frame body")
    if body[:1] == b"N":
        (mlen,) = struct.unpack_from("!I", body, 1)
        dtype_str, shape = pickle.loads(body[5:5 + mlen])
        arr = np.frombuffer(body[5 + mlen:], dtype=np.dtype(dtype_str))
        return arr.reshape(shape).copy()
    if body[:1] == b"P":
        return pickle.loads(body[1:])
    raise FrameError(f"unknown body marker {body[:1]!r}")


def encode_frame(kind: int, src: int, dst: int, tag: int, obj,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    body = _encode_body(obj)
    if len(body) > max_frame_bytes:
        raise RankFailure(src, "oversized-frame",
                          f"{len(body)} bytes > limit {max_frame_bytes}")
    return _HEADER.pack(_MAGIC, _VERSION, kind, src, dst, tag,
                        len(body)) + body


def decode_frame(blob: bytes) -> Tuple[int, int, int, int, object]:
    """Returns ``(kind, src, dst, tag, payload)``."""
    if len(blob) < _HEADER.size:
        raise FrameError(f"short frame: {len(blob)} bytes")
    magic, version, kind, src, dst, tag, blen = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise FrameError(f"protocol version {version}, expected "
                         f"{_VERSION}")
    body = blob[_HEADER.size:]
    if len(body) != blen:
        raise FrameError(f"length mismatch: header says {blen}, got "
                         f"{len(body)}")
    return kind, src, dst, tag, _decode_body(body)


# -- the SPMD transport ------------------------------------------------------------


class ProcTransport(SimComm):
    """One rank process's view of the communicator.

    Inherits the accounting surface (:attr:`stats`, :meth:`swap_stats`)
    from :class:`SimComm` and replaces locality, point-to-point and
    collectives with wire operations through the router connection.
    Every blocking wait honours :attr:`op_timeout`.
    """

    def __init__(self, nranks: int, my_rank: int, conn,
                 op_timeout: float = DEFAULT_OP_TIMEOUT,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME):
        super().__init__(nranks)
        if not 0 <= my_rank < nranks:
            raise ValueError(f"rank {my_rank} out of range")
        self.my_rank = my_rank
        self.op_timeout = float(op_timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self._conn = conn
        #: buffered out-of-order P2P frames: (src, tag) -> deque
        self._p2p: Dict[Tuple[int, int], deque] = {}
        self._coll_results: deque = deque()
        self._dead: Dict[int, str] = {}
        self._send_raw(K_HELLO, self.my_rank, -1, 0, None)

    # -- locality ------------------------------------------------------------------

    @property
    def local_ranks(self) -> Tuple[int, ...]:
        return (self.my_rank,)

    def is_local(self, rank: int) -> bool:
        return rank == self.my_rank

    # -- wire plumbing -------------------------------------------------------------

    def _send_raw(self, kind: int, src: int, dst: int, tag: int,
                  obj) -> None:
        blob = encode_frame(kind, src, dst, tag, obj,
                            self.max_frame_bytes)
        try:
            self._conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            raise RankFailure(self.my_rank, "rank-dead",
                              f"router connection lost: {exc}") from exc

    def _pump_one(self, deadline: float, waiting_for: str) -> None:
        """Receive and file exactly one frame, or raise on deadline."""
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._conn.poll(remaining):
            raise RankFailure(self.my_rank, "timeout",
                              f"no frame within {self.op_timeout:.1f}s "
                              f"while waiting for {waiting_for}")
        try:
            blob = self._conn.recv_bytes(
                maxlength=self.max_frame_bytes + _HEADER.size + 64)
        except EOFError as exc:
            raise RankFailure(self.my_rank, "rank-dead",
                              "router closed the connection") from exc
        except OSError as exc:
            raise RankFailure(self.my_rank, "oversized-frame",
                              f"incoming frame over "
                              f"{self.max_frame_bytes} bytes") from exc
        kind, src, dst, tag, payload = decode_frame(blob)
        if kind == K_P2P:
            self._p2p.setdefault((src, tag), deque()).append(payload)
        elif kind == K_COLL_RESULT:
            self._coll_results.append(payload)
        elif kind == K_RANK_DOWN:
            self._dead[src] = str(payload)
        else:
            raise RankFailure(self.my_rank, "protocol",
                              f"unexpected frame kind {kind}")

    # -- point-to-point ------------------------------------------------------------

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: int = 0) -> None:
        self._check_rank(src)
        self._check_rank(dst)
        if src != self.my_rank:
            raise RankFailure(self.my_rank, "protocol",
                              f"rank {self.my_rank} cannot send as "
                              f"rank {src}")
        if dst in self._dead:
            raise RankFailure(dst, "rank-dead", self._dead[dst])
        payload = np.ascontiguousarray(payload)
        self._send_raw(K_P2P, src, dst, tag, payload)
        self.stats.record(src, dst, payload.nbytes)

    def recv(self, dst: int, src: int, tag: int = 0) -> np.ndarray:
        self._check_rank(src)
        self._check_rank(dst)
        if dst != self.my_rank:
            raise RankFailure(self.my_rank, "protocol",
                              f"rank {self.my_rank} cannot recv as "
                              f"rank {dst}")
        key = (src, tag)
        deadline = time.monotonic() + self.op_timeout
        while True:
            q = self._p2p.get(key)
            if q:
                return q.popleft()
            if src in self._dead:
                raise RankFailure(src, "rank-dead", self._dead[src])
            self._pump_one(deadline,
                           f"message from rank {src} tag {tag}")

    # -- collectives ---------------------------------------------------------------

    def _collective(self, request: dict):
        self._send_raw(K_COLL, self.my_rank, -1, 0, request)
        deadline = time.monotonic() + self.op_timeout
        while not self._coll_results:
            if self._dead:
                r, why = next(iter(self._dead.items()))
                raise RankFailure(r, "rank-dead",
                                  f"peer died inside a collective: "
                                  f"{why}")
            self._pump_one(deadline,
                           f"collective {request.get('op')}")
        return self._coll_results.popleft()

    def allreduce(self, per_rank_values: Sequence, op: str = "sum"):
        if len(per_rank_values) != self.nranks:
            raise ValueError(f"allreduce needs {self.nranks} values, "
                             f"got {len(per_rank_values)}")
        self.stats.collectives += 1
        value = np.asarray(per_rank_values[self.my_rank])
        return self._collective({"op": "allreduce", "reduce": op,
                                 "value": value})

    def alltoall_counts(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts)
        if counts.shape != (self.nranks, self.nranks):
            raise ValueError("counts must be (nranks, nranks)")
        self.stats.collectives += 1
        return self._collective({"op": "alltoall",
                                 "row": counts[self.my_rank].copy()})

    def barrier(self) -> None:
        self.stats.collectives += 1
        self._collective({"op": "barrier"})

    def __repr__(self) -> str:
        return (f"<ProcTransport rank={self.my_rank}/"
                f"{self.nranks}>")


# -- rank-process entry ------------------------------------------------------------


def _child_main(entry, rank: int, nranks: int, pipes, opts: dict,
                args: tuple) -> None:
    """Body of every rank process: build the transport, run ``entry``,
    ship the result (or the exception) back, exit."""
    # drop inherited pipe ends that belong to the router or to siblings,
    # so a dying sibling produces a clean EOF at the router
    for r, (parent_end, child_end) in enumerate(pipes):
        parent_end.close()
        if r != rank:
            child_end.close()
    conn = pipes[rank][1]
    try:
        transport = ProcTransport(nranks, rank, conn, **opts)
        payload = entry(transport, *args)
        conn.send_bytes(encode_frame(K_RESULT, rank, -1, 0, payload,
                                     transport.max_frame_bytes))
    except BaseException as exc:  # noqa: BLE001 - shipped to the router
        if not isinstance(exc, RankFailure):
            # the pickled exception loses its traceback; keep it on the
            # inherited stderr for post-mortems
            traceback.print_exc()
        try:
            conn.send_bytes(encode_frame(K_ERROR, rank, -1, 0, exc))
        except Exception:
            pass
        conn.close()
        os._exit(1)
    conn.close()
    os._exit(0)


# -- the router / cluster ----------------------------------------------------------


class _Writer:
    """Per-child writer thread so the router's read loop never blocks on
    a full pipe (see module docstring)."""

    def __init__(self, conn):
        self._conn = conn
        self._q: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            blob = self._q.get()
            if blob is None:
                return
            try:
                self._conn.send_bytes(blob)
            except (BrokenPipeError, OSError):
                pass  # receiver died; the read loop will notice the EOF

    def post(self, blob: bytes) -> None:
        self._q.put(blob)

    def stop(self) -> None:
        self._q.put(None)
        self._thread.join(timeout=5.0)


class ProcCluster:
    """Launches ``nranks`` rank processes and routes frames between
    them until every rank returned a result or failed.

    ``entry(transport, *args)`` runs inside each rank process; its
    return value (any picklable object) becomes that rank's slot in the
    list :meth:`run` returns.
    """

    def __init__(self, nranks: int, entry, args: tuple = (),
                 op_timeout: float = DEFAULT_OP_TIMEOUT,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME,
                 start_method: Optional[str] = None):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = int(nranks)
        self.entry = entry
        self.args = tuple(args)
        self.op_timeout = float(op_timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        if start_method is None:
            start_method = ("fork" if "fork"
                            in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(start_method)

    def run(self) -> List[object]:
        """Launch, route, reap.  Returns per-rank results; raises the
        root-cause :class:`RankFailure` if any rank failed."""
        ctx = self._ctx
        pipes = [ctx.Pipe(duplex=True) for _ in range(self.nranks)]
        opts = {"op_timeout": self.op_timeout,
                "max_frame_bytes": self.max_frame_bytes}
        procs = [ctx.Process(target=_child_main,
                             args=(self.entry, r, self.nranks, pipes,
                                   opts, self.args),
                             name=f"rank-{r}")
                 for r in range(self.nranks)]
        for p in procs:
            p.start()
        conns = []
        for parent_end, child_end in pipes:
            child_end.close()
            conns.append(parent_end)
        try:
            results, errors = self._route(conns)
        finally:
            self._reap(procs, conns)
        if errors:
            # prefer the root cause: a dead/expelled rank over the
            # secondary failures its peers raised when they noticed
            for rank, exc in sorted(errors.items()):
                if isinstance(exc, RankFailure) \
                        and exc.kind in ("rank-dead", "oversized-frame") \
                        and exc.rank == rank:
                    raise exc
            rank, exc = sorted(errors.items())[0]
            if isinstance(exc, RankFailure):
                raise exc
            raise RankFailure(rank, "rank-dead",
                              f"rank raised {exc!r}") from exc
        return [results[r] for r in range(self.nranks)]

    # -- router --------------------------------------------------------------------

    def _route(self, conns) -> Tuple[Dict[int, object],
                                     Dict[int, Exception]]:
        nranks = self.nranks
        rank_of = {id(c): r for r, c in enumerate(conns)}
        writers = {r: _Writer(c) for r, c in enumerate(conns)}
        results: Dict[int, object] = {}
        errors: Dict[int, Exception] = {}
        coll_pending: Dict[int, deque] = {r: deque()
                                          for r in range(nranks)}
        alive = set(range(nranks))
        open_ranks = set(range(nranks))
        try:
            while open_ranks - set(results) - set(errors):
                ready = mpc.wait([conns[r] for r in open_ranks],
                                 timeout=self.op_timeout)
                if not ready:
                    stuck = sorted(open_ranks - set(results)
                                   - set(errors))
                    raise RankFailure(
                        stuck[0], "timeout",
                        f"router saw no traffic for "
                        f"{self.op_timeout:.1f}s; ranks {stuck} never "
                        f"completed")
                for conn in ready:
                    r = rank_of[id(conn)]
                    try:
                        blob = conn.recv_bytes(
                            maxlength=self.max_frame_bytes
                            + _HEADER.size + 64)
                    except EOFError:
                        open_ranks.discard(r)
                        if r not in results and r not in errors:
                            self._expel(r, "process exited without a "
                                        "result", alive, writers,
                                        errors)
                        else:
                            alive.discard(r)
                        continue
                    except OSError:
                        open_ranks.discard(r)
                        self._expel(r, "sent a frame over the size "
                                    "limit", alive, writers, errors,
                                    kind="oversized-frame")
                        continue
                    self._dispatch(r, blob, alive, open_ranks, writers,
                                   results, errors, coll_pending)
                self._complete_collectives(alive, results, errors,
                                           coll_pending, writers)
        finally:
            for w in writers.values():
                w.stop()
        return results, errors

    def _dispatch(self, r: int, blob: bytes, alive, open_ranks,
                  writers, results, errors, coll_pending) -> None:
        try:
            kind, src, dst, tag, payload = decode_frame(blob)
        except FrameError as exc:
            open_ranks.discard(r)
            self._expel(r, f"protocol violation: {exc}", alive,
                        writers, errors, kind="protocol")
            return
        if kind == K_HELLO:
            return
        if kind == K_P2P:
            if dst in alive:
                writers[dst].post(blob)
            return
        if kind == K_COLL:
            coll_pending[r].append(payload)
            return
        if kind == K_RESULT:
            results[r] = payload
            return
        if kind == K_ERROR:
            exc = payload if isinstance(payload, BaseException) \
                else RankFailure(r, "rank-dead", repr(payload))
            errors[r] = exc
            alive.discard(r)
            # fail the peers fast instead of letting them run into
            # their own timeouts one by one
            down = encode_frame(K_RANK_DOWN, r, -1, 0,
                                f"rank failed: {exc}")
            for peer, w in writers.items():
                if peer != r and peer in alive:
                    w.post(down)
            return
        open_ranks.discard(r)
        self._expel(r, f"unexpected frame kind {kind}", alive, writers,
                    errors, kind="protocol")

    def _expel(self, r: int, why: str, alive, writers, errors,
               kind: str = "rank-dead") -> None:
        """Mark a rank failed and tell every survivor so nobody blocks
        forever waiting for it."""
        if r in errors:
            return
        alive.discard(r)
        errors[r] = RankFailure(r, kind, why)
        down = encode_frame(K_RANK_DOWN, r, -1, 0, why)
        for peer, w in writers.items():
            if peer != r and peer in alive:
                w.post(down)

    def _complete_collectives(self, alive, results, errors,
                              coll_pending, writers) -> None:
        """Pop one pending contribution per participating rank whenever
        everyone has posted, reduce in rank order, broadcast."""
        while True:
            participants = sorted(r for r in alive if r not in results)
            if not participants or \
                    any(not coll_pending[r] for r in participants):
                return
            reqs = {r: coll_pending[r].popleft() for r in participants}
            ops = {req["op"] for req in reqs.values()}
            if len(ops) > 1:
                for r in participants:
                    self._expel(r, f"mismatched collectives {ops}",
                                alive, writers, errors,
                                kind="protocol")
                return
            op = ops.pop()
            if op == "allreduce":
                red = {req["reduce"] for req in reqs.values()}.pop()
                vals = [np.asarray(reqs[r]["value"])
                        for r in participants]
                if red == "sum":
                    out = sum(vals[1:], vals[0].copy())
                elif red == "max":
                    out = vals[0].copy()
                    for a in vals[1:]:
                        out = np.maximum(out, a)
                elif red == "min":
                    out = vals[0].copy()
                    for a in vals[1:]:
                        out = np.minimum(out, a)
                else:
                    raise RankFailure(participants[0], "protocol",
                                      f"unknown reduce {red!r}")
                out = np.asarray(out)
            elif op == "alltoall":
                counts = np.zeros((self.nranks, self.nranks),
                                  dtype=np.int64)
                for r in participants:
                    counts[r] = np.asarray(reqs[r]["row"])
                out = counts.T.copy()
            elif op == "barrier":
                out = np.zeros(0)
            else:
                raise RankFailure(participants[0], "protocol",
                                  f"unknown collective {op!r}")
            blob = encode_frame(K_COLL_RESULT, -1, -1, 0, out,
                                self.max_frame_bytes)
            for r in participants:
                writers[r].post(blob)

    def _reap(self, procs, conns) -> None:
        for c in conns:
            try:
                c.close()
            except OSError:
                pass
        reap_procs(procs)
