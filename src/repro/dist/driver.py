"""Launch a distributed app over either rank transport.

:func:`run_distributed` is the single entry point the CLI, the tests and
the benchmarks share: the same application code
(:class:`~repro.apps.fempic.distributed.DistributedFemPic`,
:class:`~repro.apps.cabana.distributed.DistributedCabana`,
:class:`~repro.apps.twod.distributed.DistributedTwoD`) runs either as an
in-process simulation (``transport="sim"``) or as N real rank processes
(``transport="proc"``), each rank free to use any on-node backend
(``seq``/``vec``/``omp``/``mp`` — the MPI+X matrix).

Under ``proc`` every rank ships its history, its :class:`CommStats`
ledgers and its per-loop :class:`PerfRecorder` back to the launcher,
which checks the replicated histories agree and merges the ledgers into
the same program-level view the simulation produces directly.
"""
from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..perf.timers import PerfRecorder
from ..runtime.comm import CommStats, SimComm
from .proc import DEFAULT_MAX_FRAME, DEFAULT_OP_TIMEOUT, ProcCluster
from .transport import RankFailure, TRANSPORT_KINDS

__all__ = ["run_distributed", "DistResult", "APP_NAMES"]

APP_NAMES = ("fempic", "cabana", "twod")


def _build_app(spec: dict, comm):
    """Instantiate the requested app over ``comm`` (both transports pass
    through here, so sim and proc runs are the same construction)."""
    name = spec["app"]
    config = spec.get("config")
    if spec.get("backend"):
        config = dataclasses.replace(config, backend=spec["backend"])
    if name == "fempic":
        from ..apps.fempic.distributed import DistributedFemPic
        return DistributedFemPic(
            config, comm=comm,
            partition_method=spec.get("partition_method")
            or "principal_direction",
            ranks_per_node=spec.get("ranks_per_node"))
    if name == "cabana":
        from ..apps.cabana.distributed import DistributedCabana
        return DistributedCabana(
            config, comm=comm,
            partition_method=spec.get("partition_method")
            or "principal_direction")
    if name == "twod":
        from ..apps.twod.distributed import DistributedTwoD
        return DistributedTwoD(config, comm=comm)
    raise ValueError(f"unknown app {name!r}; expected one of "
                     f"{APP_NAMES}")


def _rank_perf(app) -> Dict[int, dict]:
    """Per-resident-rank loop stats as serializable dicts."""
    out = {}
    for r, rk in app._local():
        ctx = rk["ctx"] if isinstance(rk, dict) else rk.ctx
        out[r] = ctx.perf.to_dict()
    return out


def _close_backends(app) -> None:
    """Shut down any rank backend holding OS resources (the mp backend's
    worker pool) — a rank process that exits without this orphans its
    workers, and the orphans keep the launcher's pipes open."""
    for _r, rk in app._local():
        ctx = rk["ctx"] if isinstance(rk, dict) else rk.ctx
        close = getattr(ctx.backend, "close", None)
        if close is not None:
            close()


def _elastic_active(spec: dict) -> bool:
    return bool((spec.get("rebalance") or "never") != "never"
                or spec.get("checkpoint_every") or spec.get("recover")
                or spec.get("_kill"))


def _run_app(app, spec: dict):
    """Run the app's step loop — directly, or under the elastic
    controller when any rebalance/checkpoint/recovery option is on.
    Returns ``(history, elastic_summary_or_None)``."""
    if not _elastic_active(spec):
        return app.run(spec.get("n_steps")), None
    from ..elastic import ElasticController, latest_snapshot, \
        restore_snapshot
    kill = spec.get("_kill")
    ctl = ElasticController(
        app, mode=spec.get("rebalance") or "never",
        check_every=int(spec.get("rebalance_every") or 1),
        checkpoint_every=spec.get("checkpoint_every"),
        checkpoint_dir=spec.get("checkpoint_dir"),
        kill_rank=kill[0] if kill else None,
        kill_step=kill[1] if kill else None)
    start = 0
    if spec.get("recover") and spec.get("checkpoint_dir"):
        found = latest_snapshot(spec["checkpoint_dir"])
        if found is not None:
            start, elastic_state = restore_snapshot(app, found[1])
            ctl.load_state(elastic_state)
    n_steps = spec.get("n_steps")
    if n_steps is None:
        n_steps = app.cfg.n_steps
    history = ctl.run(n_steps, start)
    return history, ctl.stats()


def _rank_entry(transport, spec: dict) -> dict:
    """Runs inside every rank process; the return value is the rank's
    report shipped back through the router."""
    t0 = time.perf_counter()
    app = _build_app(spec, transport)
    if spec.get("seed_ppc"):
        app.seed_uniform_plasma(int(spec["seed_ppc"]))
    try:
        history, elastic = _run_app(app, spec)
    finally:
        _close_backends(app)
    wall = time.perf_counter() - t0
    solve_stats = getattr(app, "solve_stats", None)
    return {"rank": transport.my_rank,
            "history": history,
            "stats": transport.stats.to_dict(),
            "solve_stats": solve_stats.to_dict() if solve_stats
            is not None else None,
            "perf": _rank_perf(app),
            "elastic": elastic,
            "wall_seconds": wall}


@dataclass
class DistResult:
    """What a distributed run reports, identically for both transports."""

    app: str
    nranks: int
    transport: str
    history: dict
    #: program-level PIC traffic (merged across ranks under ``proc``)
    stats: CommStats
    #: gathered-field-solve traffic, if the app ledgers it separately
    solve_stats: Optional[CommStats]
    #: per-rank loop breakdowns
    rank_perf: Dict[int, PerfRecorder] = field(default_factory=dict)
    #: launcher-side wall-clock of the whole run
    wall_seconds: float = 0.0
    #: each rank process's own construction+run wall-clock
    rank_walls: List[float] = field(default_factory=list)
    #: elastic-runtime summary (rebalances, snapshots, …) when on
    elastic: Optional[dict] = None
    #: rank-process relaunches the recovery supervisor performed
    restarts: int = 0

    @property
    def perf(self) -> PerfRecorder:
        """Program-level roll-up of every rank's loop stats."""
        merged = PerfRecorder()
        for r in sorted(self.rank_perf):
            merged.merge(self.rank_perf[r])
        return merged

    def busy_seconds_per_rank(self) -> List[float]:
        return [self.rank_perf[r].total_seconds if r in self.rank_perf
                else 0.0 for r in range(self.nranks)]

    @property
    def critical_path_seconds(self) -> float:
        """Busy time of the slowest rank — the quantity that shrinks
        with rank count when the kernels dominate, independently of how
        many cores the host happens to have."""
        return max(self.busy_seconds_per_rank())

    def rank_load_imbalance(self) -> float:
        """max/mean busy seconds across ranks (1.0 = perfect balance;
        the quantity online rebalancing drives down)."""
        busy = [s for s in self.busy_seconds_per_rank() if s > 0.0]
        if not busy:
            return 0.0
        return max(busy) * len(busy) / sum(busy)

    def loop_imbalance(self) -> Dict[str, float]:
        """Per-loop cross-rank imbalance, via
        :attr:`~repro.perf.timers.LoopStats.load_imbalance` with one
        'worker' per rank."""
        from ..perf.timers import LoopStats
        names = sorted({name for rec in self.rank_perf.values()
                        for name in rec.loops})
        out = {}
        for name in names:
            st = LoopStats(name)
            st.worker_seconds = [
                self.rank_perf[r].loops[name].seconds
                if r in self.rank_perf and name in self.rank_perf[r].loops
                else 0.0 for r in range(self.nranks)]
            out[name] = st.load_imbalance
        return out


def _histories_agree(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(np.array_equal(np.asarray(a[k]), np.asarray(b[k]))
               for k in a)


def run_distributed(app: str = "fempic", config=None, nranks: int = 2,
                    transport: str = "sim",
                    n_steps: Optional[int] = None,
                    seed_ppc: Optional[int] = None,
                    backend: Optional[str] = None,
                    partition_method: Optional[str] = None,
                    ranks_per_node: Optional[int] = None,
                    op_timeout: float = DEFAULT_OP_TIMEOUT,
                    max_frame_bytes: int = DEFAULT_MAX_FRAME,
                    rebalance: str = "never",
                    rebalance_every: int = 1,
                    checkpoint_every: Optional[int] = None,
                    checkpoint_dir=None,
                    recover: bool = False,
                    recover_ranks: Optional[int] = None,
                    max_restarts: int = 2,
                    kill: Optional[tuple] = None
                    ) -> DistResult:
    """Run ``app`` on ``nranks`` ranks over the chosen transport.

    The elastic options: ``rebalance`` selects the online-repartition
    mode (``never``/``auto``/``always``), checked every
    ``rebalance_every`` steps; ``checkpoint_every``/``checkpoint_dir``
    enable periodic distributed snapshots; ``recover`` resumes from the
    newest snapshot *and* — under ``proc`` — arms the supervisor, which
    relaunches the cluster (up to ``max_restarts`` times, optionally on
    ``recover_ranks`` < nranks ranks) after a :class:`RankFailure`.
    ``kill=(rank, step)`` injects a hard rank death for the recovery
    tests."""
    if transport not in TRANSPORT_KINDS:
        raise ValueError(f"unknown transport {transport!r}; expected "
                         f"one of {TRANSPORT_KINDS}")
    if config is None:
        raise ValueError("run_distributed needs an app config object")
    spec = {"app": app, "config": config, "n_steps": n_steps,
            "seed_ppc": seed_ppc, "backend": backend,
            "partition_method": partition_method,
            "ranks_per_node": ranks_per_node,
            "rebalance": rebalance, "rebalance_every": rebalance_every,
            "checkpoint_every": checkpoint_every,
            "checkpoint_dir": str(checkpoint_dir)
            if checkpoint_dir is not None else None,
            "recover": recover, "_kill": kill}

    t0 = time.perf_counter()
    if transport == "sim":
        comm = SimComm(nranks)
        instance = _build_app(spec, comm)
        if seed_ppc:
            instance.seed_uniform_plasma(int(seed_ppc))
        try:
            history, elastic = _run_app(instance, spec)
        finally:
            _close_backends(instance)
        wall = time.perf_counter() - t0
        solve_stats = getattr(instance, "solve_stats", None)
        return DistResult(
            app=app, nranks=nranks, transport=transport,
            history=history, stats=comm.stats,
            solve_stats=solve_stats,
            rank_perf={r: PerfRecorder.from_dict(p)
                       for r, p in _rank_perf(instance).items()},
            wall_seconds=wall, rank_walls=[wall] * nranks,
            elastic=elastic)

    restarts = 0
    while True:
        cluster = ProcCluster(nranks, _rank_entry, args=(spec,),
                              op_timeout=op_timeout,
                              max_frame_bytes=max_frame_bytes)
        try:
            payloads = cluster.run()
            break
        except RankFailure:
            if not (recover and spec["checkpoint_dir"]) \
                    or restarts >= max_restarts:
                raise
            from ..elastic import latest_snapshot
            if latest_snapshot(spec["checkpoint_dir"]) is None:
                raise            # nothing to resume from
            restarts += 1
            # relaunch from the newest snapshot; the injected kill must
            # not fire again, and the survivor count may shrink
            spec = dict(spec, _kill=None, recover=True)
            if recover_ranks is not None:
                nranks = recover_ranks
    wall = time.perf_counter() - t0

    history = payloads[0]["history"]
    for p in payloads[1:]:
        if not _histories_agree(history, p["history"]):
            raise RankFailure(p["rank"], "protocol",
                              "replicated histories diverged between "
                              "ranks — collectives are broken")
    stats = CommStats(nranks)
    solve_stats = None
    rank_perf: Dict[int, PerfRecorder] = {}
    for p in payloads:
        stats.merge(CommStats.from_dict(p["stats"]))
        if p["solve_stats"] is not None:
            if solve_stats is None:
                solve_stats = CommStats(nranks)
            solve_stats.merge(CommStats.from_dict(p["solve_stats"]))
        for r, rec in p["perf"].items():
            rank_perf[int(r)] = PerfRecorder.from_dict(rec)
    return DistResult(
        app=app, nranks=nranks, transport=transport, history=history,
        stats=stats, solve_stats=solve_stats, rank_perf=rank_perf,
        wall_seconds=wall,
        rank_walls=[p["wall_seconds"] for p in payloads],
        elastic=payloads[0].get("elastic"), restarts=restarts)
