"""Launch a distributed app over either rank transport.

:func:`run_distributed` is the single entry point the CLI, the tests and
the benchmarks share: the same application code
(:class:`~repro.apps.fempic.distributed.DistributedFemPic`,
:class:`~repro.apps.cabana.distributed.DistributedCabana`,
:class:`~repro.apps.twod.distributed.DistributedTwoD`) runs either as an
in-process simulation (``transport="sim"``) or as N real rank processes
(``transport="proc"``), each rank free to use any on-node backend
(``seq``/``vec``/``omp``/``mp`` — the MPI+X matrix).

Under ``proc`` every rank ships its history, its :class:`CommStats`
ledgers and its per-loop :class:`PerfRecorder` back to the launcher,
which checks the replicated histories agree and merges the ledgers into
the same program-level view the simulation produces directly.
"""
from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..perf.timers import PerfRecorder
from ..runtime.comm import CommStats, SimComm
from .proc import DEFAULT_MAX_FRAME, DEFAULT_OP_TIMEOUT, ProcCluster
from .transport import RankFailure, TRANSPORT_KINDS

__all__ = ["run_distributed", "DistResult", "APP_NAMES"]

APP_NAMES = ("fempic", "cabana", "twod")


def _build_app(spec: dict, comm):
    """Instantiate the requested app over ``comm`` (both transports pass
    through here, so sim and proc runs are the same construction)."""
    name = spec["app"]
    config = spec.get("config")
    if spec.get("backend"):
        config = dataclasses.replace(config, backend=spec["backend"])
    if name == "fempic":
        from ..apps.fempic.distributed import DistributedFemPic
        return DistributedFemPic(
            config, comm=comm,
            partition_method=spec.get("partition_method")
            or "principal_direction",
            ranks_per_node=spec.get("ranks_per_node"))
    if name == "cabana":
        from ..apps.cabana.distributed import DistributedCabana
        return DistributedCabana(
            config, comm=comm,
            partition_method=spec.get("partition_method")
            or "principal_direction")
    if name == "twod":
        from ..apps.twod.distributed import DistributedTwoD
        return DistributedTwoD(config, comm=comm)
    raise ValueError(f"unknown app {name!r}; expected one of "
                     f"{APP_NAMES}")


def _rank_perf(app) -> Dict[int, dict]:
    """Per-resident-rank loop stats as serializable dicts."""
    out = {}
    for r, rk in app._local():
        ctx = rk["ctx"] if isinstance(rk, dict) else rk.ctx
        out[r] = ctx.perf.to_dict()
    return out


def _close_backends(app) -> None:
    """Shut down any rank backend holding OS resources (the mp backend's
    worker pool) — a rank process that exits without this orphans its
    workers, and the orphans keep the launcher's pipes open."""
    for _r, rk in app._local():
        ctx = rk["ctx"] if isinstance(rk, dict) else rk.ctx
        close = getattr(ctx.backend, "close", None)
        if close is not None:
            close()


def _rank_entry(transport, spec: dict) -> dict:
    """Runs inside every rank process; the return value is the rank's
    report shipped back through the router."""
    t0 = time.perf_counter()
    app = _build_app(spec, transport)
    if spec.get("seed_ppc"):
        app.seed_uniform_plasma(int(spec["seed_ppc"]))
    try:
        history = app.run(spec.get("n_steps"))
    finally:
        _close_backends(app)
    wall = time.perf_counter() - t0
    solve_stats = getattr(app, "solve_stats", None)
    return {"rank": transport.my_rank,
            "history": history,
            "stats": transport.stats.to_dict(),
            "solve_stats": solve_stats.to_dict() if solve_stats
            is not None else None,
            "perf": _rank_perf(app),
            "wall_seconds": wall}


@dataclass
class DistResult:
    """What a distributed run reports, identically for both transports."""

    app: str
    nranks: int
    transport: str
    history: dict
    #: program-level PIC traffic (merged across ranks under ``proc``)
    stats: CommStats
    #: gathered-field-solve traffic, if the app ledgers it separately
    solve_stats: Optional[CommStats]
    #: per-rank loop breakdowns
    rank_perf: Dict[int, PerfRecorder] = field(default_factory=dict)
    #: launcher-side wall-clock of the whole run
    wall_seconds: float = 0.0
    #: each rank process's own construction+run wall-clock
    rank_walls: List[float] = field(default_factory=list)

    @property
    def perf(self) -> PerfRecorder:
        """Program-level roll-up of every rank's loop stats."""
        merged = PerfRecorder()
        for r in sorted(self.rank_perf):
            merged.merge(self.rank_perf[r])
        return merged

    def busy_seconds_per_rank(self) -> List[float]:
        return [self.rank_perf[r].total_seconds if r in self.rank_perf
                else 0.0 for r in range(self.nranks)]

    @property
    def critical_path_seconds(self) -> float:
        """Busy time of the slowest rank — the quantity that shrinks
        with rank count when the kernels dominate, independently of how
        many cores the host happens to have."""
        return max(self.busy_seconds_per_rank())


def _histories_agree(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(np.array_equal(np.asarray(a[k]), np.asarray(b[k]))
               for k in a)


def run_distributed(app: str = "fempic", config=None, nranks: int = 2,
                    transport: str = "sim",
                    n_steps: Optional[int] = None,
                    seed_ppc: Optional[int] = None,
                    backend: Optional[str] = None,
                    partition_method: Optional[str] = None,
                    ranks_per_node: Optional[int] = None,
                    op_timeout: float = DEFAULT_OP_TIMEOUT,
                    max_frame_bytes: int = DEFAULT_MAX_FRAME
                    ) -> DistResult:
    """Run ``app`` on ``nranks`` ranks over the chosen transport."""
    if transport not in TRANSPORT_KINDS:
        raise ValueError(f"unknown transport {transport!r}; expected "
                         f"one of {TRANSPORT_KINDS}")
    if config is None:
        raise ValueError("run_distributed needs an app config object")
    spec = {"app": app, "config": config, "n_steps": n_steps,
            "seed_ppc": seed_ppc, "backend": backend,
            "partition_method": partition_method,
            "ranks_per_node": ranks_per_node}

    t0 = time.perf_counter()
    if transport == "sim":
        comm = SimComm(nranks)
        instance = _build_app(spec, comm)
        if seed_ppc:
            instance.seed_uniform_plasma(int(seed_ppc))
        try:
            history = instance.run(n_steps)
        finally:
            _close_backends(instance)
        wall = time.perf_counter() - t0
        solve_stats = getattr(instance, "solve_stats", None)
        return DistResult(
            app=app, nranks=nranks, transport=transport,
            history=history, stats=comm.stats,
            solve_stats=solve_stats,
            rank_perf={r: PerfRecorder.from_dict(p)
                       for r, p in _rank_perf(instance).items()},
            wall_seconds=wall, rank_walls=[wall] * nranks)

    cluster = ProcCluster(nranks, _rank_entry, args=(spec,),
                          op_timeout=op_timeout,
                          max_frame_bytes=max_frame_bytes)
    payloads = cluster.run()
    wall = time.perf_counter() - t0

    history = payloads[0]["history"]
    for p in payloads[1:]:
        if not _histories_agree(history, p["history"]):
            raise RankFailure(p["rank"], "protocol",
                              "replicated histories diverged between "
                              "ranks — collectives are broken")
    stats = CommStats(nranks)
    solve_stats = None
    rank_perf: Dict[int, PerfRecorder] = {}
    for p in payloads:
        stats.merge(CommStats.from_dict(p["stats"]))
        if p["solve_stats"] is not None:
            if solve_stats is None:
                solve_stats = CommStats(nranks)
            solve_stats.merge(CommStats.from_dict(p["solve_stats"]))
        for r, rec in p["perf"].items():
            rank_perf[int(r)] = PerfRecorder.from_dict(rec)
    return DistResult(
        app=app, nranks=nranks, transport=transport, history=history,
        stats=stats, solve_stats=solve_stats, rank_perf=rank_perf,
        wall_seconds=wall,
        rank_walls=[p["wall_seconds"] for p in payloads])
