"""PIC-as-a-service: the asyncio job server.

One process hosts three cooperating pieces:

* a TCP front end speaking **NDJSON** — one JSON object per line, one
  request per line, responses (and ``watch`` streams) as JSON lines
  back;
* the :class:`~repro.service.scheduler.FairShareScheduler` deciding
  *which* validated job runs next (priority + aging + tenant
  fair-share, with preemption);
* the :class:`~repro.service.pool.WarmPool` of persistent worker
  processes actually running simulations, wired into the event loop
  via ``loop.add_reader`` on each worker's pipe fd — no polling task,
  no worker threads in the server.

Failure handling closes the loop with the elastic-runtime work (PR 5):
every ``checkpoint_every`` steps a running job streams a resume point
to the server; if its worker dies (crash, ``kill-worker`` op, injected
``die_at_step``), the job is requeued *with that checkpoint* and
resumes on another worker — same trajectory, bit-for-bit — while the
pool respawns a replacement worker.  Preemption uses the same
machinery: checkpoint, yield, requeue, resume elsewhere.

Requests::

    {"op": "submit", "job": {...}}        -> {"ok": true, "job_id": ...}
    {"op": "status", "job_id": ...}       -> {"ok": true, "state": ...}
    {"op": "result", "job_id": ...}       -> blocks until terminal
    {"op": "watch",  "job_id": ...}       -> stream of event lines
    {"op": "cancel", "job_id": ...}
    {"op": "stats"} | {"op": "schemas"} | {"op": "ping"}
    {"op": "kill-worker"[, "job_id"|"worker_id"]}   (fault injection)
    {"op": "resize", "n_workers": N}
    {"op": "shutdown"}
"""
from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .jobs import JobValidationError, describe_schemas, validate_job
from .pool import (PK_CKPT, PK_DIAG, PK_DONE, PK_DOWN, PK_FAIL, PK_UP,
                   PK_YIELD, WarmPool)
from .scheduler import FairShareScheduler, QueuedJob

__all__ = ["ServiceServer", "start_server_thread", "ServerThread"]

#: a job is abandoned after this many preemption-free restarts
DEFAULT_MAX_RESTARTS = 3

TERMINAL = ("done", "failed", "cancelled")


def _json_default(obj):
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def dumps(obj) -> bytes:
    return (json.dumps(obj, default=_json_default,
                       separators=(",", ":")) + "\n").encode()


@dataclass
class JobRecord:
    """Server-side lifecycle of one submitted job."""

    job_id: str
    item: QueuedJob
    state: str = "queued"        # queued | running | done | failed | cancelled
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker_id: Optional[int] = None
    #: workers this job has run on (len > 1 means it migrated)
    placements: List[int] = field(default_factory=list)
    steps_done: int = 0
    result: Optional[dict] = None
    error: Optional[dict] = None
    cancel_requested: bool = False
    preempt_requested: bool = False
    preemptions: int = 0
    rescues: int = 0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    watchers: List[asyncio.Queue] = field(default_factory=list)

    def public(self) -> dict:
        out = {"job_id": self.job_id, "state": self.state,
               "app": self.item.spec.app,
               "tenant": self.item.spec.tenant,
               "priority": self.item.spec.priority,
               "steps_done": self.steps_done,
               "n_steps": self.item.spec.n_steps,
               "placements": self.placements,
               "preemptions": self.preemptions,
               "rescues": self.rescues}
        if self.started_at is not None:
            out["wait_seconds"] = self.started_at - self.submitted_at
        if self.finished_at is not None:
            out["latency_seconds"] = (self.finished_at
                                      - self.submitted_at)
        if self.error is not None:
            out["error"] = self.error
        return out


class ServiceServer:
    """The service: own it with ``async with`` or start()/stop()."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 n_workers: int = 2,
                 scheduler: Optional[FairShareScheduler] = None,
                 default_backend: Optional[str] = None,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 start_method: Optional[str] = None):
        self.host = host
        self.port = int(port)          # 0 = ephemeral; real port after start
        self.default_backend = default_backend
        self.max_restarts = int(max_restarts)
        self.scheduler = scheduler or FairShareScheduler()
        self.pool = WarmPool(n_workers, start_method=start_method)
        self.jobs: Dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._registered_fds: Dict[int, int] = {}   # fd -> worker_id
        self._stopping = False
        self.stopped: Optional[asyncio.Event] = None
        self.counters = {"submitted": 0, "rejected": 0, "done": 0,
                         "failed": 0, "cancelled": 0, "preemptions": 0,
                         "rescues": 0, "worker_deaths": 0}

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.stopped = asyncio.Event()
        for handle in self.pool.start():
            self._register(handle)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for fd in list(self._registered_fds):
            self._loop.remove_reader(fd)
        self._registered_fds.clear()
        # unblock anyone awaiting a result
        for record in self.jobs.values():
            if record.state not in TERMINAL:
                self._finish(record, "cancelled",
                             error={"error": "server shut down"})
        self.pool.shutdown()
        self.stopped.set()

    async def serve_forever(self) -> None:
        """Start and block until a ``shutdown`` op (or :meth:`stop`)."""
        await self.start()
        await self.stopped.wait()

    async def __aenter__(self) -> "ServiceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _register(self, handle) -> None:
        fd = handle.conn.fileno()
        self._registered_fds[fd] = handle.worker_id
        self._loop.add_reader(fd, self._on_readable, handle.worker_id,
                              fd)

    def _on_readable(self, worker_id: int, fd: int) -> None:
        events = self.pool.drain(worker_id)
        for event in events:
            self._handle_event(event)
        if any(e.kind == PK_DOWN for e in events):
            self._loop.remove_reader(fd)
            self._registered_fds.pop(fd, None)
            self.pool.reap_dead()
            if not self._stopping:
                for handle in self.pool.ensure_target():
                    self._register(handle)
        self._schedule()

    # -- event handling ------------------------------------------------------------

    def _record_for(self, payload) -> Optional[JobRecord]:
        if isinstance(payload, dict):
            return self.jobs.get(payload.get("job_id") or "")
        return None

    def _handle_event(self, event) -> None:
        record = self._record_for(event.payload)
        if event.kind == PK_UP:
            return
        if event.kind == PK_DIAG and record is not None:
            record.steps_done = event.payload["step"]
            self._publish(record, {"event": "diag",
                                   "job_id": record.job_id,
                                   "step": event.payload["step"],
                                   "metrics": event.payload["metrics"]})
        elif event.kind == PK_CKPT and record is not None:
            record.steps_done = event.payload["step"]
            record.item.checkpoint = event.payload["checkpoint"]
        elif event.kind == PK_DONE and record is not None:
            record.steps_done = event.payload["steps"]
            record.result = {
                "history": event.payload["history"],
                "steps": event.payload["steps"],
                "resumed_from": event.payload.get("resumed_from"),
                "elapsed": event.payload.get("elapsed"),
                "cache": event.payload.get("cache"),
            }
            self._charge(record, event.payload.get("elapsed"))
            self._finish(record, "done")
        elif event.kind == PK_FAIL and record is not None:
            self._charge(record, event.payload.get("elapsed"))
            self._finish(record, "failed",
                         error={"error": event.payload.get("error"),
                                "traceback":
                                    event.payload.get("traceback")})
        elif event.kind == PK_YIELD and record is not None:
            self._charge(record, event.payload.get("elapsed"))
            if event.payload.get("reason") == "cancelled" \
                    or record.cancel_requested:
                self._finish(record, "cancelled")
            else:
                record.preempt_requested = False
                record.preemptions += 1
                self.counters["preemptions"] += 1
                if event.payload.get("checkpoint") is not None:
                    record.item.checkpoint = event.payload["checkpoint"]
                    record.steps_done = event.payload["step"]
                self._requeue(record)
        elif event.kind == PK_DOWN:
            self.counters["worker_deaths"] += 1
            if record is None or record.state in TERMINAL:
                return
            # rescue: resume from the last streamed checkpoint (or, for
            # non-checkpointable apps, restart from scratch); the
            # injected death must not re-fire on the retry
            record.item.spec.die_at_step = None
            record.rescues += 1
            self.counters["rescues"] += 1
            if record.cancel_requested:
                self._finish(record, "cancelled")
            elif record.item.restarts >= self.max_restarts:
                self._finish(record, "failed",
                             error={"error": f"worker died "
                                    f"{record.item.restarts + 1} times"})
            else:
                self._requeue(record)

    def _charge(self, record: JobRecord, elapsed) -> None:
        if elapsed:
            self.scheduler.charge(record.item.spec.tenant,
                                  float(elapsed), time.monotonic())

    def _requeue(self, record: JobRecord) -> None:
        record.state = "queued"
        record.worker_id = None
        self.scheduler.requeue(record.item)
        self._publish(record, {"event": "requeued",
                               "job_id": record.job_id,
                               "restarts": record.item.restarts,
                               "resume_step": record.steps_done})

    def _finish(self, record: JobRecord, state: str,
                error: Optional[dict] = None) -> None:
        record.state = state
        record.error = error
        record.worker_id = None
        record.finished_at = time.monotonic()
        self.counters[state] += 1
        event = {"event": state, "job_id": record.job_id}
        if error is not None:
            event.update(error)
        self._publish(record, event, terminal=True)
        record.done_event.set()

    def _publish(self, record: JobRecord, event: dict,
                 terminal: bool = False) -> None:
        for q in record.watchers:
            q.put_nowait(event)
        if terminal:
            record.watchers.clear()

    # -- scheduling ----------------------------------------------------------------

    def _running_items(self) -> List[QueuedJob]:
        out = []
        for handle in self.pool.busy_workers():
            rec = self.jobs.get(handle.job_id or "")
            if rec is not None and rec.state == "running" \
                    and not rec.preempt_requested \
                    and not rec.cancel_requested:
                out.append(rec.item)
        return out

    def _schedule(self) -> None:
        if self._stopping:
            return
        now = time.monotonic()
        for handle in self.pool.idle_workers():
            item = self.scheduler.pop(now)
            if item is None:
                break
            record = self.jobs[item.job_id]
            if record.cancel_requested:
                self._finish(record, "cancelled")
                continue
            ckpt, item.checkpoint = item.checkpoint, None
            if self.pool.assign(handle.worker_id, item.job_id,
                                item.spec, ckpt, tag=item.seq):
                record.state = "running"
                record.worker_id = handle.worker_id
                record.placements.append(handle.worker_id)
                if record.started_at is None:
                    record.started_at = now
                self._publish(record, {"event": "running",
                                       "job_id": record.job_id,
                                       "worker": handle.worker_id,
                                       "resume_step": record.steps_done
                                       if ckpt is not None else 0})
            else:
                item.checkpoint = ckpt
                self.scheduler.submit(item)
        if len(self.scheduler) and not self.pool.idle_workers():
            victim = self.scheduler.pick_victim(self._running_items(),
                                                now)
            if victim is not None:
                rec = self.jobs[victim.job_id]
                if rec.worker_id is not None:
                    rec.preempt_requested = True
                    self.pool.preempt(rec.worker_id)

    # -- the NDJSON front end ------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    writer.write(dumps({"ok": False,
                                        "error": f"bad request: {exc}"}))
                    await writer.drain()
                    continue
                stop_after = await self._dispatch(req, writer)
                await writer.drain()
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # only raised at shutdown (the drain in ServerThread
            # cancels parked handler tasks); finishing normally keeps
            # asyncio's streams done-callback — which calls
            # task.exception() on a *cancelled* task — from logging a
            # spurious error during loop teardown
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, req: dict,
                        writer: asyncio.StreamWriter) -> bool:
        op = req.get("op")
        if op == "ping":
            writer.write(dumps({"ok": True, "pong": True}))
        elif op == "schemas":
            writer.write(dumps({"ok": True,
                                "apps": describe_schemas()}))
        elif op == "submit":
            writer.write(dumps(self._op_submit(req.get("job"))))
        elif op == "status":
            record = self.jobs.get(req.get("job_id") or "")
            if record is None:
                writer.write(dumps({"ok": False,
                                    "error": "unknown job_id"}))
            else:
                writer.write(dumps({"ok": True, **record.public()}))
        elif op == "result":
            await self._op_result(req, writer)
        elif op == "watch":
            await self._op_watch(req, writer)
        elif op == "cancel":
            writer.write(dumps(self._op_cancel(req.get("job_id"))))
        elif op == "stats":
            writer.write(dumps({"ok": True, **self._op_stats()}))
        elif op == "kill-worker":
            writer.write(dumps(self._op_kill(req)))
        elif op == "resize":
            writer.write(dumps(self._op_resize(req)))
        elif op == "shutdown":
            writer.write(dumps({"ok": True, "stopping": True}))
            await writer.drain()
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop()))
            return True
        else:
            writer.write(dumps({"ok": False,
                                "error": f"unknown op {op!r}"}))
        return False

    def _op_submit(self, raw) -> dict:
        if isinstance(raw, dict) and self.default_backend \
                and isinstance(raw.get("params"), dict):
            raw["params"].setdefault("backend", self.default_backend)
        try:
            spec = validate_job(raw)
        except JobValidationError as exc:
            self.counters["rejected"] += 1
            return {"ok": False, "error": "validation failed",
                    "errors": exc.errors}
        now = time.monotonic()
        job_id = f"job-{next(self._ids):05d}"
        item = QueuedJob(job_id=job_id, spec=spec, enqueued_at=now)
        record = JobRecord(job_id=job_id, item=item, submitted_at=now)
        self.jobs[job_id] = record
        self.scheduler.submit(item)
        self.counters["submitted"] += 1
        self._schedule()
        return {"ok": True, "job_id": job_id,
                "queued": self.scheduler.queued_ids()}

    async def _op_result(self, req: dict,
                         writer: asyncio.StreamWriter) -> None:
        record = self.jobs.get(req.get("job_id") or "")
        if record is None:
            writer.write(dumps({"ok": False, "error": "unknown job_id"}))
            return
        timeout = req.get("timeout")
        try:
            await asyncio.wait_for(record.done_event.wait(),
                                   timeout=timeout)
        except asyncio.TimeoutError:
            writer.write(dumps({"ok": False, "error": "timeout",
                                **record.public()}))
            return
        # ok reflects the *op* (a terminal answer was produced), not the
        # job outcome — read "state" for that
        writer.write(dumps({"ok": True, **record.public(),
                            "result": record.result}))

    async def _op_watch(self, req: dict,
                        writer: asyncio.StreamWriter) -> None:
        record = self.jobs.get(req.get("job_id") or "")
        if record is None:
            writer.write(dumps({"ok": False, "error": "unknown job_id"}))
            return
        if record.state in TERMINAL:
            writer.write(dumps({"event": record.state,
                                "job_id": record.job_id}))
            return
        q: asyncio.Queue = asyncio.Queue()
        record.watchers.append(q)
        writer.write(dumps({"ok": True, "watching": record.job_id,
                            "state": record.state}))
        await writer.drain()
        while True:
            event = await q.get()
            writer.write(dumps(event))
            await writer.drain()
            if event.get("event") in TERMINAL:
                return

    def _op_cancel(self, job_id) -> dict:
        record = self.jobs.get(job_id or "")
        if record is None:
            return {"ok": False, "error": "unknown job_id"}
        if record.state in TERMINAL:
            return {"ok": True, "state": record.state}
        if record.state == "queued":
            if self.scheduler.cancel(record.job_id) is not None:
                self._finish(record, "cancelled")
            else:   # queued record not in queue: about to be requeued
                record.cancel_requested = True
            return {"ok": True, "state": record.state}
        record.cancel_requested = True
        if record.worker_id is not None:
            self.pool.cancel(record.worker_id)
        return {"ok": True, "state": "cancelling"}

    def _op_stats(self) -> dict:
        now = time.monotonic()
        states: Dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {"counters": dict(self.counters),
                "jobs": states,
                "scheduler": self.scheduler.stats(now),
                "pool": self.pool.stats()}

    def _op_kill(self, req: dict) -> dict:
        worker_id = req.get("worker_id")
        if worker_id is None and req.get("job_id"):
            record = self.jobs.get(req["job_id"])
            if record is None or record.worker_id is None:
                return {"ok": False,
                        "error": "job is not running on any worker"}
            worker_id = record.worker_id
        if worker_id is None:
            busy = self.pool.busy_workers()
            if not busy:
                return {"ok": False, "error": "no busy worker to kill"}
            worker_id = busy[0].worker_id
        if worker_id not in self.pool.workers:
            return {"ok": False, "error": f"unknown worker {worker_id}"}
        self.pool.kill_worker(worker_id)
        return {"ok": True, "killed": worker_id}

    def _op_resize(self, req: dict) -> dict:
        n = req.get("n_workers")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            return {"ok": False,
                    "error": "n_workers must be a positive integer"}
        for handle in self.pool.resize(n):
            self._register(handle)
        self._schedule()
        return {"ok": True, "target_size": self.pool.target_size}


# -- thread wrapper (tests, benchmarks, CLI) ---------------------------------------


class ServerThread:
    """A :class:`ServiceServer` running on a dedicated event-loop
    thread, for synchronous callers (tests, benchmarks)."""

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self.server: Optional[ServiceServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 60.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="pic-service",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.server = ServiceServer(**self._kwargs)
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            # drain (don't abandon) outstanding tasks — connection
            # handlers, result waits — so nothing is GC'd mid-flight
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.run_until_complete(
                self._loop.shutdown_asyncgens())
            self._loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(**kwargs) -> ServerThread:
    """Start a service on a background thread; returns the running
    :class:`ServerThread` (``.host``/``.port``/``.stop()``)."""
    return ServerThread(**kwargs).start()
