"""Fair-share scheduler for the multi-tenant job service.

Pure data structure, no I/O and no clock of its own: the server feeds
it ``now`` timestamps, so every policy decision is deterministic and
unit-testable.  A queued job's effective score is::

    score = priority + waited/aging_seconds - fair_share_weight * usage

where ``usage`` is the submitting tenant's accumulated worker-seconds
(decayed exponentially with half-life ``usage_halflife``).  The aging
term guarantees progress — any finite-priority job eventually outscores
a steady stream of higher-priority arrivals — while the usage term
keeps one chatty tenant from starving everyone else on a shared pool.

Preemption: when every worker is busy and the best queued job outscores
a running preemptible job by at least ``preempt_margin``, the scheduler
names that victim; the server checkpoints it, requeues it (resume
checkpoint attached, so no work is lost), and hands the worker to the
newcomer.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .jobs import JobSpec

__all__ = ["QueuedJob", "FairShareScheduler"]


@dataclass
class QueuedJob:
    """One schedulable unit: a job spec plus its queue bookkeeping."""

    job_id: str
    spec: JobSpec
    enqueued_at: float
    #: resume checkpoint carried across preemptions/failures
    checkpoint: Optional[dict] = None
    #: how many times this job was preempted or rescued from a dead
    #: worker (surfaced in status; also caps rescue loops)
    restarts: int = 0
    seq: int = field(default_factory=itertools.count().__next__)


class FairShareScheduler:
    """Priority + aging + tenant fair-share over one warm pool."""

    def __init__(self, aging_seconds: float = 30.0,
                 fair_share_weight: float = 1.0,
                 usage_halflife: float = 120.0,
                 preempt_margin: float = 2.0):
        if aging_seconds <= 0 or usage_halflife <= 0:
            raise ValueError("aging_seconds and usage_halflife must "
                             "be positive")
        self.aging_seconds = float(aging_seconds)
        self.fair_share_weight = float(fair_share_weight)
        self.usage_halflife = float(usage_halflife)
        self.preempt_margin = float(preempt_margin)
        self._queue: List[QueuedJob] = []
        self._usage: Dict[str, float] = {}
        self._usage_at: float = 0.0

    # -- queue ---------------------------------------------------------------------

    def submit(self, item: QueuedJob) -> None:
        self._queue.append(item)

    def requeue(self, item: QueuedJob) -> None:
        """Put a preempted/rescued job back (keeps original enqueue
        time, so its aging credit survives the round trip)."""
        item.restarts += 1
        self._queue.append(item)

    def cancel(self, job_id: str) -> Optional[QueuedJob]:
        for i, item in enumerate(self._queue):
            if item.job_id == job_id:
                return self._queue.pop(i)
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def queued_ids(self) -> List[str]:
        return [item.job_id for item in self._queue]

    # -- fair-share accounting -----------------------------------------------------

    def _decay(self, now: float) -> None:
        dt = now - self._usage_at
        if dt > 0 and self._usage:
            factor = 0.5 ** (dt / self.usage_halflife)
            for tenant in self._usage:
                self._usage[tenant] *= factor
        self._usage_at = max(self._usage_at, now)

    def charge(self, tenant: str, seconds: float, now: float) -> None:
        """Record ``seconds`` of worker time consumed by ``tenant``."""
        self._decay(now)
        self._usage[tenant] = self._usage.get(tenant, 0.0) \
            + float(seconds)

    def usage(self, tenant: str, now: float) -> float:
        self._decay(now)
        return self._usage.get(tenant, 0.0)

    # -- policy --------------------------------------------------------------------

    def score(self, item: QueuedJob, now: float) -> float:
        waited = max(0.0, now - item.enqueued_at)
        share = self._usage.get(item.spec.tenant, 0.0)
        return (item.spec.priority + waited / self.aging_seconds
                - self.fair_share_weight * share)

    def _best_index(self, now: float) -> Optional[int]:
        if not self._queue:
            return None
        self._decay(now)
        # stable tie-break on submission order
        return min(range(len(self._queue)),
                   key=lambda i: (-self.score(self._queue[i], now),
                                  self._queue[i].seq))

    def peek(self, now: float) -> Optional[QueuedJob]:
        i = self._best_index(now)
        return None if i is None else self._queue[i]

    def pop(self, now: float) -> Optional[QueuedJob]:
        i = self._best_index(now)
        return None if i is None else self._queue.pop(i)

    def pick_victim(self, running: List[QueuedJob],
                    now: float) -> Optional[QueuedJob]:
        """With all workers busy, should the best queued job displace a
        running one?  Returns the victim, or None to keep waiting.

        Only checkpointable, preemptible jobs are candidates, and the
        displacement must be decisive: the queued job's score must beat
        the victim's *static* priority by ``preempt_margin`` (running
        jobs don't age — they are already making progress)."""
        best = self.peek(now)
        if best is None:
            return None
        candidates = [r for r in running
                      if r.spec.preemptible
                      and r.spec.adapter.checkpointable
                      and r.job_id != best.job_id]
        if not candidates:
            return None
        victim = min(candidates, key=lambda r: (r.spec.priority, -r.seq))
        need = victim.spec.priority + self.preempt_margin
        if self.score(best, now) >= need \
                and best.spec.priority > victim.spec.priority:
            return victim
        return None

    def stats(self, now: float) -> dict:
        self._decay(now)
        return {
            "queued": len(self._queue),
            "usage": {t: round(v, 6)
                      for t, v in sorted(self._usage.items()) if v > 1e-9},
            "scores": {item.job_id: round(self.score(item, now), 4)
                       for item in self._queue},
        }
