"""Blocking NDJSON client for the PIC service.

One TCP connection, one JSON line per request, responses as JSON
lines.  Deliberately synchronous and dependency-free so tests,
benchmarks and user scripts can drive the asyncio server without
touching an event loop::

    with Client("127.0.0.1", 9321) as c:
        job_id = c.submit({"app": "advec",
                           "params": {"nx": 8, "ny": 8, "n_steps": 20}})
        for event in c.watch(job_id):
            print(event)
        history = c.result(job_id)["result"]["history"]
"""
from __future__ import annotations

import json
import socket
from typing import Iterator, Optional

__all__ = ["Client", "ServiceError"]


class ServiceError(RuntimeError):
    """The server answered ``ok: false``; carries the full response."""

    def __init__(self, response: dict):
        self.response = response
        detail = response.get("error", "request failed")
        if response.get("errors"):
            detail += ": " + "; ".join(
                f"{e.get('field')}: {e.get('error')}"
                for e in response["errors"])
        super().__init__(detail)


class Client:
    """Synchronous client; safe for single-threaded use only."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9321,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------------------

    def _send(self, req: dict) -> None:
        self._file.write(json.dumps(req).encode() + b"\n")
        self._file.flush()

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, req: dict) -> dict:
        """One round trip; raises :class:`ServiceError` on ok=false."""
        self._send(req)
        response = self._recv()
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    # -- operations ----------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def schemas(self) -> dict:
        return self.request({"op": "schemas"})["apps"]

    def submit(self, job: dict) -> str:
        """Submit one job dict; returns its job_id.  Validation
        failures raise :class:`ServiceError` whose ``response["errors"]``
        lists every ``{"field", "error"}`` problem."""
        return self.request({"op": "submit", "job": job})["job_id"]

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job_id": job_id})

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> dict:
        """Block until the job is terminal; check ``["state"]`` for the
        outcome (done/failed/cancelled).  Raises only on timeout or an
        unknown job_id."""
        old = self._sock.gettimeout()
        if timeout is not None:
            # give the socket headroom beyond the server-side timeout
            self._sock.settimeout(timeout + 10.0)
        else:
            self._sock.settimeout(None)
        try:
            return self.request({"op": "result", "job_id": job_id,
                                 "timeout": timeout})
        finally:
            self._sock.settimeout(old)

    def watch(self, job_id: str) -> Iterator[dict]:
        """Yield streamed events until the job reaches a terminal
        state (the terminal event is yielded last)."""
        self._send({"op": "watch", "job_id": job_id})
        head = self._recv()
        if not head.get("ok", False):
            if head.get("event"):     # already terminal: single event
                yield head
                return
            raise ServiceError(head)
        old = self._sock.gettimeout()
        self._sock.settimeout(None)
        try:
            while True:
                event = self._recv()
                yield event
                if event.get("event") in ("done", "failed",
                                          "cancelled"):
                    return
        finally:
            self._sock.settimeout(old)

    def cancel(self, job_id: str) -> dict:
        return self.request({"op": "cancel", "job_id": job_id})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def kill_worker(self, worker_id: Optional[int] = None,
                    job_id: Optional[str] = None) -> int:
        """Fault injection: hard-kill a (busy) worker process."""
        req = {"op": "kill-worker"}
        if worker_id is not None:
            req["worker_id"] = worker_id
        if job_id is not None:
            req["job_id"] = job_id
        return self.request(req)["killed"]

    def resize(self, n_workers: int) -> int:
        return self.request({"op": "resize",
                             "n_workers": n_workers})["target_size"]

    def shutdown(self) -> None:
        try:
            self.request({"op": "shutdown"})
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
