"""PIC-as-a-service: a multi-tenant async job runtime over a shared
warm pool of simulation worker processes.

The pieces, bottom-up:

* :mod:`repro.service.jobs` — job JSON validation (per-app schemas,
  structured errors), app adapters, checkpoint payloads;
* :mod:`repro.service.scheduler` — fair-share priority scheduling with
  aging and preemption decisions (pure, clock-injected);
* :mod:`repro.service.pool` — the warm worker pool: persistent
  processes reusing kernel-translation and mesh/stiffness caches
  across jobs, speaking the :mod:`repro.dist.proc` frame codec;
* :mod:`repro.service.server` — the asyncio NDJSON TCP server tying
  them together, with checkpointed preemption/migration and
  rank-failure recovery;
* :mod:`repro.service.client` — the blocking client
  (:class:`~repro.service.client.Client`).

Start one from the command line with ``python -m repro serve``.
"""
from .client import Client, ServiceError
from .jobs import (JobSpec, JobValidationError, describe_schemas,
                   validate_job)
from .pool import WarmPool
from .scheduler import FairShareScheduler, QueuedJob
from .server import ServerThread, ServiceServer, start_server_thread

__all__ = ["Client", "ServiceError", "JobSpec", "JobValidationError",
           "validate_job", "describe_schemas", "WarmPool",
           "FairShareScheduler", "QueuedJob", "ServiceServer",
           "ServerThread", "start_server_thread"]
