"""Warm worker pool: persistent simulation processes behind pipes.

This is what makes the service a *service* rather than a script runner:
worker processes are spawned once and reused across jobs, so the
per-job cost of process spawn, module import, kernel translation and
mesh/stiffness construction (via :mod:`repro.runtime.objcache`, enabled
inside every worker) is paid once per worker instead of once per job.

Frames reuse the :mod:`repro.dist.proc` wire codec — same header, same
numpy/pickle body encoding — with a disjoint kind range (32+), so a
service frame can never be mistaken for an SPMD rank frame.  Each
worker runs **one job at a time**; between steps it polls its pipe for
control frames, which is what makes preemption, cancellation and
fault-injection (``PK_DIE``) responsive without threads in the worker.

Worker death (crash, kill-worker op, injected ``die_at_step``) surfaces
as a clean EOF on the parent end, which :meth:`WarmPool.drain` turns
into a synthetic ``PK_DOWN`` event; the server rescues the running job
from its last streamed checkpoint and :meth:`WarmPool.ensure_target`
respawns a replacement.  Workers are spawned strictly one at a time
(pipe → fork → close child end) so no sibling ever inherits another
worker's child pipe end — the EOF arrives the moment the worker dies.
"""
from __future__ import annotations

import itertools
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import multiprocessing as mp

from ..dist.proc import (DEFAULT_MAX_FRAME, _HEADER, FrameError,
                         decode_frame, encode_frame, reap_procs)
from .jobs import JobSpec, build_sim, job_checkpoint, job_restore, step_once

__all__ = ["WarmPool", "WorkerHandle", "PoolEvent", "PK_RUN",
           "PK_PREEMPT", "PK_SHUTDOWN", "PK_DIE", "PK_CANCEL", "PK_UP",
           "PK_DIAG", "PK_CKPT", "PK_YIELD", "PK_DONE", "PK_FAIL",
           "PK_DOWN", "KIND_NAMES"]

# parent -> worker
PK_RUN = 32       # start (or resume) a job; body = {job_id, spec, checkpoint}
PK_PREEMPT = 33   # checkpoint the running job and yield it back
PK_SHUTDOWN = 34  # finish up and exit cleanly
PK_DIE = 35       # fault injection: hard-exit immediately, no goodbye
PK_CANCEL = 36    # abandon the running job

# worker -> parent
PK_UP = 40        # worker process is ready; body = {pid}
PK_DIAG = 41      # streamed diagnostics; body = {job_id, step, metrics}
PK_CKPT = 42      # streamed resume point; body = {job_id, step, checkpoint}
PK_YIELD = 43     # job preempted/cancelled; body = {job_id, reason, ...}
PK_DONE = 44      # job finished; body = {job_id, steps, history, ...}
PK_FAIL = 45      # job raised; body = {job_id, error, traceback}

#: synthetic event (never on the wire): worker's pipe hit EOF
PK_DOWN = 46

KIND_NAMES = {PK_RUN: "run", PK_PREEMPT: "preempt",
              PK_SHUTDOWN: "shutdown", PK_DIE: "die",
              PK_CANCEL: "cancel", PK_UP: "up", PK_DIAG: "diag",
              PK_CKPT: "ckpt", PK_YIELD: "yield", PK_DONE: "done",
              PK_FAIL: "fail", PK_DOWN: "down"}

_EXIT_INJECTED = 17   # die_at_step fired
_EXIT_KILLED = 13     # PK_DIE received


# -- worker process ----------------------------------------------------------------


class _Preempted(Exception):
    def __init__(self, reason: str):
        self.reason = reason


class _ExitWorker(Exception):
    pass


def _send(conn, kind: int, worker_id: int, tag: int, payload,
          max_frame_bytes: int = DEFAULT_MAX_FRAME) -> None:
    conn.send_bytes(encode_frame(kind, worker_id, -1, tag, payload,
                                 max_frame_bytes))


def _close_backend(sim) -> None:
    backend = getattr(getattr(sim, "ctx", None), "backend", None)
    close = getattr(backend, "close", None)
    if close is not None:
        close()


def _check_control(conn, worker_id: int, tag: int) -> None:
    """Between-steps control poll; raises to unwind the step loop."""
    while conn.poll(0):
        kind, _, _, _, _ = decode_frame(
            conn.recv_bytes(maxlength=DEFAULT_MAX_FRAME))
        if kind == PK_DIE:
            os._exit(_EXIT_KILLED)
        if kind == PK_PREEMPT:
            raise _Preempted("preempted")
        if kind == PK_CANCEL:
            raise _Preempted("cancelled")
        if kind == PK_SHUTDOWN:
            raise _ExitWorker


def _run_job(conn, worker_id: int, tag: int, payload: dict) -> None:
    from ..runtime import objcache

    job_id = payload["job_id"]
    spec: JobSpec = payload["spec"]
    ckpt = payload.get("checkpoint")
    sim = None
    try:
        t0 = time.perf_counter()
        if ckpt is not None:
            sim, history, start = job_restore(spec, ckpt)
        else:
            sim, history = build_sim(spec)
            start = 0
        n_steps = spec.n_steps
        step = start
        try:
            while step < n_steps:
                _check_control(conn, worker_id, tag)
                if spec.die_at_step is not None \
                        and step == spec.die_at_step:
                    os._exit(_EXIT_INJECTED)
                step_once(spec, sim, history)
                step += 1
                if spec.diag_every and step % spec.diag_every == 0:
                    _send(conn, PK_DIAG, worker_id, tag,
                          {"job_id": job_id, "step": step,
                           "metrics": {k: v[-1] for k, v in
                                       history.items() if v}})
                if spec.checkpoint_every and step < n_steps \
                        and step % spec.checkpoint_every == 0:
                    _send(conn, PK_CKPT, worker_id, tag,
                          {"job_id": job_id, "step": step,
                           "checkpoint": job_checkpoint(
                               spec, sim, history, step)})
        except _Preempted as p:
            out = {"job_id": job_id, "reason": p.reason, "step": step,
                   "checkpoint": None, "history": None}
            if p.reason == "preempted":
                out["checkpoint"] = job_checkpoint(spec, sim, history,
                                                   step)
            _send(conn, PK_YIELD, worker_id, tag, out)
            return
        _send(conn, PK_DONE, worker_id, tag,
              {"job_id": job_id, "steps": step,
               "resumed_from": start if ckpt is not None else None,
               "history": history,
               "elapsed": time.perf_counter() - t0,
               "cache": objcache.stats()})
    except _ExitWorker:
        raise
    except BaseException as exc:  # noqa: BLE001 - shipped to the server
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        try:
            _send(conn, PK_FAIL, worker_id, tag,
                  {"job_id": job_id, "error": repr(exc),
                   "traceback": traceback.format_exc()})
        except Exception:
            pass
    finally:
        if sim is not None:
            _close_backend(sim)


def _worker_main(worker_id: int, conn) -> None:
    """Persistent worker: serve PK_RUN frames until told to exit."""
    from ..runtime import objcache
    objcache.enable()
    try:
        _send(conn, PK_UP, worker_id, 0, {"pid": os.getpid()})
        while True:
            try:
                blob = conn.recv_bytes(maxlength=DEFAULT_MAX_FRAME)
            except (EOFError, OSError):
                break
            kind, _, _, tag, payload = decode_frame(blob)
            if kind == PK_SHUTDOWN:
                break
            if kind == PK_DIE:
                os._exit(_EXIT_KILLED)
            if kind == PK_RUN:
                try:
                    _run_job(conn, worker_id, tag, payload)
                except _ExitWorker:
                    break
            # stray preempt/cancel for a job that already ended: ignore
    finally:
        objcache.disable()
        try:
            conn.close()
        except OSError:
            pass
    os._exit(0)


# -- parent-side pool --------------------------------------------------------------


@dataclass
class PoolEvent:
    """One decoded worker frame (or a synthetic ``PK_DOWN``)."""

    kind: int
    worker_id: int
    tag: int
    payload: object

    @property
    def name(self) -> str:
        return KIND_NAMES.get(self.kind, str(self.kind))


@dataclass
class WorkerHandle:
    worker_id: int
    proc: object
    conn: object
    state: str = "starting"      # starting | idle | busy | draining | dead
    job_id: Optional[str] = None
    tag: int = 0
    jobs_done: int = 0
    spawned_at: float = field(default_factory=time.monotonic)


class WarmPool:
    """Spawns, feeds, drains, respawns and reaps worker processes.

    Synchronous and event-loop-agnostic: the server wires each handle's
    ``conn.fileno()`` into asyncio with ``loop.add_reader`` and calls
    :meth:`drain` when it fires; tests drive it directly with blocking
    polls.
    """

    def __init__(self, n_workers: int = 2,
                 start_method: Optional[str] = None,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.target_size = int(n_workers)
        self.max_frame_bytes = int(max_frame_bytes)
        if start_method is None:
            start_method = ("fork" if "fork"
                            in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(start_method)
        self._ids = itertools.count()
        self.workers: Dict[int, WorkerHandle] = {}
        self._dead_procs: List[object] = []
        self.respawns = 0

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> List[WorkerHandle]:
        return [self._spawn() for _ in range(self.target_size)]

    def _spawn(self) -> WorkerHandle:
        wid = next(self._ids)
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_worker_main,
                                 args=(wid, child_end),
                                 name=f"pic-worker-{wid}")
        proc.start()
        child_end.close()
        handle = WorkerHandle(wid, proc, parent_end)
        self.workers[wid] = handle
        return handle

    def live_workers(self) -> List[WorkerHandle]:
        return [h for h in self.workers.values() if h.state != "dead"]

    def idle_workers(self) -> List[WorkerHandle]:
        return [h for h in self.workers.values() if h.state == "idle"]

    def busy_workers(self) -> List[WorkerHandle]:
        return [h for h in self.workers.values() if h.state == "busy"]

    def ensure_target(self) -> List[WorkerHandle]:
        """Respawn/grow back to ``target_size``; returns new handles so
        the server can register their pipe fds."""
        fresh = []
        while len(self.live_workers()) < self.target_size:
            fresh.append(self._spawn())
        # every ensure_target spawn is a replacement or a growth step;
        # the initial batch goes through start() and is not counted
        self.respawns += len(fresh)
        return fresh

    def resize(self, n_workers: int) -> List[WorkerHandle]:
        """Grow immediately; shrink by retiring idle workers first and
        draining busy ones as their jobs finish."""
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.target_size = int(n_workers)
        excess = len(self.live_workers()) - self.target_size
        for handle in self.idle_workers():
            if excess <= 0:
                break
            self.retire(handle.worker_id)
            excess -= 1
        for handle in self.busy_workers():
            if excess <= 0:
                break
            handle.state = "draining"
            excess -= 1
        return self.ensure_target()

    # -- sending -------------------------------------------------------------------

    def _post(self, handle: WorkerHandle, kind: int, tag: int,
              payload) -> bool:
        try:
            handle.conn.send_bytes(
                encode_frame(kind, -1, handle.worker_id, tag, payload,
                             self.max_frame_bytes))
            return True
        except (BrokenPipeError, OSError):
            return False

    def assign(self, worker_id: int, job_id: str, spec: JobSpec,
               checkpoint: Optional[dict], tag: int) -> bool:
        handle = self.workers[worker_id]
        if handle.state not in ("idle",):
            raise RuntimeError(f"worker {worker_id} is {handle.state}, "
                               "cannot assign")
        ok = self._post(handle, PK_RUN, tag,
                        {"job_id": job_id, "spec": spec,
                         "checkpoint": checkpoint})
        if ok:
            handle.state = "busy"
            handle.job_id = job_id
            handle.tag = tag
        return ok

    def preempt(self, worker_id: int) -> bool:
        handle = self.workers[worker_id]
        return self._post(handle, PK_PREEMPT, handle.tag, None)

    def cancel(self, worker_id: int) -> bool:
        handle = self.workers[worker_id]
        return self._post(handle, PK_CANCEL, handle.tag, None)

    def kill_worker(self, worker_id: int) -> bool:
        """Fault injection: the worker hard-exits without a goodbye."""
        handle = self.workers[worker_id]
        return self._post(handle, PK_DIE, handle.tag, None)

    def retire(self, worker_id: int) -> None:
        """Graceful single-worker shutdown (used by shrink)."""
        handle = self.workers[worker_id]
        self._post(handle, PK_SHUTDOWN, 0, None)
        handle.state = "dead"
        self._forget(handle)

    # -- receiving -----------------------------------------------------------------

    def drain(self, worker_id: int) -> List[PoolEvent]:
        """Decode every frame currently readable on one worker's pipe.
        EOF (worker died) yields a final synthetic ``PK_DOWN`` event."""
        handle = self.workers.get(worker_id)
        if handle is None or handle.state == "dead":
            return []
        events: List[PoolEvent] = []
        while True:
            try:
                if not handle.conn.poll(0):
                    break
                blob = handle.conn.recv_bytes(
                    maxlength=self.max_frame_bytes + _HEADER.size + 64)
            except (EOFError, OSError):
                events.append(PoolEvent(PK_DOWN, worker_id, handle.tag,
                                        {"job_id": handle.job_id}))
                handle.state = "dead"
                self._forget(handle)
                return events
            try:
                kind, _, _, tag, payload = decode_frame(blob)
            except FrameError as exc:  # pragma: no cover - defensive
                events.append(PoolEvent(PK_DOWN, worker_id, handle.tag,
                                        {"job_id": handle.job_id,
                                         "error": str(exc)}))
                handle.state = "dead"
                self._forget(handle)
                return events
            if kind == PK_UP and handle.state == "starting":
                handle.state = "idle"
            elif kind in (PK_DONE, PK_FAIL, PK_YIELD):
                handle.jobs_done += kind == PK_DONE
                handle.job_id = None
                if handle.state == "draining":
                    self.retire(worker_id)
                else:
                    handle.state = "idle"
            events.append(PoolEvent(kind, worker_id, tag, payload))
        return events

    def wait_event(self, timeout: float = 30.0) -> List[PoolEvent]:
        """Blocking drain across all workers (test/bench convenience —
        the server uses asyncio readers instead)."""
        from multiprocessing import connection as mpc
        conns = {id(h.conn): h.worker_id
                 for h in self.workers.values() if h.state != "dead"}
        if not conns:
            return []
        ready = mpc.wait([h.conn for h in self.workers.values()
                          if h.state != "dead"], timeout=timeout)
        events: List[PoolEvent] = []
        for conn in ready:
            events.extend(self.drain(conns[id(conn)]))
        return events

    def _forget(self, handle: WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        self._dead_procs.append(handle.proc)
        self.workers.pop(handle.worker_id, None)

    # -- teardown ------------------------------------------------------------------

    def reap_dead(self) -> None:
        """Join processes of retired/crashed workers (cheap, call
        whenever a worker went away)."""
        if self._dead_procs:
            reap_procs(self._dead_procs, join_timeout=2.0)
            self._dead_procs = []

    def shutdown(self) -> None:
        """Stop every worker and deterministically reap all processes."""
        procs = []
        for handle in list(self.workers.values()):
            self._post(handle, PK_SHUTDOWN, 0, None)
            try:
                handle.conn.close()
            except OSError:
                pass
            procs.append(handle.proc)
        self.workers.clear()
        reap_procs(procs + self._dead_procs)
        self._dead_procs = []

    def stats(self) -> dict:
        states = {}
        for handle in self.workers.values():
            states[handle.state] = states.get(handle.state, 0) + 1
        return {"target_size": self.target_size,
                "workers": {str(h.worker_id): h.state
                            for h in self.workers.values()},
                "states": states,
                "respawns": self.respawns,
                "jobs_done": sum(h.jobs_done
                                 for h in self.workers.values())}
