"""Job specifications: JSON validation, app adapters, checkpoints.

A service job arrives as one JSON object::

    {"app": "advec",
     "params": {"nx": 12, "ny": 12, "ppc": 2, "n_steps": 20},
     "priority": 5,            # 0..10, higher is more urgent
     "tenant": "alice",        # fair-share accounting bucket
     "diag_every": 2,          # stream a diagnostics event every N steps
     "checkpoint_every": 4,    # ship a resume checkpoint every N steps
     "preemptible": true}

Validation is schema-driven and *structured*: every problem becomes a
``{"field": ..., "error": ...}`` record and all of them come back at
once (:class:`JobValidationError`), so clients can fix a whole payload
in one round trip.  Each app's parameter schema is derived from its
config dataclass — a field is accepted iff it exists on the config,
carries a JSON-simple type, and is not on the app's blocked list
(mesh/file paths, nested option dicts, RNG-bearing physics the resume
path cannot replay).

The adapter table also gives the pool worker a uniform execution
surface — ``build`` / ``step`` / ``history`` — plus the checkpoint
payload used for preemption, migration and rank-failure recovery:
:func:`job_checkpoint` captures the full restartable state (DSL dats,
particle maps, RNG, scalar carries, history-so-far) and
:func:`job_restore` rebuilds a simulation mid-trajectory, bit-exactly.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..util.checkpoint import CHECKPOINT_FORMAT, restore_state, state_payload

__all__ = ["JobSpec", "JobValidationError", "validate_job", "build_sim",
           "step_once", "run_steps", "job_checkpoint", "job_restore",
           "describe_schemas", "APPS", "SERVICE_BACKENDS",
           "MAX_PRIORITY"]

#: on-node backends a tenant may request (accelerator names are declared
#: in the DSL but not servable on a shared CPU pool)
SERVICE_BACKENDS = ("seq", "vec", "omp", "mp")

MAX_PRIORITY = 10

#: service-tier resource caps — one tenant's job cannot monopolise a
#: shared worker for unbounded time or memory
MAX_STEPS = 100_000
MAX_CELLS = 500_000
MAX_PARTICLES = 5_000_000


class JobValidationError(ValueError):
    """A job payload failed schema validation.

    ``errors`` is a list of ``{"field", "error"}`` dicts — every
    problem found, not just the first.
    """

    def __init__(self, errors):
        self.errors = list(errors)
        super().__init__("; ".join(f"{e['field']}: {e['error']}"
                                   for e in self.errors))


@dataclass
class AppAdapter:
    """How the pool worker drives one application end to end."""

    name: str
    #: build a simulation object from validated params
    build: Callable[[dict], object]
    #: dataclass whose fields define the accepted parameter schema
    config_cls: type
    #: params accepted on top of (or instead of) config fields
    extra_params: Dict[str, type] = field(default_factory=dict)
    #: config fields tenants may not set (paths, nested dicts, physics
    #: with un-checkpointable runtime state)
    blocked: Tuple[str, ...] = ()
    #: scalar attributes beyond rng/step_count the checkpoint must carry
    extras: Tuple[str, ...] = ()
    #: whether checkpoints capture the full trajectory (preemption and
    #: kill-recovery are only offered for these apps)
    checkpointable: bool = True
    #: estimated cell/particle counts for the resource caps
    cost: Optional[Callable[[dict], Tuple[int, int]]] = None
    #: per-step diagnostics recorder for apps without a native history
    record: Optional[Callable[[object, object], dict]] = None


def _build_advec(params: dict):
    from ..apps.advec import AdvecConfig, AdvecSimulation
    return AdvecSimulation(AdvecConfig(**params))


def _record_advec(sim, res) -> dict:
    n = sim.parts.size
    return {"mean_disp": float(np.abs(sim.disp.data[:n]).mean()),
            "hops": int(res.total_hops),
            "n_particles": int(n)}


def _build_fempic(params: dict):
    from ..apps.fempic import FemPicConfig, FemPicSimulation
    return FemPicSimulation(FemPicConfig(**params))


def _build_cabana(params: dict):
    from ..apps.cabana import CabanaConfig, CabanaSimulation
    return CabanaSimulation(CabanaConfig(**params))


def _build_twod(params: dict):
    from ..apps.twod import TwoDConfig, TwoDSheetModel
    return TwoDSheetModel(TwoDConfig(**params))


def _build_landau(params: dict):
    from ..apps.landau import ElectrostaticSimulation, landau_config
    factory_keys = ("k_lambda_d", "ppc", "dt", "perturbation")
    factory = {k: params[k] for k in factory_keys if k in params}
    overrides = {k: v for k, v in params.items()
                 if k not in factory_keys}
    return ElectrostaticSimulation(landau_config(**factory, **overrides))


def _cost_advec(p: dict):
    from ..apps.advec import AdvecConfig
    cfg = AdvecConfig(**p)
    return cfg.n_cells, cfg.n_particles


def _cost_fempic(p: dict):
    from ..apps.fempic import FemPicConfig
    cfg = FemPicConfig(**p)
    # steady state holds roughly rate × transit steps particles
    transit = cfg.lz / (cfg.injection_velocity * cfg.dt)
    return cfg.n_cells, int(cfg.injection_rate * transit) + 1


def _cost_cabana(p: dict):
    from ..apps.cabana import CabanaConfig
    cfg = CabanaConfig(**p)
    return cfg.n_cells, cfg.n_particles


def _cost_twod(p: dict):
    from ..apps.twod import TwoDConfig
    cfg = TwoDConfig(**p)
    return cfg.n_cells, cfg.n_particles


def _cost_landau(p: dict):
    nz = int(p.get("nz", 64))
    return nz, nz * int(p.get("ppc", 300))


def _adapters() -> Dict[str, AppAdapter]:
    from ..apps.advec import AdvecConfig
    from ..apps.cabana import CabanaConfig
    from ..apps.fempic import FemPicConfig
    from ..apps.landau import LandauConfig
    from ..apps.twod import TwoDConfig
    return {
        "advec": AppAdapter(
            "advec", _build_advec, AdvecConfig,
            blocked=("backend_options",), cost=_cost_advec,
            record=_record_advec),
        "fempic": AppAdapter(
            "fempic", _build_fempic, FemPicConfig,
            blocked=("backend_options", "mesh_file",
                     "collision_frequency"),
            extras=("_inject_carry",), cost=_cost_fempic),
        "cabana": AppAdapter(
            "cabana", _build_cabana, CabanaConfig,
            blocked=("backend_options",), cost=_cost_cabana),
        "twod": AppAdapter(
            "twod", _build_twod, TwoDConfig,
            blocked=("backend_options",), cost=_cost_twod),
        "landau": AppAdapter(
            "landau", _build_landau, LandauConfig,
            # species dats live on nested _Species objects the generic
            # state discovery cannot see; landau jobs are short, so they
            # rerun from scratch instead of resuming
            blocked=("backend_options", "species", "diagnostic_mode",
                     "lz"),
            extra_params={"k_lambda_d": float, "ppc": int},
            checkpointable=False, cost=_cost_landau),
    }


_APPS: Optional[Dict[str, AppAdapter]] = None


def APPS() -> Dict[str, AppAdapter]:
    """The adapter registry (lazy: app imports are deferred)."""
    global _APPS
    if _APPS is None:
        _APPS = _adapters()
    return _APPS


@dataclass
class JobSpec:
    """A validated, normalised job."""

    app: str
    params: dict
    priority: int = 5
    tenant: str = "default"
    diag_every: int = 0
    checkpoint_every: int = 0
    preemptible: bool = True
    #: fault injection for tests/benchmarks: the worker process hard
    #: -exits when it *first* reaches this step (ignored on resume, so
    #: the injected death fires exactly once)
    die_at_step: Optional[int] = None

    @property
    def n_steps(self) -> int:
        return int(self.params.get("n_steps",
                                   self.adapter.config_cls().n_steps))

    @property
    def adapter(self) -> AppAdapter:
        return APPS()[self.app]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


_JSON_TYPES = {int: "integer", float: "number", str: "string",
               bool: "boolean"}


def _schema_for(adapter: AppAdapter) -> Dict[str, type]:
    """Accepted parameter name → python type for one app."""
    schema: Dict[str, type] = {}
    for f in dataclasses.fields(adapter.config_cls):
        if f.name in adapter.blocked:
            continue
        default = (f.default if f.default is not dataclasses.MISSING
                   else None)
        for t in (bool, int, float, str):   # bool first: bool < int
            if isinstance(default, t):
                schema[f.name] = t
                break
    schema.update(adapter.extra_params)
    return schema


def describe_schemas() -> dict:
    """Machine-readable per-app schema (served to clients)."""
    out = {}
    for name, adapter in sorted(APPS().items()):
        out[name] = {
            "params": {k: _JSON_TYPES[t]
                       for k, t in sorted(_schema_for(adapter).items())},
            "checkpointable": adapter.checkpointable,
        }
    return out


def _coerce(value, want: type):
    """JSON-friendly coercion: ints are acceptable floats; everything
    else must match exactly (no truthy strings, no bool-as-int)."""
    if want is float and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    if want is int and isinstance(value, bool):
        return None
    return value if isinstance(value, want) else None


def validate_job(raw) -> JobSpec:
    """Validate one submitted job payload; raises
    :class:`JobValidationError` carrying *every* problem found."""
    errors = []
    if not isinstance(raw, dict):
        raise JobValidationError(
            [{"field": "", "error": "job must be a JSON object"}])
    known = {"app", "params", "priority", "tenant", "diag_every",
             "checkpoint_every", "preemptible", "die_at_step"}
    for key in sorted(set(raw) - known):
        errors.append({"field": key, "error": "unknown job field"})

    app = raw.get("app")
    adapter = None
    if not isinstance(app, str) or app not in APPS():
        errors.append({"field": "app",
                       "error": f"unknown app {app!r}; expected one of "
                                f"{sorted(APPS())}"})
    else:
        adapter = APPS()[app]

    params = raw.get("params", {})
    if not isinstance(params, dict):
        errors.append({"field": "params",
                       "error": "params must be a JSON object"})
        params = {}
    clean: dict = {}
    if adapter is not None:
        schema = _schema_for(adapter)
        for key in sorted(params):
            value = params[key]
            if key not in schema:
                why = ("not servable (blocked for multi-tenant jobs)"
                       if key in adapter.blocked else "unknown parameter")
                errors.append({"field": f"params.{key}", "error": why})
                continue
            got = _coerce(value, schema[key])
            if got is None:
                errors.append(
                    {"field": f"params.{key}",
                     "error": f"expected {_JSON_TYPES[schema[key]]}, "
                              f"got {type(value).__name__}"})
                continue
            clean[key] = got
        backend = clean.get("backend")
        if backend is not None and backend not in SERVICE_BACKENDS:
            errors.append({"field": "params.backend",
                           "error": f"backend {backend!r} not servable; "
                                    f"use one of {SERVICE_BACKENDS}"})
        n_steps = clean.get("n_steps")
        if n_steps is not None and not 1 <= n_steps <= MAX_STEPS:
            errors.append({"field": "params.n_steps",
                           "error": f"must be in [1, {MAX_STEPS}]"})
        if not errors and adapter.cost is not None:
            try:
                n_cells, n_parts = adapter.cost(clean)
            except Exception as exc:
                errors.append({"field": "params",
                               "error": f"unbuildable config: {exc}"})
            else:
                if n_cells > MAX_CELLS:
                    errors.append(
                        {"field": "params",
                         "error": f"{n_cells} cells exceeds the service "
                                  f"cap of {MAX_CELLS}"})
                if n_parts > MAX_PARTICLES:
                    errors.append(
                        {"field": "params",
                         "error": f"~{n_parts} particles exceeds the "
                                  f"service cap of {MAX_PARTICLES}"})

    priority = raw.get("priority", 5)
    if not isinstance(priority, int) or isinstance(priority, bool) \
            or not 0 <= priority <= MAX_PRIORITY:
        errors.append({"field": "priority",
                       "error": f"must be an integer in "
                                f"[0, {MAX_PRIORITY}]"})
        priority = 5
    tenant = raw.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        errors.append({"field": "tenant",
                       "error": "must be a non-empty string"})
        tenant = "default"
    intervals = {}
    for key in ("diag_every", "checkpoint_every"):
        v = raw.get(key, 0)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append({"field": key,
                           "error": "must be a non-negative integer"})
            v = 0
        intervals[key] = v
    preemptible = raw.get("preemptible", True)
    if not isinstance(preemptible, bool):
        errors.append({"field": "preemptible", "error": "must be a bool"})
        preemptible = True
    die_at = raw.get("die_at_step")
    if die_at is not None and (not isinstance(die_at, int)
                               or isinstance(die_at, bool) or die_at < 0):
        errors.append({"field": "die_at_step",
                       "error": "must be a non-negative integer or null"})
        die_at = None
    if adapter is not None and not adapter.checkpointable \
            and intervals["checkpoint_every"]:
        errors.append({"field": "checkpoint_every",
                       "error": f"app {app!r} does not support "
                                "checkpointed resume"})
    if errors:
        raise JobValidationError(errors)
    return JobSpec(app=app, params=clean, priority=priority,
                   tenant=tenant, preemptible=preemptible,
                   die_at_step=die_at, **intervals)


# -- execution surface (used inside the pool worker) -------------------------------


def build_sim(spec: JobSpec):
    """Build a fresh simulation plus its (possibly synthesised) history."""
    adapter = spec.adapter
    sim = adapter.build(dict(spec.params))
    history = getattr(sim, "history", None)
    if history is None:
        history = {}
    return sim, history


def step_once(spec: JobSpec, sim, history) -> None:
    """Advance one step, recording diagnostics for history-less apps."""
    adapter = spec.adapter
    res = sim.step()
    if adapter.record is not None:
        for key, value in adapter.record(sim, res).items():
            history.setdefault(key, []).append(value)


def run_steps(spec: JobSpec, sim, history, start: int, stop: int) -> None:
    for _ in range(start, stop):
        step_once(spec, sim, history)


# -- checkpoint payloads (preemption / migration / recovery) -----------------------


def job_checkpoint(spec: JobSpec, sim, history, step: int) -> dict:
    """Full restartable state of a running job as one picklable dict."""
    if not spec.adapter.checkpointable:
        raise ValueError(f"app {spec.app!r} is not checkpointable")
    rng = getattr(sim, "rng", None)
    return {
        "format": CHECKPOINT_FORMAT,
        "app": spec.app,
        "step": int(step),
        "state": state_payload(sim),
        "rng": None if rng is None else rng.bit_generator.state,
        "extras": {name: getattr(sim, name)
                   for name in spec.adapter.extras},
        "history": {k: list(v) for k, v in history.items()},
    }


def job_restore(spec: JobSpec, ckpt: dict):
    """Rebuild a simulation mid-trajectory from :func:`job_checkpoint`.

    Returns ``(sim, history, start_step)``; continuing the step loop
    from ``start_step`` reproduces the uninterrupted trajectory
    bit-for-bit.
    """
    if ckpt.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"unsupported checkpoint format "
                         f"{ckpt.get('format')!r}")
    if ckpt.get("app") != spec.app:
        raise ValueError(f"checkpoint is for app {ckpt.get('app')!r}, "
                         f"job is {spec.app!r}")
    sim, history = build_sim(spec)
    restore_state(sim, ckpt["state"], source="service checkpoint")
    if ckpt["rng"] is not None:
        sim.rng.bit_generator.state = ckpt["rng"]
    for name, value in ckpt["extras"].items():
        setattr(sim, name, value)
    step = int(ckpt["step"])
    if hasattr(sim, "step_count"):
        sim.step_count = step
    restored = {k: list(v) for k, v in ckpt["history"].items()}
    native = getattr(sim, "history", None)
    if native is not None:
        sim.history = restored
    return sim, restored, step
