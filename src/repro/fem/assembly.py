"""P1 finite-element assembly on tetrahedral meshes.

Mini-FEM-PIC solves a nonlinear Poisson problem for the plasma potential
(ions as particles, Boltzmann electrons)::

    -∇²φ = (ρ_ion - ρ0 · exp((φ - φ0)/kTe)) / ε0

with Dirichlet conditions on the duct inlet and wall.  Each Newton step
assembles a Jacobian (``ComputeJMatrix``) and residual
(``ComputeF1Vector``) and solves with a KSP-style CG
(:mod:`repro.fem.solver`).  The stiffness matrix is static (the mesh never
changes) and assembled once here.
"""
from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..mesh.geometry import p1_gradients

__all__ = ["build_stiffness", "lumped_node_volumes",
           "sorted_scatter_add", "DirichletSystem"]


def sorted_scatter_add(rows: np.ndarray, values: np.ndarray,
                       n_out: int) -> np.ndarray:
    """``out[rows] += values`` onto a fresh zero vector, bitwise-equal to
    ``np.add.at`` but without its scalar inner loop.

    A stable sort groups each output row's contributions while keeping
    their original left-to-right order; round ``k`` then adds every
    row's ``k``-th contribution with a plain (unique-index) fancy add.
    Each row thus accumulates in exactly ``np.add.at``'s order, so the
    result is bit-identical; the round count is the maximum row
    multiplicity (the node valence, for mesh assembly).

    ``np.add.reduceat`` would be the obvious one-shot alternative but is
    *not* bitwise-stable here: SIMD builds of NumPy reassociate segment
    sums depending on lane alignment.
    """
    out = np.zeros(n_out, dtype=np.result_type(values, np.float64))
    rows = np.asarray(rows)
    values = np.asarray(values)
    if rows.size == 0:
        return out
    order = np.argsort(rows, kind="stable")
    keys = rows[order]
    sorted_vals = values[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(keys)) + 1))
    lens = np.diff(np.append(starts, keys.size))
    seg_keys = keys[starts]
    for k in range(int(lens.max())):
        m = lens > k
        out[seg_keys[m]] += sorted_vals[starts[m] + k]
    return out


def build_stiffness(points: np.ndarray, cells: np.ndarray) -> sp.csr_matrix:
    """Assemble the P1 stiffness matrix ``K_ij = Σ_c V_c ∇λ_i·∇λ_j``."""
    grads, vols = p1_gradients(points, cells)
    ncells = cells.shape[0]
    # local 4x4 blocks, all cells at once
    local = np.einsum("cid,cjd->cij", grads, grads) * vols[:, None, None]
    rows = np.repeat(cells, 4, axis=1).reshape(ncells, 4, 4)
    cols = np.tile(cells[:, None, :], (1, 4, 1))
    k = sp.coo_matrix((local.ravel(), (rows.ravel(), cols.ravel())),
                      shape=(points.shape[0], points.shape[0]))
    return k.tocsr()


def lumped_node_volumes(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Lumped mass per node: a quarter of each adjacent tet's volume.

    Converts node charge (Coulombs) to node charge *density* and weights
    the Boltzmann-electron term in the Jacobian.
    """
    _, vols = p1_gradients(points, cells)
    return sorted_scatter_add(cells.ravel(), np.repeat(vols / 4.0, 4),
                              points.shape[0])


class DirichletSystem:
    """A linear system with Dirichlet rows eliminated.

    Fixes ``x[nodes_d] = values_d`` and solves the reduced system on the
    free nodes only — the standard strong-BC treatment, matching the
    mini-app's fixed inlet/wall potentials.
    """

    def __init__(self, k: sp.csr_matrix, dirichlet_nodes: Sequence[int],
                 dirichlet_values: np.ndarray):
        n = k.shape[0]
        dn = np.asarray(dirichlet_nodes, dtype=np.int64)
        if dn.size != np.unique(dn).size:
            raise ValueError("duplicate Dirichlet nodes")
        self.n = n
        self.dirichlet_nodes = dn
        self.dirichlet_values = np.asarray(dirichlet_values, dtype=np.float64)
        if self.dirichlet_values.shape != dn.shape:
            raise ValueError("one Dirichlet value per constrained node")
        free = np.ones(n, dtype=bool)
        free[dn] = False
        self.free = np.flatnonzero(free)
        self.k_full = k
        self.k_ff = k[self.free][:, self.free].tocsr()
        self.k_fd = k[self.free][:, dn].tocsr()

    def full_vector(self, x_free: np.ndarray) -> np.ndarray:
        out = np.empty(self.n)
        out[self.free] = x_free
        out[self.dirichlet_nodes] = self.dirichlet_values
        return out

    def reduce_rhs(self, b: np.ndarray) -> np.ndarray:
        """RHS on free nodes, with the Dirichlet coupling moved over."""
        return b[self.free] - self.k_fd @ self.dirichlet_values

    def residual(self, x_full: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Free-node residual ``(K x - b)|_free`` of the full system."""
        return (self.k_full @ x_full - b)[self.free]


def element_dofs(cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row/col index arrays for scattering 4x4 element blocks (test aid)."""
    ncells = cells.shape[0]
    rows = np.repeat(cells, 4, axis=1).reshape(ncells, 4, 4)
    cols = np.tile(cells[:, None, :], (1, 4, 1))
    return rows, cols
