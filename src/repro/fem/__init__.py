"""FEM substrate: P1 assembly and KSP-style solvers (PETSc substitute)."""
from .assembly import DirichletSystem, build_stiffness, \
    lumped_node_volumes, sorted_scatter_add
from .solver import KSPResult, KSPSolver, jacobi_preconditioner, \
    ssor_preconditioner

__all__ = ["DirichletSystem", "build_stiffness", "lumped_node_volumes",
           "sorted_scatter_add", "KSPSolver", "KSPResult",
           "jacobi_preconditioner", "ssor_preconditioner"]
