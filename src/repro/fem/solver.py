"""KSP-style linear solver (the PETSc substitute).

Mini-FEM-PIC hands its assembled Jacobian to a PETSc KSP solve; this
module provides the equivalent: a preconditioned conjugate-gradient Krylov
solver with Jacobi or incomplete-Cholesky-flavoured (symmetric
Gauss-Seidel) preconditioning, implemented from scratch on top of sparse
matvecs.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["KSPSolver", "KSPResult", "jacobi_preconditioner",
           "ssor_preconditioner"]


@dataclass
class KSPResult:
    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def jacobi_preconditioner(a: sp.csr_matrix) -> Callable[[np.ndarray],
                                                        np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``M⁻¹ r = r / diag(A)``."""
    d = a.diagonal()
    if (d == 0).any():
        raise ValueError("matrix has zero diagonal entries; Jacobi "
                         "preconditioning is undefined")
    inv = 1.0 / d
    return lambda r: inv * r


def ssor_preconditioner(a: sp.csr_matrix,
                        omega: float = 1.0) -> Callable[[np.ndarray],
                                                        np.ndarray]:
    """Symmetric SOR preconditioner — one forward + one backward sweep."""
    if not 0.0 < omega < 2.0:
        raise ValueError("SSOR relaxation must satisfy 0 < omega < 2")
    lower = sp.tril(a, k=0).tocsr()
    upper = sp.triu(a, k=0).tocsr()
    d = a.diagonal()

    def apply(r: np.ndarray) -> np.ndarray:
        y = sp.linalg.spsolve_triangular(lower, r, lower=True)
        y *= d
        return sp.linalg.spsolve_triangular(upper, y, lower=False)

    return apply


class KSPSolver:
    """Preconditioned CG with a KSP-like interface.

    Parameters
    ----------
    a:
        Symmetric positive-definite sparse matrix.
    pc:
        ``"jacobi"`` (default), ``"ssor"`` or ``"none"``.
    rtol, atol, max_it:
        Convergence controls (relative / absolute residual, iteration cap).
    """

    def __init__(self, a: sp.spmatrix, pc: str = "jacobi",
                 rtol: float = 1e-10, atol: float = 1e-50,
                 max_it: Optional[int] = None):
        self.a = a.tocsr()
        if self.a.shape[0] != self.a.shape[1]:
            raise ValueError("KSP operator must be square")
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_it = max_it or 10 * self.a.shape[0]
        if pc == "jacobi":
            self.pc = jacobi_preconditioner(self.a)
        elif pc == "ssor":
            self.pc = ssor_preconditioner(self.a)
        elif pc == "none":
            self.pc = lambda r: r
        else:
            raise ValueError(f"unknown preconditioner {pc!r}")

    def solve(self, b: np.ndarray,
              x0: Optional[np.ndarray] = None) -> KSPResult:
        a = self.a
        n = a.shape[0]
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"rhs has shape {b.shape}, expected ({n},)")
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
        r = b - a @ x
        z = self.pc(r)
        p = z.copy()
        rz = float(r @ z)
        b_norm = float(np.linalg.norm(b)) or 1.0
        it = 0
        res = float(np.linalg.norm(r))
        while res > max(self.rtol * b_norm, self.atol) and it < self.max_it:
            ap = a @ p
            pap = float(p @ ap)
            if pap <= 0.0:
                # matrix not SPD along p (round-off near convergence): stop
                break
            alpha = rz / pap
            x += alpha * p
            r -= alpha * ap
            res = float(np.linalg.norm(r))
            z = self.pc(r)
            rz_new = float(r @ z)
            p = z + (rz_new / rz) * p
            rz = rz_new
            it += 1
        return KSPResult(x=x, iterations=it, residual_norm=res,
                         converged=res <= max(self.rtol * b_norm, self.atol))
