"""Performance modelling: timers, machine models, rooflines, power."""
from .machine import CLUSTERS, MACHINES, ClusterModel, MachineModel, \
    comm_time, kernel_time
from .memory import MemoryReport, memory_report
from .power import PAPER_BUDGET, PowerBudget, power_equivalent_nodes
from .roofline import RooflinePoint, analyze, format_table, roofline_ceiling
from .timers import LoopStats, PerfRecorder
from .trace import TraceLog, attach_trace, export_chrome_trace
from .utilization import utilization

__all__ = ["LoopStats", "PerfRecorder", "TraceLog", "attach_trace",
           "MemoryReport", "memory_report",
           "export_chrome_trace", "MachineModel", "ClusterModel",
           "MACHINES", "CLUSTERS", "kernel_time", "comm_time",
           "RooflinePoint", "analyze", "format_table", "roofline_ceiling",
           "PowerBudget", "PAPER_BUDGET", "power_equivalent_nodes",
           "utilization"]
