"""Machine catalogue and analytical kernel-time model.

The paper evaluates on the systems of its Table 2 (plus H100/MI210 single
devices).  None of that hardware exists here, so — as DESIGN.md documents —
device comparisons are *derived* the way the paper derives its MI250X
numbers: measured per-kernel operation counters (FLOPs, bytes, collision
depths, hop counts) combined with published machine parameters.

Model per kernel execution::

    t = launch
      + max(bytes / BW_eff, flops / peak) · (1 + d·branches)   [d GPU only]
      + atomic_term

``BW_eff`` is the L3 bandwidth when the working set fits in L3 (CPUs),
else DRAM.  ``atomic_term = n_updates/atomic_rate · (1 + α·(collisions−1))``
captures atomic serialization: α is tiny on NVIDIA (hardware FP64 atomics),
tiny for AMD's unsafe RMW atomics, and large for AMD CAS atomics — which
reproduces the paper's ">200× slower" safe-atomics observation.
Communication: ``t = n_msgs·latency + bytes/net_bw``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .timers import LoopStats

__all__ = ["MachineModel", "MACHINES", "CLUSTERS", "ClusterModel",
           "kernel_time", "comm_time"]


@dataclass(frozen=True)
class MachineModel:
    """One compute device (a CPU node or a single GPU / GCD)."""

    name: str
    kind: str                 # "cpu" | "gpu"
    peak_gflops: float        # FP64
    dram_gbs: float           # GB/s
    l3_gbs: Optional[float] = None
    l3_mb: float = 0.0
    launch_us: float = 0.0    # kernel launch overhead
    atomic_gups: float = 1.0  # safe (CAS) atomic updates/s (billions)
    atomic_gups_unsafe: float = 1.0    # unsafe (RMW) atomic rate
    atomic_alpha: float = 0.0      # serialization slope for safe atomics
    atomic_alpha_unsafe: float = 0.0   # ... for unsafe/RMW atomics
    divergence: float = 0.0   # fractional slowdown per divergent branch
    power_w: float = 0.0      # per device (GPU) or per node (CPU)
    cores: int = 1

    def bw_eff(self, working_set_bytes: float) -> float:
        """Effective streaming bandwidth in GB/s for a working set size."""
        if (self.l3_gbs is not None and self.l3_mb > 0
                and working_set_bytes <= self.l3_mb * 1e6):
            return self.l3_gbs
        return self.dram_gbs


#: Device catalogue. Peak/bandwidth values are the published hardware specs
#: for the paper's devices (Table 2 systems + §4.1.1 extras); power values
#: come from Table 2 (CPU nodes) or are the node power divided by its GPUs.
MACHINES: Dict[str, MachineModel] = {
    "xeon_8268": MachineModel(
        name="2x Intel Xeon 8268", kind="cpu", peak_gflops=3200.0,
        dram_gbs=282.0, l3_gbs=1000.0, l3_mb=71.5, power_w=475.0, cores=48,
        atomic_gups=0.15, atomic_gups_unsafe=0.15,
        atomic_alpha=0.02, atomic_alpha_unsafe=0.02),
    "epyc_7742": MachineModel(
        name="2x AMD EPYC 7742 (ARCHER2 node)", kind="cpu",
        peak_gflops=4600.0, dram_gbs=410.0, l3_gbs=2000.0, l3_mb=512.0,
        power_w=660.0, cores=128,
        atomic_gups=0.3, atomic_gups_unsafe=0.3,
        atomic_alpha=0.02, atomic_alpha_unsafe=0.02),
    "v100": MachineModel(
        name="NVIDIA V100-SXM2-32GB", kind="gpu", peak_gflops=7800.0,
        dram_gbs=900.0, launch_us=5.0, power_w=345.0, cores=80,
        atomic_gups=12.0, atomic_gups_unsafe=12.0,
        atomic_alpha=0.0002, atomic_alpha_unsafe=0.0002,
        divergence=0.6),
    "h100": MachineModel(
        name="NVIDIA H100-80GB", kind="gpu", peak_gflops=34000.0,
        dram_gbs=3350.0, launch_us=4.0, power_w=700.0, cores=132,
        atomic_gups=40.0, atomic_gups_unsafe=40.0,
        atomic_alpha=0.0001, atomic_alpha_unsafe=0.0001,
        divergence=0.5),
    "mi210": MachineModel(
        name="AMD MI210", kind="gpu", peak_gflops=22600.0,
        dram_gbs=1638.0, launch_us=6.0, power_w=300.0, cores=104,
        atomic_gups=2.0, atomic_gups_unsafe=10.0,
        atomic_alpha=0.14, atomic_alpha_unsafe=3e-4,
        divergence=0.7),
    "max_1550": MachineModel(
        name="Intel Data Center GPU Max 1550", kind="gpu",
        peak_gflops=52000.0, dram_gbs=3276.0, launch_us=6.0,
        power_w=600.0, cores=128,
        atomic_gups=16.0, atomic_gups_unsafe=16.0,
        atomic_alpha=0.0004, atomic_alpha_unsafe=0.0004,
        divergence=0.6),
    "mi250x_gcd": MachineModel(
        name="AMD MI250X (one GCD)", kind="gpu", peak_gflops=23950.0,
        dram_gbs=1638.0, launch_us=6.0, power_w=280.0, cores=110,
        atomic_gups=2.0, atomic_gups_unsafe=10.0,
        atomic_alpha=0.14, atomic_alpha_unsafe=3e-4,
        divergence=0.7),
}


@dataclass(frozen=True)
class ClusterModel:
    """A Table 2 system: devices + interconnect + node power."""

    name: str
    device: str               # key into MACHINES
    devices_per_node: int
    node_power_w: float
    net_gbs: float            # injection bandwidth per node, GB/s
    net_latency_us: float

    @property
    def machine(self) -> MachineModel:
        return MACHINES[self.device]


#: The four clusters of Table 2.
CLUSTERS: Dict[str, ClusterModel] = {
    "avon": ClusterModel("Avon (Dell C6420)", "xeon_8268", 1, 475.0,
                         net_gbs=12.5, net_latency_us=1.5),
    "archer2": ClusterModel("ARCHER2 (HPE Cray EX)", "epyc_7742", 1, 660.0,
                            net_gbs=25.0, net_latency_us=1.7),
    "bede": ClusterModel("Bede (IBM AC922 + 4x V100)", "v100", 4, 1500.0,
                         net_gbs=12.5, net_latency_us=1.5),
    "lumi-g": ClusterModel("LUMI-G (HPE Cray EX + 4x MI250X)",
                           "mi250x_gcd", 8, 2390.0,
                           net_gbs=6.25, net_latency_us=2.0),
}


def kernel_time(stats: LoopStats, machine: MachineModel,
                strategy: str = "atomics",
                working_set_bytes: Optional[float] = None) -> float:
    """Predicted seconds for the accumulated executions of one loop."""
    ws = working_set_bytes if working_set_bytes is not None else stats.nbytes
    bw = machine.bw_eff(ws / max(stats.calls, 1))
    stream = stats.nbytes / (bw * 1e9)
    compute = stats.flops / (machine.peak_gflops * 1e9)
    base = max(stream, compute)
    if machine.kind == "gpu":
        # warp-divergence penalty; saturates once most lanes diverge
        branches = min(float(stats.extras.get("branches", 0)), 3.0)
        base *= 1.0 + machine.divergence * branches
    t = base + machine.launch_us * 1e-6 * stats.calls

    if stats.indirect_inc and stats.max_collisions > 1:
        updates = stats.n_total if not stats.is_move else stats.hops
        if strategy == "atomics":
            serial = 1.0 + machine.atomic_alpha * (stats.max_collisions - 1)
            t += updates / (machine.atomic_gups * 1e9) * serial
        elif strategy == "unsafe_atomics":
            serial = 1.0 + machine.atomic_alpha_unsafe \
                * (stats.max_collisions - 1)
            t += updates / (machine.atomic_gups_unsafe * 1e9) * serial
        elif strategy == "segmented_reduction":
            # store keys+values, radix sort of the (key, value) pairs and
            # reduce-by-key: several full passes with poor locality —
            # ~820 bytes of extra traffic per update (multi-pass sort of
            # key/value pairs with poor locality), but no serialization —
            # collision-depth independent, unlike atomics
            t += updates * 820 / (machine.dram_gbs * 1e9)
        elif strategy == "scatter_arrays":
            # final reduce streams nthreads private copies
            t += stats.extras.get("nthreads", 1) * ws * 0.02 \
                / (machine.dram_gbs * 1e9)
    return t


def comm_time(n_messages: int, nbytes: float,
              cluster: ClusterModel) -> float:
    """Latency + bandwidth model for a rank's communication volume."""
    return (n_messages * cluster.net_latency_us * 1e-6
            + nbytes / (cluster.net_gbs * 1e9))
