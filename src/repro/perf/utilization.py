"""GPU-utilization model (paper Table 1).

The paper reads nvidia-smi/rocm-smi busy percentages: ~99% on one device,
dropping with device count as MPI communication and synchronization waits
idle the GPU, and rising with particles-per-cell (more work per byte of
halo).  We derive the same quantity from first principles:

    utilization = busy / (busy + comm + sync)

with ``busy`` the device-model compute time, ``comm`` the communication
model applied to recorded message counters, and ``sync`` the load
imbalance (max-rank minus mean-rank busy time — the wait at the move
barrier the paper describes).
"""
from __future__ import annotations

from typing import Sequence

import numpy as np

from .machine import ClusterModel, comm_time

__all__ = ["utilization"]


def utilization(busy_per_rank: Sequence[float],
                msgs_per_rank: Sequence[int],
                bytes_per_rank: Sequence[float],
                cluster: ClusterModel) -> float:
    """Average device utilization across ranks, in [0, 1]."""
    busy = np.asarray(busy_per_rank, dtype=np.float64)
    if busy.size == 0:
        raise ValueError("need at least one rank")
    comm = np.array([comm_time(int(m), float(b), cluster)
                     for m, b in zip(msgs_per_rank, bytes_per_rank)])
    if comm.shape != busy.shape:
        raise ValueError("per-rank arrays must have matching length")
    sync = busy.max() - busy          # wait at the end-of-step barrier
    total = busy + comm + sync
    with np.errstate(invalid="ignore", divide="ignore"):
        u = np.where(total > 0, busy / total, 1.0)
    return float(u.mean())
