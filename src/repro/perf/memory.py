"""Memory-footprint accounting.

The paper repeatedly trades memory for speed (DH overlay bookkeeping,
thread-private scatter arrays, particle over-allocation); this module
reports where a simulation's bytes actually live, per set and per dat.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.dats import Dat
from ..core.maps import Map
from ..core.sets import ParticleSet

__all__ = ["MemoryReport", "memory_report"]


@dataclass
class MemoryReport:
    """Byte totals per category plus per-dat rows."""

    mesh_dats: int = 0
    particle_dats: int = 0
    maps: int = 0
    overlay: int = 0
    plan_cache: int = 0
    #: (name, kind, nbytes) rows sorted by size
    rows: List[tuple] = None

    @property
    def total(self) -> int:
        return (self.mesh_dats + self.particle_dats + self.maps
                + self.overlay + self.plan_cache)

    def report(self, title: str = "Memory footprint") -> str:
        lines = [title,
                 f"{'object':<32}{'kind':<12}{'bytes':>12}"]
        for name, kind, nbytes in self.rows:
            lines.append(f"{name:<32}{kind:<12}{nbytes:>12}")
        lines.append(f"{'TOTAL':<32}{'':<12}{self.total:>12}")
        return "\n".join(lines)


def memory_report(sim) -> MemoryReport:
    """Account every dat/map/overlay/plan reachable from a simulation
    object's attributes (works for all four applications)."""
    rep = MemoryReport(rows=[])
    seen = set()
    for name in vars(sim):
        obj = getattr(sim, name)
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, Dat):
            nbytes = obj._raw.nbytes
            if isinstance(obj.set, ParticleSet):
                rep.particle_dats += nbytes
                rep.rows.append((name, "particle dat", nbytes))
            else:
                rep.mesh_dats += nbytes
                rep.rows.append((name, "mesh dat", nbytes))
        elif isinstance(obj, Map):
            nbytes = obj._raw.nbytes
            rep.maps += nbytes
            rep.rows.append((name, "map", nbytes))

    overlay = getattr(sim, "overlay", None)
    if overlay is not None:
        rep.overlay = overlay.nbytes
        rep.rows.append(("overlay", "DH bookkeeping", overlay.nbytes))
    dh = getattr(sim, "dh_mover", None)
    if dh is not None:
        rep.overlay += dh.overlay_nbytes
        rep.rows.append(("dh_mover", "DH bookkeeping (RMA copies)",
                         dh.overlay_nbytes))

    ctx = getattr(sim, "ctx", None)
    if ctx is not None and hasattr(ctx.backend, "plan"):
        nbytes = sum(rows.nbytes
                     for rows in ctx.backend.plan._rows.values())
        rep.plan_cache = nbytes
        if nbytes:
            rep.rows.append(("loop plans", "plan cache", nbytes))

    rep.rows.sort(key=lambda r: -r[2])
    return rep
