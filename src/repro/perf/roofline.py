"""Roofline analysis (paper §4.1.2, Figures 10-11).

The paper builds rooflines from Intel Advisor / Nsight Compute counters
plus ERT-measured ceilings; for the MI250X it *estimates* FLOP/s from
Omniperf op counts and instrumented kernel times.  We take the latter
route everywhere: arithmetic intensity comes from the translator's
per-kernel FLOP counts and the loop byte model; achieved FLOP/s uses the
machine-model kernel time.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .machine import MachineModel, kernel_time
from .timers import LoopStats

__all__ = ["RooflinePoint", "roofline_ceiling", "analyze", "format_table"]


@dataclass
class RooflinePoint:
    kernel: str
    ai: float                # FLOP/byte
    gflops: float            # achieved
    ceiling_gflops: float    # attainable at this AI
    bound: str               # "DRAM", "L3", "compute" or "latency"
    seconds: float

    @property
    def efficiency(self) -> float:
        return self.gflops / self.ceiling_gflops if self.ceiling_gflops \
            else 0.0


def roofline_ceiling(ai: float, machine: MachineModel,
                     level: str = "dram") -> float:
    """Attainable GFLOP/s at arithmetic intensity ``ai``."""
    bw = machine.dram_gbs if level == "dram" else (machine.l3_gbs or
                                                   machine.dram_gbs)
    return min(machine.peak_gflops, ai * bw)


def analyze(loops: Sequence[LoopStats], machine: MachineModel,
            strategy: str = "atomics") -> List[RooflinePoint]:
    """Place each kernel on the machine's roofline.

    A kernel is *latency-bound* (the paper's GPU ``DepositCharge``) when
    its atomic-serialization term dominates its streaming time; it is
    L3-bound on CPUs when its per-call working set fits in L3.
    """
    points = []
    for st in loops:
        if st.nbytes <= 0:
            continue
        ai = st.arithmetic_intensity
        secs = kernel_time(st, machine, strategy=strategy)
        gflops = st.flops / secs / 1e9 if secs > 0 else 0.0
        # classify
        stream_dram = st.nbytes / (machine.dram_gbs * 1e9)
        compute = st.flops / (machine.peak_gflops * 1e9)
        base = max(stream_dram, compute)
        if machine.kind == "gpu" and st.indirect_inc and \
                st.max_collisions > 1 and secs > 3.0 * base:
            bound = "latency"
        elif compute > stream_dram:
            bound = "compute"
        elif (machine.kind == "cpu" and machine.l3_mb > 0
              and st.nbytes / max(st.calls, 1) <= machine.l3_mb * 1e6):
            bound = "L3"
        else:
            bound = "DRAM"
        ceiling = roofline_ceiling(
            ai, machine, level="l3" if bound == "L3" else "dram")
        points.append(RooflinePoint(kernel=st.name, ai=ai, gflops=gflops,
                                    ceiling_gflops=ceiling, bound=bound,
                                    seconds=secs))
    return points


def format_table(points: Sequence[RooflinePoint], machine: MachineModel,
                 title: str = "") -> str:
    lines = [title or f"Roofline — {machine.name}",
             f"  peak {machine.peak_gflops:.0f} GF/s, DRAM "
             f"{machine.dram_gbs:.0f} GB/s"
             + (f", L3 {machine.l3_gbs:.0f} GB/s" if machine.l3_gbs else ""),
             f"  {'kernel':<26}{'AI':>8}{'GF/s':>10}{'ceiling':>10}"
             f"{'bound':>9}"]
    for p in sorted(points, key=lambda p: -p.seconds):
        lines.append(f"  {p.kernel:<26}{p.ai:>8.3f}{p.gflops:>10.2f}"
                     f"{p.ceiling_gflops:>10.1f}{p.bound:>9}")
    return "\n".join(lines)
