"""Power-equivalent system sizing (paper §4.2.1, Figure 15).

The paper fixes a ~12 kW envelope and compares: 18 ARCHER2 nodes vs 8 Bede
nodes (32 V100) vs 5 LUMI-G nodes (20 MI250X = 40 GCDs), reporting GPU
speed-ups of 1.43×/1.71× (Mini-FEM-PIC) and 3.52×/3.03× (CabanaPIC).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .machine import CLUSTERS, ClusterModel

__all__ = ["power_equivalent_nodes", "PowerBudget", "PAPER_BUDGET"]


@dataclass(frozen=True)
class PowerBudget:
    watts: float

    def nodes_for(self, cluster: ClusterModel) -> int:
        """How many whole nodes fit in the envelope (at least one)."""
        return max(1, int(self.watts // cluster.node_power_w))

    def devices_for(self, cluster: ClusterModel) -> int:
        return self.nodes_for(cluster) * cluster.devices_per_node


#: The paper's ≈12 kW envelope.
PAPER_BUDGET = PowerBudget(watts=12_000.0)


def power_equivalent_nodes(budget: PowerBudget = PAPER_BUDGET,
                           ) -> Dict[str, int]:
    """Node counts per cluster inside the budget.

    With Table 2 powers this yields the paper's 18 / 8 / 5 split.
    """
    return {name: budget.nodes_for(c) for name, c in CLUSTERS.items()}
