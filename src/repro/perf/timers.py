"""Per-kernel performance recording.

OP-PIC instruments every generated loop with timers; the paper's runtime
breakdowns (Figure 9), utilization table and MI250X rooflines are built
from those counters.  :class:`PerfRecorder` keeps the same data per named
loop: call count, wall seconds, modelled FLOPs and bytes, particle hops,
collision maxima, and any backend extras.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LoopStats", "PerfRecorder"]


@dataclass
class LoopStats:
    """Accumulated statistics for one named loop."""

    name: str
    calls: int = 0
    n_total: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    nbytes: float = 0.0
    hops: int = 0
    max_collisions: int = 0
    indirect_inc: bool = False
    is_move: bool = False
    extras: dict = field(default_factory=dict)
    #: accumulated busy seconds per parallel worker (shared-memory
    #: backends report one entry per worker per call; index = worker id)
    worker_seconds: List[float] = field(default_factory=list)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte — x-axis of the roofline plots."""
        return self.flops / self.nbytes if self.nbytes else 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean busy time across workers (1.0 = perfect balance;
        0.0 when the loop never ran on a worker pool)."""
        busy = [s for s in self.worker_seconds if s > 0.0]
        if not busy:
            return 0.0
        return max(busy) * len(busy) / sum(busy)

    def to_dict(self) -> dict:
        """JSON/pickle-friendly snapshot (rank processes ship these back
        to the launcher)."""
        return {"name": self.name, "calls": self.calls,
                "n_total": self.n_total, "seconds": self.seconds,
                "flops": self.flops, "nbytes": self.nbytes,
                "hops": self.hops, "max_collisions": self.max_collisions,
                "indirect_inc": self.indirect_inc, "is_move": self.is_move,
                "extras": dict(self.extras),
                "worker_seconds": list(self.worker_seconds)}

    @classmethod
    def from_dict(cls, payload: dict) -> "LoopStats":
        return cls(**payload)

    def merge(self, other: "LoopStats") -> "LoopStats":
        """Accumulate another recorder's stats for the same loop (used
        when per-rank breakdowns are folded into a program-level one)."""
        self.calls += other.calls
        self.n_total += other.n_total
        self.seconds += other.seconds
        self.flops += other.flops
        self.nbytes += other.nbytes
        self.hops += other.hops
        self.max_collisions = max(self.max_collisions,
                                  other.max_collisions)
        self.indirect_inc = self.indirect_inc or other.indirect_inc
        self.is_move = self.is_move or other.is_move
        if len(self.worker_seconds) < len(other.worker_seconds):
            self.worker_seconds.extend(
                [0.0] * (len(other.worker_seconds)
                         - len(self.worker_seconds)))
        for i, s in enumerate(other.worker_seconds):
            self.worker_seconds[i] += float(s)
        self.extras.update(other.extras)
        return self


class PerfRecorder:
    """Accumulates :class:`LoopStats` keyed by loop name."""

    def __init__(self):
        self.loops: Dict[str, LoopStats] = {}
        self.enabled = True
        #: optional per-event timeline (see repro.perf.trace)
        self.trace = None

    def record_loop(self, name: str, *, n: int, seconds: float,
                    flops: float = 0.0, nbytes: float = 0.0,
                    indirect_inc: bool = False, hops: int = 0,
                    is_move: bool = False, collisions: int = 0,
                    worker_seconds=None, **extras) -> None:
        if not self.enabled:
            return
        if self.trace is not None:
            import time as _time
            self.trace.record(name, _time.perf_counter() - seconds,
                              seconds)
        st = self.loops.get(name)
        if st is None:
            st = self.loops[name] = LoopStats(name)
        st.calls += 1
        st.n_total += n
        st.seconds += seconds
        st.flops += flops
        st.nbytes += nbytes
        st.hops += hops
        st.max_collisions = max(st.max_collisions, collisions)
        st.indirect_inc = st.indirect_inc or indirect_inc
        st.is_move = st.is_move or is_move
        if worker_seconds:
            # roll up per-worker busy time across calls (pad if a later
            # call used more workers than an earlier one)
            if len(st.worker_seconds) < len(worker_seconds):
                st.worker_seconds.extend(
                    [0.0] * (len(worker_seconds) - len(st.worker_seconds)))
            for i, s in enumerate(worker_seconds):
                st.worker_seconds[i] += float(s)
        for k, v in extras.items():
            st.extras[k] = v

    def reset(self) -> None:
        self.loops.clear()

    def to_dict(self) -> dict:
        return {name: st.to_dict() for name, st in self.loops.items()}

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfRecorder":
        rec = cls()
        for name, st in payload.items():
            rec.loops[name] = LoopStats.from_dict(st)
        return rec

    def merge(self, other: "PerfRecorder") -> "PerfRecorder":
        """Fold another recorder in (per-rank → program-level roll-up)."""
        for name, st in other.loops.items():
            mine = self.loops.get(name)
            if mine is None:
                self.loops[name] = LoopStats.from_dict(st.to_dict())
            else:
                mine.merge(st)
        return self

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.loops.values())

    def breakdown(self) -> List[LoopStats]:
        """Loops ordered by descending total time — the Figure 9 bars."""
        return sorted(self.loops.values(), key=lambda s: -s.seconds)

    def get(self, name: str) -> Optional[LoopStats]:
        return self.loops.get(name)

    def report(self, title: str = "Loop breakdown") -> str:
        lines = [title, f"{'loop':<28}{'calls':>7}{'time(s)':>10}"
                        f"{'GFLOP':>9}{'GB':>9}{'AI':>7}"]
        for s in self.breakdown():
            lines.append(f"{s.name:<28}{s.calls:>7}{s.seconds:>10.4f}"
                         f"{s.flops / 1e9:>9.3f}{s.nbytes / 1e9:>9.3f}"
                         f"{s.arithmetic_intensity:>7.3f}")
        return "\n".join(lines)
