"""Chrome-trace export of loop timelines.

The paper's per-kernel analysis relies on profilers (Nsight, Advisor,
Omniperf, rocm-smi); the equivalent artefact here is a timeline of every
loop execution exportable to the Chrome/Perfetto ``chrome://tracing``
JSON format, one lane per rank.

Event recording is off by default (the aggregate counters in
:class:`~repro.perf.timers.PerfRecorder` are always on); enable it with
``recorder.trace = TraceLog()`` or use :func:`attach_trace`.
"""
from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["TraceLog", "attach_trace", "export_chrome_trace"]


class TraceLog:
    """Append-only list of (name, start, duration) loop events."""

    def __init__(self, origin: Optional[float] = None):
        self.origin = time.perf_counter() if origin is None else origin
        self.events: List[tuple] = []

    def record(self, name: str, t0: float, seconds: float) -> None:
        self.events.append((name, t0 - self.origin, seconds))

    def __len__(self) -> int:
        return len(self.events)


def attach_trace(*recorders) -> List[TraceLog]:
    """Attach a fresh, origin-aligned TraceLog to each PerfRecorder
    (e.g. one per simulated rank) and return them."""
    origin = time.perf_counter()
    logs = []
    for rec in recorders:
        log = TraceLog(origin=origin)
        rec.trace = log
        logs.append(log)
    return logs


def export_chrome_trace(logs, path: Union[str, Path],
                        lane_names=None) -> Path:
    """Write ``chrome://tracing`` JSON: one process lane per TraceLog."""
    if isinstance(logs, TraceLog):
        logs = [logs]
    events = []
    for lane, log in enumerate(logs):
        name = (lane_names[lane] if lane_names is not None
                else f"rank {lane}")
        events.append({"name": "process_name", "ph": "M", "pid": lane,
                       "tid": 0, "args": {"name": name}})
        for kernel, start, dur in log.events:
            events.append({"name": kernel, "ph": "X", "pid": lane,
                           "tid": 0, "ts": start * 1e6,
                           "dur": dur * 1e6, "cat": "loop"})
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": events,
                                "displayTimeUnit": "ms"}))
    return path
