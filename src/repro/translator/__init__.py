"""Source-to-source translator: elemental kernels → vectorised NumPy code."""
from .codegen import GeneratedKernel, VecMoveContext, generate
from .ir import KernelIR, count_flops
from .parser import KernelLanguageError, parse_kernel

__all__ = ["GeneratedKernel", "VecMoveContext", "generate", "KernelIR",
           "count_flops", "KernelLanguageError", "parse_kernel"]
